//! Offline stand-in for the tiny `rayon` subset this workspace uses:
//! `slice.par_iter().map(f).collect::<Vec<_>>()`.
//!
//! The build environment cannot reach crates.io, so this vendored crate
//! provides the same call shape over `std::thread::scope`: the input is
//! split into one contiguous chunk per available core, each chunk is
//! mapped on its own scoped thread, and results are gathered in input
//! order. On a single-core host it degrades to a plain sequential map
//! with no thread overhead.

/// Parallel-iterator entry points, mirroring `rayon::prelude`.
pub mod prelude {
    pub use crate::IntoParallelRefIterator;
}

/// Borrowing parallel iteration, mirroring the rayon trait of the same
/// name. Implemented for slices and anything that derefs to one.
pub trait IntoParallelRefIterator<'a> {
    /// Element type yielded by the iterator.
    type Item: Sync + 'a;

    /// A parallel iterator over `&self`'s elements.
    fn par_iter(&'a self) -> ParIter<'a, Self::Item>;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = T;
    fn par_iter(&'a self) -> ParIter<'a, T> {
        ParIter { items: self }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = T;
    fn par_iter(&'a self) -> ParIter<'a, T> {
        ParIter { items: self }
    }
}

/// A borrowed parallel iterator (pre-`map`).
pub struct ParIter<'a, T> {
    items: &'a [T],
}

impl<'a, T: Sync> ParIter<'a, T> {
    /// Maps every element through `f`, preserving input order.
    pub fn map<O, F>(self, f: F) -> ParMap<'a, T, F>
    where
        O: Send,
        F: Fn(&'a T) -> O + Sync,
    {
        ParMap {
            items: self.items,
            f,
        }
    }
}

/// A mapped parallel iterator, ready to collect.
pub struct ParMap<'a, T, F> {
    items: &'a [T],
    f: F,
}

impl<'a, T: Sync, F> ParMap<'a, T, F> {
    /// Runs the map across threads and collects results in input order.
    pub fn collect<O, C>(self) -> C
    where
        O: Send,
        F: Fn(&'a T) -> O + Sync,
        C: FromIterator<O>,
    {
        let n = self.items.len();
        let threads = std::thread::available_parallelism()
            .map(|v| v.get())
            .unwrap_or(1)
            .min(n.max(1));
        if threads <= 1 {
            return self.items.iter().map(&self.f).collect();
        }
        let chunk = n.div_ceil(threads);
        let mut results: Vec<Option<O>> = (0..n).map(|_| None).collect();
        std::thread::scope(|scope| {
            for (items, out) in self.items.chunks(chunk).zip(results.chunks_mut(chunk)) {
                let f = &self.f;
                scope.spawn(move || {
                    for (slot, item) in out.iter_mut().zip(items) {
                        *slot = Some(f(item));
                    }
                });
            }
        });
        results
            .into_iter()
            .map(|slot| slot.expect("every chunk filled"))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn maps_in_order() {
        let xs: Vec<u64> = (0..1000).collect();
        let ys: Vec<u64> = xs.par_iter().map(|&x| x * 2).collect();
        assert_eq!(ys, (0..1000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn empty_input_collects_empty() {
        let xs: Vec<u32> = vec![];
        let ys: Vec<u32> = xs.par_iter().map(|&x| x).collect();
        assert!(ys.is_empty());
    }

    #[test]
    fn works_on_slices() {
        let xs = [1u32, 2, 3];
        let sum: Vec<u32> = xs[..].par_iter().map(|&x| x + 1).collect();
        assert_eq!(sum, vec![2, 3, 4]);
    }
}
