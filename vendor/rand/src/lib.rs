//! Offline stand-in for the subset of the `rand` 0.10 API this workspace
//! uses: `rngs::StdRng`, `SeedableRng::seed_from_u64`, and the `RngExt`
//! extension trait with `random::<T>()` / `random_range(range)`.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors this small, dependency-free implementation instead. The
//! generator is SplitMix64 (Steele, Lea & Flood 2014): a full-period
//! 64-bit mixer whose output easily passes the first/second-moment checks
//! the workload-model tests perform. It is **not** the upstream StdRng
//! (ChaCha12) — streams differ from real `rand`, but every consumer in
//! this workspace only requires determinism per seed, not cross-crate
//! stream compatibility.

use std::ops::{Bound, RangeBounds};

/// Core source of 64-bit randomness.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
}

/// Seedable construction, matching the `rand` trait of the same name.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Named RNG implementations, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic seedable generator (SplitMix64).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // Burn one output so seed 0 does not start at the weak
            // all-zero state.
            let mut rng = StdRng { state: seed };
            let _ = rng.next_u64();
            rng
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

/// Types samplable uniformly from their "natural" distribution:
/// `[0, 1)` for floats, the full domain for integers and `bool`.
pub trait StandardUniform: Sized {
    /// Draws one sample from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardUniform for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 high bits -> [0, 1) with full double precision.
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardUniform for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl StandardUniform for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl StandardUniform for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl StandardUniform for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Integer types uniformly samplable from a bounded range.
pub trait UniformInt: Sized + Copy {
    /// Widens to u64 for modular sampling.
    fn to_u64(self) -> u64;
    /// Narrows back after sampling.
    fn from_u64(v: u64) -> Self;
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl UniformInt for $t {
            fn to_u64(self) -> u64 { self as u64 }
            fn from_u64(v: u64) -> Self { v as $t }
        }
    )*};
}
impl_uniform_int!(u8, u16, u32, u64, usize);

/// Extension methods on any [`RngCore`], mirroring `rand::RngExt`.
pub trait RngExt: RngCore {
    /// A sample of `T` from its standard distribution.
    fn random<T: StandardUniform>(&mut self) -> T {
        T::sample(self)
    }

    /// A uniform sample from `range` (which must be non-empty).
    fn random_range<T: UniformInt, B: RangeBounds<T>>(&mut self, range: B) -> T {
        let lo = match range.start_bound() {
            Bound::Included(&v) => v.to_u64(),
            Bound::Excluded(&v) => v.to_u64() + 1,
            Bound::Unbounded => 0,
        };
        let hi = match range.end_bound() {
            Bound::Included(&v) => v.to_u64(),
            Bound::Excluded(&v) => v.to_u64().checked_sub(1).expect("empty range"),
            Bound::Unbounded => u64::MAX,
        };
        assert!(lo <= hi, "random_range over an empty range");
        let span = hi - lo;
        if span == u64::MAX {
            return T::from_u64(self.next_u64());
        }
        // Debiased modular sampling (rejection on the tail).
        let span = span + 1;
        let zone = u64::MAX - (u64::MAX % span);
        loop {
            let v = self.next_u64();
            if v < zone {
                return T::from_u64(lo + v % span);
            }
        }
    }
}

impl<R: RngCore + ?Sized> RngExt for R {}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn f64_is_unit_interval_and_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(42);
        let n = 100_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let v: f64 = rng.random();
            assert!((0.0..1.0).contains(&v));
            sum += v;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn range_sampling_stays_in_bounds_and_hits_ends() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut seen_lo = false;
        let mut seen_hi = false;
        for _ in 0..10_000 {
            let v: u32 = rng.random_range(3..=9);
            assert!((3..=9).contains(&v));
            seen_lo |= v == 3;
            seen_hi |= v == 9;
        }
        assert!(seen_lo && seen_hi);
        let w: usize = rng.random_range(5..6);
        assert_eq!(w, 5);
    }
}
