//! Offline stand-in for the `proptest` subset this workspace uses.
//!
//! The build environment cannot reach crates.io, so this vendored crate
//! re-implements the API shape the repository's property tests rely on:
//!
//! * the [`proptest!`] macro (with optional `#![proptest_config(...)]`),
//! * range strategies over integers and floats, tuple strategies,
//!   `prop::collection::vec`, and `Strategy::prop_map`,
//! * `prop_assert!`, `prop_assert_eq!`, `prop_assume!`.
//!
//! Differences from upstream: cases are generated from a deterministic
//! per-test seed (derived from the test name), there is **no shrinking**
//! (a failure reports the case index so it can be replayed — the inputs
//! are deterministic), and rejected cases (`prop_assume!`) are skipped
//! rather than resampled.

use std::ops::{Range, RangeInclusive};

/// Test-case generation RNG (SplitMix64), deterministic per (test, case).
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// A generator for the given seed.
    pub fn seed_from_u64(seed: u64) -> TestRng {
        let mut rng = TestRng { state: seed };
        let _ = rng.next_u64();
        rng
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform in `[lo, hi]` (inclusive), `lo <= hi`.
    pub fn next_in(&mut self, lo: u64, hi: u64) -> u64 {
        let span = hi - lo;
        if span == u64::MAX {
            return self.next_u64();
        }
        let span = span + 1;
        let zone = u64::MAX - (u64::MAX % span);
        loop {
            let v = self.next_u64();
            if v < zone {
                return lo + v % span;
            }
        }
    }
}

/// Why a test case did not pass.
#[derive(Clone, Debug)]
pub enum TestCaseError {
    /// An assertion failed; the message describes it.
    Fail(String),
    /// The case was rejected by `prop_assume!` — skipped, not a failure.
    Reject,
}

/// Runner configuration, mirroring `proptest::test_runner::Config`.
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Number of cases to generate per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Upstream defaults to 256; 64 keeps the heavier solver-backed
        // properties fast on small CI machines while still exploring a
        // meaningful input set.
        ProptestConfig { cases: 64 }
    }
}

/// Drives the cases of one `proptest!`-declared test.
#[derive(Debug)]
pub struct TestRunner {
    config: ProptestConfig,
    seed: u64,
    rejected: u32,
}

impl TestRunner {
    /// A runner for the named test.
    pub fn new(config: ProptestConfig, name: &str) -> TestRunner {
        // FNV-1a over the test name: deterministic, stable across runs.
        let mut seed = 0xcbf2_9ce4_8422_2325u64;
        for b in name.bytes() {
            seed ^= b as u64;
            seed = seed.wrapping_mul(0x1000_0000_01b3);
        }
        TestRunner {
            config,
            seed,
            rejected: 0,
        }
    }

    /// Number of cases to run.
    pub fn cases(&self) -> u32 {
        self.config.cases
    }

    /// The input RNG for one case.
    pub fn rng_for(&self, case: u32) -> TestRng {
        TestRng::seed_from_u64(self.seed ^ ((case as u64) << 32 | 0x5bd1_e995))
    }

    /// Records one case outcome; panics on failure.
    pub fn handle(&mut self, case: u32, result: Result<(), TestCaseError>) {
        match result {
            Ok(()) => {}
            Err(TestCaseError::Reject) => self.rejected += 1,
            Err(TestCaseError::Fail(msg)) => {
                panic!("property failed at case {case}/{}: {msg}", self.config.cases)
            }
        }
    }

    /// Final bookkeeping after all cases ran.
    pub fn finish(self) {
        // All cases rejected is suspicious but not an error: the property
        // was vacuously true for this seed.
    }
}

/// A value generator, mirroring `proptest::strategy::Strategy` minus
/// shrinking.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// The [`Strategy::prop_map`] combinator.
#[derive(Clone, Debug)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// A strategy producing one fixed value, mirroring `proptest::strategy::Just`.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                rng.next_in(self.start as u64, self.end as u64 - 1) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start() <= self.end(), "empty range strategy");
                rng.next_in(*self.start() as u64, *self.end() as u64) as $t
            }
        }
    )*};
}
impl_int_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! impl_signed_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i64 - self.start as i64) as u64;
                (self.start as i64 + rng.next_in(0, span - 1) as i64) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start() <= self.end(), "empty range strategy");
                let span = (*self.end() as i64 - *self.start() as i64) as u64;
                (*self.start() as i64 + rng.next_in(0, span) as i64) as $t
            }
        }
    )*};
}
impl_signed_range_strategy!(i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.next_f64() * (self.end - self.start)
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start() <= self.end(), "empty range strategy");
        self.start() + rng.next_f64() * (self.end() - self.start())
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($name:ident),+)),+) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )+};
}
impl_tuple_strategy!(
    (A),
    (A, B),
    (A, B, C),
    (A, B, C, D),
    (A, B, C, D, E),
    (A, B, C, D, E, G)
);

/// Collection-size specification accepted by [`collection::vec`].
#[derive(Clone, Debug)]
pub struct SizeRange {
    /// Minimum length (inclusive).
    pub min: usize,
    /// Maximum length (inclusive).
    pub max: usize,
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> SizeRange {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            min: r.start,
            max: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> SizeRange {
        assert!(r.start() <= r.end(), "empty size range");
        SizeRange {
            min: *r.start(),
            max: *r.end(),
        }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> SizeRange {
        SizeRange { min: n, max: n }
    }
}

/// Collection strategies, mirroring `proptest::collection`.
pub mod collection {
    use super::{SizeRange, Strategy, TestRng};

    /// A `Vec` whose elements come from `element` and whose length is
    /// uniform in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// The [`vec()`] strategy.
    #[derive(Clone, Debug)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.next_in(self.size.min as u64, self.size.max as u64) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// The usual wildcard import, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Just, ProptestConfig,
        Strategy, TestCaseError, TestRng, TestRunner,
    };
    /// `prop::collection::vec(...)` etc., as upstream's prelude exposes.
    pub use crate as prop;
}

/// Declares property tests. Supports an optional leading
/// `#![proptest_config(expr)]` followed by `#[test] fn name(pat in
/// strategy, ...) { body }` items.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@funcs ($cfg) $($rest)*);
    };
    (@funcs ($cfg:expr) $($(#[$meta:meta])* fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let mut runner = $crate::TestRunner::new(config, stringify!($name));
                for case in 0..runner.cases() {
                    let mut prop_rng = runner.rng_for(case);
                    $(let $pat = $crate::Strategy::generate(&($strat), &mut prop_rng);)+
                    let outcome = (|| -> ::std::result::Result<(), $crate::TestCaseError> {
                        $body
                        #[allow(unreachable_code)]
                        Ok(())
                    })();
                    runner.handle(case, outcome);
                }
                runner.finish();
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@funcs (<$crate::ProptestConfig as ::std::default::Default>::default()) $($rest)*);
    };
}

/// Asserts inside a `proptest!` body, failing the case (not panicking
/// directly) so the runner can report the case index.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!($($fmt)+)));
        }
    };
}

/// Equality assertion inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            left == right,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right), left, right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(left == right, $($fmt)+);
    }};
}

/// Inequality assertion inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            left != right,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($left), stringify!($right), left
        );
    }};
}

/// Skips the current case when its inputs do not satisfy a precondition.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 3u32..10, y in 0u64..=5, f in 0.5f64..2.0) {
            prop_assert!((3..10).contains(&x));
            prop_assert!(y <= 5);
            prop_assert!((0.5..2.0).contains(&f));
        }

        #[test]
        fn vec_lengths_respect_size_range(
            v in prop::collection::vec(0u32..100, 2..5),
        ) {
            prop_assert!(v.len() >= 2 && v.len() < 5);
        }

        #[test]
        fn prop_map_transforms(
            pairs in prop::collection::vec((1u32..4, 1u64..9), 1..4)
                .prop_map(|ps| ps.into_iter().map(|(a, b)| a as u64 * b).collect::<Vec<_>>()),
        ) {
            prop_assert!(!pairs.is_empty());
            for p in pairs {
                prop_assert!((1..32).contains(&p));
            }
        }

        #[test]
        fn assume_rejects_without_failing(x in 0u32..10) {
            prop_assume!(x % 2 == 0);
            prop_assert_eq!(x % 2, 0);
        }
    }

    proptest! {
        #[test]
        fn default_config_also_works(x in 1u32..100) {
            prop_assert_ne!(x, 0);
        }
    }

    #[test]
    fn deterministic_generation_per_test_name() {
        let runner = TestRunner::new(ProptestConfig::with_cases(4), "some_test");
        let a: Vec<u64> = (0..4).map(|c| runner.rng_for(c).next_u64()).collect();
        let b: Vec<u64> = (0..4).map(|c| runner.rng_for(c).next_u64()).collect();
        assert_eq!(a, b);
    }
}
