//! Offline stand-in for the `criterion` subset this workspace's benches
//! use: `criterion_group!`/`criterion_main!`, `Criterion::bench_function`,
//! benchmark groups with `sample_size`/`bench_with_input`, and
//! `BenchmarkId`.
//!
//! The build environment cannot reach crates.io, so this vendored crate
//! provides a minimal real harness instead: every benchmark is timed by
//! collecting `sample_size` samples (auto-calibrated iterations per
//! sample) and the median / mean / min per-iteration times are printed in
//! a stable, greppable one-line format:
//!
//! ```text
//! bench: <name>  median <t>  mean <t>  min <t>  (<samples> samples x <iters> iters)
//! ```
//!
//! No statistics beyond that, no plots, no saved baselines — enough to
//! compare hot paths between commits by diffing output.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Target wall time per sample during measurement.
const TARGET_SAMPLE_TIME: Duration = Duration::from_millis(25);
/// Wall time spent estimating the iteration cost before measuring.
const CALIBRATION_TIME: Duration = Duration::from_millis(50);

/// Re-export mirroring criterion's own `black_box` re-export.
pub use std::hint::black_box;

/// The benchmark driver.
#[derive(Debug)]
pub struct Criterion {
    default_sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            default_sample_size: 20,
        }
    }
}

impl Criterion {
    /// Times `f` under `name`.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        run_one(name, self.default_sample_size, f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.to_string(),
            sample_size: 20,
        }
    }
}

/// A named benchmark group.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of samples for benches in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Times `f` under `group/id`.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl IntoBenchmarkId, f: F) {
        let full = format!("{}/{}", self.name, id.into_benchmark_id().0);
        run_one(&full, self.sample_size, f);
    }

    /// Times `f` under `group/id`, passing `input` through.
    pub fn bench_with_input<I: ?Sized, F>(&mut self, id: impl IntoBenchmarkId, input: &I, mut f: F)
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id.into_benchmark_id().0);
        run_one(&full, self.sample_size, |b| f(b, input));
    }

    /// Ends the group (no-op beyond matching the upstream API).
    pub fn finish(self) {}
}

/// An identifier for one benchmark within a group.
#[derive(Clone, Debug)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// `name/parameter`.
    pub fn new(name: impl Display, parameter: impl Display) -> BenchmarkId {
        BenchmarkId(format!("{name}/{parameter}"))
    }

    /// Just the parameter, for single-function groups.
    pub fn from_parameter(parameter: impl Display) -> BenchmarkId {
        BenchmarkId(format!("{parameter}"))
    }
}

/// Anything usable as a benchmark id (a `BenchmarkId` or a plain string).
pub trait IntoBenchmarkId {
    /// Converts to the canonical id.
    fn into_benchmark_id(self) -> BenchmarkId;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> BenchmarkId {
        self
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId(self.to_string())
    }
}

/// Passed to the closure; its `iter` does the actual timing.
#[derive(Debug)]
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `iters` invocations of `f`.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_one<F: FnMut(&mut Bencher)>(name: &str, samples: usize, mut f: F) {
    // Calibrate: run single iterations until the calibration budget is
    // spent, deriving how many iterations fill one sample.
    let calibration = Instant::now();
    let mut one = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };
    let mut per_iter = Duration::ZERO;
    let mut calibration_runs = 0u32;
    while calibration.elapsed() < CALIBRATION_TIME {
        f(&mut one);
        per_iter = one.elapsed.max(Duration::from_nanos(1));
        calibration_runs += 1;
        if per_iter > CALIBRATION_TIME {
            break;
        }
    }
    let _ = calibration_runs;
    let iters = (TARGET_SAMPLE_TIME.as_nanos() / per_iter.as_nanos().max(1))
        .clamp(1, 10_000_000) as u64;
    let mut sample_times: Vec<Duration> = Vec::with_capacity(samples);
    for _ in 0..samples {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        sample_times.push(b.elapsed / iters as u32);
    }
    sample_times.sort();
    let median = sample_times[sample_times.len() / 2];
    let min = sample_times[0];
    let mean = sample_times.iter().sum::<Duration>() / sample_times.len() as u32;
    println!(
        "bench: {name}  median {}  mean {}  min {}  ({samples} samples x {iters} iters)",
        fmt_duration(median),
        fmt_duration(mean),
        fmt_duration(min),
    );
}

fn fmt_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 1_000 {
        format!("{nanos} ns")
    } else if nanos < 1_000_000 {
        format!("{:.2} us", nanos as f64 / 1_000.0)
    } else if nanos < 1_000_000_000 {
        format!("{:.2} ms", nanos as f64 / 1_000_000.0)
    } else {
        format!("{:.2} s", nanos as f64 / 1_000_000_000.0)
    }
}

/// Bundles benchmark functions into a runnable group function.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Emits `main` running the given groups (harness = false entry point).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_reports() {
        let mut c = Criterion::default();
        c.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
    }

    #[test]
    fn groups_with_inputs_run() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("g");
        g.sample_size(5);
        for n in [1u64, 2] {
            g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
                b.iter(|| black_box(n * 2))
            });
        }
        g.finish();
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("f", 3).0, "f/3");
        assert_eq!(BenchmarkId::from_parameter("sjf").0, "sjf");
    }
}
