//! `dynp-rs` — a reproduction of *"On the Comparison of CPLEX-Computed Job
//! Schedules with the Self-Tuning dynP Job Scheduler"* (Grothklags &
//! Streit, IPPS/IPDPS 2004 workshops).
//!
//! This facade crate re-exports the workspace members so applications can
//! depend on a single crate:
//!
//! * [`trace`] — job model, SWF traces, the synthetic CTC workload,
//! * [`platform`] — machine, availability profile, machine history,
//! * [`sched`] — planning-based schedules, FCFS/SJF/LJF, metrics,
//! * [`des`] — the discrete-event simulation kernel,
//! * [`dynp`] — the self-tuning dynP scheduler (deciders, tuner),
//! * [`sim`] — the RMS simulator replaying traces,
//! * [`milp`] — the exact time-indexed ILP solver (the CPLEX substitute),
//! * [`obs`] — metrics, span timing, and the JSONL event log.
//!
//! # Quickstart
//!
//! ```
//! use dynp_rs::prelude::*;
//!
//! // A small CTC-like workload on a 64-node machine.
//! let model = CtcModel { nodes: 64, ..CtcModel::default() };
//! let trace = model.generate(50, 42);
//!
//! // Replay it under the self-tuning dynP scheduler.
//! let run = simulate(
//!     &trace.jobs,
//!     SelfTuning::paper_config(Metric::SldwA),
//!     SimConfig::new(trace.machine_size),
//! );
//! assert_eq!(run.records.len(), 50);
//! println!("{}", run.summary);
//! ```

pub use dynp_core as dynp;
pub use dynp_des as des;
pub use dynp_milp as milp;
pub use dynp_obs as obs;
pub use dynp_platform as platform;
pub use dynp_sched as sched;
pub use dynp_sim as sim;
pub use dynp_trace as trace;

/// The most common imports in one place.
pub mod prelude {
    pub use dynp_core::{Decider, FixedPolicy, PolicySelector, SelfTuning};
    pub use dynp_milp::{solve_snapshot, BranchLimits, SolveConfig, TimeScaling};
    pub use dynp_platform::{Machine, MachineHistory, ResourceProfile};
    pub use dynp_sched::{plan, Metric, Policy, Reservation, Schedule, SchedulingProblem};
    pub use dynp_sim::{simulate, simulate_queue, QueueDiscipline, SimConfig, SnapshotFilter};
    pub use dynp_trace::{CtcModel, Job, JobId, SwfTrace, TraceStats, WorkloadModel};
}
