//! `dynp-rs` — a reproduction of *"On the Comparison of CPLEX-Computed Job
//! Schedules with the Self-Tuning dynP Job Scheduler"* (Grothklags &
//! Streit, IPPS/IPDPS 2004 workshops).
//!
//! This facade crate re-exports the workspace members so applications can
//! depend on a single crate:
//!
//! * [`trace`] — job model, SWF traces, the synthetic CTC workload,
//!   weekly trace shards,
//! * [`platform`] — machine, availability profile, machine history,
//! * [`sched`] — planning-based schedules, FCFS/SJF/LJF, metrics,
//! * [`des`] — the discrete-event simulation kernel,
//! * [`dynp`] — the self-tuning dynP scheduler (deciders, tuner),
//! * [`sim`] — the RMS simulator replaying traces,
//! * [`milp`] — the exact time-indexed ILP solver (the CPLEX substitute),
//! * [`exp`] — parallel, resumable experiment campaigns over trace shards,
//! * [`obs`] — metrics, span timing, trace-context propagation, the
//!   JSONL event log, and OpenMetrics exposition,
//! * [`insight`] — the offline event analyzer: merges rotated/sharded
//!   logs by logical clock and reports critical paths, span latency
//!   percentiles, and regression diffs,
//! * [`watch`] — the live telemetry server: `/metrics`, `/progress`,
//!   `/alerts`, and `/events` over plain std TCP while a run is going.
//!
//! # Quickstart
//!
//! ```
//! use dynp_rs::prelude::*;
//!
//! // A small CTC-like workload on a 64-node machine.
//! let model = CtcModel { nodes: 64, ..CtcModel::default() };
//! let trace = model.generate(50, 42);
//!
//! // Replay it under the self-tuning dynP scheduler.
//! let run = simulate(
//!     &trace.jobs,
//!     SelfTuning::paper_config(Metric::SldwA),
//!     SimConfig::new(trace.machine_size),
//! );
//! assert_eq!(run.records.len(), 50);
//! println!("{}", run.summary);
//! ```
//!
//! # Errors
//!
//! Fallible entry points return typed errors ([`sched::PlanError`],
//! [`milp::SolveError`], [`trace::SwfError`], [`exp::CampaignError`]);
//! the workspace-level [`enum@Error`] unifies them for applications that
//! drive several subsystems behind one `?`.

pub use dynp_core as dynp;
pub use dynp_des as des;
pub use dynp_exp as exp;
pub use dynp_insight as insight;
pub use dynp_milp as milp;
pub use dynp_obs as obs;
pub use dynp_platform as platform;
pub use dynp_sched as sched;
pub use dynp_sim as sim;
pub use dynp_trace as trace;
pub use dynp_watch as watch;

/// Workspace-wide error umbrella: every typed error a `dynp-rs` entry
/// point can return, unified so applications can use one `Result` type
/// across planning, exact solving, trace I/O, and campaigns.
#[derive(Debug)]
#[non_exhaustive]
pub enum Error {
    /// Planning a policy schedule failed ([`sched::PlanError`]).
    Plan(sched::PlanError),
    /// An exact solve could not run ([`milp::SolveError`]).
    Solve(milp::SolveError),
    /// Reading or writing an SWF trace failed ([`trace::SwfError`]).
    Swf(trace::SwfError),
    /// An experiment campaign could not run ([`exp::CampaignError`]).
    Campaign(exp::CampaignError),
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Error::Plan(e) => write!(f, "planning failed: {e}"),
            Error::Solve(e) => write!(f, "exact solve failed: {e}"),
            Error::Swf(e) => write!(f, "swf trace failed: {e}"),
            Error::Campaign(e) => write!(f, "campaign failed: {e}"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Plan(e) => Some(e),
            Error::Solve(e) => Some(e),
            Error::Swf(e) => Some(e),
            Error::Campaign(e) => Some(e),
        }
    }
}

impl From<sched::PlanError> for Error {
    fn from(e: sched::PlanError) -> Error {
        Error::Plan(e)
    }
}

impl From<milp::SolveError> for Error {
    fn from(e: milp::SolveError) -> Error {
        Error::Solve(e)
    }
}

impl From<trace::SwfError> for Error {
    fn from(e: trace::SwfError) -> Error {
        Error::Swf(e)
    }
}

impl From<exp::CampaignError> for Error {
    fn from(e: exp::CampaignError) -> Error {
        Error::Campaign(e)
    }
}

/// The most common imports in one place.
pub mod prelude {
    pub use crate::Error;
    pub use dynp_core::{Decider, FixedPolicy, PolicySelector, SelfTuning};
    pub use dynp_exp::{
        run_campaign, CampaignConfig, CampaignError, CampaignOutcome, CellStatus, ExactConfig,
        FaultInjection, FaultKind, FaultPlan, SelectorSpec,
    };
    pub use dynp_milp::{
        solve_snapshot, BranchLimits, ExactRun, SolveConfig, SolveError, TimeScaling,
    };
    pub use dynp_platform::{Machine, MachineHistory, ResourceProfile};
    pub use dynp_sched::{
        plan, Metric, PlanError, Policy, Reservation, Schedule, SchedulingProblem,
    };
    pub use dynp_sim::{
        simulate, simulate_queue, QueueDiscipline, SimConfig, SimRun, SimSummary, SnapshotFilter,
        SnapshotLog,
    };
    pub use dynp_trace::{
        shards, CtcModel, Job, JobId, SwfTrace, TraceShard, TraceStats, WorkloadModel,
        WEEK_SECONDS,
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn umbrella_error_wraps_and_displays_every_subsystem() {
        let solve: Error = milp::SolveError::EmptySnapshot.into();
        assert!(solve.to_string().contains("empty snapshot"));
        let campaign: Error = exp::CampaignError::EmptyTrace.into();
        assert!(campaign.to_string().contains("empty"));
        // source() chains to the inner error.
        let inner = std::error::Error::source(&campaign).unwrap();
        assert!(inner.to_string().contains("empty"));
    }
}
