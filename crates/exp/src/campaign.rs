//! Campaign configuration and the parallel, resumable cell runner.
//!
//! A *campaign* is the paper's §4 evaluation protocol as a first-class
//! value: slice a trace into weekly shards, replay every shard under every
//! selector and over-estimation factor, optionally compare a sample of
//! quasi-off-line snapshots against the exact ILP under a fixed node
//! budget, and aggregate everything into Table-1-style comparison tables.
//!
//! The cross-product `{shard × selector × factor}` is enumerated into a
//! deterministic *cell* list. Cells are independent, so they fan out
//! across a worker pool; every finished cell is appended to a JSONL
//! checkpoint ([`crate::checkpoint`]), and re-launching the same campaign
//! against the same output directory resumes exactly — completed cells
//! are read back instead of recomputed, and the final report is
//! **byte-identical** to an uninterrupted run. That works because cell
//! records contain only deterministic quantities: solve effort is counted
//! in branch & bound nodes and simplex iterations, never wall-clock time.

use crate::checkpoint::{self, CheckpointLog};
use crate::pool;
use crate::report;
use dynp_core::{Decider, FixedPolicy, SelfTuning};
use dynp_milp::{solve_snapshot, BranchLimits, MipStatus, SolveConfig};
use dynp_obs::JsonValue;
use dynp_sched::{Metric, Policy};
use dynp_sim::{simulate, SimConfig, SnapshotFilter, TunedSnapshot};
use dynp_trace::filter::overestimate;
use dynp_trace::{shards, Job, TraceShard, WEEK_SECONDS};
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Duration;

/// Which scheduler drives a campaign cell.
///
/// The spec (not the live selector) is what a campaign stores: it has a
/// stable [`label`](SelectorSpec::label) that identifies the cell in
/// checkpoints and reports, and it builds a fresh selector per cell so
/// cells never share tuning state.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum SelectorSpec {
    /// A fixed basic policy for the whole replay.
    Fixed(Policy),
    /// The self-tuning dynP scheduler.
    DynP {
        /// Tuning metric (the paper uses SLDwA).
        metric: Metric,
        /// Switch decision mechanism.
        decider: Decider,
    },
}

impl SelectorSpec {
    /// The paper's §4 comparison set: the three basic policies plus dynP
    /// with the simple decider.
    pub fn paper_set() -> Vec<SelectorSpec> {
        vec![
            SelectorSpec::Fixed(Policy::Fcfs),
            SelectorSpec::Fixed(Policy::Sjf),
            SelectorSpec::Fixed(Policy::Ljf),
            SelectorSpec::dynp(),
        ]
    }

    /// dynP with the paper's defaults: SLDwA metric, simple decider.
    pub fn dynp() -> SelectorSpec {
        SelectorSpec::DynP {
            metric: Metric::SldwA,
            decider: Decider::Simple,
        }
    }

    /// Stable display/checkpoint label. Unlike the live selector's label,
    /// this encodes the decider too, so two dynP variants never collide
    /// in a checkpoint.
    pub fn label(&self) -> String {
        match self {
            SelectorSpec::Fixed(p) => p.name().to_string(),
            SelectorSpec::DynP { metric, decider } => {
                format!("dynP({},{})", metric.name(), decider.name())
            }
        }
    }

    /// Parses a command-line selector name: `fcfs`, `sjf`, `ljf`, `dynp`
    /// (simple decider), `dynp-adv` (advanced), `dynp-sticky` (5 %
    /// margin).
    pub fn parse(s: &str) -> Result<SelectorSpec, CampaignError> {
        match s.trim().to_ascii_lowercase().as_str() {
            "fcfs" => Ok(SelectorSpec::Fixed(Policy::Fcfs)),
            "sjf" => Ok(SelectorSpec::Fixed(Policy::Sjf)),
            "ljf" => Ok(SelectorSpec::Fixed(Policy::Ljf)),
            "dynp" | "dynp-simple" => Ok(SelectorSpec::dynp()),
            "dynp-adv" | "dynp-advanced" => Ok(SelectorSpec::DynP {
                metric: Metric::SldwA,
                decider: Decider::Advanced,
            }),
            "dynp-sticky" => Ok(SelectorSpec::DynP {
                metric: Metric::SldwA,
                decider: Decider::Sticky { margin: 0.05 },
            }),
            other => Err(CampaignError::InvalidConfig(format!(
                "unknown selector {other:?} (expected fcfs, sjf, ljf, dynp, dynp-adv or dynp-sticky)"
            ))),
        }
    }
}

/// Exact-comparison side of a campaign: which snapshots to solve and
/// under what budget.
///
/// `#[non_exhaustive]`: build with [`ExactConfig::new`] + `with_*`.
#[derive(Clone, Debug)]
#[non_exhaustive]
pub struct ExactConfig {
    /// Comparison metric (the paper: SLDwA).
    pub metric: Metric,
    /// Keep snapshots with at least this many waiting jobs.
    pub min_jobs: usize,
    /// Keep snapshots with at most this many waiting jobs.
    pub max_jobs: usize,
    /// Solve at most this many snapshots per cell (spread-sampled over
    /// the replay).
    pub max_snapshots: usize,
    /// Branch & bound node budget per solve — the deterministic stand-in
    /// for the paper's "CPLEX was interrupted" regime. A solve that
    /// exhausts it still yields its incumbent (or an explicit
    /// no-incumbent outcome), never an error.
    pub node_budget: usize,
    /// Simplex iteration budget per LP.
    pub lp_iteration_budget: usize,
    /// Optional wall-clock limit. **Breaks resume determinism** (a
    /// resumed cell may have been cut at a different point than a fresh
    /// one), so it defaults to `None`; prefer `node_budget`.
    pub time_limit: Option<Duration>,
    /// Fixed slot width override (ablations); `None` = Eq. 6 scaling.
    pub scale_override: Option<u64>,
    /// Eq. 6 memory budget in bytes; `None` = the paper's 8 GB / 4.
    /// Smaller budgets coarsen the time grid, which bounds not just the
    /// matrix memory but the simplex cost per iteration — the knob to
    /// turn when a trace's long-running jobs make snapshots expensive.
    pub memory_budget_bytes: Option<u64>,
}

impl Default for ExactConfig {
    fn default() -> Self {
        ExactConfig::new()
    }
}

impl ExactConfig {
    /// Paper-style defaults with a small deterministic budget: SLDwA,
    /// snapshots of 3–12 waiting jobs, 2 snapshots per cell, 3000 nodes.
    pub fn new() -> ExactConfig {
        ExactConfig {
            metric: Metric::SldwA,
            min_jobs: 3,
            max_jobs: 12,
            max_snapshots: 2,
            node_budget: 3_000,
            lp_iteration_budget: 200_000,
            time_limit: None,
            scale_override: None,
            memory_budget_bytes: None,
        }
    }

    /// Snapshot size window `[min_jobs, max_jobs]`.
    pub fn with_job_range(mut self, min_jobs: usize, max_jobs: usize) -> ExactConfig {
        self.min_jobs = min_jobs;
        self.max_jobs = max_jobs;
        self
    }

    /// Snapshots solved per cell.
    pub fn with_max_snapshots(mut self, max_snapshots: usize) -> ExactConfig {
        self.max_snapshots = max_snapshots;
        self
    }

    /// Branch & bound node budget per solve.
    pub fn with_node_budget(mut self, node_budget: usize) -> ExactConfig {
        self.node_budget = node_budget;
        self
    }

    /// Simplex iteration budget per LP relaxation. Caps degenerate LPs:
    /// a stalled relaxation counts as "CPLEX still running", it does not
    /// stall the sweep.
    pub fn with_lp_iteration_budget(mut self, lp_iteration_budget: usize) -> ExactConfig {
        self.lp_iteration_budget = lp_iteration_budget;
        self
    }

    /// Comparison metric.
    pub fn with_metric(mut self, metric: Metric) -> ExactConfig {
        self.metric = metric;
        self
    }

    /// Fixed slot width (overrides Eq. 6).
    pub fn with_scale_override(mut self, scale: u64) -> ExactConfig {
        self.scale_override = Some(scale);
        self
    }

    /// Eq. 6 memory budget in bytes (the paper: 2 GiB). Coarsens the
    /// grid when smaller, bounding per-iteration simplex cost.
    pub fn with_memory_budget_bytes(mut self, bytes: u64) -> ExactConfig {
        self.memory_budget_bytes = Some(bytes);
        self
    }

    fn canonical(&self) -> JsonValue {
        JsonValue::object()
            .with("metric", self.metric.name())
            .with("min_jobs", self.min_jobs)
            .with("max_jobs", self.max_jobs)
            .with("max_snapshots", self.max_snapshots)
            .with("node_budget", self.node_budget)
            .with("lp_iteration_budget", self.lp_iteration_budget)
            .with(
                "time_limit_ms",
                match self.time_limit {
                    Some(d) => JsonValue::from(d.as_millis() as u64),
                    None => JsonValue::Null,
                },
            )
            .with(
                "scale_override",
                match self.scale_override {
                    Some(s) => JsonValue::from(s),
                    None => JsonValue::Null,
                },
            )
            .with(
                "memory_budget_bytes",
                match self.memory_budget_bytes {
                    Some(b) => JsonValue::from(b),
                    None => JsonValue::Null,
                },
            )
    }
}

/// A full campaign description.
///
/// `#[non_exhaustive]`: build with [`CampaignConfig::new`] + `with_*`.
/// Everything except `workers` and `output_dir` enters the campaign
/// fingerprint, so a checkpoint taken with 1 worker resumes fine under 8.
#[derive(Clone, Debug)]
#[non_exhaustive]
pub struct CampaignConfig {
    /// Campaign name: file stem of the checkpoint and the reports.
    pub name: String,
    /// Machine size in nodes (CTC: 430).
    pub machine_size: u32,
    /// Shard window length in seconds ([`WEEK_SECONDS`] = the paper's
    /// weekly protocol).
    pub shard_seconds: u64,
    /// Selectors swept per shard.
    pub selectors: Vec<SelectorSpec>,
    /// Runtime over-estimation factors swept per shard (1.0 = exact
    /// estimates).
    pub factors: Vec<f64>,
    /// Worker threads for the cell fan-out.
    pub workers: usize,
    /// Exact ILP comparison; `None` replays only.
    pub exact: Option<ExactConfig>,
    /// Where the checkpoint and reports live.
    pub output_dir: PathBuf,
}

impl CampaignConfig {
    /// A weekly-shard campaign over the paper's selector set with exact
    /// estimates, one worker, and exact comparison at default budgets.
    pub fn new(name: &str, machine_size: u32) -> CampaignConfig {
        CampaignConfig {
            name: name.to_string(),
            machine_size,
            shard_seconds: WEEK_SECONDS,
            selectors: SelectorSpec::paper_set(),
            factors: vec![1.0],
            workers: 1,
            exact: Some(ExactConfig::new()),
            output_dir: PathBuf::from("results"),
        }
    }

    /// Shard window length in seconds.
    pub fn with_shard_seconds(mut self, shard_seconds: u64) -> CampaignConfig {
        self.shard_seconds = shard_seconds;
        self
    }

    /// Replaces the selector sweep.
    pub fn with_selectors(mut self, selectors: Vec<SelectorSpec>) -> CampaignConfig {
        self.selectors = selectors;
        self
    }

    /// Replaces the over-estimation factor sweep.
    pub fn with_factors(mut self, factors: Vec<f64>) -> CampaignConfig {
        self.factors = factors;
        self
    }

    /// Worker threads (not part of the fingerprint).
    pub fn with_workers(mut self, workers: usize) -> CampaignConfig {
        self.workers = workers;
        self
    }

    /// Sets (or, with `None`, disables) the exact comparison.
    pub fn with_exact(mut self, exact: Option<ExactConfig>) -> CampaignConfig {
        self.exact = exact;
        self
    }

    /// Output directory for checkpoint + reports.
    pub fn with_output_dir(mut self, dir: impl Into<PathBuf>) -> CampaignConfig {
        self.output_dir = dir.into();
        self
    }

    fn validate(&self, jobs: &[Job]) -> Result<(), CampaignError> {
        if jobs.is_empty() {
            return Err(CampaignError::EmptyTrace);
        }
        if self.selectors.is_empty() {
            return Err(CampaignError::InvalidConfig(
                "campaign has no selectors".into(),
            ));
        }
        if self.factors.is_empty() {
            return Err(CampaignError::InvalidConfig(
                "campaign has no over-estimation factors".into(),
            ));
        }
        if let Some(f) = self.factors.iter().find(|f| !f.is_finite() || **f < 1.0) {
            return Err(CampaignError::InvalidConfig(format!(
                "over-estimation factor {f} < 1.0 (estimates must cover the actual runtime)"
            )));
        }
        if self.machine_size == 0 {
            return Err(CampaignError::InvalidConfig("machine size is 0".into()));
        }
        if self.shard_seconds == 0 {
            return Err(CampaignError::InvalidConfig("shard length is 0".into()));
        }
        if self.name.is_empty() || self.name.contains(['/', '\\']) {
            return Err(CampaignError::InvalidConfig(format!(
                "campaign name {:?} is not a valid file stem",
                self.name
            )));
        }
        Ok(())
    }

    /// Canonical description of everything that determines cell results.
    /// `workers` and `output_dir` are deliberately absent.
    fn fingerprint(&self, jobs: &[Job]) -> String {
        let mut trace = String::new();
        for j in jobs {
            use std::fmt::Write as _;
            let _ = write!(
                trace,
                "{},{},{},{};",
                j.submit, j.width, j.estimated_duration, j.actual_duration
            );
        }
        let canonical = JsonValue::object()
            .with("name", self.name.as_str())
            .with("machine_size", self.machine_size)
            .with("shard_seconds", self.shard_seconds)
            .with(
                "selectors",
                JsonValue::Array(
                    self.selectors
                        .iter()
                        .map(|s| JsonValue::from(s.label()))
                        .collect(),
                ),
            )
            .with(
                "factors",
                JsonValue::Array(self.factors.iter().map(|&f| JsonValue::from(f)).collect()),
            )
            .with(
                "exact",
                match &self.exact {
                    Some(e) => e.canonical(),
                    None => JsonValue::Null,
                },
            )
            .with(
                "trace",
                checkpoint::fingerprint(&trace),
            )
            .to_json();
        checkpoint::fingerprint(&canonical)
    }
}

/// Why a campaign could not run.
#[derive(Debug)]
pub enum CampaignError {
    /// The input trace has no jobs, so there are no shards and no cells.
    EmptyTrace,
    /// A configuration field is unusable; the message names it.
    InvalidConfig(String),
    /// Creating the output directory, checkpoint, or reports failed.
    Io(std::io::Error),
}

impl std::fmt::Display for CampaignError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CampaignError::EmptyTrace => {
                write!(f, "campaign trace is empty: nothing to shard")
            }
            CampaignError::InvalidConfig(msg) => write!(f, "invalid campaign config: {msg}"),
            CampaignError::Io(e) => write!(f, "campaign i/o failed: {e}"),
        }
    }
}

impl std::error::Error for CampaignError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CampaignError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for CampaignError {
    fn from(e: std::io::Error) -> CampaignError {
        CampaignError::Io(e)
    }
}

/// What [`run_campaign`] hands back.
#[derive(Debug)]
pub struct CampaignOutcome {
    /// The campaign fingerprint stamped on every checkpoint record.
    pub fingerprint: String,
    /// Cells in the cross-product `shards × selectors × factors`.
    pub cells_total: usize,
    /// Cells read back from the checkpoint instead of computed.
    pub cells_resumed: usize,
    /// Cells computed (and appended to the checkpoint) in this run.
    pub cells_computed: usize,
    /// Checkpoint lines that were truncated, corrupt, or foreign.
    pub checkpoint_rejected: usize,
    /// The aggregated report (same value serialized to the JSON file).
    pub report: JsonValue,
    /// Path of the JSONL checkpoint.
    pub checkpoint_path: PathBuf,
    /// Path of the strict-JSON report.
    pub report_json_path: PathBuf,
    /// Path of the human-readable report.
    pub report_text_path: PathBuf,
    /// Path of the OpenMetrics snapshot (`None` when no global recorder
    /// was installed, so there was nothing to expose).
    pub metrics_path: Option<PathBuf>,
    /// Path of the collapsed-stack profile (`None` unless the global
    /// recorder had span profiling enabled and captured spans).
    pub folded_path: Option<PathBuf>,
}

/// One unit of campaign work, fully determined by config + trace.
struct Cell<'a> {
    shard: &'a TraceShard,
    spec: SelectorSpec,
    factor: f64,
}

/// Runs (or resumes) a campaign over `jobs`.
///
/// The cell cross-product fans out over [`CampaignConfig::workers`]
/// threads; each finished cell is checkpointed before the next is picked
/// up. Valid records already present in the checkpoint are trusted and
/// skipped, which makes a re-launch after a crash continue where it died
/// and produce a byte-identical report.
pub fn run_campaign(jobs: &[Job], config: &CampaignConfig) -> Result<CampaignOutcome, CampaignError> {
    let span = dynp_obs::Span::enter("exp.campaign");
    // Panic-safe: even a campaign that dies mid-cell leaves a flushed
    // event log behind, matching what the checkpoint recorded.
    let _flush = dynp_obs::flush_on_drop();
    config.validate(jobs)?;
    let shard_list: Vec<TraceShard> = shards(jobs, config.shard_seconds).collect();
    if shard_list.is_empty() {
        // Unreachable with a non-empty trace, but keep the invariant local.
        return Err(CampaignError::EmptyTrace);
    }
    let fingerprint = config.fingerprint(jobs);

    // Deterministic cell enumeration: shard-major, then selector, then
    // factor. The index is the checkpoint key.
    let mut cells = Vec::new();
    for shard in &shard_list {
        for spec in &config.selectors {
            for &factor in &config.factors {
                cells.push(Cell {
                    shard,
                    spec: *spec,
                    factor,
                });
            }
        }
    }

    std::fs::create_dir_all(&config.output_dir)?;
    let checkpoint_path = config.output_dir.join(format!("{}.checkpoint.jsonl", config.name));
    let loaded = checkpoint::load(&checkpoint_path, &fingerprint)?;
    let log = CheckpointLog::append_to(&checkpoint_path)?;

    if let Some(r) = dynp_obs::recorder() {
        r.event("exp.campaign_start")
            .kv("name", config.name.as_str())
            .kv("fingerprint", fingerprint.as_str())
            .kv("shards", shard_list.len())
            .kv("cells", cells.len())
            .kv("resumable", loaded.cells.len())
            .kv("workers", config.workers)
            .emit();
    }

    // Progress gauges: the live source for `dynp-watch`'s `/progress`
    // endpoint and for the stderr progress line below. Published before
    // the pool starts so a poll during the very first cell already sees
    // the totals.
    let progress = dynp_obs::recorder().map(|r| {
        r.gauge("exp.cells_total").set(cells.len() as i64);
        r.gauge("exp.workers").set(config.workers.max(1) as i64);
        r.gauge("exp.cells_done").set(0);
        r.gauge("exp.cells_inflight").set(0);
        (r.gauge("exp.cells_done"), r.gauge("exp.cells_inflight"))
    });
    let campaign_started = std::time::Instant::now();
    let campaign_id = dynp_obs::campaign_hash(&fingerprint);
    let computed = AtomicUsize::new(0);
    let resumed = AtomicUsize::new(0);
    let cells_total = cells.len();
    let cell_results: Vec<JsonValue> = pool::run_indexed(config.workers, &cells, |i, cell| {
        if let Some(cached) = loaded.cells.get(&i) {
            resumed.fetch_add(1, Ordering::Relaxed);
            if let Some((done, _)) = &progress {
                done.add(1);
            }
            return cached.clone();
        }
        if let Some((_, inflight)) = &progress {
            inflight.add(1);
        }
        // Everything a cell does — replay, exact solves, the checkpoint
        // append, the completion event — runs under the cell's trace
        // context, so all its events correlate. A cell runs entirely on
        // one worker thread, which is what keeps its span ids
        // deterministic regardless of the worker count.
        let cell_ctx = dynp_obs::enter_cell(campaign_id, i as u64);
        let data = run_cell(cell, config);
        log.append(&fingerprint, i, &data);
        let computed_now = computed.fetch_add(1, Ordering::Relaxed) + 1;
        if let Some(r) = dynp_obs::recorder() {
            r.event("exp.cell_done")
                .kv("shard", cell.shard.index)
                .kv("selector", cell.spec.label().as_str())
                .kv("factor", cell.factor)
                .emit();
        }
        drop(cell_ctx);
        let done_now = match &progress {
            Some((done, inflight)) => {
                inflight.add(-1);
                done.add(1) as usize
            }
            None => computed_now + resumed.load(Ordering::Relaxed),
        };
        // One progress line per checkpoint flush. Resumed cells are
        // read back in microseconds, so the ETA extrapolates from the
        // computed-cell rate only.
        let remaining = cells_total.saturating_sub(done_now);
        let elapsed = campaign_started.elapsed().as_secs_f64();
        let pct = 100.0 * done_now as f64 / cells_total.max(1) as f64;
        let eta = remaining as f64 * elapsed / computed_now as f64;
        eprintln!(
            "campaign {}: {done_now}/{cells_total} cells ({pct:.0}%), ETA {eta:.0}s",
            config.name
        );
        // Flush per finished cell: a killed campaign keeps event logs
        // that cover exactly what the checkpoint covers.
        if let Some(r) = dynp_obs::recorder() {
            r.flush();
        }
        data
    });

    let report = report::build(config, shard_list.len(), &cell_results);
    let report_json_path = config.output_dir.join(format!("{}.report.json", config.name));
    let report_text_path = config.output_dir.join(format!("{}.report.txt", config.name));
    std::fs::write(&report_json_path, report.json.to_json())?;
    std::fs::write(&report_text_path, &report.text)?;
    // OpenMetrics snapshot of whatever recorder observed this run, next
    // to the reports (scrape-ready; also CI-validated).
    let metrics_path = match dynp_obs::recorder() {
        Some(r) => {
            let path = config.output_dir.join(format!("{}.metrics.txt", config.name));
            std::fs::write(&path, dynp_obs::expo::render(r))?;
            Some(path)
        }
        None => None,
    };
    // Collapsed-stack profile when the span-profiling hook was on:
    // `inferno`/`flamegraph.pl` render it directly.
    let folded_path = match dynp_obs::recorder() {
        Some(r) if r.profiling_enabled() => {
            let records = r.profile_records();
            if records.is_empty() {
                None
            } else {
                let path = config.output_dir.join(format!("{}.folded", config.name));
                let profile = dynp_obs::profile_spans(&records);
                std::fs::write(&path, dynp_obs::render_folded(&profile))?;
                Some(path)
            }
        }
        _ => None,
    };
    drop(span);

    Ok(CampaignOutcome {
        fingerprint,
        cells_total: cells.len(),
        cells_resumed: resumed.into_inner(),
        cells_computed: computed.into_inner(),
        checkpoint_rejected: loaded.rejected,
        report: report.json,
        checkpoint_path,
        report_json_path,
        report_text_path,
        metrics_path,
        folded_path,
    })
}

/// Evenly spread `count` picks over `snapshots` (first + last included),
/// mirroring the bench harness's sampling but local so `exp` stays
/// independent of the bench crate.
fn spread_sample(snapshots: &[TunedSnapshot], count: usize) -> Vec<TunedSnapshot> {
    if snapshots.len() <= count {
        return snapshots.to_vec();
    }
    if count == 0 {
        return Vec::new();
    }
    if count == 1 {
        return vec![snapshots[0].clone()];
    }
    (0..count)
        .map(|i| snapshots[i * (snapshots.len() - 1) / (count - 1)].clone())
        .collect()
}

/// Replays one cell and packs its deterministic results.
fn run_cell(cell: &Cell<'_>, config: &CampaignConfig) -> JsonValue {
    let jobs = if cell.factor > 1.0 {
        overestimate(&cell.shard.jobs, cell.factor)
    } else {
        cell.shard.jobs.clone()
    };
    let mut sim_config = SimConfig::new(config.machine_size);
    if let Some(exact) = &config.exact {
        sim_config = sim_config.with_snapshots(SnapshotFilter {
            min_jobs: exact.min_jobs,
            max_jobs: exact.max_jobs,
            stride: 1,
            max_count: usize::MAX,
        });
    }

    // `simulate` is generic over the selector, so dispatch per variant and
    // collapse to the common record set + dynP stats. The replay stage is
    // one traced child span of the cell.
    let replay_span = dynp_obs::span("exp.replay");
    let (summary, completed, skipped, snapshots, steps, switches) = match cell.spec {
        SelectorSpec::Fixed(policy) => {
            let run = simulate(&jobs, FixedPolicy(policy), sim_config);
            (run.summary, run.records.len(), run.skipped.len(), run.snapshots, 0, 0)
        }
        SelectorSpec::DynP { metric, decider } => {
            let selector = SelfTuning::new(Policy::PAPER_SET.to_vec(), metric, decider);
            let run = simulate(&jobs, selector, sim_config);
            let stats = run.selector.stats();
            (
                run.summary,
                run.records.len(),
                run.skipped.len(),
                run.snapshots,
                stats.steps(),
                stats.switches(),
            )
        }
    };
    drop(replay_span);

    let mut data = JsonValue::object()
        .with("shard", cell.shard.index)
        .with("from", cell.shard.from)
        .with("to", cell.shard.to)
        .with("selector", cell.spec.label())
        .with("factor", cell.factor)
        .with("jobs", jobs.len())
        .with("completed", completed)
        .with("skipped", skipped)
        .with("sldwa", summary.sldwa)
        .with("avg_response", summary.avg_response)
        .with("avg_wait", summary.avg_wait)
        .with("utilization", summary.utilization)
        .with("steps", steps)
        .with("switches", switches);

    if let Some(exact) = &config.exact {
        let _exact_span = dynp_obs::span("exp.exact");
        data = data.with("exact", run_cell_exact(&snapshots, exact));
    }
    data
}

/// Solves the cell's snapshot sample and folds the outcomes into sums
/// (means are taken at report time, so resumed and fresh aggregation are
/// bit-identical).
fn run_cell_exact(snapshots: &[TunedSnapshot], exact: &ExactConfig) -> JsonValue {
    let sample = spread_sample(snapshots, exact.max_snapshots);
    let mut solve_config = SolveConfig {
        metric: exact.metric,
        scale_override: exact.scale_override,
        limits: BranchLimits {
            max_nodes: exact.node_budget,
            max_lp_iterations: exact.lp_iteration_budget,
            time_limit: exact.time_limit,
        },
        ..SolveConfig::default()
    };
    if let Some(bytes) = exact.memory_budget_bytes {
        solve_config.memory_bytes = bytes as f64;
    }
    let (mut compared, mut optimal, mut budget_hit, mut no_incumbent) = (0u64, 0u64, 0u64, 0u64);
    let (mut quality_sum, mut loss_sum) = (0.0f64, 0.0f64);
    let (mut nodes, mut lp_iterations) = (0u64, 0u64);
    for snapshot in &sample {
        // Snapshots from the filter always have >= min_jobs >= 1 waiting
        // jobs, so input errors cannot occur here; skip defensively
        // rather than poison the cell.
        let Ok(run) = solve_snapshot(&snapshot.problem, &solve_config) else {
            continue;
        };
        nodes += run.nodes as u64;
        lp_iterations += run.lp_iterations as u64;
        match run.comparison() {
            Ok(cmp) => {
                compared += 1;
                quality_sum += cmp.quality;
                loss_sum += cmp.perf_loss_percent;
                if run.status == MipStatus::Optimal {
                    optimal += 1;
                } else {
                    // The "CPLEX still running" regime: budget exhausted,
                    // incumbent kept.
                    budget_hit += 1;
                }
            }
            Err(_) => no_incumbent += 1,
        }
    }
    JsonValue::object()
        .with("snapshots_seen", snapshots.len())
        .with("sampled", sample.len())
        .with("compared", compared)
        .with("optimal", optimal)
        .with("budget_hit", budget_hit)
        .with("no_incumbent", no_incumbent)
        .with("quality_sum", quality_sum)
        .with("loss_sum", loss_sum)
        .with("nodes", nodes)
        .with("lp_iterations", lp_iterations)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dynp_trace::{CtcModel, WorkloadModel};
    use std::path::Path;

    fn tiny_trace(n: usize) -> Vec<Job> {
        CtcModel {
            nodes: 64,
            ..CtcModel::default()
        }
        .generate(n, 11)
        .jobs
    }

    fn unique_dir(tag: &str) -> PathBuf {
        static NEXT: AtomicUsize = AtomicUsize::new(0);
        std::env::temp_dir().join(format!(
            "dynp_exp_{}_{}_{}",
            tag,
            std::process::id(),
            NEXT.fetch_add(1, Ordering::Relaxed)
        ))
    }

    fn tiny_config(name: &str, dir: &Path) -> CampaignConfig {
        CampaignConfig::new(name, 64)
            .with_shard_seconds(6 * 3_600)
            .with_selectors(vec![
                SelectorSpec::Fixed(Policy::Fcfs),
                SelectorSpec::dynp(),
            ])
            .with_exact(Some(
                ExactConfig::new()
                    .with_job_range(2, 8)
                    .with_max_snapshots(1)
                    .with_node_budget(200),
            ))
            .with_output_dir(dir)
    }

    #[test]
    fn selector_labels_are_unique_and_parseable() {
        let specs = [
            "fcfs", "sjf", "ljf", "dynp", "dynp-adv", "dynp-sticky",
        ]
        .map(|s| SelectorSpec::parse(s).unwrap());
        let labels: Vec<String> = specs.iter().map(SelectorSpec::label).collect();
        let mut dedup = labels.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), labels.len(), "labels collide: {labels:?}");
        assert!(SelectorSpec::parse("cplex").is_err());
    }

    #[test]
    fn empty_trace_is_a_typed_error_not_a_panic() {
        let dir = unique_dir("empty");
        let err = run_campaign(&[], &tiny_config("empty", &dir)).unwrap_err();
        assert!(matches!(err, CampaignError::EmptyTrace));
        assert!(err.to_string().contains("empty"));
    }

    #[test]
    fn invalid_factors_are_rejected() {
        let dir = unique_dir("factors");
        let config = tiny_config("factors", &dir).with_factors(vec![0.5]);
        let err = run_campaign(&tiny_trace(10), &config).unwrap_err();
        assert!(matches!(err, CampaignError::InvalidConfig(_)));
    }

    #[test]
    fn campaign_covers_the_cell_cross_product() {
        let dir = unique_dir("cover");
        let config = tiny_config("cover", &dir).with_factors(vec![1.0, 3.0]);
        let jobs = tiny_trace(60);
        let outcome = run_campaign(&jobs, &config).unwrap();
        let n_shards = shards(&jobs, config.shard_seconds).count();
        assert_eq!(outcome.cells_total, n_shards * 2 * 2);
        assert_eq!(outcome.cells_computed, outcome.cells_total);
        assert_eq!(outcome.cells_resumed, 0);
        assert!(outcome.report_json_path.exists());
        assert!(outcome.report_text_path.exists());
        // The report is strict JSON.
        let text = std::fs::read_to_string(&outcome.report_json_path).unwrap();
        dynp_obs::validate_json(&text).unwrap();
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn second_launch_resumes_every_cell() {
        let dir = unique_dir("resume");
        let config = tiny_config("resume", &dir);
        let jobs = tiny_trace(40);
        let first = run_campaign(&jobs, &config).unwrap();
        assert!(first.cells_computed > 0);
        let report_a = std::fs::read(&first.report_json_path).unwrap();
        let second = run_campaign(&jobs, &config).unwrap();
        assert_eq!(second.cells_resumed, first.cells_total);
        assert_eq!(second.cells_computed, 0);
        let report_b = std::fs::read(&second.report_json_path).unwrap();
        assert_eq!(report_a, report_b, "resumed report must be byte-identical");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn changing_the_config_invalidates_the_checkpoint() {
        let dir = unique_dir("invalidate");
        let jobs = tiny_trace(40);
        let config = tiny_config("inv", &dir);
        let first = run_campaign(&jobs, &config).unwrap();
        // Same name + dir, different node budget: fingerprint changes, so
        // nothing resumes.
        let changed = config.clone().with_exact(Some(
            ExactConfig::new()
                .with_job_range(2, 8)
                .with_max_snapshots(1)
                .with_node_budget(350),
        ));
        let second = run_campaign(&jobs, &changed).unwrap();
        assert_eq!(second.cells_resumed, 0);
        assert_eq!(second.cells_computed, first.cells_total);
        // The stale lines are foreign, not fatal.
        assert_eq!(second.checkpoint_rejected, first.cells_total);
        std::fs::remove_dir_all(&dir).unwrap();

        // Every solver budget enters the fingerprint, including the Eq. 6
        // memory budget (it changes the time grid, hence every result).
        let base = tiny_config("inv", Path::new("x"));
        let tighter = base
            .clone()
            .with_exact(Some(ExactConfig::new().with_memory_budget_bytes(2 << 20)));
        assert_ne!(base.fingerprint(&jobs), tighter.fingerprint(&jobs));
    }

    #[test]
    fn workers_do_not_change_the_report() {
        let dir1 = unique_dir("w1");
        let dir4 = unique_dir("w4");
        let jobs = tiny_trace(50);
        let serial = run_campaign(&jobs, &tiny_config("w", &dir1)).unwrap();
        let parallel =
            run_campaign(&jobs, &tiny_config("w", &dir4).with_workers(4)).unwrap();
        assert_eq!(
            serial.report.to_json(),
            parallel.report.to_json(),
            "worker count must not leak into results"
        );
        std::fs::remove_dir_all(&dir1).unwrap();
        std::fs::remove_dir_all(&dir4).unwrap();
    }

    #[test]
    fn spread_sample_keeps_ends() {
        let dir = unique_dir("spread");
        drop(dir);
        let jobs = tiny_trace(80);
        let run = simulate(
            &jobs,
            FixedPolicy(Policy::Fcfs),
            SimConfig::new(64).with_snapshots(SnapshotFilter::default()),
        );
        if run.snapshots.len() >= 3 {
            let sample = spread_sample(&run.snapshots, 2);
            assert_eq!(sample.len(), 2);
            assert_eq!(sample[0].step, run.snapshots[0].step);
            assert_eq!(
                sample[1].step,
                run.snapshots.last().unwrap().step
            );
        }
    }
}
