//! Campaign configuration and the parallel, resumable cell runner.
//!
//! A *campaign* is the paper's §4 evaluation protocol as a first-class
//! value: slice a trace into weekly shards, replay every shard under every
//! selector and over-estimation factor, optionally compare a sample of
//! quasi-off-line snapshots against the exact ILP under a fixed node
//! budget, and aggregate everything into Table-1-style comparison tables.
//!
//! The cross-product `{shard × selector × factor}` is enumerated into a
//! deterministic *cell* list. Cells are independent, so they fan out
//! across a worker pool; every finished cell is appended to a JSONL
//! checkpoint ([`crate::checkpoint`]), and re-launching the same campaign
//! against the same output directory resumes exactly — completed cells
//! are read back instead of recomputed, and the final report is
//! **byte-identical** to an uninterrupted run. That works because cell
//! records contain only deterministic quantities: solve effort is counted
//! in branch & bound nodes and simplex iterations, never wall-clock time.

use crate::checkpoint::{self, CheckpointLog};
use crate::pool;
use crate::report;
use dynp_core::{Decider, FixedPolicy, SelfTuning};
use dynp_milp::{solve_snapshot, BranchLimits, MipStatus, SolveConfig};
use dynp_obs::JsonValue;
use dynp_sched::{Metric, Policy};
use dynp_sim::{simulate, SimConfig, SnapshotFilter, TunedSnapshot};
use dynp_trace::filter::overestimate;
use dynp_trace::{shards, Job, TraceShard, WEEK_SECONDS};
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Duration;

/// Which scheduler drives a campaign cell.
///
/// The spec (not the live selector) is what a campaign stores: it has a
/// stable [`label`](SelectorSpec::label) that identifies the cell in
/// checkpoints and reports, and it builds a fresh selector per cell so
/// cells never share tuning state.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum SelectorSpec {
    /// A fixed basic policy for the whole replay.
    Fixed(Policy),
    /// The self-tuning dynP scheduler.
    DynP {
        /// Tuning metric (the paper uses SLDwA).
        metric: Metric,
        /// Switch decision mechanism.
        decider: Decider,
    },
}

impl SelectorSpec {
    /// The paper's §4 comparison set: the three basic policies plus dynP
    /// with the simple decider.
    pub fn paper_set() -> Vec<SelectorSpec> {
        vec![
            SelectorSpec::Fixed(Policy::Fcfs),
            SelectorSpec::Fixed(Policy::Sjf),
            SelectorSpec::Fixed(Policy::Ljf),
            SelectorSpec::dynp(),
        ]
    }

    /// dynP with the paper's defaults: SLDwA metric, simple decider.
    pub fn dynp() -> SelectorSpec {
        SelectorSpec::DynP {
            metric: Metric::SldwA,
            decider: Decider::Simple,
        }
    }

    /// Stable display/checkpoint label. Unlike the live selector's label,
    /// this encodes the decider too, so two dynP variants never collide
    /// in a checkpoint.
    pub fn label(&self) -> String {
        match self {
            SelectorSpec::Fixed(p) => p.name().to_string(),
            SelectorSpec::DynP { metric, decider } => {
                format!("dynP({},{})", metric.name(), decider.name())
            }
        }
    }

    /// Parses a command-line selector name: `fcfs`, `sjf`, `ljf`, `dynp`
    /// (simple decider), `dynp-adv` (advanced), `dynp-sticky` (5 %
    /// margin).
    pub fn parse(s: &str) -> Result<SelectorSpec, CampaignError> {
        match s.trim().to_ascii_lowercase().as_str() {
            "fcfs" => Ok(SelectorSpec::Fixed(Policy::Fcfs)),
            "sjf" => Ok(SelectorSpec::Fixed(Policy::Sjf)),
            "ljf" => Ok(SelectorSpec::Fixed(Policy::Ljf)),
            "dynp" | "dynp-simple" => Ok(SelectorSpec::dynp()),
            "dynp-adv" | "dynp-advanced" => Ok(SelectorSpec::DynP {
                metric: Metric::SldwA,
                decider: Decider::Advanced,
            }),
            "dynp-sticky" => Ok(SelectorSpec::DynP {
                metric: Metric::SldwA,
                decider: Decider::Sticky { margin: 0.05 },
            }),
            other => Err(CampaignError::InvalidConfig(format!(
                "unknown selector {other:?} (expected fcfs, sjf, ljf, dynp, dynp-adv or dynp-sticky)"
            ))),
        }
    }
}

/// How a deterministic fault injection manifests inside a cell.
///
/// Faults exist so the failure machinery is *testable*: a campaign can
/// be told to crash, stall, or lose checkpoint writes at chosen cells,
/// and the resulting degraded records, retries, events, and resume
/// behavior are exactly what a real fault would produce — minus the
/// nondeterminism of real faults.
#[derive(Clone, Debug, PartialEq)]
pub enum FaultKind {
    /// Panic inside the cell body. It is caught at the cell boundary and
    /// never unwinds past it; with retries exhausted the cell records
    /// `crashed` with the panic payload and source location.
    Panic,
    /// Sleep before the replay starts. Combined with
    /// [`CampaignConfig::cell_deadline`] this forces a timeout; the
    /// sleep polls the cell's cancel token, so it never outlives the
    /// deadline by more than a few milliseconds.
    Delay(Duration),
    /// Suppress the cell's checkpoint append through the same code path
    /// a real write error takes (`exp.checkpoint_write_failed` is
    /// emitted, the campaign continues): the cell is recomputed on
    /// every resume.
    CheckpointIo,
}

impl FaultKind {
    fn canonical(&self) -> JsonValue {
        match self {
            FaultKind::Panic => JsonValue::object().with("kind", "panic"),
            FaultKind::Delay(d) => JsonValue::object()
                .with("kind", "delay")
                .with("delay_ms", d.as_millis() as u64),
            FaultKind::CheckpointIo => JsonValue::object().with("kind", "checkpoint_io"),
        }
    }
}

/// One injection: `kind` applies to the first `attempts` attempts of
/// `cell`. `attempts: 1` with retries enabled models a transient fault
/// that a retry clears; `u32::MAX` a persistent one.
#[derive(Clone, Debug, PartialEq)]
pub struct FaultInjection {
    /// Index in the campaign's deterministic cell enumeration.
    pub cell: usize,
    /// What happens there.
    pub kind: FaultKind,
    /// How many leading attempts the fault applies to.
    pub attempts: u32,
}

/// A deterministic fault schedule for a campaign.
///
/// Part of the campaign fingerprint, so runs with different fault plans
/// never share checkpoints. An empty plan (the default) injects
/// nothing.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct FaultPlan {
    /// The injections; the first one matching `(cell, attempt)` wins.
    pub injections: Vec<FaultInjection>,
}

impl FaultPlan {
    /// The empty plan (what [`CampaignConfig::new`] starts with).
    pub fn none() -> FaultPlan {
        FaultPlan::default()
    }

    /// Whether the plan injects nothing.
    pub fn is_empty(&self) -> bool {
        self.injections.is_empty()
    }

    /// Adds an injection (builder style).
    pub fn inject(mut self, cell: usize, kind: FaultKind, attempts: u32) -> FaultPlan {
        self.injections.push(FaultInjection {
            cell,
            kind,
            attempts,
        });
        self
    }

    /// The fault active at `(cell, attempt)`, if any.
    fn at(&self, cell: usize, attempt: u32) -> Option<&FaultKind> {
        self.injections
            .iter()
            .find(|inj| inj.cell == cell && attempt <= inj.attempts)
            .map(|inj| &inj.kind)
    }

    fn canonical(&self) -> JsonValue {
        JsonValue::Array(
            self.injections
                .iter()
                .map(|inj| {
                    inj.kind
                        .canonical()
                        .with("cell", inj.cell)
                        .with("attempts", inj.attempts)
                })
                .collect(),
        )
    }
}

/// How a cell ended, as recorded in its checkpoint line and report row.
///
/// A degraded cell (anything but `Ok`) contributes no metrics to the
/// report aggregates; it appears in the failure census instead.
#[derive(Clone, Debug, PartialEq)]
pub enum CellStatus {
    /// The cell replayed (and solved) to completion.
    Ok,
    /// Every attempt panicked; the last payload and panic site are kept.
    Crashed {
        /// Rendered panic payload of the final attempt.
        payload: String,
        /// `file:line` of the panic site (the deterministic stand-in
        /// for a backtrace).
        location: String,
    },
    /// Every attempt overran [`CampaignConfig::cell_deadline`]; partial
    /// results were discarded.
    TimedOut,
}

impl CellStatus {
    /// The status string stored in checkpoint records and reports.
    pub fn name(&self) -> &'static str {
        match self {
            CellStatus::Ok => "ok",
            CellStatus::Crashed { .. } => "crashed",
            CellStatus::TimedOut => "timed_out",
        }
    }
}

/// Status string of a cell record; records written before the failure
/// model existed carry no `status` key and count as ok.
pub(crate) fn record_status(data: &JsonValue) -> &str {
    data.get("status")
        .and_then(JsonValue::as_str)
        .unwrap_or("ok")
}

/// Exact-comparison side of a campaign: which snapshots to solve and
/// under what budget.
///
/// `#[non_exhaustive]`: build with [`ExactConfig::new`] + `with_*`.
#[derive(Clone, Debug)]
#[non_exhaustive]
pub struct ExactConfig {
    /// Comparison metric (the paper: SLDwA).
    pub metric: Metric,
    /// Keep snapshots with at least this many waiting jobs.
    pub min_jobs: usize,
    /// Keep snapshots with at most this many waiting jobs.
    pub max_jobs: usize,
    /// Solve at most this many snapshots per cell (spread-sampled over
    /// the replay).
    pub max_snapshots: usize,
    /// Branch & bound node budget per solve — the deterministic stand-in
    /// for the paper's "CPLEX was interrupted" regime. A solve that
    /// exhausts it still yields its incumbent (or an explicit
    /// no-incumbent outcome), never an error.
    pub node_budget: usize,
    /// Simplex iteration budget per LP.
    pub lp_iteration_budget: usize,
    /// Optional wall-clock limit. **Breaks resume determinism** (a
    /// resumed cell may have been cut at a different point than a fresh
    /// one), so it defaults to `None`; prefer `node_budget`.
    pub time_limit: Option<Duration>,
    /// Fixed slot width override (ablations); `None` = Eq. 6 scaling.
    pub scale_override: Option<u64>,
    /// Eq. 6 memory budget in bytes; `None` = the paper's 8 GB / 4.
    /// Smaller budgets coarsen the time grid, which bounds not just the
    /// matrix memory but the simplex cost per iteration — the knob to
    /// turn when a trace's long-running jobs make snapshots expensive.
    pub memory_budget_bytes: Option<u64>,
}

impl Default for ExactConfig {
    fn default() -> Self {
        ExactConfig::new()
    }
}

impl ExactConfig {
    /// Paper-style defaults with a small deterministic budget: SLDwA,
    /// snapshots of 3–12 waiting jobs, 2 snapshots per cell, 3000 nodes.
    pub fn new() -> ExactConfig {
        ExactConfig {
            metric: Metric::SldwA,
            min_jobs: 3,
            max_jobs: 12,
            max_snapshots: 2,
            node_budget: 3_000,
            lp_iteration_budget: 200_000,
            time_limit: None,
            scale_override: None,
            memory_budget_bytes: None,
        }
    }

    /// Snapshot size window `[min_jobs, max_jobs]`.
    pub fn with_job_range(mut self, min_jobs: usize, max_jobs: usize) -> ExactConfig {
        self.min_jobs = min_jobs;
        self.max_jobs = max_jobs;
        self
    }

    /// Snapshots solved per cell.
    pub fn with_max_snapshots(mut self, max_snapshots: usize) -> ExactConfig {
        self.max_snapshots = max_snapshots;
        self
    }

    /// Branch & bound node budget per solve.
    pub fn with_node_budget(mut self, node_budget: usize) -> ExactConfig {
        self.node_budget = node_budget;
        self
    }

    /// Simplex iteration budget per LP relaxation. Caps degenerate LPs:
    /// a stalled relaxation counts as "CPLEX still running", it does not
    /// stall the sweep.
    pub fn with_lp_iteration_budget(mut self, lp_iteration_budget: usize) -> ExactConfig {
        self.lp_iteration_budget = lp_iteration_budget;
        self
    }

    /// Comparison metric.
    pub fn with_metric(mut self, metric: Metric) -> ExactConfig {
        self.metric = metric;
        self
    }

    /// Fixed slot width (overrides Eq. 6).
    pub fn with_scale_override(mut self, scale: u64) -> ExactConfig {
        self.scale_override = Some(scale);
        self
    }

    /// Eq. 6 memory budget in bytes (the paper: 2 GiB). Coarsens the
    /// grid when smaller, bounding per-iteration simplex cost.
    pub fn with_memory_budget_bytes(mut self, bytes: u64) -> ExactConfig {
        self.memory_budget_bytes = Some(bytes);
        self
    }

    fn canonical(&self) -> JsonValue {
        JsonValue::object()
            .with("metric", self.metric.name())
            .with("min_jobs", self.min_jobs)
            .with("max_jobs", self.max_jobs)
            .with("max_snapshots", self.max_snapshots)
            .with("node_budget", self.node_budget)
            .with("lp_iteration_budget", self.lp_iteration_budget)
            .with(
                "time_limit_ms",
                match self.time_limit {
                    Some(d) => JsonValue::from(d.as_millis() as u64),
                    None => JsonValue::Null,
                },
            )
            .with(
                "scale_override",
                match self.scale_override {
                    Some(s) => JsonValue::from(s),
                    None => JsonValue::Null,
                },
            )
            .with(
                "memory_budget_bytes",
                match self.memory_budget_bytes {
                    Some(b) => JsonValue::from(b),
                    None => JsonValue::Null,
                },
            )
    }
}

/// A full campaign description.
///
/// `#[non_exhaustive]`: build with [`CampaignConfig::new`] + `with_*`.
/// Everything except `workers` and `output_dir` enters the campaign
/// fingerprint, so a checkpoint taken with 1 worker resumes fine under 8.
#[derive(Clone, Debug)]
#[non_exhaustive]
pub struct CampaignConfig {
    /// Campaign name: file stem of the checkpoint and the reports.
    pub name: String,
    /// Machine size in nodes (CTC: 430).
    pub machine_size: u32,
    /// Shard window length in seconds ([`WEEK_SECONDS`] = the paper's
    /// weekly protocol).
    pub shard_seconds: u64,
    /// Selectors swept per shard.
    pub selectors: Vec<SelectorSpec>,
    /// Runtime over-estimation factors swept per shard (1.0 = exact
    /// estimates).
    pub factors: Vec<f64>,
    /// Worker threads for the cell fan-out.
    pub workers: usize,
    /// Exact ILP comparison; `None` replays only.
    pub exact: Option<ExactConfig>,
    /// Wall-clock budget per cell attempt. Past it the cell's
    /// cooperative cancel token fires, the DES / branch & bound /
    /// simplex loops wind down, the attempt's partial results are
    /// discarded, and the cell records `timed_out` (after retries).
    /// `None` disables the deadline. Whether a deadline is *hit* is a
    /// wall-clock fact — a fresh rerun on a slower machine may time out
    /// differently — but resume stays byte-identical because degraded
    /// records are checkpointed and trusted like any other.
    pub cell_deadline: Option<Duration>,
    /// Extra attempts after a crashed or timed-out one (0 = fail fast).
    /// The retry decision depends only on the attempt counter and the
    /// fault plan, never on the clock, so recorded attempt counts are
    /// deterministic.
    pub retries: u32,
    /// Deterministic fault injections (tests, failure drills, CI smoke).
    pub faults: FaultPlan,
    /// Where the checkpoint and reports live.
    pub output_dir: PathBuf,
}

impl CampaignConfig {
    /// A weekly-shard campaign over the paper's selector set with exact
    /// estimates, one worker, and exact comparison at default budgets.
    pub fn new(name: &str, machine_size: u32) -> CampaignConfig {
        CampaignConfig {
            name: name.to_string(),
            machine_size,
            shard_seconds: WEEK_SECONDS,
            selectors: SelectorSpec::paper_set(),
            factors: vec![1.0],
            workers: 1,
            exact: Some(ExactConfig::new()),
            cell_deadline: None,
            retries: 0,
            faults: FaultPlan::none(),
            output_dir: PathBuf::from("results"),
        }
    }

    /// Shard window length in seconds.
    pub fn with_shard_seconds(mut self, shard_seconds: u64) -> CampaignConfig {
        self.shard_seconds = shard_seconds;
        self
    }

    /// Replaces the selector sweep.
    pub fn with_selectors(mut self, selectors: Vec<SelectorSpec>) -> CampaignConfig {
        self.selectors = selectors;
        self
    }

    /// Replaces the over-estimation factor sweep.
    pub fn with_factors(mut self, factors: Vec<f64>) -> CampaignConfig {
        self.factors = factors;
        self
    }

    /// Worker threads (not part of the fingerprint).
    pub fn with_workers(mut self, workers: usize) -> CampaignConfig {
        self.workers = workers;
        self
    }

    /// Sets (or, with `None`, disables) the exact comparison.
    pub fn with_exact(mut self, exact: Option<ExactConfig>) -> CampaignConfig {
        self.exact = exact;
        self
    }

    /// Wall-clock deadline per cell attempt.
    pub fn with_cell_deadline(mut self, deadline: Duration) -> CampaignConfig {
        self.cell_deadline = Some(deadline);
        self
    }

    /// Extra attempts after a crashed or timed-out one.
    pub fn with_retries(mut self, retries: u32) -> CampaignConfig {
        self.retries = retries;
        self
    }

    /// Replaces the fault plan.
    pub fn with_faults(mut self, faults: FaultPlan) -> CampaignConfig {
        self.faults = faults;
        self
    }

    /// Output directory for checkpoint + reports.
    pub fn with_output_dir(mut self, dir: impl Into<PathBuf>) -> CampaignConfig {
        self.output_dir = dir.into();
        self
    }

    fn validate(&self, jobs: &[Job]) -> Result<(), CampaignError> {
        if jobs.is_empty() {
            return Err(CampaignError::EmptyTrace);
        }
        if self.selectors.is_empty() {
            return Err(CampaignError::InvalidConfig(
                "campaign has no selectors".into(),
            ));
        }
        if self.factors.is_empty() {
            return Err(CampaignError::InvalidConfig(
                "campaign has no over-estimation factors".into(),
            ));
        }
        if let Some(f) = self.factors.iter().find(|f| !f.is_finite() || **f < 1.0) {
            return Err(CampaignError::InvalidConfig(format!(
                "over-estimation factor {f} < 1.0 (estimates must cover the actual runtime)"
            )));
        }
        if self.machine_size == 0 {
            return Err(CampaignError::InvalidConfig("machine size is 0".into()));
        }
        if self.shard_seconds == 0 {
            return Err(CampaignError::InvalidConfig("shard length is 0".into()));
        }
        if self.name.is_empty() || self.name.contains(['/', '\\']) {
            return Err(CampaignError::InvalidConfig(format!(
                "campaign name {:?} is not a valid file stem",
                self.name
            )));
        }
        Ok(())
    }

    /// Canonical description of everything that determines cell results.
    /// `workers` and `output_dir` are deliberately absent.
    fn fingerprint(&self, jobs: &[Job]) -> String {
        let mut trace = String::new();
        for j in jobs {
            use std::fmt::Write as _;
            let _ = write!(
                trace,
                "{},{},{},{};",
                j.submit, j.width, j.estimated_duration, j.actual_duration
            );
        }
        let canonical = JsonValue::object()
            .with("name", self.name.as_str())
            .with("machine_size", self.machine_size)
            .with("shard_seconds", self.shard_seconds)
            .with(
                "selectors",
                JsonValue::Array(
                    self.selectors
                        .iter()
                        .map(|s| JsonValue::from(s.label()))
                        .collect(),
                ),
            )
            .with(
                "factors",
                JsonValue::Array(self.factors.iter().map(|&f| JsonValue::from(f)).collect()),
            )
            .with(
                "exact",
                match &self.exact {
                    Some(e) => e.canonical(),
                    None => JsonValue::Null,
                },
            )
            .with(
                "cell_deadline_ms",
                match self.cell_deadline {
                    Some(d) => JsonValue::from(d.as_millis() as u64),
                    None => JsonValue::Null,
                },
            )
            .with("retries", self.retries)
            .with("faults", self.faults.canonical())
            .with(
                "trace",
                checkpoint::fingerprint(&trace),
            )
            .to_json();
        checkpoint::fingerprint(&canonical)
    }
}

/// Why a campaign could not run.
#[derive(Debug)]
pub enum CampaignError {
    /// The input trace has no jobs, so there are no shards and no cells.
    EmptyTrace,
    /// A configuration field is unusable; the message names it.
    InvalidConfig(String),
    /// Creating the output directory, checkpoint, or reports failed.
    Io(std::io::Error),
}

impl std::fmt::Display for CampaignError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CampaignError::EmptyTrace => {
                write!(f, "campaign trace is empty: nothing to shard")
            }
            CampaignError::InvalidConfig(msg) => write!(f, "invalid campaign config: {msg}"),
            CampaignError::Io(e) => write!(f, "campaign i/o failed: {e}"),
        }
    }
}

impl std::error::Error for CampaignError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CampaignError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for CampaignError {
    fn from(e: std::io::Error) -> CampaignError {
        CampaignError::Io(e)
    }
}

/// What [`run_campaign`] hands back.
#[derive(Debug)]
pub struct CampaignOutcome {
    /// The campaign fingerprint stamped on every checkpoint record.
    pub fingerprint: String,
    /// Cells in the cross-product `shards × selectors × factors`.
    pub cells_total: usize,
    /// Cells read back from the checkpoint instead of computed.
    pub cells_resumed: usize,
    /// Cells computed (and appended to the checkpoint) in this run.
    pub cells_computed: usize,
    /// Cells whose final record (computed or resumed) is `crashed`:
    /// every attempt panicked.
    pub cells_crashed: usize,
    /// Cells whose final record is `timed_out`: every attempt overran
    /// the deadline.
    pub cells_timed_out: usize,
    /// Checkpoint lines that were truncated, corrupt, or foreign.
    pub checkpoint_rejected: usize,
    /// The aggregated report (same value serialized to the JSON file).
    pub report: JsonValue,
    /// Path of the JSONL checkpoint.
    pub checkpoint_path: PathBuf,
    /// Path of the strict-JSON report.
    pub report_json_path: PathBuf,
    /// Path of the human-readable report.
    pub report_text_path: PathBuf,
    /// Path of the OpenMetrics snapshot (`None` when no global recorder
    /// was installed, so there was nothing to expose).
    pub metrics_path: Option<PathBuf>,
    /// Path of the collapsed-stack profile (`None` unless the global
    /// recorder had span profiling enabled and captured spans).
    pub folded_path: Option<PathBuf>,
}

/// One unit of campaign work, fully determined by config + trace.
struct Cell<'a> {
    shard: &'a TraceShard,
    spec: SelectorSpec,
    factor: f64,
}

/// Runs (or resumes) a campaign over `jobs`.
///
/// The cell cross-product fans out over [`CampaignConfig::workers`]
/// threads; each finished cell is checkpointed before the next is picked
/// up. Valid records already present in the checkpoint are trusted and
/// skipped, which makes a re-launch after a crash continue where it died
/// and produce a byte-identical report.
///
/// Cells are fault-isolated: a panicking cell records `crashed`, a cell
/// past [`CampaignConfig::cell_deadline`] records `timed_out` (both
/// after [`CampaignConfig::retries`] extra attempts), and in either
/// case the sweep continues and `run_campaign` returns `Ok` — degraded
/// cells surface in [`CampaignOutcome::cells_crashed`] /
/// [`CampaignOutcome::cells_timed_out`], the report's failure census,
/// the `exp.cells_degraded` gauge, and the
/// `exp.cell_crashed`/`exp.cell_timeout`/`exp.cell_retry` events.
pub fn run_campaign(jobs: &[Job], config: &CampaignConfig) -> Result<CampaignOutcome, CampaignError> {
    let span = dynp_obs::Span::enter("exp.campaign");
    // Panic-safe: even a campaign that dies mid-cell leaves a flushed
    // event log behind, matching what the checkpoint recorded.
    let _flush = dynp_obs::flush_on_drop();
    config.validate(jobs)?;
    let shard_list: Vec<TraceShard> = shards(jobs, config.shard_seconds).collect();
    if shard_list.is_empty() {
        // Unreachable with a non-empty trace, but keep the invariant local.
        return Err(CampaignError::EmptyTrace);
    }
    let fingerprint = config.fingerprint(jobs);

    // Deterministic cell enumeration: shard-major, then selector, then
    // factor. The index is the checkpoint key.
    let mut cells = Vec::new();
    for shard in &shard_list {
        for spec in &config.selectors {
            for &factor in &config.factors {
                cells.push(Cell {
                    shard,
                    spec: *spec,
                    factor,
                });
            }
        }
    }

    std::fs::create_dir_all(&config.output_dir)?;
    let checkpoint_path = config.output_dir.join(format!("{}.checkpoint.jsonl", config.name));
    let loaded = checkpoint::load(&checkpoint_path, &fingerprint)?;
    let log = CheckpointLog::append_to(&checkpoint_path)?;

    if let Some(r) = dynp_obs::recorder() {
        r.event("exp.campaign_start")
            .kv("name", config.name.as_str())
            .kv("fingerprint", fingerprint.as_str())
            .kv("shards", shard_list.len())
            .kv("cells", cells.len())
            .kv("resumable", loaded.cells.len())
            .kv("workers", config.workers)
            .emit();
    }

    // Progress gauges: the live source for `dynp-watch`'s `/progress`
    // endpoint and for the stderr progress line below. Published before
    // the pool starts so a poll during the very first cell already sees
    // the totals.
    let progress = dynp_obs::recorder().map(|r| {
        r.gauge("exp.cells_total").set(cells.len() as i64);
        r.gauge("exp.workers").set(config.workers.max(1) as i64);
        r.gauge("exp.cells_done").set(0);
        r.gauge("exp.cells_inflight").set(0);
        r.gauge("exp.cells_degraded").set(0);
        (
            r.gauge("exp.cells_done"),
            r.gauge("exp.cells_inflight"),
            r.gauge("exp.cells_degraded"),
        )
    });
    let campaign_started = std::time::Instant::now();
    let campaign_id = dynp_obs::campaign_hash(&fingerprint);
    let computed = AtomicUsize::new(0);
    let resumed = AtomicUsize::new(0);
    let cells_total = cells.len();
    let slot_results = pool::run_indexed(config.workers, &cells, |i, cell| {
        if let Some(cached) = loaded.cells.get(&i) {
            resumed.fetch_add(1, Ordering::Relaxed);
            if let Some((done, _, degraded)) = &progress {
                if record_status(cached) != "ok" {
                    degraded.add(1);
                }
                done.add(1);
            }
            return cached.clone();
        }
        if let Some((_, inflight, _)) = &progress {
            inflight.add(1);
        }
        // Everything a cell does — replay, exact solves, the checkpoint
        // append, the completion event — runs under the cell's trace
        // context, so all its events correlate. A cell runs entirely on
        // one worker thread, which is what keeps its span ids
        // deterministic regardless of the worker count.
        let cell_ctx = dynp_obs::enter_cell(campaign_id, i as u64);
        let data = run_cell_guarded(cell, i, config);
        if matches!(config.faults.at(i, 1), Some(FaultKind::CheckpointIo)) {
            log.append_injected_failure(&fingerprint, i, &data);
        } else {
            log.append(&fingerprint, i, &data);
        }
        let computed_now = computed.fetch_add(1, Ordering::Relaxed) + 1;
        if let Some(r) = dynp_obs::recorder() {
            r.event("exp.cell_done")
                .kv("shard", cell.shard.index)
                .kv("selector", cell.spec.label().as_str())
                .kv("factor", cell.factor)
                .kv("status", record_status(&data))
                .emit();
        }
        drop(cell_ctx);
        let done_now = match &progress {
            Some((done, inflight, degraded)) => {
                inflight.add(-1);
                if record_status(&data) != "ok" {
                    degraded.add(1);
                }
                done.add(1) as usize
            }
            None => computed_now + resumed.load(Ordering::Relaxed),
        };
        // One progress line per checkpoint flush. Resumed cells are
        // read back in microseconds, so the ETA extrapolates from the
        // computed-cell rate only.
        let remaining = cells_total.saturating_sub(done_now);
        let elapsed = campaign_started.elapsed().as_secs_f64();
        let pct = 100.0 * done_now as f64 / cells_total.max(1) as f64;
        let eta = remaining as f64 * elapsed / computed_now as f64;
        eprintln!(
            "campaign {}: {done_now}/{cells_total} cells ({pct:.0}%), ETA {eta:.0}s",
            config.name
        );
        // Flush per finished cell: a killed campaign keeps event logs
        // that cover exactly what the checkpoint covers.
        if let Some(r) = dynp_obs::recorder() {
            r.flush();
        }
        data
    });
    // Every panic inside a cell is already caught (and retried) by
    // `run_cell_guarded`, so a `Panicked` slot means the worker died
    // outside the guarded region — synthesize a crashed record rather
    // than losing the whole sweep to one slot.
    let cell_results: Vec<JsonValue> = slot_results
        .into_iter()
        .enumerate()
        .map(|(i, slot)| match slot {
            pool::SlotOutcome::Done(data) => data,
            pool::SlotOutcome::Panicked(p) => {
                let status = CellStatus::Crashed {
                    payload: p.payload,
                    location: p.location,
                };
                degraded_record(&cells[i], &status, 1)
            }
        })
        .collect();
    let cells_crashed = cell_results
        .iter()
        .filter(|c| record_status(c) == "crashed")
        .count();
    let cells_timed_out = cell_results
        .iter()
        .filter(|c| record_status(c) == "timed_out")
        .count();
    // Authoritative final value (the incremental adds above miss only
    // the defensive pool-level synthesis).
    if let Some((_, _, degraded)) = &progress {
        degraded.set((cells_crashed + cells_timed_out) as i64);
    }

    let report = report::build(config, shard_list.len(), &cell_results);
    let report_json_path = config.output_dir.join(format!("{}.report.json", config.name));
    let report_text_path = config.output_dir.join(format!("{}.report.txt", config.name));
    std::fs::write(&report_json_path, report.json.to_json())?;
    std::fs::write(&report_text_path, &report.text)?;
    // OpenMetrics snapshot of whatever recorder observed this run, next
    // to the reports (scrape-ready; also CI-validated).
    let metrics_path = match dynp_obs::recorder() {
        Some(r) => {
            let path = config.output_dir.join(format!("{}.metrics.txt", config.name));
            std::fs::write(&path, dynp_obs::expo::render(r))?;
            Some(path)
        }
        None => None,
    };
    // Collapsed-stack profile when the span-profiling hook was on:
    // `inferno`/`flamegraph.pl` render it directly.
    let folded_path = match dynp_obs::recorder() {
        Some(r) if r.profiling_enabled() => {
            let records = r.profile_records();
            if records.is_empty() {
                None
            } else {
                let path = config.output_dir.join(format!("{}.folded", config.name));
                let profile = dynp_obs::profile_spans(&records);
                std::fs::write(&path, dynp_obs::render_folded(&profile))?;
                Some(path)
            }
        }
        _ => None,
    };
    drop(span);

    Ok(CampaignOutcome {
        fingerprint,
        cells_total: cells.len(),
        cells_resumed: resumed.into_inner(),
        cells_computed: computed.into_inner(),
        cells_crashed,
        cells_timed_out,
        checkpoint_rejected: loaded.rejected,
        report: report.json,
        checkpoint_path,
        report_json_path,
        report_text_path,
        metrics_path,
        folded_path,
    })
}

/// Evenly spread `count` picks over `snapshots` (first + last included),
/// mirroring the bench harness's sampling but local so `exp` stays
/// independent of the bench crate.
fn spread_sample(snapshots: &[TunedSnapshot], count: usize) -> Vec<TunedSnapshot> {
    if snapshots.len() <= count {
        return snapshots.to_vec();
    }
    if count == 0 {
        return Vec::new();
    }
    if count == 1 {
        return vec![snapshots[0].clone()];
    }
    (0..count)
        .map(|i| snapshots[i * (snapshots.len() - 1) / (count - 1)].clone())
        .collect()
}

/// The checkpoint record of a cell whose every attempt failed: only
/// identity fields plus the failure itself, so its bytes depend on
/// nothing wall-clock (a crashed record carries the deterministic panic
/// payload and site; a timed-out record carries no partial data at
/// all).
fn degraded_record(cell: &Cell<'_>, status: &CellStatus, attempts: u32) -> JsonValue {
    let mut v = JsonValue::object()
        .with("shard", cell.shard.index)
        .with("from", cell.shard.from)
        .with("to", cell.shard.to)
        .with("selector", cell.spec.label())
        .with("factor", cell.factor)
        .with("status", status.name())
        .with("attempts", attempts);
    if let CellStatus::Crashed { payload, location } = status {
        v = v
            .with("panic", payload.as_str())
            .with("panic_at", location.as_str());
    }
    v
}

/// Sleeps `total` in small slices, returning early once the cell's
/// cancel token fires (a [`FaultKind::Delay`] must not outlive the
/// deadline it exists to trip).
fn sleep_unless_cancelled(total: Duration) {
    const SLICE: Duration = Duration::from_millis(5);
    let mut remaining = total;
    while !remaining.is_zero() {
        if dynp_obs::cancelled() {
            return;
        }
        let step = remaining.min(SLICE);
        std::thread::sleep(step);
        remaining = remaining.saturating_sub(step);
    }
}

/// Runs one cell with panic isolation, the per-attempt deadline token,
/// and the bounded retry loop; returns the final checkpoint record.
///
/// The failure handling is layered:
///
/// * a panic anywhere in the replay or the exact solves is caught by
///   [`pool::call_caught`] at the cell boundary — the worker thread and
///   its sibling cells keep running,
/// * the deadline is enforced cooperatively: a fresh [`CancelToken`]
///   with the configured budget is installed per attempt, and the DES
///   event loop, the branch & bound loop, and the simplex iteration
///   loop poll it. A cancelled attempt *returns normally* with partial
///   data, which is discarded here — an interrupted replay is not a
///   finished one,
/// * retry decisions depend only on the attempt counter and the fault
///   plan, never on the clock, so the `attempts` count in the record is
///   deterministic. The backoff sleep between attempts uses the clock
///   for waiting, not for deciding.
///
/// [`CancelToken`]: dynp_obs::CancelToken
fn run_cell_guarded(cell: &Cell<'_>, index: usize, config: &CampaignConfig) -> JsonValue {
    let max_attempts = config.retries.saturating_add(1);
    let mut attempt = 0u32;
    loop {
        attempt += 1;
        let fault = config.faults.at(index, attempt).cloned();
        let token = match config.cell_deadline {
            Some(budget) => dynp_obs::CancelToken::with_deadline(budget),
            None => dynp_obs::CancelToken::new(),
        };
        let guard = dynp_obs::install_cancel(&token);
        let result = pool::call_caught(|| {
            match &fault {
                Some(FaultKind::Panic) => {
                    panic!("injected fault: panic in cell {index} (attempt {attempt})")
                }
                Some(FaultKind::Delay(d)) => sleep_unless_cancelled(*d),
                _ => {}
            }
            run_cell(cell, config)
        });
        drop(guard);
        let failure = match result {
            Ok(data) if !token.is_cancelled() => {
                return data.with("status", "ok").with("attempts", attempt);
            }
            Ok(_) => {
                if let Some(r) = dynp_obs::recorder() {
                    r.counter("exp.cell_timeout").inc();
                    // The cell index rides in the trace-context envelope
                    // (the caller holds the cell guard), not in a kv.
                    r.event("exp.cell_timeout").kv("attempt", attempt).emit();
                }
                CellStatus::TimedOut
            }
            Err(caught) => {
                if let Some(r) = dynp_obs::recorder() {
                    r.counter("exp.cell_crashed").inc();
                    r.event("exp.cell_crashed")
                        .kv("attempt", attempt)
                        .kv("panic", caught.payload.as_str())
                        .kv("at", caught.location.as_str())
                        .emit();
                }
                CellStatus::Crashed {
                    payload: caught.payload,
                    location: caught.location,
                }
            }
        };
        if attempt >= max_attempts {
            return degraded_record(cell, &failure, attempt);
        }
        if let Some(r) = dynp_obs::recorder() {
            r.counter("exp.cell_retry").inc();
            r.event("exp.cell_retry")
                .kv("attempt", attempt)
                .kv("max_attempts", max_attempts)
                .emit();
        }
        std::thread::sleep(Duration::from_millis(25).saturating_mul(attempt.min(40)));
    }
}

/// Replays one cell and packs its deterministic results.
fn run_cell(cell: &Cell<'_>, config: &CampaignConfig) -> JsonValue {
    let jobs = if cell.factor > 1.0 {
        overestimate(&cell.shard.jobs, cell.factor)
    } else {
        cell.shard.jobs.clone()
    };
    let mut sim_config = SimConfig::new(config.machine_size);
    if let Some(exact) = &config.exact {
        sim_config = sim_config.with_snapshots(SnapshotFilter {
            min_jobs: exact.min_jobs,
            max_jobs: exact.max_jobs,
            stride: 1,
            max_count: usize::MAX,
        });
    }

    // `simulate` is generic over the selector, so dispatch per variant and
    // collapse to the common record set + dynP stats. The replay stage is
    // one traced child span of the cell.
    let replay_span = dynp_obs::span("exp.replay");
    let (summary, completed, skipped, snapshots, steps, switches) = match cell.spec {
        SelectorSpec::Fixed(policy) => {
            let run = simulate(&jobs, FixedPolicy(policy), sim_config);
            (run.summary, run.records.len(), run.skipped.len(), run.snapshots, 0, 0)
        }
        SelectorSpec::DynP { metric, decider } => {
            let selector = SelfTuning::new(Policy::PAPER_SET.to_vec(), metric, decider);
            let run = simulate(&jobs, selector, sim_config);
            let stats = run.selector.stats();
            (
                run.summary,
                run.records.len(),
                run.skipped.len(),
                run.snapshots,
                stats.steps(),
                stats.switches(),
            )
        }
    };
    drop(replay_span);

    let mut data = JsonValue::object()
        .with("shard", cell.shard.index)
        .with("from", cell.shard.from)
        .with("to", cell.shard.to)
        .with("selector", cell.spec.label())
        .with("factor", cell.factor)
        .with("jobs", jobs.len())
        .with("completed", completed)
        .with("skipped", skipped)
        .with("sldwa", summary.sldwa)
        .with("avg_response", summary.avg_response)
        .with("avg_wait", summary.avg_wait)
        .with("utilization", summary.utilization)
        .with("steps", steps)
        .with("switches", switches);

    if let Some(exact) = &config.exact {
        let _exact_span = dynp_obs::span("exp.exact");
        data = data.with("exact", run_cell_exact(&snapshots, exact));
    }
    data
}

/// Solves the cell's snapshot sample and folds the outcomes into sums
/// (means are taken at report time, so resumed and fresh aggregation are
/// bit-identical).
fn run_cell_exact(snapshots: &[TunedSnapshot], exact: &ExactConfig) -> JsonValue {
    let sample = spread_sample(snapshots, exact.max_snapshots);
    let mut solve_config = SolveConfig {
        metric: exact.metric,
        scale_override: exact.scale_override,
        limits: BranchLimits {
            max_nodes: exact.node_budget,
            max_lp_iterations: exact.lp_iteration_budget,
            time_limit: exact.time_limit,
        },
        ..SolveConfig::default()
    };
    if let Some(bytes) = exact.memory_budget_bytes {
        solve_config.memory_bytes = bytes as f64;
    }
    let (mut compared, mut optimal, mut budget_hit, mut no_incumbent) = (0u64, 0u64, 0u64, 0u64);
    let (mut quality_sum, mut loss_sum) = (0.0f64, 0.0f64);
    let (mut nodes, mut lp_iterations) = (0u64, 0u64);
    for snapshot in &sample {
        // Snapshots from the filter always have >= min_jobs >= 1 waiting
        // jobs, so input errors cannot occur here; skip defensively
        // rather than poison the cell.
        let Ok(run) = solve_snapshot(&snapshot.problem, &solve_config) else {
            continue;
        };
        nodes += run.nodes as u64;
        lp_iterations += run.lp_iterations as u64;
        match run.comparison() {
            Ok(cmp) => {
                compared += 1;
                quality_sum += cmp.quality;
                loss_sum += cmp.perf_loss_percent;
                if run.status == MipStatus::Optimal {
                    optimal += 1;
                } else {
                    // The "CPLEX still running" regime: budget exhausted,
                    // incumbent kept.
                    budget_hit += 1;
                }
            }
            Err(_) => no_incumbent += 1,
        }
    }
    JsonValue::object()
        .with("snapshots_seen", snapshots.len())
        .with("sampled", sample.len())
        .with("compared", compared)
        .with("optimal", optimal)
        .with("budget_hit", budget_hit)
        .with("no_incumbent", no_incumbent)
        .with("quality_sum", quality_sum)
        .with("loss_sum", loss_sum)
        .with("nodes", nodes)
        .with("lp_iterations", lp_iterations)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dynp_trace::{CtcModel, WorkloadModel};
    use std::path::Path;

    fn tiny_trace(n: usize) -> Vec<Job> {
        CtcModel {
            nodes: 64,
            ..CtcModel::default()
        }
        .generate(n, 11)
        .jobs
    }

    fn unique_dir(tag: &str) -> PathBuf {
        static NEXT: AtomicUsize = AtomicUsize::new(0);
        std::env::temp_dir().join(format!(
            "dynp_exp_{}_{}_{}",
            tag,
            std::process::id(),
            NEXT.fetch_add(1, Ordering::Relaxed)
        ))
    }

    fn tiny_config(name: &str, dir: &Path) -> CampaignConfig {
        CampaignConfig::new(name, 64)
            .with_shard_seconds(6 * 3_600)
            .with_selectors(vec![
                SelectorSpec::Fixed(Policy::Fcfs),
                SelectorSpec::dynp(),
            ])
            .with_exact(Some(
                ExactConfig::new()
                    .with_job_range(2, 8)
                    .with_max_snapshots(1)
                    .with_node_budget(200),
            ))
            .with_output_dir(dir)
    }

    #[test]
    fn selector_labels_are_unique_and_parseable() {
        let specs = [
            "fcfs", "sjf", "ljf", "dynp", "dynp-adv", "dynp-sticky",
        ]
        .map(|s| SelectorSpec::parse(s).unwrap());
        let labels: Vec<String> = specs.iter().map(SelectorSpec::label).collect();
        let mut dedup = labels.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), labels.len(), "labels collide: {labels:?}");
        assert!(SelectorSpec::parse("cplex").is_err());
    }

    #[test]
    fn empty_trace_is_a_typed_error_not_a_panic() {
        let dir = unique_dir("empty");
        let err = run_campaign(&[], &tiny_config("empty", &dir)).unwrap_err();
        assert!(matches!(err, CampaignError::EmptyTrace));
        assert!(err.to_string().contains("empty"));
    }

    #[test]
    fn invalid_factors_are_rejected() {
        let dir = unique_dir("factors");
        let config = tiny_config("factors", &dir).with_factors(vec![0.5]);
        let err = run_campaign(&tiny_trace(10), &config).unwrap_err();
        assert!(matches!(err, CampaignError::InvalidConfig(_)));
    }

    #[test]
    fn campaign_covers_the_cell_cross_product() {
        let dir = unique_dir("cover");
        let config = tiny_config("cover", &dir).with_factors(vec![1.0, 3.0]);
        let jobs = tiny_trace(60);
        let outcome = run_campaign(&jobs, &config).unwrap();
        let n_shards = shards(&jobs, config.shard_seconds).count();
        assert_eq!(outcome.cells_total, n_shards * 2 * 2);
        assert_eq!(outcome.cells_computed, outcome.cells_total);
        assert_eq!(outcome.cells_resumed, 0);
        assert!(outcome.report_json_path.exists());
        assert!(outcome.report_text_path.exists());
        // The report is strict JSON.
        let text = std::fs::read_to_string(&outcome.report_json_path).unwrap();
        dynp_obs::validate_json(&text).unwrap();
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn second_launch_resumes_every_cell() {
        let dir = unique_dir("resume");
        let config = tiny_config("resume", &dir);
        let jobs = tiny_trace(40);
        let first = run_campaign(&jobs, &config).unwrap();
        assert!(first.cells_computed > 0);
        let report_a = std::fs::read(&first.report_json_path).unwrap();
        let second = run_campaign(&jobs, &config).unwrap();
        assert_eq!(second.cells_resumed, first.cells_total);
        assert_eq!(second.cells_computed, 0);
        let report_b = std::fs::read(&second.report_json_path).unwrap();
        assert_eq!(report_a, report_b, "resumed report must be byte-identical");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn changing_the_config_invalidates_the_checkpoint() {
        let dir = unique_dir("invalidate");
        let jobs = tiny_trace(40);
        let config = tiny_config("inv", &dir);
        let first = run_campaign(&jobs, &config).unwrap();
        // Same name + dir, different node budget: fingerprint changes, so
        // nothing resumes.
        let changed = config.clone().with_exact(Some(
            ExactConfig::new()
                .with_job_range(2, 8)
                .with_max_snapshots(1)
                .with_node_budget(350),
        ));
        let second = run_campaign(&jobs, &changed).unwrap();
        assert_eq!(second.cells_resumed, 0);
        assert_eq!(second.cells_computed, first.cells_total);
        // The stale lines are foreign, not fatal.
        assert_eq!(second.checkpoint_rejected, first.cells_total);
        std::fs::remove_dir_all(&dir).unwrap();

        // Every solver budget enters the fingerprint, including the Eq. 6
        // memory budget (it changes the time grid, hence every result).
        let base = tiny_config("inv", Path::new("x"));
        let tighter = base
            .clone()
            .with_exact(Some(ExactConfig::new().with_memory_budget_bytes(2 << 20)));
        assert_ne!(base.fingerprint(&jobs), tighter.fingerprint(&jobs));
    }

    #[test]
    fn workers_do_not_change_the_report() {
        let dir1 = unique_dir("w1");
        let dir4 = unique_dir("w4");
        let jobs = tiny_trace(50);
        let serial = run_campaign(&jobs, &tiny_config("w", &dir1)).unwrap();
        let parallel =
            run_campaign(&jobs, &tiny_config("w", &dir4).with_workers(4)).unwrap();
        assert_eq!(
            serial.report.to_json(),
            parallel.report.to_json(),
            "worker count must not leak into results"
        );
        std::fs::remove_dir_all(&dir1).unwrap();
        std::fs::remove_dir_all(&dir4).unwrap();
    }

    #[test]
    fn injected_panic_records_a_crashed_cell_and_the_sweep_survives() {
        let dir = unique_dir("crash");
        let config = tiny_config("crash", &dir)
            .with_faults(FaultPlan::none().inject(0, FaultKind::Panic, u32::MAX));
        let outcome = run_campaign(&tiny_trace(60), &config).unwrap();
        assert_eq!(outcome.cells_crashed, 1);
        assert_eq!(outcome.cells_timed_out, 0);
        assert_eq!(outcome.cells_computed, outcome.cells_total);

        // The crashed record is in the checkpoint with payload + site.
        let loaded = checkpoint::load(&outcome.checkpoint_path, &outcome.fingerprint).unwrap();
        let crashed = &loaded.cells[&0];
        assert_eq!(record_status(crashed), "crashed");
        assert_eq!(crashed.get("attempts").and_then(JsonValue::as_u64), Some(1));
        let payload = crashed.get("panic").and_then(JsonValue::as_str).unwrap();
        assert!(payload.contains("injected fault: panic in cell 0"));
        assert!(crashed
            .get("panic_at")
            .and_then(JsonValue::as_str)
            .unwrap()
            .contains("campaign.rs"));

        // The report carries the census and excludes the cell from the
        // aggregates (its group has one shard fewer than its sibling).
        let failures = outcome.report.get("failures").unwrap();
        assert_eq!(failures.get("crashed").and_then(JsonValue::as_u64), Some(1));
        assert_eq!(failures.get("timed_out").and_then(JsonValue::as_u64), Some(0));
        let listed = failures.get("cells").and_then(JsonValue::as_array).unwrap();
        assert_eq!(listed.len(), 1);
        assert_eq!(listed[0].get("cell").and_then(JsonValue::as_u64), Some(0));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn delayed_cell_past_the_deadline_times_out() {
        let dir = unique_dir("deadline");
        // No exact solves: clean cells finish in microseconds, far under
        // the 400 ms deadline even in debug mode, so only the injected
        // 10-minute delay can trip it.
        let config = tiny_config("deadline", &dir)
            .with_exact(None)
            .with_cell_deadline(Duration::from_millis(400))
            .with_faults(FaultPlan::none().inject(
                1,
                FaultKind::Delay(Duration::from_secs(600)),
                u32::MAX,
            ));
        let outcome = run_campaign(&tiny_trace(60), &config).unwrap();
        assert_eq!(outcome.cells_timed_out, 1);
        assert_eq!(outcome.cells_crashed, 0);
        // The timed-out record carries no partial metrics.
        let loaded = checkpoint::load(&outcome.checkpoint_path, &outcome.fingerprint).unwrap();
        let timed = &loaded.cells[&1];
        assert_eq!(record_status(timed), "timed_out");
        assert!(timed.get("sldwa").is_none(), "partial data must be discarded");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn a_retry_clears_a_transient_fault() {
        let dir = unique_dir("retry");
        let config = tiny_config("retry", &dir)
            .with_retries(2)
            .with_faults(FaultPlan::none().inject(0, FaultKind::Panic, 1));
        let outcome = run_campaign(&tiny_trace(60), &config).unwrap();
        assert_eq!(outcome.cells_crashed, 0);
        assert_eq!(outcome.cells_timed_out, 0);
        let loaded = checkpoint::load(&outcome.checkpoint_path, &outcome.fingerprint).unwrap();
        let healed = &loaded.cells[&0];
        assert_eq!(record_status(healed), "ok");
        assert_eq!(healed.get("attempts").and_then(JsonValue::as_u64), Some(2));
        // Untouched cells succeeded first try.
        assert_eq!(
            loaded.cells[&1].get("attempts").and_then(JsonValue::as_u64),
            Some(1)
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn checkpoint_io_fault_recomputes_the_cell_on_resume() {
        let dir = unique_dir("ckptio");
        let config = tiny_config("ckptio", &dir)
            .with_faults(FaultPlan::none().inject(0, FaultKind::CheckpointIo, u32::MAX));
        let jobs = tiny_trace(40);
        let first = run_campaign(&jobs, &config).unwrap();
        assert_eq!(first.cells_computed, first.cells_total);
        let report_a = std::fs::read(&first.report_json_path).unwrap();
        // Cell 0's append was suppressed through the io-error path, so a
        // relaunch recomputes exactly that cell — and nothing else.
        let second = run_campaign(&jobs, &config).unwrap();
        assert_eq!(second.cells_resumed, second.cells_total - 1);
        assert_eq!(second.cells_computed, 1);
        assert_eq!(
            std::fs::read(&second.report_json_path).unwrap(),
            report_a,
            "recomputing the unpersisted cell must not change the report"
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn degraded_cells_resume_byte_identically() {
        let dir = unique_dir("degraded_resume");
        let config = tiny_config("degr", &dir)
            .with_retries(1)
            .with_faults(
                FaultPlan::none()
                    .inject(0, FaultKind::Panic, u32::MAX)
                    .inject(2, FaultKind::Panic, 1),
            );
        let jobs = tiny_trace(40);
        let first = run_campaign(&jobs, &config).unwrap();
        assert_eq!(first.cells_crashed, 1);
        let report_a = std::fs::read(&first.report_json_path).unwrap();
        let second = run_campaign(&jobs, &config).unwrap();
        assert_eq!(second.cells_resumed, second.cells_total, "crashed records are trusted");
        assert_eq!(second.cells_crashed, 1, "resumed census still counts the crash");
        assert_eq!(std::fs::read(&second.report_json_path).unwrap(), report_a);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn fault_knobs_enter_the_fingerprint() {
        let jobs = tiny_trace(20);
        let base = tiny_config("fp", Path::new("x"));
        let with_deadline = base.clone().with_cell_deadline(Duration::from_secs(30));
        let with_retries = base.clone().with_retries(1);
        let with_fault = base
            .clone()
            .with_faults(FaultPlan::none().inject(0, FaultKind::Panic, 1));
        let prints = [
            base.fingerprint(&jobs),
            with_deadline.fingerprint(&jobs),
            with_retries.fingerprint(&jobs),
            with_fault.fingerprint(&jobs),
        ];
        for (i, a) in prints.iter().enumerate() {
            for b in prints.iter().skip(i + 1) {
                assert_ne!(a, b, "fault knobs must invalidate the checkpoint");
            }
        }
    }

    #[test]
    fn fault_plan_lookup_respects_cell_and_attempt() {
        let plan = FaultPlan::none()
            .inject(3, FaultKind::Panic, 2)
            .inject(5, FaultKind::CheckpointIo, u32::MAX);
        assert_eq!(plan.at(3, 1), Some(&FaultKind::Panic));
        assert_eq!(plan.at(3, 2), Some(&FaultKind::Panic));
        assert_eq!(plan.at(3, 3), None, "transient fault clears after 2 attempts");
        assert_eq!(plan.at(4, 1), None);
        assert_eq!(plan.at(5, 99), Some(&FaultKind::CheckpointIo));
        assert!(FaultPlan::none().is_empty());
        assert!(!plan.is_empty());
    }

    #[test]
    fn spread_sample_keeps_ends() {
        let dir = unique_dir("spread");
        drop(dir);
        let jobs = tiny_trace(80);
        let run = simulate(
            &jobs,
            FixedPolicy(Policy::Fcfs),
            SimConfig::new(64).with_snapshots(SnapshotFilter::default()),
        );
        if run.snapshots.len() >= 3 {
            let sample = spread_sample(&run.snapshots, 2);
            assert_eq!(sample.len(), 2);
            assert_eq!(sample[0].step, run.snapshots[0].step);
            assert_eq!(
                sample[1].step,
                run.snapshots.last().unwrap().step
            );
        }
    }
}
