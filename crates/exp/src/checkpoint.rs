//! The append-only JSONL checkpoint log that makes campaigns resumable.
//!
//! Every finished cell is appended as one self-validating JSON line:
//!
//! ```json
//! {"v":1,"campaign":"<fingerprint>","cell":17,"data":{...},"crc":"<fnv64>"}
//! ```
//!
//! * `v` — checkpoint schema version,
//! * `campaign` — the campaign *fingerprint*: a hash of everything that
//!   determines a cell's result (trace digest, shard length, selectors,
//!   factors, budgets). Records from a different configuration are
//!   ignored on load, so a stale directory can never contaminate a sweep,
//! * `cell` — the cell's index in the campaign's deterministic cell
//!   enumeration,
//! * `data` — the cell result (deterministic quantities only — no wall
//!   times — so a resumed report is byte-identical to an uninterrupted
//!   one),
//! * `crc` — FNV-1a over the record serialization *without* `crc`. A
//!   truncated tail line (the process died mid-write) fails the parse or
//!   the checksum and is simply dropped; the cell is recomputed.
//!
//! Lines are flushed to the OS after every append: a crash loses at most
//! the cell that was being written.

use dynp_obs::json::{parse, JsonValue};
use std::collections::BTreeMap;
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::Mutex;

/// Checkpoint schema version; bump when the record layout changes.
pub const CHECKPOINT_VERSION: u64 = 1;

/// 64-bit FNV-1a.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Hex fingerprint of a canonical configuration string.
pub fn fingerprint(canonical: &str) -> String {
    format!("{:016x}", fnv1a64(canonical.as_bytes()))
}

/// Serializes one checkpoint record (a single JSONL line, no trailing
/// newline).
pub fn record_line(campaign: &str, cell: usize, data: &JsonValue) -> String {
    let body = JsonValue::object()
        .with("v", CHECKPOINT_VERSION)
        .with("campaign", campaign)
        .with("cell", cell)
        .with("data", data.clone());
    let crc = format!("{:016x}", fnv1a64(body.to_json().as_bytes()));
    body.with("crc", crc).to_json()
}

/// Decodes one checkpoint line. Returns the cell index and its data when
/// the line is well-formed, checksummed, and belongs to `campaign`;
/// `Err` explains the rejection (used only for accounting — a rejected
/// line just means the cell is recomputed).
pub fn decode_line(line: &str, campaign: &str) -> Result<(usize, JsonValue), String> {
    let value = parse(line).map_err(|e| format!("unparseable: {e}"))?;
    let v = value
        .get("v")
        .and_then(JsonValue::as_u64)
        .ok_or("missing version")?;
    if v != CHECKPOINT_VERSION {
        return Err(format!("unknown checkpoint version {v}"));
    }
    let record_campaign = value
        .get("campaign")
        .and_then(JsonValue::as_str)
        .ok_or("missing campaign fingerprint")?;
    let cell = value
        .get("cell")
        .and_then(JsonValue::as_u64)
        .ok_or("missing cell index")? as usize;
    let data = value.get("data").ok_or("missing data")?.clone();
    let crc = value
        .get("crc")
        .and_then(JsonValue::as_str)
        .ok_or("missing crc")?;
    // Recompute the checksum over the canonical re-serialization; the
    // parser keeps key order and number round-tripping, so a clean line
    // reproduces its own bytes.
    let body = JsonValue::object()
        .with("v", v)
        .with("campaign", record_campaign)
        .with("cell", cell)
        .with("data", data.clone());
    let expect = format!("{:016x}", fnv1a64(body.to_json().as_bytes()));
    if crc != expect {
        return Err(format!("checksum mismatch: {crc} vs {expect}"));
    }
    if record_campaign != campaign {
        return Err(format!("foreign campaign {record_campaign}"));
    }
    Ok((cell, data))
}

/// What [`load`] recovered from an existing checkpoint file.
#[derive(Debug, Default)]
pub struct LoadedCheckpoint {
    /// Validated cell results, keyed by cell index (last record wins).
    pub cells: BTreeMap<usize, JsonValue>,
    /// Total non-empty lines seen.
    pub lines: usize,
    /// Lines dropped: truncated, corrupt, wrong version, or belonging to
    /// a different campaign fingerprint.
    pub rejected: usize,
}

/// Reads a checkpoint file, keeping every valid record of `campaign`.
/// A missing file is an empty checkpoint, not an error.
pub fn load(path: &Path, campaign: &str) -> std::io::Result<LoadedCheckpoint> {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
            return Ok(LoadedCheckpoint::default())
        }
        Err(e) => return Err(e),
    };
    let mut loaded = LoadedCheckpoint::default();
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        loaded.lines += 1;
        match decode_line(line, campaign) {
            Ok((cell, data)) => {
                loaded.cells.insert(cell, data);
            }
            Err(_) => loaded.rejected += 1,
        }
    }
    Ok(loaded)
}

/// The append side of the checkpoint: shared by all campaign workers,
/// flushing after every record.
#[derive(Debug)]
pub struct CheckpointLog {
    path: PathBuf,
    file: Mutex<std::fs::File>,
}

impl CheckpointLog {
    /// Opens (or creates) the checkpoint at `path` for appending. When
    /// the file ends in a torn write (a crash mid-record leaves no
    /// trailing newline), a newline is inserted first so the next record
    /// is not glued onto — and lost with — the torn line.
    pub fn append_to(path: &Path) -> std::io::Result<CheckpointLog> {
        use std::io::{Read, Seek, SeekFrom};
        let mut file = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .read(true)
            .open(path)?;
        let len = file.metadata()?.len();
        if len > 0 {
            let mut last = [0u8; 1];
            file.seek(SeekFrom::End(-1))?;
            file.read_exact(&mut last)?;
            if last != [b'\n'] {
                writeln!(file)?;
            }
        }
        Ok(CheckpointLog {
            path: path.to_path_buf(),
            file: Mutex::new(file),
        })
    }

    /// The file this log appends to.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Appends one cell record and flushes it to the OS. Errors are
    /// swallowed after being reported once via the event log — a full
    /// disk degrades crash-safety, it must not kill a multi-hour sweep.
    pub fn append(&self, campaign: &str, cell: usize, data: &JsonValue) {
        let line = record_line(campaign, cell, data);
        // A worker that panicked while holding the lock poisons it, but
        // an append-only file handle has no invariant a half-finished
        // writer could break: the torn tail is dropped on load and the
        // cell recomputed. Recover the guard instead of propagating the
        // panic into every surviving worker.
        let mut file = self.file.lock().unwrap_or_else(|p| p.into_inner());
        if let Err(e) = writeln!(file, "{line}").and_then(|_| file.flush()) {
            report_write_failure(cell, &e.to_string());
        }
    }

    /// The deterministic-fault-injection variant of [`append`]: the
    /// record is serialized exactly as a real append would, then dropped
    /// on the floor through the same degraded I/O reporting path instead
    /// of being written. A cell routed here is recomputed on every
    /// resume — which is precisely the behaviour a full disk produces,
    /// now reachable from a test.
    ///
    /// [`append`]: CheckpointLog::append
    pub fn append_injected_failure(&self, campaign: &str, cell: usize, data: &JsonValue) {
        // Serialize (and checksum) so an injected run pays the same
        // encoding cost and validates the record path, then report the
        // synthetic failure.
        let _line = record_line(campaign, cell, data);
        report_write_failure(cell, "injected checkpoint i/o fault");
    }
}

/// Emits the `exp.checkpoint_write_failed` event shared by real append
/// errors and injected I/O faults.
fn report_write_failure(cell: usize, error: &str) {
    if let Some(r) = dynp_obs::recorder() {
        r.counter("exp.checkpoint_write_failed").inc();
        r.event("exp.checkpoint_write_failed")
            .kv("cell", cell)
            .kv("error", error)
            .emit();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn data(x: u64) -> JsonValue {
        JsonValue::object()
            .with("x", x)
            .with("f", 0.1f64)
            .with("label", "dynP(SLDwA)")
    }

    #[test]
    fn record_round_trips() {
        let line = record_line("cafe", 3, &data(7));
        dynp_obs::json::validate(&line).unwrap();
        let (cell, d) = decode_line(&line, "cafe").unwrap();
        assert_eq!(cell, 3);
        assert_eq!(d, data(7));
    }

    #[test]
    fn truncated_and_tampered_lines_are_rejected() {
        let line = record_line("cafe", 3, &data(7));
        // Truncation (mid-write crash).
        assert!(decode_line(&line[..line.len() - 10], "cafe").is_err());
        // Bit-flip in the payload.
        let tampered = line.replace("\"x\":7", "\"x\":8");
        assert_ne!(tampered, line);
        assert!(decode_line(&tampered, "cafe").unwrap_err().contains("checksum"));
        // Foreign fingerprint.
        assert!(decode_line(&line, "beef").unwrap_err().contains("foreign"));
    }

    #[test]
    fn load_recovers_valid_records_and_counts_rejects() {
        let dir = std::env::temp_dir().join(format!("dynp_ckpt_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("test.checkpoint.jsonl");
        let log = CheckpointLog::append_to(&path).unwrap();
        log.append("cafe", 0, &data(1));
        log.append("cafe", 2, &data(2));
        // Simulate a crash mid-write plus a foreign record.
        {
            use std::io::Write as _;
            let mut f = std::fs::OpenOptions::new().append(true).open(&path).unwrap();
            writeln!(f, "{}", record_line("beef", 9, &data(9))).unwrap();
            write!(f, "{}", &record_line("cafe", 5, &data(5))[..20]).unwrap();
        }
        let loaded = load(&path, "cafe").unwrap();
        assert_eq!(loaded.cells.len(), 2);
        assert_eq!(loaded.cells[&0], data(1));
        assert_eq!(loaded.cells[&2], data(2));
        assert_eq!(loaded.lines, 4);
        assert_eq!(loaded.rejected, 2);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn poisoned_lock_still_appends() {
        let dir = std::env::temp_dir().join(format!("dynp_ckpt_poison_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("poisoned.checkpoint.jsonl");
        let log = CheckpointLog::append_to(&path).unwrap();
        // Poison the mutex: panic while holding the file guard, the way a
        // crashing campaign worker would mid-append.
        let poisoned = crate::pool::call_caught(|| {
            let _guard = log.file.lock().unwrap();
            panic!("worker died holding the checkpoint lock");
        });
        assert!(poisoned.is_err());
        assert!(log.file.is_poisoned());
        // Surviving workers keep checkpointing.
        log.append("cafe", 1, &data(1));
        let loaded = load(&path, "cafe").unwrap();
        assert_eq!(loaded.cells.len(), 1);
        assert_eq!(loaded.cells[&1], data(1));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn injected_failure_writes_nothing() {
        let dir = std::env::temp_dir().join(format!("dynp_ckpt_inject_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("injected.checkpoint.jsonl");
        let log = CheckpointLog::append_to(&path).unwrap();
        log.append_injected_failure("cafe", 0, &data(1));
        log.append("cafe", 1, &data(2));
        let loaded = load(&path, "cafe").unwrap();
        assert_eq!(loaded.lines, 1, "the injected record must not reach the file");
        assert_eq!(loaded.cells.len(), 1);
        assert_eq!(loaded.cells[&1], data(2));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn missing_file_is_empty() {
        let loaded = load(Path::new("/nonexistent/nope.jsonl"), "cafe").unwrap();
        assert!(loaded.cells.is_empty());
        assert_eq!(loaded.lines, 0);
    }

    #[test]
    fn fingerprint_is_stable_and_sensitive() {
        assert_eq!(fingerprint("abc"), fingerprint("abc"));
        assert_ne!(fingerprint("abc"), fingerprint("abd"));
        assert_eq!(fingerprint("abc").len(), 16);
    }
}
