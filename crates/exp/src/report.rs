//! Folding checkpointed cells into the paper-style comparison report.
//!
//! The report exists in two forms written side by side: a human-readable
//! text table (per-shard SLDwA plus an overall row per selector × factor,
//! echoing the paper's weekly comparison tables) and a strict-JSON
//! document for machines. Both are built *only* from deterministic cell
//! fields and the campaign configuration — never from wall-clock time,
//! worker count, or resume bookkeeping — so a resumed campaign reproduces
//! both files byte for byte.

use crate::campaign::{record_status, CampaignConfig};
use dynp_obs::JsonValue;
use std::fmt::Write as _;

/// A rendered report: the same aggregation in both output forms.
pub struct BuiltReport {
    /// Human-readable table block.
    pub text: String,
    /// Strict-JSON document (serialize with `to_json`).
    pub json: JsonValue,
}

fn num(cell: &JsonValue, key: &str) -> f64 {
    cell.get(key).and_then(JsonValue::as_f64).unwrap_or(0.0)
}

fn int(cell: &JsonValue, key: &str) -> u64 {
    cell.get(key).and_then(JsonValue::as_u64).unwrap_or(0)
}

/// Aggregate of one `(selector, factor)` group across all shards.
struct GroupAggregate {
    label: String,
    factor: f64,
    shards: usize,
    jobs: u64,
    completed: u64,
    skipped: u64,
    sldwa_sum: f64,
    switches: u64,
    steps: u64,
    /// Cells of this group that panicked / hit their deadline. Degraded
    /// cells are counted here and *excluded* from every metric column —
    /// a crashed shard must not drag a selector's SLDwA mean toward 0.
    crashed: usize,
    timed_out: usize,
    exact: Option<ExactAggregate>,
}

#[derive(Default)]
struct ExactAggregate {
    sampled: u64,
    compared: u64,
    optimal: u64,
    budget_hit: u64,
    no_incumbent: u64,
    quality_sum: f64,
    loss_sum: f64,
    nodes: u64,
    lp_iterations: u64,
}

impl GroupAggregate {
    fn sldwa_mean(&self) -> f64 {
        if self.shards == 0 {
            0.0
        } else {
            self.sldwa_sum / self.shards as f64
        }
    }

    fn to_json(&self) -> JsonValue {
        let mut v = JsonValue::object()
            .with("selector", self.label.as_str())
            .with("factor", self.factor)
            .with("shards", self.shards)
            .with("jobs", self.jobs)
            .with("completed", self.completed)
            .with("skipped", self.skipped)
            .with("sldwa_mean", self.sldwa_mean())
            .with("switches", self.switches)
            .with("steps", self.steps)
            .with("crashed", self.crashed)
            .with("timed_out", self.timed_out);
        v = match &self.exact {
            Some(e) => v.with("exact", e.to_json()),
            None => v.with("exact", JsonValue::Null),
        };
        v
    }
}

impl ExactAggregate {
    fn quality_mean(&self) -> Option<f64> {
        (self.compared > 0).then(|| self.quality_sum / self.compared as f64)
    }

    fn loss_mean(&self) -> Option<f64> {
        (self.compared > 0).then(|| self.loss_sum / self.compared as f64)
    }

    fn to_json(&self) -> JsonValue {
        JsonValue::object()
            .with("sampled", self.sampled)
            .with("compared", self.compared)
            .with("optimal", self.optimal)
            .with("budget_hit", self.budget_hit)
            .with("no_incumbent", self.no_incumbent)
            .with(
                "quality_mean",
                self.quality_mean().map(JsonValue::from).unwrap_or(JsonValue::Null),
            )
            .with(
                "perf_loss_percent_mean",
                self.loss_mean().map(JsonValue::from).unwrap_or(JsonValue::Null),
            )
            .with("nodes", self.nodes)
            .with("lp_iterations", self.lp_iterations)
    }
}

/// Builds the report from the full, index-ordered cell list. `cells` is
/// shard-major (the enumeration order of the campaign runner), so each
/// consecutive chunk of `selectors × factors` cells is one shard.
pub fn build(config: &CampaignConfig, n_shards: usize, cells: &[JsonValue]) -> BuiltReport {
    let group_count = config.selectors.len() * config.factors.len();
    debug_assert_eq!(cells.len(), n_shards * group_count);

    // Fold cells into per-(selector, factor) aggregates, iterating in the
    // deterministic cell order so float sums reproduce exactly.
    let mut groups: Vec<GroupAggregate> = Vec::with_capacity(group_count);
    for spec in &config.selectors {
        for &factor in &config.factors {
            groups.push(GroupAggregate {
                label: spec.label(),
                factor,
                shards: 0,
                jobs: 0,
                completed: 0,
                skipped: 0,
                sldwa_sum: 0.0,
                switches: 0,
                steps: 0,
                crashed: 0,
                timed_out: 0,
                exact: None,
            });
        }
    }
    let mut failure_cells = Vec::new();
    for (i, cell) in cells.iter().enumerate() {
        let g = &mut groups[i % group_count];
        match record_status(cell) {
            "ok" => {}
            status => {
                // A degraded cell contributes to the failure census only;
                // `shards` stays the count of cells behind the means.
                if status == "crashed" {
                    g.crashed += 1;
                } else {
                    g.timed_out += 1;
                }
                let mut entry = JsonValue::object()
                    .with("cell", i)
                    .with("shard", int(cell, "shard"))
                    .with("selector", cell.get("selector").cloned().unwrap_or(JsonValue::Null))
                    .with("factor", num(cell, "factor"))
                    .with("status", status)
                    .with("attempts", int(cell, "attempts"));
                if let Some(p) = cell.get("panic") {
                    entry = entry.with("panic", p.clone());
                }
                if let Some(at) = cell.get("panic_at") {
                    entry = entry.with("panic_at", at.clone());
                }
                failure_cells.push(entry);
                continue;
            }
        }
        g.shards += 1;
        g.jobs += int(cell, "jobs");
        g.completed += int(cell, "completed");
        g.skipped += int(cell, "skipped");
        g.sldwa_sum += num(cell, "sldwa");
        g.switches += int(cell, "switches");
        g.steps += int(cell, "steps");
        if let Some(exact) = cell.get("exact") {
            let e = g.exact.get_or_insert_with(ExactAggregate::default);
            e.sampled += int(exact, "sampled");
            e.compared += int(exact, "compared");
            e.optimal += int(exact, "optimal");
            e.budget_hit += int(exact, "budget_hit");
            e.no_incumbent += int(exact, "no_incumbent");
            e.quality_sum += num(exact, "quality_sum");
            e.loss_sum += num(exact, "loss_sum");
            e.nodes += int(exact, "nodes");
            e.lp_iterations += int(exact, "lp_iterations");
        }
    }

    // Per-shard blocks, in cell order.
    let mut per_shard = Vec::with_capacity(n_shards);
    for chunk in cells.chunks(group_count.max(1)) {
        let Some(first) = chunk.first() else { continue };
        // A degraded record carries the shard identity but no job count;
        // read `jobs` from any ok sibling of the same shard.
        let jobs = chunk
            .iter()
            .find(|c| record_status(c) == "ok")
            .map(|c| int(c, "jobs"))
            .unwrap_or(0);
        per_shard.push(
            JsonValue::object()
                .with("shard", int(first, "shard"))
                .with("from", int(first, "from"))
                .with("to", int(first, "to"))
                .with("jobs", jobs)
                .with(
                    "rows",
                    JsonValue::Array(
                        chunk
                            .iter()
                            .map(|cell| {
                                let degraded = record_status(cell) != "ok";
                                JsonValue::object()
                                    .with("selector", cell.get("selector").cloned().unwrap_or(JsonValue::Null))
                                    .with("factor", num(cell, "factor"))
                                    .with("status", record_status(cell))
                                    .with(
                                        "sldwa",
                                        if degraded {
                                            JsonValue::Null
                                        } else {
                                            JsonValue::from(num(cell, "sldwa"))
                                        },
                                    )
                                    .with("switches", int(cell, "switches"))
                            })
                            .collect(),
                    ),
                ),
        );
    }

    let crashed_total: usize = groups.iter().map(|g| g.crashed).sum();
    let timed_out_total: usize = groups.iter().map(|g| g.timed_out).sum();
    let failures = JsonValue::object()
        .with("crashed", crashed_total)
        .with("timed_out", timed_out_total)
        .with("cells", JsonValue::Array(failure_cells));

    let json = JsonValue::object()
        .with("campaign", config.name.as_str())
        .with("machine_size", config.machine_size)
        .with("shard_seconds", config.shard_seconds)
        .with("shards", n_shards)
        .with("cells", cells.len())
        .with(
            "selectors",
            JsonValue::Array(
                config
                    .selectors
                    .iter()
                    .map(|s| JsonValue::from(s.label()))
                    .collect(),
            ),
        )
        .with(
            "factors",
            JsonValue::Array(config.factors.iter().map(|&f| JsonValue::from(f)).collect()),
        )
        .with(
            "overall",
            JsonValue::Array(groups.iter().map(GroupAggregate::to_json).collect()),
        )
        .with("failures", failures)
        .with("per_shard", JsonValue::Array(per_shard));

    BuiltReport {
        text: render_text(config, n_shards, cells, &groups),
        json,
    }
}

fn render_text(
    config: &CampaignConfig,
    n_shards: usize,
    cells: &[JsonValue],
    groups: &[GroupAggregate],
) -> String {
    let group_count = config.selectors.len() * config.factors.len();
    let mut out = String::new();
    let _ = writeln!(
        out,
        "campaign {} — machine {} nodes, {} shard(s) of {} s, {} cell(s)",
        config.name,
        config.machine_size,
        n_shards,
        config.shard_seconds,
        cells.len()
    );
    let _ = writeln!(out);
    let _ = writeln!(
        out,
        "{:<22} {:>6} {:>7} {:>9} {:>10} {:>9} {:>9} {:>8} {:>9} {:>10}",
        "selector", "factor", "shards", "jobs", "SLDwA", "switches", "compared", "optimal", "quality", "loss%"
    );
    for g in groups {
        let (compared, optimal, quality, loss) = match &g.exact {
            Some(e) => (
                e.compared.to_string(),
                e.optimal.to_string(),
                e.quality_mean().map(|q| format!("{q:.4}")).unwrap_or("-".into()),
                e.loss_mean().map(|l| format!("{l:+.2}")).unwrap_or("-".into()),
            ),
            None => ("-".into(), "-".into(), "-".into(), "-".into()),
        };
        let _ = writeln!(
            out,
            "{:<22} {:>6.2} {:>7} {:>9} {:>10.4} {:>9} {:>9} {:>8} {:>9} {:>10}",
            g.label,
            g.factor,
            g.shards,
            g.jobs,
            g.sldwa_mean(),
            g.switches,
            compared,
            optimal,
            quality,
            loss
        );
    }
    let degraded: Vec<(usize, &JsonValue)> = cells
        .iter()
        .enumerate()
        .filter(|(_, c)| record_status(c) != "ok")
        .collect();
    if !degraded.is_empty() {
        let crashed = degraded.iter().filter(|(_, c)| record_status(c) == "crashed").count();
        let _ = writeln!(out);
        let _ = writeln!(
            out,
            "failures: {} crashed, {} timed out (excluded from the means above)",
            crashed,
            degraded.len() - crashed
        );
        for (i, cell) in &degraded {
            let selector = cell.get("selector").and_then(JsonValue::as_str).unwrap_or("?");
            let mut line = format!(
                "  cell {:>4}  shard {:>4}  {}@{:.2}  {}  after {} attempt(s)",
                i,
                int(cell, "shard"),
                selector,
                num(cell, "factor"),
                record_status(cell),
                int(cell, "attempts"),
            );
            if let Some(p) = cell.get("panic").and_then(JsonValue::as_str) {
                let _ = write!(line, " — {p}");
            }
            let _ = writeln!(out, "{line}");
        }
    }
    let _ = writeln!(out);
    let _ = writeln!(out, "per-shard SLDwA (rows: shards; columns: selector@factor):");
    let mut header = format!("{:>7} {:>9}", "shard", "jobs");
    for g in groups {
        let _ = write!(header, " {:>22}", format!("{}@{:.2}", g.label, g.factor));
    }
    let _ = writeln!(out, "{header}");
    for chunk in cells.chunks(group_count.max(1)) {
        let Some(first) = chunk.first() else { continue };
        let jobs = chunk
            .iter()
            .find(|c| record_status(c) == "ok")
            .map(|c| int(c, "jobs"))
            .unwrap_or(0);
        let mut row = format!("{:>7} {:>9}", int(first, "shard"), jobs);
        for cell in chunk {
            match record_status(cell) {
                "ok" => {
                    let _ = write!(row, " {:>22.4}", num(cell, "sldwa"));
                }
                status => {
                    let _ = write!(row, " {status:>22}");
                }
            }
        }
        let _ = writeln!(out, "{row}");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::campaign::SelectorSpec;
    use dynp_sched::Policy;

    fn cell(shard: u64, selector: &str, factor: f64, sldwa: f64) -> JsonValue {
        JsonValue::object()
            .with("shard", shard)
            .with("from", shard * 100)
            .with("to", (shard + 1) * 100)
            .with("selector", selector)
            .with("factor", factor)
            .with("jobs", 10u64)
            .with("completed", 10u64)
            .with("skipped", 0u64)
            .with("sldwa", sldwa)
            .with("switches", 1u64)
            .with("steps", 5u64)
            .with(
                "exact",
                JsonValue::object()
                    .with("sampled", 2u64)
                    .with("compared", 2u64)
                    .with("optimal", 1u64)
                    .with("budget_hit", 1u64)
                    .with("no_incumbent", 0u64)
                    .with("quality_sum", 1.8f64)
                    .with("loss_sum", 20.0f64)
                    .with("nodes", 100u64)
                    .with("lp_iterations", 1000u64),
            )
    }

    fn test_config() -> CampaignConfig {
        CampaignConfig::new("t", 64)
            .with_selectors(vec![
                SelectorSpec::Fixed(Policy::Fcfs),
                SelectorSpec::dynp(),
            ])
            .with_factors(vec![1.0])
    }

    #[test]
    fn aggregates_means_from_sums() {
        let cells = vec![
            cell(0, "FCFS", 1.0, 2.0),
            cell(0, "dynP(SLDwA,simple)", 1.0, 1.5),
            cell(1, "FCFS", 1.0, 4.0),
            cell(1, "dynP(SLDwA,simple)", 1.0, 2.5),
        ];
        let built = build(&test_config(), 2, &cells);
        let overall = built.json.get("overall").unwrap().as_array().unwrap();
        assert_eq!(overall.len(), 2);
        let fcfs = &overall[0];
        assert_eq!(fcfs.get("selector").unwrap().as_str().unwrap(), "FCFS");
        assert_eq!(fcfs.get("sldwa_mean").unwrap().as_f64().unwrap(), 3.0);
        let exact = fcfs.get("exact").unwrap();
        assert_eq!(exact.get("compared").unwrap().as_u64().unwrap(), 4);
        assert_eq!(exact.get("quality_mean").unwrap().as_f64().unwrap(), 0.9);
        // Both outputs mention every selector.
        assert!(built.text.contains("FCFS"));
        assert!(built.text.contains("dynP(SLDwA,simple)"));
        dynp_obs::validate_json(&built.json.to_json()).unwrap();
    }

    #[test]
    fn per_shard_blocks_follow_cell_order() {
        let cells = vec![
            cell(0, "FCFS", 1.0, 2.0),
            cell(0, "dynP(SLDwA,simple)", 1.0, 1.5),
            cell(3, "FCFS", 1.0, 4.0),
            cell(3, "dynP(SLDwA,simple)", 1.0, 2.5),
        ];
        let built = build(&test_config(), 2, &cells);
        let per_shard = built.json.get("per_shard").unwrap().as_array().unwrap();
        assert_eq!(per_shard.len(), 2);
        assert_eq!(per_shard[0].get("shard").unwrap().as_u64().unwrap(), 0);
        assert_eq!(per_shard[1].get("shard").unwrap().as_u64().unwrap(), 3);
        let rows = per_shard[1].get("rows").unwrap().as_array().unwrap();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].get("sldwa").unwrap().as_f64().unwrap(), 4.0);
    }

    fn crashed_cell(shard: u64, selector: &str, factor: f64) -> JsonValue {
        JsonValue::object()
            .with("shard", shard)
            .with("from", shard * 100)
            .with("to", (shard + 1) * 100)
            .with("selector", selector)
            .with("factor", factor)
            .with("status", "crashed")
            .with("attempts", 2u64)
            .with("panic", "injected fault: panic in cell 2 (attempt 2)")
            .with("panic_at", "crates/exp/src/campaign.rs:1:1")
    }

    #[test]
    fn degraded_cells_feed_the_census_not_the_means() {
        let cells = vec![
            cell(0, "FCFS", 1.0, 2.0),
            cell(0, "dynP(SLDwA,simple)", 1.0, 1.5),
            crashed_cell(1, "FCFS", 1.0),
            cell(1, "dynP(SLDwA,simple)", 1.0, 2.5),
        ];
        let built = build(&test_config(), 2, &cells);
        let overall = built.json.get("overall").unwrap().as_array().unwrap();
        let fcfs = &overall[0];
        // Only shard 0 contributes: the mean is its value, not (2.0+0)/2.
        assert_eq!(fcfs.get("shards").unwrap().as_u64().unwrap(), 1);
        assert_eq!(fcfs.get("sldwa_mean").unwrap().as_f64().unwrap(), 2.0);
        assert_eq!(fcfs.get("crashed").unwrap().as_u64().unwrap(), 1);
        assert_eq!(fcfs.get("timed_out").unwrap().as_u64().unwrap(), 0);
        let dynp = &overall[1];
        assert_eq!(dynp.get("shards").unwrap().as_u64().unwrap(), 2);
        assert_eq!(dynp.get("crashed").unwrap().as_u64().unwrap(), 0);

        let failures = built.json.get("failures").unwrap();
        assert_eq!(failures.get("crashed").unwrap().as_u64().unwrap(), 1);
        assert_eq!(failures.get("timed_out").unwrap().as_u64().unwrap(), 0);
        let listed = failures.get("cells").unwrap().as_array().unwrap();
        assert_eq!(listed.len(), 1);
        assert_eq!(listed[0].get("cell").unwrap().as_u64().unwrap(), 2);
        assert_eq!(listed[0].get("status").unwrap().as_str().unwrap(), "crashed");
        assert_eq!(listed[0].get("attempts").unwrap().as_u64().unwrap(), 2);
        assert!(listed[0]
            .get("panic")
            .unwrap()
            .as_str()
            .unwrap()
            .contains("injected fault"));

        // Per-shard row: Null sldwa, jobs read from the ok sibling.
        let per_shard = built.json.get("per_shard").unwrap().as_array().unwrap();
        let shard1 = &per_shard[1];
        assert_eq!(shard1.get("jobs").unwrap().as_u64().unwrap(), 10);
        let rows = shard1.get("rows").unwrap().as_array().unwrap();
        assert!(matches!(rows[0].get("sldwa"), Some(JsonValue::Null)));
        assert_eq!(rows[0].get("status").unwrap().as_str().unwrap(), "crashed");
        assert_eq!(rows[1].get("status").unwrap().as_str().unwrap(), "ok");

        // Text: the failures block and the status in the matrix.
        assert!(built.text.contains("failures: 1 crashed, 0 timed out"));
        assert!(built.text.contains("crashed"));
        dynp_obs::validate_json(&built.json.to_json()).unwrap();
    }

    #[test]
    fn records_without_status_count_as_ok() {
        // Pre-failure-model checkpoints carry no `status` key.
        let cells = vec![
            cell(0, "FCFS", 1.0, 2.0),
            cell(0, "dynP(SLDwA,simple)", 1.0, 1.5),
        ];
        let built = build(&test_config(), 1, &cells);
        let failures = built.json.get("failures").unwrap();
        assert_eq!(failures.get("crashed").unwrap().as_u64().unwrap(), 0);
        assert_eq!(failures.get("timed_out").unwrap().as_u64().unwrap(), 0);
        assert!(failures.get("cells").unwrap().as_array().unwrap().is_empty());
        assert!(!built.text.contains("failures:"));
    }

    #[test]
    fn identical_cells_render_identical_bytes() {
        let cells = vec![
            cell(0, "FCFS", 1.0, 2.25),
            cell(0, "dynP(SLDwA,simple)", 1.0, 1.125),
        ];
        let a = build(&test_config(), 1, &cells);
        let b = build(&test_config(), 1, &cells);
        assert_eq!(a.text, b.text);
        assert_eq!(a.json.to_json(), b.json.to_json());
    }
}
