//! A small fixed-size worker pool with dynamic (self-scheduling) cell
//! pickup and per-item panic isolation.
//!
//! The vendored rayon stand-in splits its input into one contiguous chunk
//! per core, which load-balances badly when cells have very different
//! costs (an exact-comparison cell can be orders of magnitude slower than
//! a plain replay cell) and offers no control over the worker count. The
//! campaign runner needs both — heterogeneous cells *and* a `workers`
//! knob for the speedup experiments — so this pool hands out items one at
//! a time from a shared atomic cursor and collects results in input
//! order.
//!
//! **Panics do not abort the pool.** Each `f(i, item)` call runs under
//! [`call_caught`]: a panicking item yields [`SlotOutcome::Panicked`]
//! with the rendered payload and the `file:line` panic site, and every
//! other item — including ones later in the same worker's pickup
//! sequence — completes normally. Without this, one `unwrap` deep in a
//! solver would unwind through `thread::scope` and re-raise on the
//! caller, losing a whole campaign to one bad cell.

use std::cell::{Cell, RefCell};
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{mpsc, Once};

/// What happened to one input slot of [`run_indexed`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SlotOutcome<R> {
    /// `f` returned normally.
    Done(R),
    /// `f` panicked; the slot carries the caught panic instead of a
    /// result.
    Panicked(CaughtPanic),
}

impl<R> SlotOutcome<R> {
    /// The result, if the slot completed normally.
    pub fn into_done(self) -> Option<R> {
        match self {
            SlotOutcome::Done(r) => Some(r),
            SlotOutcome::Panicked(_) => None,
        }
    }
}

/// A panic caught by [`call_caught`], rendered to plain data.
///
/// Both fields are deterministic for a deterministic panic (same
/// message, same source location), which is what lets crashed campaign
/// cells checkpoint and resume byte-identically.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CaughtPanic {
    /// The panic payload, stringified (`&str`/`String` payloads pass
    /// through verbatim; anything else becomes a placeholder).
    pub payload: String,
    /// The `file:line` of the panic site, as reported by the panic
    /// hook — a deterministic hint in lieu of a full (address-randomized,
    /// non-reproducible) backtrace.
    pub location: String,
}

thread_local! {
    /// Depth of active [`call_caught`] scopes on this thread; the panic
    /// hook only intercepts when it is non-zero.
    static CAUGHT_DEPTH: Cell<u32> = const { Cell::new(0) };
    /// Panic site recorded by the hook for the innermost caught panic.
    static CAUGHT_SITE: RefCell<Option<String>> = const { RefCell::new(None) };
}

static HOOK: Once = Once::new();

/// Installs the process-global panic hook (once) that records the panic
/// site for caught scopes and stays out of the way — delegating to the
/// previously installed hook, default stderr report included — for
/// every other panic in the process.
fn ensure_hook() {
    HOOK.call_once(|| {
        let previous = panic::take_hook();
        panic::set_hook(Box::new(move |info| {
            if CAUGHT_DEPTH.with(Cell::get) > 0 {
                let site = info
                    .location()
                    .map(|l| format!("{}:{}", l.file(), l.line()));
                CAUGHT_SITE.with(|s| *s.borrow_mut() = site);
            } else {
                previous(info);
            }
        }));
    });
}

fn payload_string(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else {
        match payload.downcast_ref::<String>() {
            Some(s) => s.clone(),
            None => "non-string panic payload".to_string(),
        }
    }
}

/// Runs `f`, converting a panic into `Err(CaughtPanic)` instead of
/// unwinding further. The campaign retry loop uses this directly (one
/// catch per attempt); [`run_indexed`] wraps every item in it as the
/// outer safety net.
///
/// While a caught scope is active the panic hook records the panic site
/// silently instead of printing the default report — an isolated cell
/// failure is *data*, not console noise. Panics on threads without an
/// active scope keep the default behavior.
pub fn call_caught<R>(f: impl FnOnce() -> R) -> Result<R, CaughtPanic> {
    ensure_hook();
    CAUGHT_DEPTH.with(|c| c.set(c.get() + 1));
    let result = panic::catch_unwind(AssertUnwindSafe(f));
    CAUGHT_DEPTH.with(|c| c.set(c.get() - 1));
    result.map_err(|payload| CaughtPanic {
        payload: payload_string(payload.as_ref()),
        location: CAUGHT_SITE
            .with(|s| s.borrow_mut().take())
            .unwrap_or_else(|| "unknown".to_string()),
    })
}

/// Maps `f` over `items` on `workers` threads, returning one
/// [`SlotOutcome`] per item in input order. `f` receives
/// `(index, &item)`. With `workers <= 1` (or one item) the map runs
/// inline on the caller's thread with no thread overhead; panic
/// isolation applies on both paths.
pub fn run_indexed<T, R, F>(workers: usize, items: &[T], f: F) -> Vec<SlotOutcome<R>>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let workers = workers.max(1).min(items.len().max(1));
    if workers <= 1 {
        return items
            .iter()
            .enumerate()
            .map(|(i, t)| caught_outcome(|| f(i, t)))
            .collect();
    }
    let cursor = AtomicUsize::new(0);
    let (tx, rx) = mpsc::channel::<(usize, SlotOutcome<R>)>();
    std::thread::scope(|scope| {
        for _ in 0..workers {
            let tx = tx.clone();
            let cursor = &cursor;
            let f = &f;
            scope.spawn(move || loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                let Some(item) = items.get(i) else {
                    return;
                };
                // A closed channel means the collector is gone, which
                // cannot happen inside this scope; ignore the error to
                // avoid a panic path in workers.
                let _ = tx.send((i, caught_outcome(|| f(i, item))));
            });
        }
        drop(tx);
        let mut slots: Vec<Option<SlotOutcome<R>>> = (0..items.len()).map(|_| None).collect();
        for (i, r) in rx {
            slots[i] = Some(r);
        }
        // Every index is sent exactly once even when `f` panics (the
        // catch is inside the send), so an empty slot can only mean a
        // worker died outside the caught region — report it as a slot
        // failure instead of asserting.
        slots
            .into_iter()
            .map(|s| {
                s.unwrap_or_else(|| {
                    SlotOutcome::Panicked(CaughtPanic {
                        payload: "worker thread died without reporting a result".to_string(),
                        location: "dynp-exp::pool".to_string(),
                    })
                })
            })
            .collect()
    })
}

fn caught_outcome<R>(f: impl FnOnce() -> R) -> SlotOutcome<R> {
    match call_caught(f) {
        Ok(r) => SlotOutcome::Done(r),
        Err(p) => SlotOutcome::Panicked(p),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn done<R>(outcomes: Vec<SlotOutcome<R>>) -> Vec<R> {
        outcomes
            .into_iter()
            .map(|o| o.into_done().expect("slot completed"))
            .collect()
    }

    #[test]
    fn preserves_input_order() {
        let items: Vec<u64> = (0..100).collect();
        for workers in [1, 2, 4, 7] {
            let out = done(run_indexed(workers, &items, |i, &x| (i as u64) * 1000 + x * 2));
            let expect: Vec<u64> = (0..100).map(|i| i * 1000 + i * 2).collect();
            assert_eq!(out, expect, "workers={workers}");
        }
    }

    #[test]
    fn empty_input_is_fine() {
        let out: Vec<SlotOutcome<u32>> = run_indexed(4, &[] as &[u32], |_, &x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn zero_workers_degrades_to_inline() {
        let out = done(run_indexed(0, &[1u32, 2, 3], |_, &x| x + 1));
        assert_eq!(out, vec![2, 3, 4]);
    }

    #[test]
    fn more_workers_than_items_is_fine() {
        let out = done(run_indexed(64, &[5u32], |_, &x| x));
        assert_eq!(out, vec![5]);
    }

    #[test]
    fn a_panicking_item_is_isolated_from_the_rest() {
        let items: Vec<u32> = (0..20).collect();
        for workers in [1, 3] {
            let out = run_indexed(workers, &items, |_, &x| {
                assert!(x != 7, "injected failure at item 7");
                x * 10
            });
            assert_eq!(out.len(), 20, "workers={workers}");
            for (i, slot) in out.iter().enumerate() {
                match slot {
                    SlotOutcome::Done(v) => {
                        assert_ne!(i, 7);
                        assert_eq!(*v, (i as u32) * 10);
                    }
                    SlotOutcome::Panicked(p) => {
                        assert_eq!(i, 7);
                        assert!(p.payload.contains("injected failure at item 7"), "{p:?}");
                        assert!(p.location.contains("pool.rs"), "{p:?}");
                    }
                }
            }
        }
    }

    #[test]
    fn call_caught_passes_results_and_renders_payloads() {
        assert_eq!(call_caught(|| 41 + 1), Ok(42));
        let err = call_caught(|| panic!("boom {}", 3)).unwrap_err();
        assert_eq!(err.payload, "boom 3");
        assert!(err.location.contains("pool.rs"), "{}", err.location);
    }

    #[test]
    fn caught_panic_is_deterministic_across_attempts() {
        fn boom() -> u32 {
            panic!("same message")
        }
        let first = call_caught(boom).unwrap_err();
        let second = call_caught(boom).unwrap_err();
        assert_eq!(first, second);
    }
}
