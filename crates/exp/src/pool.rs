//! A small fixed-size worker pool with dynamic (self-scheduling) cell
//! pickup.
//!
//! The vendored rayon stand-in splits its input into one contiguous chunk
//! per core, which load-balances badly when cells have very different
//! costs (an exact-comparison cell can be orders of magnitude slower than
//! a plain replay cell) and offers no control over the worker count. The
//! campaign runner needs both — heterogeneous cells *and* a `workers`
//! knob for the speedup experiments — so this pool hands out items one at
//! a time from a shared atomic cursor and collects results in input
//! order.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;

/// Maps `f` over `items` on `workers` threads, returning results in input
/// order. `f` receives `(index, &item)`. With `workers <= 1` (or one
/// item) the map runs inline on the caller's thread with no thread
/// overhead.
pub fn run_indexed<T, R, F>(workers: usize, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let workers = workers.max(1).min(items.len().max(1));
    if workers <= 1 {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }
    let cursor = AtomicUsize::new(0);
    let (tx, rx) = mpsc::channel::<(usize, R)>();
    std::thread::scope(|scope| {
        for _ in 0..workers {
            let tx = tx.clone();
            let cursor = &cursor;
            let f = &f;
            scope.spawn(move || loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                let Some(item) = items.get(i) else {
                    return;
                };
                // A closed channel means the collector is gone, which
                // cannot happen inside this scope; ignore the error to
                // avoid a panic path in workers.
                let _ = tx.send((i, f(i, item)));
            });
        }
        drop(tx);
        let mut slots: Vec<Option<R>> = (0..items.len()).map(|_| None).collect();
        for (i, r) in rx {
            slots[i] = Some(r);
        }
        slots
            .into_iter()
            .map(|s| s.expect("every index sent exactly once"))
            .collect()
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_input_order() {
        let items: Vec<u64> = (0..100).collect();
        for workers in [1, 2, 4, 7] {
            let out = run_indexed(workers, &items, |i, &x| (i as u64) * 1000 + x * 2);
            let expect: Vec<u64> = (0..100).map(|i| i * 1000 + i * 2).collect();
            assert_eq!(out, expect, "workers={workers}");
        }
    }

    #[test]
    fn empty_input_is_fine() {
        let out: Vec<u32> = run_indexed(4, &[] as &[u32], |_, &x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn zero_workers_degrades_to_inline() {
        let out = run_indexed(0, &[1u32, 2, 3], |_, &x| x + 1);
        assert_eq!(out, vec![2, 3, 4]);
    }

    #[test]
    fn more_workers_than_items_is_fine() {
        let out = run_indexed(64, &[5u32], |_, &x| x);
        assert_eq!(out, vec![5]);
    }
}
