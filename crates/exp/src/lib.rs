//! Parallel, resumable experiment campaigns for the dynP reproduction.
//!
//! The paper's §4 evaluation is a *batch* of experiments: weekly slices of
//! the CTC trace, each replayed under several schedulers and runtime
//! over-estimation factors, with a sample of quasi-off-line snapshots
//! solved exactly by CPLEX under an interruption budget. This crate turns
//! that protocol into a first-class API:
//!
//! * [`campaign`] — [`CampaignConfig`]/[`ExactConfig`] builders, the
//!   [`SelectorSpec`] sweep axis, and [`run_campaign`], which fans the
//!   `shard × selector × factor` cross-product over a worker pool,
//! * [`checkpoint`] — the self-validating JSONL record format that makes
//!   a killed campaign resume exactly where it died, with a
//!   byte-identical final report,
//! * [`report`] — the fold from checkpointed cells into the paper-style
//!   comparison tables (text + strict JSON),
//! * [`pool`] — the small self-scheduling worker pool behind the fan-out.
//!
//! ```no_run
//! use dynp_exp::{run_campaign, CampaignConfig};
//! use dynp_trace::{CtcModel, WorkloadModel};
//!
//! let jobs = CtcModel::default().generate(2_000, 42).jobs;
//! let config = CampaignConfig::new("ctc-weekly", 430).with_workers(4);
//! let outcome = run_campaign(&jobs, &config).expect("campaign runs");
//! println!("{} cells -> {:?}", outcome.cells_total, outcome.report_json_path);
//! ```

pub mod campaign;
pub mod checkpoint;
pub mod pool;
pub mod report;

pub use campaign::{
    run_campaign, CampaignConfig, CampaignError, CampaignOutcome, CellStatus, ExactConfig,
    FaultInjection, FaultKind, FaultPlan, SelectorSpec,
};
pub use checkpoint::{CheckpointLog, LoadedCheckpoint};
pub use report::BuiltReport;
