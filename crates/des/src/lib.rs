//! A small, deterministic discrete-event simulation kernel.
//!
//! The paper's evaluation "use\[s\] the CTC job trace as input for a discrete
//! event simulation" (§1). This crate is that substrate: a time-ordered
//! event queue with stable FIFO tie-breaking and a driver loop. It is
//! generic over the event payload so the RMS simulator (`dynp-sim`) and any
//! future model (network, I/O) can share it.
//!
//! Determinism guarantees:
//! * events at the same time stamp are delivered in insertion order,
//! * the clock never moves backwards (scheduling an event in the past is a
//!   caller bug and panics),
//! * no wall-clock or randomness is involved anywhere in the kernel.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// A scheduled event: delivery time plus payload.
#[derive(Clone, Debug)]
struct Scheduled<E> {
    time: u64,
    /// Monotone insertion counter for FIFO tie-breaking.
    seq: u64,
    payload: E,
}

impl<E> PartialEq for Scheduled<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Scheduled<E> {}

impl<E> Ord for Scheduled<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; reverse to pop the earliest first.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}
impl<E> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// A time-ordered event queue with a simulation clock.
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Scheduled<E>>,
    next_seq: u64,
    now: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        EventQueue::new()
    }
}

impl<E> EventQueue<E> {
    /// An empty queue with the clock at 0.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
            now: 0,
        }
    }

    /// Current simulation time: the delivery time of the last popped event
    /// (0 before any pop).
    pub fn now(&self) -> u64 {
        self.now
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Schedules `payload` for delivery at absolute `time`.
    ///
    /// # Panics
    /// Panics if `time` lies before the current clock — events cannot be
    /// delivered in the past.
    pub fn schedule(&mut self, time: u64, payload: E) {
        assert!(
            time >= self.now,
            "scheduling event at {time} before now {}",
            self.now
        );
        self.heap.push(Scheduled {
            time,
            seq: self.next_seq,
            payload,
        });
        self.next_seq += 1;
    }

    /// Pops the earliest event, advancing the clock to its time.
    pub fn pop(&mut self) -> Option<(u64, E)> {
        let ev = self.heap.pop()?;
        debug_assert!(ev.time >= self.now);
        self.now = ev.time;
        Some((ev.time, ev.payload))
    }

    /// Delivery time of the next event without popping it.
    pub fn peek_time(&self) -> Option<u64> {
        self.heap.peek().map(|e| e.time)
    }
}

/// A simulation model: reacts to events, possibly scheduling new ones.
pub trait Model {
    /// The event payload type.
    type Event;

    /// Handles one event at time `now`; new events go into `queue`.
    fn handle(&mut self, now: u64, event: Self::Event, queue: &mut EventQueue<Self::Event>);
}

/// Drives `model` until the event queue is empty, returning the final
/// simulation time. This is the whole main loop of a discrete-event
/// simulation; models stay free of queue mechanics.
///
/// When a global [`dynp_obs`] recorder is installed, the loop counts
/// dispatched events (`des.events`) and tracks the pending-queue
/// high-water mark (`des.queue_depth`); handles are fetched once, so the
/// per-event cost is at most two atomic updates.
///
/// The loop also polls the thread's cooperative [`dynp_obs::cancel`]
/// token between events and winds down early once it is cancelled (a
/// campaign cell past its wall-clock deadline). The partial results are
/// the caller's to discard — an interrupted simulation is not a finished
/// one — which is exactly what the campaign runner does when it records
/// the cell as timed out.
pub fn run_to_completion<M: Model>(model: &mut M, queue: &mut EventQueue<M::Event>) -> u64 {
    // One traced span per drain: inside a campaign cell this is the
    // "DES epoch" child of the replay span.
    let _run_span = dynp_obs::span("des.run");
    let obs = dynp_obs::recorder();
    let m_events = obs.map(|r| r.counter("des.events"));
    let m_depth = obs.map(|r| r.gauge("des.queue_depth"));
    while let Some((now, event)) = queue.pop() {
        if let Some(m) = &m_events {
            m.inc();
        }
        model.handle(now, event, queue);
        if let Some(m) = &m_depth {
            m.set(queue.len() as i64);
        }
        if dynp_obs::cancelled() {
            break;
        }
    }
    queue.now()
}

/// Drives `model` until the queue is empty or the clock passes `deadline`;
/// events scheduled after the deadline remain in the queue.
///
/// Instrumented like [`run_to_completion`], against the same
/// `des.events` / `des.queue_depth` metrics, and cancellable through the
/// same cooperative token.
pub fn run_until<M: Model>(model: &mut M, queue: &mut EventQueue<M::Event>, deadline: u64) -> u64 {
    let obs = dynp_obs::recorder();
    let m_events = obs.map(|r| r.counter("des.events"));
    let m_depth = obs.map(|r| r.gauge("des.queue_depth"));
    while let Some(t) = queue.peek_time() {
        if t > deadline {
            break;
        }
        let (now, event) = queue.pop().expect("peeked event exists");
        if let Some(m) = &m_events {
            m.inc();
        }
        model.handle(now, event, queue);
        if let Some(m) = &m_depth {
            m.set(queue.len() as i64);
        }
        if dynp_obs::cancelled() {
            break;
        }
    }
    queue.now()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(30, "c");
        q.schedule(10, "a");
        q.schedule(20, "b");
        assert_eq!(q.pop(), Some((10, "a")));
        assert_eq!(q.pop(), Some((20, "b")));
        assert_eq!(q.pop(), Some((30, "c")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn ties_are_fifo() {
        let mut q = EventQueue::new();
        q.schedule(5, 1);
        q.schedule(5, 2);
        q.schedule(5, 3);
        assert_eq!(q.pop().unwrap().1, 1);
        assert_eq!(q.pop().unwrap().1, 2);
        assert_eq!(q.pop().unwrap().1, 3);
    }

    #[test]
    fn clock_advances_with_pops() {
        let mut q = EventQueue::new();
        assert_eq!(q.now(), 0);
        q.schedule(100, ());
        q.pop();
        assert_eq!(q.now(), 100);
    }

    #[test]
    #[should_panic(expected = "before now")]
    fn scheduling_in_the_past_panics() {
        let mut q = EventQueue::new();
        q.schedule(100, ());
        q.pop();
        q.schedule(50, ());
    }

    #[test]
    fn scheduling_at_now_is_allowed() {
        let mut q = EventQueue::new();
        q.schedule(100, 1);
        q.pop();
        q.schedule(100, 2);
        assert_eq!(q.pop(), Some((100, 2)));
    }

    /// A model that counts down: each event re-schedules a smaller one.
    struct Countdown {
        seen: Vec<(u64, u32)>,
    }

    impl Model for Countdown {
        type Event = u32;
        fn handle(&mut self, now: u64, event: u32, queue: &mut EventQueue<u32>) {
            self.seen.push((now, event));
            if event > 0 {
                queue.schedule(now + 10, event - 1);
            }
        }
    }

    #[test]
    fn run_to_completion_drains_cascade() {
        let mut model = Countdown { seen: vec![] };
        let mut q = EventQueue::new();
        q.schedule(0, 3u32);
        let end = run_to_completion(&mut model, &mut q);
        assert_eq!(end, 30);
        assert_eq!(model.seen, vec![(0, 3), (10, 2), (20, 1), (30, 0)]);
        assert!(q.is_empty());
    }

    /// An installed, already-cancelled token stops the drain after one
    /// event: the wall-clock budget the campaign runner enforces.
    #[test]
    fn cancelled_token_stops_the_event_loop() {
        let token = dynp_obs::CancelToken::new();
        token.cancel();
        let _guard = dynp_obs::install_cancel(&token);
        let mut model = Countdown { seen: vec![] };
        let mut q = EventQueue::new();
        q.schedule(0, 100u32);
        run_to_completion(&mut model, &mut q);
        assert_eq!(model.seen.len(), 1, "one event dispatched, then cancelled");
        assert!(!q.is_empty(), "remaining events stay queued");

        let mut q2 = EventQueue::new();
        q2.schedule(0, 100u32);
        let mut model2 = Countdown { seen: vec![] };
        run_until(&mut model2, &mut q2, 1_000_000);
        assert_eq!(model2.seen.len(), 1);
    }

    #[test]
    fn run_until_stops_at_deadline() {
        let mut model = Countdown { seen: vec![] };
        let mut q = EventQueue::new();
        q.schedule(0, 5u32);
        run_until(&mut model, &mut q, 25);
        // Events at 0, 10, 20 processed; 30 remains.
        assert_eq!(model.seen.len(), 3);
        assert_eq!(q.peek_time(), Some(30));
    }

    #[test]
    fn len_and_is_empty_track_queue() {
        let mut q: EventQueue<()> = EventQueue::new();
        assert!(q.is_empty());
        q.schedule(1, ());
        q.schedule(2, ());
        assert_eq!(q.len(), 2);
        q.pop();
        assert_eq!(q.len(), 1);
    }
}
