//! # dynp-watch — live telemetry server for dynp-rs runs
//!
//! A std-only (plain [`std::net::TcpListener`] + threads, matching the
//! workspace's vendored-dependencies policy) in-process HTTP server
//! that any bench binary or campaign can start to expose what the
//! process-global [`dynp_obs`] recorder sees *while the run is still
//! going*, instead of waiting for the end-of-run result files:
//!
//! | Endpoint | Serves |
//! |---|---|
//! | `GET /metrics` | live OpenMetrics via [`dynp_obs::expo::render`] |
//! | `GET /healthz` | liveness (`200 ok` while the server runs) |
//! | `GET /readyz` | readiness (`503` until a recorder is installed) |
//! | `GET /progress` | campaign cells done/total/in-flight + ETA (JSON) |
//! | `GET /alerts` | online [`dynp_obs::alert::Rule`] states (JSON) |
//! | `GET /events?since=<seq>` | long-poll tail of the event sink by logical clock |
//!
//! Start one with [`WatchServer::start`] (bind `127.0.0.1:0` for an
//! ephemeral port), read the bound address from
//! [`WatchServer::local_addr`], and call [`WatchServer::shutdown`] to
//! stop it and collect the alert summary. The server is pull-only and
//! stateless: every request samples the recorder at response time, so
//! not starting a server adds zero overhead to instrumented code.
//!
//! ```no_run
//! use dynp_watch::{default_rules, WatchServer};
//!
//! let server = WatchServer::start("127.0.0.1:0", default_rules())?;
//! eprintln!("watch: serving on http://{}", server.local_addr());
//! // ... run the campaign ...
//! let summary = server.shutdown();
//! eprintln!("watch: alerts {}", summary.to_json());
//! # Ok::<(), std::io::Error>(())
//! ```

pub mod http;
pub mod progress;
pub mod server;

pub use progress::progress_json;
pub use server::{default_rules, WatchServer};
