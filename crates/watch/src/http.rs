//! A deliberately minimal HTTP/1.1 slice: parse one `GET` request line,
//! write one response, close the connection.
//!
//! The watch server is a diagnostics side-channel for `curl` and simple
//! scrapers, not a web framework: every response carries
//! `Connection: close`, bodies are always produced whole, and anything
//! the parser does not understand is answered with a 4xx instead of
//! guessed at. Keeping the surface this small is what lets the crate
//! stay std-only.

use std::io::{BufRead, BufReader, Read, Write};

/// Upper bound on the request head (request line + headers) we are
/// willing to buffer; enough for any sane `GET`, small enough that a
/// misdirected upload cannot balloon memory.
const MAX_HEAD_BYTES: u64 = 16 * 1024;

/// One parsed request: method, decoded path, and the raw query pairs.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Request {
    /// HTTP method, e.g. `GET`.
    pub method: String,
    /// Path without the query string, e.g. `/events`.
    pub path: String,
    /// Query pairs in order, e.g. `[("since", "42")]`; no percent
    /// decoding (the served API never needs it).
    pub query: Vec<(String, String)>,
}

impl Request {
    /// First value of query parameter `key`, if present.
    pub fn query_value(&self, key: &str) -> Option<&str> {
        self.query
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    /// First value of query parameter `key`, parsed as `u64`.
    pub fn query_u64(&self, key: &str) -> Option<u64> {
        self.query_value(key)?.parse().ok()
    }
}

/// Reads one request head from `stream` and parses the request line;
/// headers are consumed (up to the blank line) and discarded.
pub fn read_request(stream: &mut impl Read) -> Result<Request, String> {
    let mut reader = BufReader::new(stream.take(MAX_HEAD_BYTES));
    let mut line = String::new();
    reader
        .read_line(&mut line)
        .map_err(|e| format!("reading request line: {e}"))?;
    let request = parse_request_line(line.trim_end())?;
    // Drain headers so the peer sees us consume its full request before
    // the response lands (some clients treat early close as an error).
    loop {
        let mut header = String::new();
        match reader.read_line(&mut header) {
            Ok(0) => break,
            Ok(_) if header.trim_end().is_empty() => break,
            Ok(_) => {}
            Err(_) => break,
        }
    }
    Ok(request)
}

/// Parses `"GET /path?k=v HTTP/1.1"`.
pub fn parse_request_line(line: &str) -> Result<Request, String> {
    let mut parts = line.split_whitespace();
    let method = parts.next().ok_or("empty request line")?.to_string();
    let target = parts.next().ok_or("request line without a target")?;
    match parts.next() {
        Some(v) if v.starts_with("HTTP/") => {}
        _ => return Err(format!("not an HTTP request line: {line:?}")),
    }
    let (path, query_str) = match target.split_once('?') {
        Some((p, q)) => (p, q),
        None => (target, ""),
    };
    let query = query_str
        .split('&')
        .filter(|pair| !pair.is_empty())
        .map(|pair| match pair.split_once('=') {
            Some((k, v)) => (k.to_string(), v.to_string()),
            None => (pair.to_string(), String::new()),
        })
        .collect();
    Ok(Request {
        method,
        path: path.to_string(),
        query,
    })
}

/// Reason phrases for the handful of statuses the server uses.
fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

/// Writes one complete `Connection: close` response.
pub fn write_response(
    stream: &mut impl Write,
    status: u16,
    content_type: &str,
    body: &str,
) -> std::io::Result<()> {
    write!(
        stream,
        "HTTP/1.1 {status} {}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        reason(status),
        body.len(),
    )?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_plain_and_query_targets() {
        let r = parse_request_line("GET /metrics HTTP/1.1").unwrap();
        assert_eq!(r.method, "GET");
        assert_eq!(r.path, "/metrics");
        assert!(r.query.is_empty());

        let r = parse_request_line("GET /events?since=42&x HTTP/1.0").unwrap();
        assert_eq!(r.path, "/events");
        assert_eq!(r.query_u64("since"), Some(42));
        assert_eq!(r.query_value("x"), Some(""));
        assert_eq!(r.query_value("missing"), None);
        assert_eq!(r.query_u64("x"), None, "empty value is not a number");
    }

    #[test]
    fn rejects_garbage_request_lines() {
        assert!(parse_request_line("").is_err());
        assert!(parse_request_line("GET").is_err());
        assert!(parse_request_line("GET /x").is_err());
        assert!(parse_request_line("GET /x SMTP/1.0").is_err());
    }

    #[test]
    fn read_request_consumes_headers() {
        let raw = b"GET /healthz HTTP/1.1\r\nHost: x\r\nAccept: */*\r\n\r\n";
        let mut cursor = std::io::Cursor::new(raw.to_vec());
        let r = read_request(&mut cursor).unwrap();
        assert_eq!(r.path, "/healthz");
    }

    #[test]
    fn responses_are_well_formed() {
        let mut out = Vec::new();
        write_response(&mut out, 200, "text/plain", "ok\n").unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("Content-Length: 3\r\n"));
        assert!(text.contains("Connection: close\r\n"));
        assert!(text.ends_with("\r\n\r\nok\n"));
    }
}
