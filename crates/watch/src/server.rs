//! The watch server proper: a `TcpListener` accept loop, a
//! thread-per-connection request handler, and a sampling alert tick.
//!
//! ## Threading model
//!
//! Three kinds of threads, all owned by [`WatchServer`]:
//!
//! * one **accept** thread runs a non-blocking `accept()` loop, polling
//!   a shared stop flag every ~20 ms so shutdown never waits on a
//!   listener blocked in the kernel;
//! * one short-lived **connection** thread per request (requests are
//!   single-shot `GET`s with `Connection: close`, so there is no
//!   keep-alive state to manage). Connection threads are detached; the
//!   only long-lived handler — the `/events` long-poll — re-checks the
//!   stop flag every 25 ms and gives up after 2 s, so no detached
//!   thread outlives shutdown by more than a poll interval;
//! * one **alert tick** thread evaluates the [`AlertSet`] against the
//!   global recorder on a fixed period, emitting `alert` events on
//!   state transitions.
//!
//! Everything reads the process-global [`dynp_obs::recorder`]; the
//! server holds no metric state of its own, which is why starting it is
//! cheap and *not* starting it costs the instrumented code nothing.

use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread;
use std::time::{Duration, Instant};

use dynp_obs::{expo, AlertSet, JsonValue, Recorder, Rule};

use crate::http::{read_request, write_response, Request};
use crate::progress::progress_json;

/// How often the accept loop re-checks the stop flag.
const ACCEPT_POLL: Duration = Duration::from_millis(20);
/// How often a `/events` long-poll re-checks for news (and the stop
/// flag).
const EVENTS_POLL: Duration = Duration::from_millis(25);
/// Longest a `/events` long-poll waits before answering empty-handed.
const EVENTS_WINDOW: Duration = Duration::from_secs(2);
/// Default alert evaluation period.
const DEFAULT_TICK: Duration = Duration::from_millis(250);
/// Per-connection socket timeout: a stalled peer cannot pin a handler
/// thread.
const SOCKET_TIMEOUT: Duration = Duration::from_millis(500);
/// Lines the recorder's live-tail side ring keeps for `/events` when
/// the primary sink streams to a file.
const EVENTS_TAIL: usize = 4096;

/// The OpenMetrics content type `expo::render` output is served under.
const OPENMETRICS: &str = "application/openmetrics-text; version=1.0.0; charset=utf-8";
const JSON: &str = "application/json";
const PLAIN: &str = "text/plain; charset=utf-8";

/// The default rule set bench binaries install with `--watch`.
///
/// The `campaign-progress-selftest` rule is intentionally trivial — it
/// fires as soon as the first cell completes — so every watched run
/// demonstrably exercises the alert path end to end (a run whose
/// `/alerts` never fired anything is a run where alerting is broken,
/// not healthy).
///
/// `campaign-degraded-cells` watches the `exp.cells_degraded` gauge the
/// campaign runner maintains: any cell that stays crashed or timed out
/// after its retry budget raises the alert, so a sweep that silently
/// lost cells cannot look healthy from `/alerts`.
pub fn default_rules() -> Vec<Rule> {
    vec![
        Rule::gauge_above("campaign-progress-selftest", "exp.cells_done", 0),
        Rule::gauge_above("campaign-degraded-cells", "exp.cells_degraded", 0),
        Rule::counter_rate("milp-budget-exhaustion", "milp.budget_exhausted", 0.5),
        Rule::high_water_above("milp-open-list-high-water", "milp.open_nodes", 100_000),
        Rule::p99_above("cell-latency-p99", "exp.cell", 60_000_000_000),
    ]
}

/// A running telemetry server; dropping it (or calling
/// [`WatchServer::shutdown`]) stops all of its threads.
#[derive(Debug)]
pub struct WatchServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    alerts: Arc<Mutex<AlertSet>>,
    accept: Option<thread::JoinHandle<()>>,
    tick: Option<thread::JoinHandle<()>>,
}

impl WatchServer {
    /// Binds `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port) and
    /// starts serving with the default alert tick period.
    pub fn start(addr: impl ToSocketAddrs, rules: Vec<Rule>) -> io::Result<WatchServer> {
        WatchServer::start_with_tick(addr, rules, DEFAULT_TICK)
    }

    /// [`WatchServer::start`] with an explicit alert tick period (tests
    /// use a fast tick).
    pub fn start_with_tick(
        addr: impl ToSocketAddrs,
        rules: Vec<Rule>,
        tick: Duration,
    ) -> io::Result<WatchServer> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let alerts = Arc::new(Mutex::new(AlertSet::new(rules)));

        // Bench runs stream events to rotating files, which hold no
        // in-memory buffer for `/events` to read; keep a bounded side
        // tail of recent lines on the recorder for the tail endpoint.
        if let Some(r) = dynp_obs::recorder() {
            r.set_event_tail(EVENTS_TAIL);
        }

        let accept = {
            let stop = Arc::clone(&stop);
            let alerts = Arc::clone(&alerts);
            thread::Builder::new()
                .name("watch-accept".into())
                .spawn(move || accept_loop(&listener, &stop, &alerts))?
        };
        let tick_handle = {
            let stop = Arc::clone(&stop);
            let alerts = Arc::clone(&alerts);
            thread::Builder::new()
                .name("watch-alerts".into())
                .spawn(move || alert_loop(&stop, &alerts, tick))?
        };
        Ok(WatchServer {
            addr,
            stop,
            alerts,
            accept: Some(accept),
            tick: Some(tick_handle),
        })
    }

    /// The bound address — the actual port when started on port 0.
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Current alert state, as served on `GET /alerts`.
    pub fn alerts_json(&self) -> JsonValue {
        self.alerts.lock().unwrap().to_json()
    }

    /// Stops the accept and tick threads, waits for them, and returns
    /// the alert summary (also appended to the event log as an
    /// `alert.summary` event so offline analysis sees it).
    pub fn shutdown(mut self) -> JsonValue {
        self.stop_threads();
        let summary = self.alerts.lock().unwrap().summary();
        if let Some(r) = dynp_obs::recorder() {
            r.event("alert.summary")
                .kv("summary", summary.clone())
                .emit();
        }
        summary
    }

    fn stop_threads(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        if let Some(h) = self.tick.take() {
            let _ = h.join();
        }
    }
}

impl Drop for WatchServer {
    fn drop(&mut self) {
        // Best effort for the non-`shutdown()` path (e.g. unwinding):
        // stop the threads, skip the summary.
        self.stop_threads();
    }
}

fn accept_loop(listener: &TcpListener, stop: &Arc<AtomicBool>, alerts: &Arc<Mutex<AlertSet>>) {
    while !stop.load(Ordering::Relaxed) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                let stop = Arc::clone(stop);
                let alerts = Arc::clone(alerts);
                // Detached: `handle_connection` is bounded by the
                // socket timeout and the long-poll window, both of
                // which respect `stop`.
                let _ = thread::Builder::new()
                    .name("watch-conn".into())
                    .spawn(move || handle_connection(stream, &stop, &alerts));
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => thread::sleep(ACCEPT_POLL),
            Err(_) => thread::sleep(ACCEPT_POLL),
        }
    }
}

fn alert_loop(stop: &Arc<AtomicBool>, alerts: &Arc<Mutex<AlertSet>>, tick: Duration) {
    while !stop.load(Ordering::Relaxed) {
        if let Some(r) = dynp_obs::recorder() {
            alerts.lock().unwrap().evaluate(r);
        }
        // Sleep in short slices so shutdown is never gated on a long
        // tick period.
        let deadline = Instant::now() + tick;
        while Instant::now() < deadline && !stop.load(Ordering::Relaxed) {
            thread::sleep(ACCEPT_POLL.min(tick));
        }
    }
}

fn handle_connection(mut stream: TcpStream, stop: &AtomicBool, alerts: &Mutex<AlertSet>) {
    let _ = stream.set_read_timeout(Some(SOCKET_TIMEOUT));
    let _ = stream.set_write_timeout(Some(SOCKET_TIMEOUT));
    let request = match read_request(&mut stream) {
        Ok(r) => r,
        Err(e) => {
            let _ = write_response(&mut stream, 400, PLAIN, &format!("bad request: {e}\n"));
            return;
        }
    };
    let (status, content_type, body) = route(&request, stop, alerts);
    let _ = write_response(&mut stream, status, content_type, &body);
}

fn route(
    request: &Request,
    stop: &AtomicBool,
    alerts: &Mutex<AlertSet>,
) -> (u16, &'static str, String) {
    if request.method != "GET" {
        return (405, PLAIN, "only GET is served here\n".into());
    }
    let recorder = dynp_obs::recorder();
    match request.path.as_str() {
        "/healthz" => (200, PLAIN, "ok\n".into()),
        "/readyz" => match recorder {
            Some(_) => (200, PLAIN, "ready\n".into()),
            None => (503, PLAIN, "no recorder installed\n".into()),
        },
        "/metrics" => match recorder {
            Some(r) => (200, OPENMETRICS, expo::render(r)),
            None => (503, PLAIN, "no recorder installed\n".into()),
        },
        "/progress" => match recorder {
            Some(r) => (200, JSON, progress_json(r).to_json()),
            None => (503, PLAIN, "no recorder installed\n".into()),
        },
        "/alerts" => (200, JSON, alerts.lock().unwrap().to_json().to_json()),
        "/events" => match recorder {
            Some(r) => {
                let since = request.query_u64("since").unwrap_or(0);
                (200, JSON, events_body(r, since, stop))
            }
            None => (503, PLAIN, "no recorder installed\n".into()),
        },
        _ => (404, PLAIN, "unknown path\n".into()),
    }
}

/// The `/events?since=<seq>` long-poll: waits up to [`EVENTS_WINDOW`]
/// for at least one buffered event with `seq >= since`, then answers
/// with everything available and the `next` cursor to poll from.
///
/// An empty `events` array with `next == since` therefore means "caught
/// up"; `next > since` with missing sequence numbers means a bounded
/// ring sink dropped lines in between (the exposed
/// `dynp_obs_events_dropped` gauge quantifies it).
fn events_body(recorder: &Recorder, since: u64, stop: &AtomicBool) -> String {
    let deadline = Instant::now() + EVENTS_WINDOW;
    let mut lines = recorder.events_since(since);
    while lines.is_empty() && Instant::now() < deadline && !stop.load(Ordering::Relaxed) {
        thread::sleep(EVENTS_POLL);
        lines = recorder.events_since(since);
    }
    // `next_seq` is read after the lines so the cursor never skips an
    // event that was emitted between the two reads.
    let next = lines
        .iter()
        .filter_map(|l| dynp_obs::parse_json(l).ok())
        .filter_map(|v| v.get("seq").and_then(JsonValue::as_u64))
        .max()
        .map_or(since, |max_seen| max_seen + 1);
    // Event lines are already valid JSON objects; splice them verbatim
    // instead of re-serializing.
    let mut body = String::with_capacity(64 + lines.iter().map(|l| l.len() + 1).sum::<usize>());
    body.push_str("{\"since\":");
    body.push_str(&since.to_string());
    body.push_str(",\"next\":");
    body.push_str(&next.to_string());
    body.push_str(",\"events\":[");
    for (i, line) in lines.iter().enumerate() {
        if i > 0 {
            body.push(',');
        }
        body.push_str(line);
    }
    body.push_str("]}");
    body
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Read;

    /// Plain-socket HTTP GET against a test server.
    fn get(addr: SocketAddr, target: &str) -> (u16, String) {
        let mut stream = TcpStream::connect(addr).unwrap();
        use std::io::Write as _;
        write!(stream, "GET {target} HTTP/1.1\r\nHost: t\r\n\r\n").unwrap();
        let mut raw = String::new();
        stream.read_to_string(&mut raw).unwrap();
        let status: u16 = raw
            .split_whitespace()
            .nth(1)
            .and_then(|s| s.parse().ok())
            .unwrap();
        let body = raw
            .split_once("\r\n\r\n")
            .map(|(_, b)| b.to_string())
            .unwrap_or_default();
        (status, body)
    }

    // These tests only hit routes that do not depend on the
    // process-global recorder (which other tests in the workspace own);
    // full end-to-end coverage lives in `tests/watch.rs`.

    #[test]
    fn serves_health_and_alerts_and_rejects_unknowns() {
        let server = WatchServer::start("127.0.0.1:0", default_rules()).unwrap();
        let addr = server.local_addr();

        let (status, body) = get(addr, "/healthz");
        assert_eq!((status, body.as_str()), (200, "ok\n"));

        let (status, body) = get(addr, "/alerts");
        assert_eq!(status, 200);
        dynp_obs::validate_json(&body).unwrap();
        assert!(body.contains("campaign-progress-selftest"));

        let (status, _) = get(addr, "/nope");
        assert_eq!(status, 404);

        let summary = server.shutdown();
        dynp_obs::validate_json(&summary.to_json()).unwrap();
    }

    #[test]
    fn non_get_methods_are_refused() {
        let server = WatchServer::start("127.0.0.1:0", vec![]).unwrap();
        let mut stream = TcpStream::connect(server.local_addr()).unwrap();
        use std::io::Write as _;
        write!(stream, "POST /metrics HTTP/1.1\r\n\r\n").unwrap();
        let mut raw = String::new();
        stream.read_to_string(&mut raw).unwrap();
        assert!(raw.starts_with("HTTP/1.1 405"), "{raw}");
        drop(server); // Drop path must also stop cleanly.
    }

    #[test]
    fn shutdown_joins_threads_promptly() {
        let server = WatchServer::start("127.0.0.1:0", default_rules()).unwrap();
        let addr = server.local_addr();
        let started = Instant::now();
        server.shutdown();
        assert!(started.elapsed() < Duration::from_secs(1));
        // The port is no longer served.
        let refused = TcpStream::connect_timeout(&addr, Duration::from_millis(200));
        if let Ok(mut s) = refused {
            // A lingering socket may still connect; it must not answer.
            use std::io::Write as _;
            let _ = write!(s, "GET /healthz HTTP/1.1\r\n\r\n");
            let _ = s.set_read_timeout(Some(Duration::from_millis(200)));
            let mut buf = String::new();
            assert!(s.read_to_string(&mut buf).is_err() || buf.is_empty());
        }
    }
}
