//! The `GET /progress` view: campaign completion and an ETA derived
//! from the per-cell latency histogram.
//!
//! `run_campaign` publishes five gauges (`exp.cells_total`,
//! `exp.cells_done`, `exp.cells_inflight`, `exp.cells_degraded`,
//! `exp.workers`) and records
//! every finished cell's wall time into the `exp.cell` histogram. This
//! module only *reads* the snapshots — it never registers metrics, so a
//! `/progress` poll against a process that is not running a campaign
//! reports `running: false` instead of materializing empty gauges.

use dynp_obs::{JsonValue, Recorder};

/// Nanoseconds per second, for histogram-derived ETAs.
const NANOS_PER_SEC: f64 = 1e9;

/// Builds the `/progress` JSON for `recorder`.
///
/// ETA model: `remaining × mean(exp.cell) / workers` — the per-cell
/// latency histogram already aggregates across workers, and cells are
/// deterministic work items of comparable cost, so the sample mean is
/// the right predictor. With no finished cell yet (cold start) there is
/// no sample to extrapolate from and `eta_secs` is `null`.
pub fn progress_json(recorder: &Recorder) -> JsonValue {
    let gauges = recorder.gauge_snapshots();
    let gauge = |name: &str| {
        gauges
            .iter()
            .find(|(n, ..)| *n == name)
            .map(|(_, last, _)| *last)
    };
    let total = gauge("exp.cells_total");
    let done = gauge("exp.cells_done").unwrap_or(0).max(0);
    let inflight = gauge("exp.cells_inflight").unwrap_or(0).max(0);
    let degraded = gauge("exp.cells_degraded").unwrap_or(0).max(0);
    let workers = gauge("exp.workers").unwrap_or(1).max(1);

    let mut out = JsonValue::object()
        .with("running", total.is_some())
        .with("elapsed_secs", recorder.elapsed_secs());
    let Some(total) = total else {
        // No campaign has started in this process.
        return out
            .with("cells_total", JsonValue::Null)
            .with("cells_done", JsonValue::Null)
            .with("cells_inflight", JsonValue::Null)
            .with("cells_degraded", JsonValue::Null)
            .with("workers", JsonValue::Null)
            .with("pct", JsonValue::Null)
            .with("eta_secs", JsonValue::Null);
    };
    let total = total.max(0);
    let remaining = (total - done).max(0);
    let pct = if total > 0 {
        100.0 * done as f64 / total as f64
    } else {
        100.0
    };
    let mean_cell_secs = recorder
        .histogram_snapshots()
        .iter()
        .find(|(name, _)| *name == "exp.cell")
        .and_then(|(_, snap)| snap.mean())
        .map(|ns| ns / NANOS_PER_SEC);
    let eta_secs = match mean_cell_secs {
        Some(mean) if remaining > 0 => {
            JsonValue::from(remaining as f64 * mean / workers as f64)
        }
        Some(_) => JsonValue::from(0.0),
        None if remaining == 0 => JsonValue::from(0.0),
        None => JsonValue::Null,
    };
    out.set("cells_total", total);
    out.set("cells_done", done);
    out.set("cells_inflight", inflight);
    out.set("cells_degraded", degraded);
    out.set("workers", workers);
    out.set("pct", pct);
    out.set("eta_secs", eta_secs);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use dynp_obs::{Recorder, Sink};

    #[test]
    fn no_campaign_reports_not_running() {
        let r = Recorder::new(Sink::memory());
        let p = progress_json(&r);
        assert_eq!(p.get("running").and_then(JsonValue::as_bool), Some(false));
        assert!(matches!(p.get("eta_secs"), Some(JsonValue::Null)));
        assert!(matches!(p.get("cells_degraded"), Some(JsonValue::Null)));
        dynp_obs::validate_json(&p.to_json()).unwrap();
    }

    #[test]
    fn eta_extrapolates_from_the_cell_histogram() {
        let r = Recorder::new(Sink::memory());
        r.gauge("exp.cells_total").set(10);
        r.gauge("exp.cells_done").set(4);
        r.gauge("exp.cells_inflight").set(2);
        r.gauge("exp.cells_degraded").set(1);
        r.gauge("exp.workers").set(2);
        // Two finished cells at 2 s mean.
        r.histogram("exp.cell").record(1_000_000_000);
        r.histogram("exp.cell").record(3_000_000_000);
        let p = progress_json(&r);
        assert_eq!(p.get("running").and_then(JsonValue::as_bool), Some(true));
        assert_eq!(p.get("cells_done").and_then(JsonValue::as_u64), Some(4));
        assert_eq!(p.get("cells_degraded").and_then(JsonValue::as_u64), Some(1));
        assert_eq!(p.get("pct").and_then(JsonValue::as_f64), Some(40.0));
        // 6 remaining × 2 s mean / 2 workers = 6 s.
        assert_eq!(p.get("eta_secs").and_then(JsonValue::as_f64), Some(6.0));
        dynp_obs::validate_json(&p.to_json()).unwrap();
    }

    #[test]
    fn cold_start_has_null_eta_and_done_has_zero() {
        let r = Recorder::new(Sink::memory());
        r.gauge("exp.cells_total").set(5);
        r.gauge("exp.cells_done").set(0);
        let p = progress_json(&r);
        assert!(matches!(p.get("eta_secs"), Some(JsonValue::Null)));

        r.gauge("exp.cells_done").set(5);
        r.histogram("exp.cell").record(1_000);
        let p = progress_json(&r);
        assert_eq!(p.get("eta_secs").and_then(JsonValue::as_f64), Some(0.0));
        assert_eq!(p.get("pct").and_then(JsonValue::as_f64), Some(100.0));
    }
}
