//! Compaction of time-scaled schedules (§3.2).
//!
//! Time-scaling schedules jobs at slot boundaries, wasting the seconds
//! between a job's real end and the next slot start. The paper's fix: "each
//! job is inserted in the schedule according to the starting order of the
//! schedule computed by CPLEX. Each job is placed as soon as possible and
//! unused time slots, due to time-scaling, do no longer occur."
//!
//! [`compact`] does exactly that: profile-based earliest-fit insertion in a
//! given starting order against the real-second machine history — the same
//! list scheduler the policies use, which guarantees the result is a valid
//! schedule and that no job starts later than its slot-grid start.

use std::collections::{HashMap, HashSet};

use dynp_sched::{plan_ordered, PlanError, Schedule, SchedulingProblem};
use dynp_trace::JobId;

/// Re-plans the snapshot's jobs in `order` (the ILP's starting order) at
/// second resolution. Jobs absent from `order` are appended in snapshot
/// order — defensive, but normal callers pass a full permutation.
///
/// Fails with [`PlanError::JobTooWide`] if any job can never fit the
/// machine, and with [`PlanError::UnknownJob`] if `order` references a
/// job not in the snapshot (a solver/snapshot mismatch must surface as a
/// value, not unwind through a campaign worker).
pub fn compact(
    problem: &SchedulingProblem,
    order: &[JobId],
) -> Result<Schedule, PlanError> {
    let by_id: HashMap<JobId, &dynp_trace::Job> =
        problem.jobs.iter().map(|j| (j.id, j)).collect();
    let mut jobs = Vec::with_capacity(problem.jobs.len());
    for id in order {
        let job = by_id.get(id).ok_or(PlanError::UnknownJob { id: *id })?;
        jobs.push(**job);
    }
    let ordered: HashSet<JobId> = order.iter().copied().collect();
    for job in &problem.jobs {
        if !ordered.contains(&job.id) {
            jobs.push(*job);
        }
    }
    plan_ordered(problem, &jobs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scaling::TimeScaling;
    use crate::timeindex::TimeIndexedModel;
    use dynp_platform::MachineHistory;
    use dynp_sched::Metric;
    use dynp_trace::Job;

    fn snapshot() -> SchedulingProblem {
        // History frees resources at t=90, off the 60s grid.
        let history = MachineHistory::build(4, 0, &[(4, 90)]);
        SchedulingProblem::new(
            0,
            history,
            vec![Job::exact(0, 0, 2, 100), Job::exact(1, 0, 2, 130)],
        )
    }

    #[test]
    fn compaction_preserves_validity() {
        let p = snapshot();
        let s = compact(&p, &[JobId(0), JobId(1)]).unwrap();
        s.validate(&p).unwrap();
    }

    #[test]
    fn compaction_starts_jobs_off_grid() {
        let p = snapshot();
        let s = compact(&p, &[JobId(0), JobId(1)]).unwrap();
        // Both fit side by side the moment the machine frees at 90 — not
        // at the next slot boundary 120.
        assert_eq!(s.start_of(JobId(0)), Some(90));
        assert_eq!(s.start_of(JobId(1)), Some(90));
    }

    #[test]
    fn compaction_never_delays_vs_slot_schedule() {
        let p = snapshot();
        let ti = TimeIndexedModel::build(&p, TimeScaling::fixed(60), p.naive_horizon());
        let sol = crate::branch::solve_mip(&ti.model, crate::branch::BranchLimits::default());
        let x = sol.x.unwrap();
        let slots = ti.slot_schedule(&x, &p);
        let compacted = compact(&p, &ti.start_order(&x)).unwrap();
        for e in slots.entries() {
            let c = compacted.start_of(e.id).unwrap();
            assert!(
                c <= e.start,
                "job {} compacted to {} after slot start {}",
                e.id,
                c,
                e.start
            );
        }
        // And therefore the metric can only improve.
        let m = Metric::ArtwW;
        assert!(m.eval(&p, &compacted) <= m.eval(&p, &slots) + 1e-9);
    }

    #[test]
    fn order_determines_priority() {
        // Machine fits one at a time; the order decides who goes first.
        let p = SchedulingProblem::on_empty_machine(
            0,
            2,
            vec![Job::exact(0, 0, 2, 100), Job::exact(1, 0, 2, 100)],
        );
        let a = compact(&p, &[JobId(0), JobId(1)]).unwrap();
        assert_eq!(a.start_of(JobId(0)), Some(0));
        assert_eq!(a.start_of(JobId(1)), Some(100));
        let b = compact(&p, &[JobId(1), JobId(0)]).unwrap();
        assert_eq!(b.start_of(JobId(1)), Some(0));
        assert_eq!(b.start_of(JobId(0)), Some(100));
    }

    #[test]
    fn partial_order_appends_missing_jobs() {
        let p = SchedulingProblem::on_empty_machine(
            0,
            2,
            vec![Job::exact(0, 0, 2, 100), Job::exact(1, 0, 2, 100)],
        );
        let s = compact(&p, &[JobId(1)]).unwrap();
        s.validate(&p).unwrap();
        assert_eq!(s.start_of(JobId(1)), Some(0));
    }

    #[test]
    fn unknown_job_is_a_typed_error() {
        let p = SchedulingProblem::on_empty_machine(0, 2, vec![Job::exact(0, 0, 1, 10)]);
        assert_eq!(
            compact(&p, &[JobId(99)]),
            Err(PlanError::UnknownJob { id: JobId(99) })
        );
    }

    /// The hash-set membership rewrite must order jobs exactly like the
    /// old O(n²) `order.contains` scan: `order` first, then the
    /// remaining jobs in snapshot order.
    #[test]
    fn hashed_membership_matches_linear_scan_ordering() {
        let jobs: Vec<Job> = (0..40).map(|i| Job::exact(i, 0, 1, 10 + u64::from(i))).collect();
        let p = SchedulingProblem::on_empty_machine(0, 64, jobs.clone());
        // A partial, scrambled order: every third job, reversed.
        let order: Vec<JobId> = jobs.iter().rev().step_by(3).map(|j| j.id).collect();
        let fast = compact(&p, &order).unwrap();
        // Reference: the pre-rewrite membership logic, verbatim.
        let mut reference = Vec::with_capacity(jobs.len());
        for id in &order {
            reference.push(*jobs.iter().find(|j| j.id == *id).unwrap());
        }
        for job in &jobs {
            if !order.contains(&job.id) {
                reference.push(*job);
            }
        }
        let slow = plan_ordered(&p, &reference).unwrap();
        assert_eq!(fast, slow);
    }
}
