//! The mixed 0/1 linear-program description consumed by the solver stack.
//!
//! A [`Milp`] is `minimize cᵀx  s.t.  Ax {≤,=,≥} b,  l ≤ x ≤ u`, with a
//! per-variable integrality flag. The time-indexed scheduling model of
//! §3.1 instantiates this with binary `x_it` variables; the LP relaxation
//! simply ignores the flags.

use crate::sparse::CscMatrix;

/// Constraint sense.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Sense {
    /// `≤ rhs`
    Le,
    /// `= rhs`
    Eq,
    /// `≥ rhs`
    Ge,
}

/// A mixed 0/1 linear program (minimization).
#[derive(Clone, Debug)]
pub struct Milp {
    /// Objective coefficients `c`.
    pub objective: Vec<f64>,
    /// Constraint matrix `A`, one row per constraint.
    pub matrix: CscMatrix,
    /// Constraint senses.
    pub senses: Vec<Sense>,
    /// Right-hand sides `b`.
    pub rhs: Vec<f64>,
    /// Variable lower bounds `l`.
    pub lower: Vec<f64>,
    /// Variable upper bounds `u` (`f64::INFINITY` = unbounded).
    pub upper: Vec<f64>,
    /// Which variables must be integral in a MIP solution.
    pub integral: Vec<bool>,
}

impl Milp {
    /// Creates and validates a model.
    ///
    /// # Panics
    /// Panics on dimension mismatches or inverted bounds — a malformed
    /// model is a programming error in the builder, not an input condition.
    pub fn new(
        objective: Vec<f64>,
        matrix: CscMatrix,
        senses: Vec<Sense>,
        rhs: Vec<f64>,
        lower: Vec<f64>,
        upper: Vec<f64>,
        integral: Vec<bool>,
    ) -> Milp {
        let n = objective.len();
        let m = rhs.len();
        assert_eq!(matrix.cols(), n, "matrix columns != objective length");
        assert_eq!(matrix.rows(), m, "matrix rows != rhs length");
        assert_eq!(senses.len(), m, "senses length != rhs length");
        assert_eq!(lower.len(), n, "lower bounds length != variables");
        assert_eq!(upper.len(), n, "upper bounds length != variables");
        assert_eq!(integral.len(), n, "integrality flags length != variables");
        for j in 0..n {
            assert!(
                lower[j] <= upper[j],
                "variable {j}: lower {} > upper {}",
                lower[j],
                upper[j]
            );
        }
        Milp {
            objective,
            matrix,
            senses,
            rhs,
            lower,
            upper,
            integral,
        }
    }

    /// Convenience constructor for an all-binary model.
    pub fn binary(
        objective: Vec<f64>,
        matrix: CscMatrix,
        senses: Vec<Sense>,
        rhs: Vec<f64>,
    ) -> Milp {
        let n = objective.len();
        Milp::new(
            objective,
            matrix,
            senses,
            rhs,
            vec![0.0; n],
            vec![1.0; n],
            vec![true; n],
        )
    }

    /// Number of variables.
    pub fn num_vars(&self) -> usize {
        self.objective.len()
    }

    /// Number of constraints.
    pub fn num_constraints(&self) -> usize {
        self.rhs.len()
    }

    /// Objective value of a point.
    pub fn objective_value(&self, x: &[f64]) -> f64 {
        self.objective.iter().zip(x).map(|(c, v)| c * v).sum()
    }

    /// Checks primal feasibility of `x` within tolerance `tol`; returns the
    /// first violation found. Used by tests and as a post-solve guard.
    pub fn check_feasible(&self, x: &[f64], tol: f64) -> Result<(), String> {
        if x.len() != self.num_vars() {
            return Err(format!(
                "point has {} entries, model has {} variables",
                x.len(),
                self.num_vars()
            ));
        }
        for (j, &v) in x.iter().enumerate() {
            if v < self.lower[j] - tol || v > self.upper[j] + tol {
                return Err(format!(
                    "variable {j} = {v} outside [{}, {}]",
                    self.lower[j], self.upper[j]
                ));
            }
        }
        let ax = self.matrix.mat_vec(x);
        for (i, (&lhs, &rhs)) in ax.iter().zip(&self.rhs).enumerate() {
            let ok = match self.senses[i] {
                Sense::Le => lhs <= rhs + tol,
                Sense::Eq => (lhs - rhs).abs() <= tol,
                Sense::Ge => lhs >= rhs - tol,
            };
            if !ok {
                return Err(format!(
                    "constraint {i}: lhs {lhs} {:?} rhs {rhs} violated",
                    self.senses[i]
                ));
            }
        }
        Ok(())
    }

    /// Checks integrality of the flagged variables within `tol`.
    pub fn is_integral(&self, x: &[f64], tol: f64) -> bool {
        x.iter()
            .zip(&self.integral)
            .all(|(&v, &flag)| !flag || (v - v.round()).abs() <= tol)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Milp {
        // min -x0 - 2 x1  s.t.  x0 + x1 <= 1,  x binary.
        Milp::binary(
            vec![-1.0, -2.0],
            CscMatrix::from_dense(&[vec![1.0, 1.0]]),
            vec![Sense::Le],
            vec![1.0],
        )
    }

    #[test]
    fn dimensions() {
        let m = tiny();
        assert_eq!(m.num_vars(), 2);
        assert_eq!(m.num_constraints(), 1);
    }

    #[test]
    fn objective_value_is_dot_product() {
        let m = tiny();
        assert_eq!(m.objective_value(&[1.0, 0.0]), -1.0);
        assert_eq!(m.objective_value(&[0.0, 1.0]), -2.0);
    }

    #[test]
    fn feasibility_check() {
        let m = tiny();
        m.check_feasible(&[0.0, 1.0], 1e-9).unwrap();
        m.check_feasible(&[0.5, 0.5], 1e-9).unwrap();
        assert!(m.check_feasible(&[1.0, 1.0], 1e-9).is_err()); // row violated
        assert!(m.check_feasible(&[-0.1, 0.0], 1e-9).is_err()); // bound
        assert!(m.check_feasible(&[0.0], 1e-9).is_err()); // dimension
    }

    #[test]
    fn senses_are_respected() {
        let m = Milp::new(
            vec![0.0],
            CscMatrix::from_dense(&[vec![1.0], vec![1.0]]),
            vec![Sense::Ge, Sense::Eq],
            vec![0.5, 0.7],
            vec![0.0],
            vec![1.0],
            vec![false],
        );
        m.check_feasible(&[0.7], 1e-9).unwrap();
        assert!(m.check_feasible(&[0.6], 1e-9).is_err()); // Eq violated
    }

    #[test]
    fn integrality_check() {
        let m = tiny();
        assert!(m.is_integral(&[1.0, 0.0], 1e-6));
        assert!(m.is_integral(&[0.9999999, 0.0], 1e-6));
        assert!(!m.is_integral(&[0.5, 0.0], 1e-6));
        // Continuous variables are exempt.
        let mut m2 = tiny();
        m2.integral = vec![false, false];
        assert!(m2.is_integral(&[0.5, 0.5], 1e-6));
    }

    #[test]
    #[should_panic(expected = "lower")]
    fn inverted_bounds_panic() {
        Milp::new(
            vec![0.0],
            CscMatrix::from_dense(&[vec![1.0]]),
            vec![Sense::Le],
            vec![1.0],
            vec![2.0],
            vec![1.0],
            vec![false],
        );
    }

    #[test]
    #[should_panic(expected = "columns")]
    fn dimension_mismatch_panics() {
        Milp::binary(
            vec![1.0, 2.0, 3.0],
            CscMatrix::from_dense(&[vec![1.0, 1.0]]),
            vec![Sense::Le],
            vec![1.0],
        );
    }
}
