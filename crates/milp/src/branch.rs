//! Best-first branch & bound over the LP relaxation.
//!
//! This is the "CPLEX" of the reproduction: an exact solver for the mixed
//! 0/1 programs produced by [`crate::timeindex`]. Design choices:
//!
//! * **Best-first** node selection on the LP bound: the first time the best
//!   open bound reaches the incumbent, optimality is proven — mirroring how
//!   MIP solvers close the gap.
//! * **Most-fractional branching** with deterministic tie-breaking.
//! * **Integral-objective rounding**: when every variable is integral and
//!   every objective coefficient is an integer, a node bound `b` can be
//!   lifted to `ceil(b)`, which prunes aggressively on scheduling models
//!   whose objective counts weighted slots.
//! * **Incumbent seeding**: the caller can install a known feasible point
//!   (here: the best dynP policy schedule) before solving, exactly the
//!   "warm start" a practitioner would give CPLEX.
//! * **Primal rounding heuristic** hook invoked on fractional LP solutions
//!   to tighten the incumbent early.
//!
//! Limits are deterministic (node count) plus an optional wall-clock limit
//! for the experiment harness, which reproduces the paper's "CPLEX is still
//! solving the previous problem" regime.

use crate::model::Milp;
use crate::simplex::{solve_lp_with_start, LpOutcome, LpSolution, SimplexStart};
use dynp_obs::Span;
use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::time::{Duration, Instant};

/// Integrality tolerance.
const INT_TOL: f64 = 1e-6;
/// Bound comparison tolerance.
const BOUND_TOL: f64 = 1e-9;

/// Resource limits for one solve.
#[derive(Clone, Copy, Debug)]
pub struct BranchLimits {
    /// Maximum branch & bound nodes to explore.
    pub max_nodes: usize,
    /// Simplex iteration budget per LP solve.
    pub max_lp_iterations: usize,
    /// Optional wall-clock limit (use node limits in tests for
    /// determinism).
    pub time_limit: Option<Duration>,
}

impl Default for BranchLimits {
    fn default() -> Self {
        BranchLimits {
            max_nodes: 1_000_000,
            // Generous for the LP sizes the harness builds (hundreds of
            // rows); a cap keeps one degenerate LP from eating the whole
            // node budget's worth of time.
            max_lp_iterations: 200_000,
            time_limit: None,
        }
    }
}

/// Final status of a solve.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MipStatus {
    /// Incumbent proven optimal.
    Optimal,
    /// A feasible incumbent exists but a limit stopped the proof.
    Feasible,
    /// Proven infeasible.
    Infeasible,
    /// A limit stopped the search before any incumbent was found.
    Unknown,
}

/// One point of the incumbent/gap trajectory: the solver's view of the
/// primal/dual state at the moment a new incumbent was accepted (plus a
/// seed point at `nodes == 0` when one was installed, and a final point
/// at exit).
#[derive(Clone, Copy, Debug)]
pub struct GapPoint {
    /// Nodes explored when the point was recorded.
    pub nodes: usize,
    /// Wall time into the solve.
    pub elapsed: Duration,
    /// Incumbent objective at that moment.
    pub incumbent: f64,
    /// Best proven lower bound at that moment (`-inf` before the first
    /// node is bounded).
    pub bound: f64,
}

impl GapPoint {
    /// Relative gap at this point, in the same normalization as
    /// [`MipSolution::gap`]; `None` while the bound is still infinite.
    pub fn gap(&self) -> Option<f64> {
        self.bound
            .is_finite()
            .then(|| (self.incumbent - self.bound).max(0.0) / self.incumbent.abs().max(1.0))
    }
}

/// Result of a solve.
#[derive(Clone, Debug)]
pub struct MipSolution {
    /// Outcome status.
    pub status: MipStatus,
    /// Incumbent objective, if any.
    pub objective: Option<f64>,
    /// Incumbent point, if any.
    pub x: Option<Vec<f64>>,
    /// Best lower bound proven over the whole tree.
    pub best_bound: f64,
    /// Nodes explored.
    pub nodes: usize,
    /// Total simplex iterations.
    pub lp_iterations: usize,
    /// Wall time spent.
    pub wall_time: Duration,
    /// Incumbent/gap trajectory: one [`GapPoint`] per accepted incumbent
    /// (seed included) plus a closing point at exit. Empty when no
    /// incumbent was ever found.
    pub trajectory: Vec<GapPoint>,
}

impl MipSolution {
    /// Relative optimality gap `(obj - bound) / max(|obj|, 1)`;
    /// `None` without an incumbent.
    pub fn gap(&self) -> Option<f64> {
        let obj = self.objective?;
        Some((obj - self.best_bound).max(0.0) / obj.abs().max(1.0))
    }
}

/// A primal heuristic: turn a fractional LP solution into a feasible
/// integral point (or give up with `None`). The solver validates the
/// result, so a buggy heuristic cannot corrupt exactness.
pub type PrimalHeuristic<'a> = Box<dyn Fn(&Milp, &LpSolution) -> Option<Vec<f64>> + 'a>;

/// A crash-basis provider: given a node's bound vectors, produce a
/// primal-feasible starting basis so the LP skips phase 1. The simplex
/// verifies the basis, so a wrong crash costs time, never correctness.
pub type CrashHook<'a> = Box<dyn Fn(&[f64], &[f64]) -> Option<SimplexStart> + 'a>;

/// A custom brancher: given the fractional LP solution, return bound
/// modifications `(var, new_lower, new_upper)` for the two children.
///
/// **Exactness contract**: the two children must cover every integral
/// point of the parent (a partition of the feasible set), otherwise the
/// solver can silently cut off the optimum. Returning `None` falls back to
/// most-fractional single-variable branching, which always satisfies the
/// contract.
pub type BranchHook<'a> = Box<
    dyn Fn(&Milp, &LpSolution) -> Option<(Vec<(usize, f64, f64)>, Vec<(usize, f64, f64)>)> + 'a,
>;

/// Branch & bound driver.
pub struct BranchBound<'a> {
    model: &'a Milp,
    limits: BranchLimits,
    heuristic: Option<PrimalHeuristic<'a>>,
    crash: Option<CrashHook<'a>>,
    brancher: Option<BranchHook<'a>>,
    incumbent: Option<(f64, Vec<f64>)>,
    trajectory: Vec<GapPoint>,
    /// Objective provably integral on integral points (enables bound
    /// ceiling).
    integral_objective: bool,
}

#[derive(Debug)]
struct Node {
    bound: f64,
    id: u64,
    lower: Vec<f64>,
    upper: Vec<f64>,
}

impl PartialEq for Node {
    fn eq(&self, other: &Self) -> bool {
        self.id == other.id
    }
}
impl Eq for Node {}
impl Ord for Node {
    fn cmp(&self, other: &Self) -> Ordering {
        // Min-heap on (bound, id): reverse for BinaryHeap.
        other
            .bound
            .partial_cmp(&self.bound)
            .unwrap_or(Ordering::Equal)
            .then(other.id.cmp(&self.id))
    }
}
impl PartialOrd for Node {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<'a> BranchBound<'a> {
    /// A solver for `model` with the given limits.
    pub fn new(model: &'a Milp, limits: BranchLimits) -> BranchBound<'a> {
        let integral_objective = model.integral.iter().all(|&f| f)
            && model
                .objective
                .iter()
                .all(|c| (c - c.round()).abs() < 1e-12);
        BranchBound {
            model,
            limits,
            heuristic: None,
            crash: None,
            brancher: None,
            incumbent: None,
            trajectory: Vec::new(),
            integral_objective,
        }
    }

    /// Installs a crash-basis provider (see [`CrashHook`]).
    pub fn with_crash(mut self, crash: CrashHook<'a>) -> Self {
        self.crash = Some(crash);
        self
    }

    /// Installs a custom brancher (see [`BranchHook`] for the exactness
    /// contract).
    pub fn with_brancher(mut self, brancher: BranchHook<'a>) -> Self {
        self.brancher = Some(brancher);
        self
    }

    /// Installs a primal rounding heuristic.
    pub fn with_heuristic(mut self, heuristic: PrimalHeuristic<'a>) -> Self {
        self.heuristic = Some(heuristic);
        self
    }

    /// Seeds a known feasible point as the starting incumbent.
    ///
    /// # Errors
    /// Rejects an infeasible or fractional point — a wrong seed would
    /// silently destroy exactness, so callers must handle (or at least
    /// acknowledge) the failure instead of the solver aborting the
    /// process.
    pub fn with_incumbent(mut self, x: Vec<f64>) -> Result<Self, String> {
        self.model
            .check_feasible(&x, 1e-6)
            .map_err(|e| format!("seed incumbent infeasible: {e}"))?;
        if !self.model.is_integral(&x, INT_TOL) {
            return Err("seed incumbent is fractional".to_string());
        }
        let obj = self.model.objective_value(&x);
        self.offer_incumbent(obj, x, 0, Duration::ZERO, f64::NEG_INFINITY);
        Ok(self)
    }

    /// Accepts `x` as the new incumbent when it improves on the current
    /// one, recording a trajectory point and emitting a `milp.incumbent`
    /// event. `nodes`/`elapsed`/`bound` describe the search state at the
    /// moment of the offer.
    fn offer_incumbent(&mut self, obj: f64, x: Vec<f64>, nodes: usize, elapsed: Duration, bound: f64) {
        if self
            .incumbent
            .as_ref()
            .is_none_or(|(best, _)| obj < best - BOUND_TOL)
        {
            self.incumbent = Some((obj, x));
            let point = GapPoint {
                nodes,
                elapsed,
                incumbent: obj,
                bound,
            };
            self.trajectory.push(point);
            if let Some(r) = dynp_obs::recorder() {
                r.event("milp.incumbent")
                    .kv("nodes", nodes)
                    .kv("objective", obj)
                    .kv(
                        "bound",
                        bound.is_finite().then_some(bound),
                    )
                    .kv("gap", point.gap())
                    .emit();
            }
        }
    }

    /// Lifts an LP bound using objective integrality when available.
    fn lift(&self, bound: f64) -> f64 {
        if self.integral_objective {
            (bound - 1e-6).ceil()
        } else {
            bound
        }
    }

    /// Runs the search to completion or a limit.
    pub fn solve(mut self) -> MipSolution {
        let solve_start = Instant::now();
        // The whole B&B search is one traced span (child of milp.solve
        // inside a campaign cell); per-node timing stays a plain
        // histogram span to keep the node loop cheap.
        let _search_span = dynp_obs::span("milp.search");
        // Metric handles are fetched once here; the node loop below only
        // touches atomics (or skips entirely when no recorder is
        // installed).
        let obs = dynp_obs::recorder();
        let m_nodes = obs.map(|r| r.counter("milp.nodes"));
        let m_open = obs.map(|r| r.gauge("milp.open_nodes"));
        let m_lp_iters = obs.map(|r| r.histogram("milp.lp_iterations"));
        let mut nodes_explored = 0usize;
        let mut lp_iterations = 0usize;
        let mut next_id = 0u64;
        let mut hit_limit = false;
        // Global lower bound starts at -inf and is the min over open nodes.
        let mut heap = BinaryHeap::new();
        heap.push(Node {
            bound: f64::NEG_INFINITY,
            id: next_id,
            lower: self.model.lower.clone(),
            upper: self.model.upper.clone(),
        });
        next_id += 1;
        let mut proven_bound = f64::NEG_INFINITY;
        while let Some(node) = heap.pop() {
            // Best-first: the popped node carries the least bound of all
            // open nodes; everything proven so far is at least this.
            proven_bound = proven_bound.max(node.bound);
            if let Some((best, _)) = &self.incumbent {
                if node.bound >= best - BOUND_TOL {
                    // Optimality proven: every open node is no better.
                    proven_bound = *best;
                    break;
                }
            }
            if nodes_explored >= self.limits.max_nodes {
                hit_limit = true;
                break;
            }
            if let Some(limit) = self.limits.time_limit {
                if solve_start.elapsed() >= limit {
                    hit_limit = true;
                    break;
                }
            }
            // The cooperative cancel token (a campaign cell's wall-clock
            // deadline) is the external analogue of `time_limit`: the
            // search winds down exactly like any other exhausted budget,
            // keeping "CPLEX still running" a value, not an abort.
            if dynp_obs::cancelled() {
                hit_limit = true;
                break;
            }
            nodes_explored += 1;
            let _node_span = Span::enter("milp.node");
            if let Some(m) = &m_nodes {
                m.inc();
            }
            if let Some(m) = &m_open {
                m.set(heap.len() as i64 + 1);
            }
            let start = self
                .crash
                .as_ref()
                .and_then(|crash| crash(&node.lower, &node.upper));
            let outcome = solve_lp_with_start(
                self.model,
                &node.lower,
                &node.upper,
                start.as_ref(),
                self.limits.max_lp_iterations,
            );
            let sol = match outcome {
                LpOutcome::Infeasible => continue,
                LpOutcome::Optimal(s) => s,
                LpOutcome::Unbounded | LpOutcome::IterationLimit => {
                    // Cannot bound this node; exactness is lost if we drop
                    // it, so surface the failure as a limit.
                    hit_limit = true;
                    continue;
                }
            };
            lp_iterations += sol.iterations;
            if let Some(m) = &m_lp_iters {
                m.record(sol.iterations as u64);
            }
            let bound = self.lift(sol.objective);
            if let Some((best, _)) = &self.incumbent {
                if bound >= best - BOUND_TOL {
                    continue; // pruned by bound
                }
            }
            // Reduced-cost fixing (valid for this node's whole subtree):
            // forcing a nonbasic variable off its bound raises the LP value
            // by at least its reduced cost; if that lifted value reaches
            // the incumbent, the variable can be pinned to its bound.
            let mut node = node;
            if let Some((best, _)) = &self.incumbent {
                for (j, &d) in sol.reduced_costs.iter().enumerate() {
                    if !self.model.integral[j] || node.lower[j] == node.upper[j] {
                        continue;
                    }
                    if d > 0.0 && sol.x[j] <= node.lower[j] + INT_TOL {
                        if self.lift(sol.objective + d) >= best - BOUND_TOL {
                            node.upper[j] = node.lower[j];
                        }
                    } else if d < 0.0
                        && sol.x[j] >= node.upper[j] - INT_TOL
                        && self.lift(sol.objective - d) >= best - BOUND_TOL
                    {
                        node.lower[j] = node.upper[j];
                    }
                }
            }
            // Integral? New incumbent.
            if self.model.is_integral(&sol.x, INT_TOL) {
                let rounded: Vec<f64> = sol
                    .x
                    .iter()
                    .zip(&self.model.integral)
                    .map(|(&v, &f)| if f { v.round() } else { v })
                    .collect();
                // Guard against numerical drift: only a verified-feasible
                // point may prune the tree. A failed check degrades the
                // final status to Feasible instead of corrupting exactness.
                if self.model.check_feasible(&rounded, 1e-5).is_ok() {
                    let obj = self.model.objective_value(&rounded);
                    self.offer_incumbent(
                        obj,
                        rounded,
                        nodes_explored,
                        solve_start.elapsed(),
                        proven_bound,
                    );
                } else {
                    debug_assert!(false, "integral LP point failed feasibility");
                    hit_limit = true;
                }
                continue;
            }
            // Primal heuristic on fractional solutions.
            if let Some(h) = &self.heuristic {
                if let Some(hx) = h(self.model, &sol) {
                    if self.model.check_feasible(&hx, 1e-6).is_ok()
                        && self.model.is_integral(&hx, INT_TOL)
                    {
                        let obj = self.model.objective_value(&hx);
                        self.offer_incumbent(
                            obj,
                            hx,
                            nodes_explored,
                            solve_start.elapsed(),
                            proven_bound,
                        );
                    }
                }
            }
            // Custom (e.g. SOS) branching first, when installed.
            if let Some(brancher) = &self.brancher {
                if let Some((mods_a, mods_b)) = brancher(self.model, &sol) {
                    for mods in [mods_a, mods_b] {
                        let mut child = Node {
                            bound,
                            id: next_id,
                            lower: node.lower.clone(),
                            upper: node.upper.clone(),
                        };
                        next_id += 1;
                        let mut feasible = true;
                        for (var, lo, hi) in mods {
                            child.lower[var] = child.lower[var].max(lo);
                            child.upper[var] = child.upper[var].min(hi);
                            if child.lower[var] > child.upper[var] {
                                feasible = false;
                                break;
                            }
                        }
                        if feasible {
                            heap.push(child);
                        }
                    }
                    continue;
                }
            }
            // Branch on the most fractional integral variable.
            let branch_var = sol
                .x
                .iter()
                .enumerate()
                .filter(|&(j, _)| self.model.integral[j])
                .map(|(j, &v)| (j, (v - v.round()).abs()))
                .filter(|&(_, frac)| frac > INT_TOL)
                .max_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(Ordering::Equal))
                .map(|(j, _)| j)
                .expect("fractional solution has a fractional integral var");
            let v = sol.x[branch_var];
            // Down child: x_j <= floor(v); up child: x_j >= ceil(v).
            let mut down = Node {
                bound,
                id: next_id,
                lower: node.lower.clone(),
                upper: node.upper.clone(),
            };
            next_id += 1;
            down.upper[branch_var] = v.floor();
            if down.lower[branch_var] <= down.upper[branch_var] {
                heap.push(down);
            }
            let mut up = Node {
                bound,
                id: next_id,
                lower: node.lower,
                upper: node.upper,
            };
            next_id += 1;
            up.lower[branch_var] = v.ceil();
            if up.lower[branch_var] <= up.upper[branch_var] {
                heap.push(up);
            }
        }
        // If the tree is exhausted, the proof is complete.
        let exhausted = heap.is_empty() && !hit_limit;
        let (status, objective, x) = match (self.incumbent, exhausted) {
            (Some((obj, x)), true) => (MipStatus::Optimal, Some(obj), Some(x)),
            (Some((obj, x)), false) => {
                // Stopped early — the incumbent may or may not be optimal.
                // If the break came from the bound test, it *is* optimal.
                let status = if hit_limit {
                    MipStatus::Feasible
                } else {
                    MipStatus::Optimal
                };
                (status, Some(obj), Some(x))
            }
            (None, true) => (MipStatus::Infeasible, None, None),
            (None, false) => (MipStatus::Unknown, None, None),
        };
        let best_bound = match status {
            MipStatus::Optimal => objective.unwrap(),
            _ => heap
                .peek()
                .map(|n| n.bound)
                .unwrap_or(proven_bound)
                .max(proven_bound),
        };
        let wall_time = solve_start.elapsed();
        // Close the trajectory: the exit point carries the final bound,
        // so the last gap always matches `MipSolution::gap()`.
        let mut trajectory = std::mem::take(&mut self.trajectory);
        if let Some(obj) = objective {
            trajectory.push(GapPoint {
                nodes: nodes_explored,
                elapsed: wall_time,
                incumbent: obj,
                bound: best_bound,
            });
        }
        if let Some(r) = obs {
            if hit_limit {
                // Budget-exhausted solves are what the online
                // "milp-budget-exhaustion" alert rate-watches.
                r.counter("milp.budget_exhausted").inc();
            }
            r.event("milp.exit")
                .kv("status", format!("{status:?}"))
                .kv("nodes", nodes_explored)
                .kv("lp_iterations", lp_iterations)
                .kv("objective", objective)
                .kv(
                    "bound",
                    best_bound.is_finite().then_some(best_bound),
                )
                .kv(
                    "gap",
                    trajectory.last().and_then(GapPoint::gap),
                )
                .kv("wall_secs", wall_time.as_secs_f64())
                .emit();
        }
        MipSolution {
            status,
            objective,
            x,
            best_bound,
            nodes: nodes_explored,
            lp_iterations,
            wall_time,
            trajectory,
        }
    }
}

/// Convenience: solve `model` with `limits`.
pub fn solve_mip(model: &Milp, limits: BranchLimits) -> MipSolution {
    BranchBound::new(model, limits).solve()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::Sense;
    use crate::sparse::CscMatrix;

    /// Brute-force optimum over {0,1}^n for cross-checking.
    fn brute_force(model: &Milp) -> Option<(f64, Vec<f64>)> {
        let n = model.num_vars();
        assert!(n <= 20);
        let mut best: Option<(f64, Vec<f64>)> = None;
        for mask in 0u32..(1 << n) {
            let x: Vec<f64> = (0..n).map(|j| ((mask >> j) & 1) as f64).collect();
            if model.check_feasible(&x, 1e-9).is_ok() {
                let obj = model.objective_value(&x);
                if best.as_ref().is_none_or(|(b, _)| obj < *b) {
                    best = Some((obj, x));
                }
            }
        }
        best
    }

    fn knapsack(values: &[f64], weights: &[f64], cap: f64) -> Milp {
        // max v.x s.t. w.x <= cap -> min -v.x
        Milp::binary(
            values.iter().map(|v| -v).collect(),
            CscMatrix::from_dense(&[weights.to_vec()]),
            vec![Sense::Le],
            vec![cap],
        )
    }

    #[test]
    fn knapsack_optimum_matches_brute_force() {
        let m = knapsack(
            &[10.0, 13.0, 7.0, 8.0, 2.0],
            &[5.0, 6.0, 3.0, 4.0, 1.0],
            10.0,
        );
        let sol = solve_mip(&m, BranchLimits::default());
        assert_eq!(sol.status, MipStatus::Optimal);
        let (bf_obj, _) = brute_force(&m).unwrap();
        assert!((sol.objective.unwrap() - bf_obj).abs() < 1e-6);
        assert!((sol.best_bound - bf_obj).abs() < 1e-6);
    }

    #[test]
    fn assignment_problem_exact() {
        // 3 jobs, 3 slots, each slot holds one job; costs force a unique
        // optimal matching.
        let costs = [[4.0, 2.0, 8.0], [4.0, 3.0, 7.0], [3.0, 1.0, 6.0]];
        let n = 3;
        let mut rows = vec![vec![0.0; n * n]; 2 * n];
        for i in 0..n {
            for t in 0..n {
                rows[i][i * n + t] = 1.0; // job i assigned once
                rows[n + t][i * n + t] = 1.0; // slot t used once
            }
        }
        let mut senses = vec![Sense::Eq; n];
        senses.extend(vec![Sense::Le; n]);
        let mut rhs = vec![1.0; n];
        rhs.extend(vec![1.0; n]);
        let m = Milp::binary(
            costs.iter().flatten().copied().collect(),
            CscMatrix::from_dense(&rows),
            senses,
            rhs,
        );
        let sol = solve_mip(&m, BranchLimits::default());
        assert_eq!(sol.status, MipStatus::Optimal);
        let (bf_obj, _) = brute_force(&m).unwrap();
        assert!((sol.objective.unwrap() - bf_obj).abs() < 1e-6);
    }

    #[test]
    fn infeasible_model_detected() {
        // x0 + x1 >= 3 with binaries.
        let m = Milp::binary(
            vec![1.0, 1.0],
            CscMatrix::from_dense(&[vec![1.0, 1.0]]),
            vec![Sense::Ge],
            vec![3.0],
        );
        let sol = solve_mip(&m, BranchLimits::default());
        assert_eq!(sol.status, MipStatus::Infeasible);
        assert!(sol.objective.is_none());
    }

    #[test]
    fn node_limit_degrades_to_feasible_or_unknown() {
        let m = knapsack(
            &[10.0, 13.0, 7.0, 8.0, 2.0, 9.0, 4.0],
            &[5.0, 6.0, 3.0, 4.0, 1.0, 5.0, 2.0],
            12.0,
        );
        let sol = solve_mip(
            &m,
            BranchLimits {
                max_nodes: 1,
                ..BranchLimits::default()
            },
        );
        assert!(matches!(
            sol.status,
            MipStatus::Feasible | MipStatus::Unknown
        ));
        // The bound must still be a valid lower bound.
        let (bf_obj, _) = brute_force(&m).unwrap();
        assert!(sol.best_bound <= bf_obj + 1e-6);
    }

    #[test]
    fn incumbent_seeding_is_used() {
        let m = knapsack(&[5.0, 4.0], &[3.0, 3.0], 3.0);
        // Feasible seed: take item 1.
        let sol = BranchBound::new(&m, BranchLimits::default())
            .with_incumbent(vec![0.0, 1.0])
            .expect("seed is feasible")
            .solve();
        assert_eq!(sol.status, MipStatus::Optimal);
        // Optimum is item 0 (value 5) and must beat the seed (value 4).
        assert!((sol.objective.unwrap() + 5.0).abs() < 1e-6);
        // The trajectory starts at the seed (nodes 0, unbounded) and ends
        // at the proven optimum.
        assert!(sol.trajectory.len() >= 2);
        assert_eq!(sol.trajectory[0].nodes, 0);
        assert!((sol.trajectory[0].incumbent + 4.0).abs() < 1e-6);
        assert_eq!(sol.trajectory[0].gap(), None);
        assert!(sol.trajectory.last().unwrap().gap().unwrap() < 1e-9);
    }

    #[test]
    fn bad_seed_is_rejected() {
        let m = knapsack(&[5.0, 4.0], &[3.0, 3.0], 3.0);
        let Err(err) = BranchBound::new(&m, BranchLimits::default()).with_incumbent(vec![1.0, 1.0])
        else {
            panic!("infeasible seed accepted")
        };
        assert!(err.contains("infeasible"), "unexpected error: {err}");
    }

    #[test]
    fn fractional_seed_is_rejected() {
        let m = knapsack(&[5.0, 4.0], &[3.0, 3.0], 3.0);
        let Err(err) = BranchBound::new(&m, BranchLimits::default()).with_incumbent(vec![0.5, 0.0])
        else {
            panic!("fractional seed accepted")
        };
        assert!(err.contains("fractional"), "unexpected error: {err}");
    }

    #[test]
    fn heuristic_improves_incumbent() {
        let m = knapsack(&[10.0, 13.0, 7.0], &[5.0, 6.0, 3.0], 8.0);
        let called = std::cell::Cell::new(false);
        let sol = BranchBound::new(&m, BranchLimits::default())
            .with_heuristic(Box::new(|model, lp| {
                called.set(true);
                // Greedy rounding: take items by LP weight while feasible.
                let mut order: Vec<usize> = (0..lp.x.len()).collect();
                order.sort_by(|&a, &b| lp.x[b].partial_cmp(&lp.x[a]).unwrap());
                let mut x = vec![0.0; lp.x.len()];
                for j in order {
                    x[j] = 1.0;
                    if model.check_feasible(&x, 1e-9).is_err() {
                        x[j] = 0.0;
                    }
                }
                Some(x)
            }))
            .solve();
        assert_eq!(sol.status, MipStatus::Optimal);
        let (bf_obj, _) = brute_force(&m).unwrap();
        assert!((sol.objective.unwrap() - bf_obj).abs() < 1e-6);
        assert!(called.get(), "heuristic was never invoked");
    }

    #[test]
    fn integral_objective_rounding_enabled_for_integer_costs() {
        let m = knapsack(&[3.0, 2.0], &[2.0, 2.0], 3.0);
        let bb = BranchBound::new(&m, BranchLimits::default());
        assert!(bb.integral_objective);
        assert_eq!(bb.lift(-2.7), -2.0);
    }

    #[test]
    fn random_instances_match_brute_force() {
        // Deterministic pseudo-random small instances.
        let mut state = 0x9E3779B97F4A7C15u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for _case in 0..25 {
            let n = 3 + (next() % 5) as usize; // 3..7 vars
            let values: Vec<f64> = (0..n).map(|_| (next() % 20) as f64).collect();
            let weights: Vec<f64> = (0..n).map(|_| 1.0 + (next() % 9) as f64).collect();
            let cap = 1.0 + (next() % 20) as f64;
            let m = knapsack(&values, &weights, cap);
            let sol = solve_mip(&m, BranchLimits::default());
            assert_eq!(sol.status, MipStatus::Optimal);
            let (bf_obj, _) = brute_force(&m).unwrap();
            assert!(
                (sol.objective.unwrap() - bf_obj).abs() < 1e-6,
                "mismatch: mip {} vs brute {} on v={values:?} w={weights:?} c={cap}",
                sol.objective.unwrap(),
                bf_obj
            );
        }
    }

    #[test]
    fn gap_is_zero_at_optimality() {
        let m = knapsack(&[10.0, 13.0], &[5.0, 6.0], 10.0);
        let sol = solve_mip(&m, BranchLimits::default());
        assert_eq!(sol.status, MipStatus::Optimal);
        assert!(sol.gap().unwrap() < 1e-9);
    }

    #[test]
    fn gap_is_none_without_incumbent() {
        // Infeasible model: no incumbent ever exists.
        let m = Milp::binary(
            vec![1.0, 1.0],
            CscMatrix::from_dense(&[vec![1.0, 1.0]]),
            vec![Sense::Ge],
            vec![3.0],
        );
        let sol = solve_mip(&m, BranchLimits::default());
        assert_eq!(sol.gap(), None);
        assert!(sol.trajectory.is_empty());
        // Same for a node limit of zero on a feasible model.
        let m = knapsack(&[5.0], &[1.0], 1.0);
        let sol = solve_mip(
            &m,
            BranchLimits {
                max_nodes: 0,
                ..BranchLimits::default()
            },
        );
        assert_eq!(sol.status, MipStatus::Unknown);
        assert_eq!(sol.gap(), None);
    }

    #[test]
    fn gap_is_positive_when_stopped_early() {
        // Seed an incumbent, then stop after one node: the proof is
        // incomplete, so the reported gap must be strictly positive.
        let m = knapsack(
            &[10.0, 13.0, 7.0, 8.0, 2.0, 9.0, 4.0],
            &[5.0, 6.0, 3.0, 4.0, 1.0, 5.0, 2.0],
            12.0,
        );
        // Feasible but far-from-optimal seed: only the lightest item.
        let seed = vec![0.0, 0.0, 0.0, 0.0, 1.0, 0.0, 0.0];
        let sol = BranchBound::new(
            &m,
            BranchLimits {
                max_nodes: 1,
                ..BranchLimits::default()
            },
        )
        .with_incumbent(seed)
        .unwrap()
        .solve();
        assert_eq!(sol.status, MipStatus::Feasible);
        let gap = sol.gap().expect("incumbent exists");
        assert!(gap > 0.0, "gap should be open, got {gap}");
    }

    #[test]
    fn gap_trajectory_is_monotone_non_increasing() {
        let m = knapsack(
            &[10.0, 13.0, 7.0, 8.0, 2.0, 9.0, 4.0, 6.0],
            &[5.0, 6.0, 3.0, 4.0, 1.0, 5.0, 2.0, 3.0],
            14.0,
        );
        let sol = solve_mip(&m, BranchLimits::default());
        assert_eq!(sol.status, MipStatus::Optimal);
        assert!(!sol.trajectory.is_empty());
        // Incumbents only ever improve and bounds only ever tighten, so
        // wherever the gap is defined it must not increase; node counts
        // are non-decreasing too.
        let mut last_gap = f64::INFINITY;
        let mut last_nodes = 0;
        for point in &sol.trajectory {
            assert!(point.nodes >= last_nodes);
            last_nodes = point.nodes;
            if let Some(gap) = point.gap() {
                assert!(
                    gap <= last_gap + 1e-12,
                    "gap widened: {last_gap} -> {gap}"
                );
                last_gap = gap;
            }
        }
        // The final point agrees with the solution-level gap.
        assert!(
            (sol.trajectory.last().unwrap().gap().unwrap() - sol.gap().unwrap()).abs() < 1e-12
        );
    }
}
