//! Compressed sparse-column (CSC) matrix for the LP solver.
//!
//! The time-indexed constraint matrix is extremely sparse — each variable
//! `x_it` appears in exactly one assignment row and `ceil(d_i/scale)`
//! capacity rows — and the revised simplex only ever needs fast access to
//! *columns* (pricing, FTRAN), which CSC provides.

/// A sparse matrix stored column-wise.
#[derive(Clone, Debug, PartialEq)]
pub struct CscMatrix {
    rows: usize,
    cols: usize,
    /// Start offset of each column in `row_idx`/`values`; length `cols+1`.
    col_ptr: Vec<usize>,
    /// Row index of each stored entry, grouped by column, strictly
    /// increasing within a column.
    row_idx: Vec<u32>,
    /// Value of each stored entry.
    values: Vec<f64>,
}

/// Incremental builder: append one column at a time.
#[derive(Clone, Debug, Default)]
pub struct CscBuilder {
    rows: usize,
    col_ptr: Vec<usize>,
    row_idx: Vec<u32>,
    values: Vec<f64>,
}

impl CscBuilder {
    /// A builder for a matrix with `rows` rows and no columns yet.
    pub fn new(rows: usize) -> CscBuilder {
        CscBuilder {
            rows,
            col_ptr: vec![0],
            row_idx: Vec::new(),
            values: Vec::new(),
        }
    }

    /// Appends a column given as `(row, value)` pairs. Zero values are
    /// dropped; entries must have strictly increasing row indices.
    ///
    /// # Panics
    /// Panics on an out-of-range or out-of-order row index.
    pub fn push_column(&mut self, entries: &[(usize, f64)]) {
        let mut last: Option<usize> = None;
        for &(row, value) in entries {
            assert!(row < self.rows, "row {row} out of range ({})", self.rows);
            if let Some(prev) = last {
                assert!(prev < row, "rows must be strictly increasing");
            }
            last = Some(row);
            if value != 0.0 {
                self.row_idx.push(row as u32);
                self.values.push(value);
            }
        }
        self.col_ptr.push(self.row_idx.len());
    }

    /// Finishes the matrix.
    pub fn build(self) -> CscMatrix {
        CscMatrix {
            rows: self.rows,
            cols: self.col_ptr.len() - 1,
            col_ptr: self.col_ptr,
            row_idx: self.row_idx,
            values: self.values,
        }
    }
}

impl CscMatrix {
    /// Builds from a dense row-major matrix (tests and small models).
    pub fn from_dense(rows: &[Vec<f64>]) -> CscMatrix {
        let m = rows.len();
        let n = rows.first().map_or(0, |r| r.len());
        let mut b = CscBuilder::new(m);
        for j in 0..n {
            let col: Vec<(usize, f64)> = rows
                .iter()
                .enumerate()
                .filter(|(_, row)| row[j] != 0.0)
                .map(|(i, row)| (i, row[j]))
                .collect();
            b.push_column(&col);
        }
        b.build()
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of stored non-zeros.
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// Iterates the non-zeros of column `j` as `(row, value)`.
    pub fn column(&self, j: usize) -> impl Iterator<Item = (usize, f64)> + '_ {
        let range = self.col_ptr[j]..self.col_ptr[j + 1];
        self.row_idx[range.clone()]
            .iter()
            .zip(&self.values[range])
            .map(|(&r, &v)| (r as usize, v))
    }

    /// Dot product of column `j` with a dense vector.
    pub fn column_dot(&self, j: usize, dense: &[f64]) -> f64 {
        debug_assert_eq!(dense.len(), self.rows);
        self.column(j).map(|(r, v)| v * dense[r]).sum()
    }

    /// Scatters column `j` into a dense vector (`out` must be zeroed by the
    /// caller where relevant).
    pub fn scatter_column(&self, j: usize, out: &mut [f64]) {
        debug_assert_eq!(out.len(), self.rows);
        for (r, v) in self.column(j) {
            out[r] = v;
        }
    }

    /// Computes `A * x` for a dense `x`.
    pub fn mat_vec(&self, x: &[f64]) -> Vec<f64> {
        debug_assert_eq!(x.len(), self.cols);
        let mut out = vec![0.0; self.rows];
        for (j, &xj) in x.iter().enumerate() {
            if xj != 0.0 {
                for (r, v) in self.column(j) {
                    out[r] += v * xj;
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> CscMatrix {
        // [1 0 2]
        // [0 3 0]
        // [4 0 5]
        CscMatrix::from_dense(&[
            vec![1.0, 0.0, 2.0],
            vec![0.0, 3.0, 0.0],
            vec![4.0, 0.0, 5.0],
        ])
    }

    #[test]
    fn dimensions_and_nnz() {
        let m = sample();
        assert_eq!(m.rows(), 3);
        assert_eq!(m.cols(), 3);
        assert_eq!(m.nnz(), 5);
    }

    #[test]
    fn column_iteration() {
        let m = sample();
        let col0: Vec<_> = m.column(0).collect();
        assert_eq!(col0, vec![(0, 1.0), (2, 4.0)]);
        let col1: Vec<_> = m.column(1).collect();
        assert_eq!(col1, vec![(1, 3.0)]);
    }

    #[test]
    fn column_dot_matches_dense() {
        let m = sample();
        let y = [1.0, 2.0, 3.0];
        assert_eq!(m.column_dot(0, &y), 1.0 + 12.0);
        assert_eq!(m.column_dot(1, &y), 6.0);
        assert_eq!(m.column_dot(2, &y), 2.0 + 15.0);
    }

    #[test]
    fn mat_vec_matches_dense() {
        let m = sample();
        let x = [1.0, 1.0, 1.0];
        assert_eq!(m.mat_vec(&x), vec![3.0, 3.0, 9.0]);
    }

    #[test]
    fn builder_drops_zeros() {
        let mut b = CscBuilder::new(2);
        b.push_column(&[(0, 0.0), (1, 5.0)]);
        let m = b.build();
        assert_eq!(m.nnz(), 1);
        assert_eq!(m.column(0).collect::<Vec<_>>(), vec![(1, 5.0)]);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn out_of_order_rows_panic() {
        let mut b = CscBuilder::new(3);
        b.push_column(&[(2, 1.0), (0, 1.0)]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_row_panics() {
        let mut b = CscBuilder::new(2);
        b.push_column(&[(2, 1.0)]);
    }

    #[test]
    fn scatter_column_writes_entries() {
        let m = sample();
        let mut out = vec![0.0; 3];
        m.scatter_column(2, &mut out);
        assert_eq!(out, vec![2.0, 0.0, 5.0]);
    }

    #[test]
    fn empty_matrix_is_fine() {
        let m = CscBuilder::new(0).build();
        assert_eq!(m.rows(), 0);
        assert_eq!(m.cols(), 0);
        assert_eq!(m.mat_vec(&[]), Vec::<f64>::new());
    }
}
