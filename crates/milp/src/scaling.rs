//! Time-scaling per §3.2 / Eq. 6 of the paper.
//!
//! The time-indexed formulation has `#jobs × T` variables with `T` in
//! seconds — over a million for an 8-job, 2-day instance. The paper keeps
//! the problem in memory by computing the schedule on a coarser grid. The
//! grid width is chosen from the estimated memory footprint:
//!
//! ```text
//! size ≈ (makespan / scale)² · #jobs · (acc.runtime / (makespan · #jobs)) · x
//!      =  makespan · acc.runtime · x / scale²
//! ```
//!
//! Solving `size ≤ memory` for the scale gives Eq. 6:
//!
//! ```text
//! scale = sqrt(makespan · acc.runtime · x / memory)
//! ```
//!
//! rounded **up to the next full minute**. `x` is the estimated memory per
//! matrix entry (the paper found 0.1 kB to work well) and the memory
//! budget is a quarter of the machine's 8 GB, because "the amount of memory
//! used for the integer problem should be about four times smaller than the
//! total memory available".

/// Memory per matrix entry, the paper's `x` = 0.1 kB.
pub const PAPER_X_BYTES: f64 = 102.4;

/// The paper's memory budget: 8 GB total, a quarter usable by the matrix.
pub const PAPER_MEMORY_BYTES: f64 = 8.0 * 1024.0 * 1024.0 * 1024.0 / 4.0;

/// A chosen time scale.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TimeScaling {
    /// Seconds per slot (a multiple of 60, at least 60).
    pub seconds_per_slot: u64,
}

impl TimeScaling {
    /// A fixed scale (still floored at 1 s).
    pub fn fixed(seconds_per_slot: u64) -> TimeScaling {
        TimeScaling {
            seconds_per_slot: seconds_per_slot.max(1),
        }
    }

    /// Eq. 6: picks the scale from the problem dimensions and a memory
    /// budget, rounded up to the next full minute (minimum one minute, as
    /// the paper always solves on "a one minute or greater scale").
    pub fn from_memory(
        max_makespan_seconds: u64,
        accumulated_runtime_seconds: u64,
        x_bytes: f64,
        memory_bytes: f64,
    ) -> TimeScaling {
        assert!(x_bytes > 0.0 && memory_bytes > 0.0);
        let raw = ((max_makespan_seconds as f64 * accumulated_runtime_seconds as f64 * x_bytes)
            / memory_bytes)
            .sqrt();
        let minutes = (raw / 60.0).ceil().max(1.0);
        TimeScaling {
            seconds_per_slot: minutes as u64 * 60,
        }
    }

    /// The paper's configuration (x = 0.1 kB, 8 GB / 4).
    pub fn paper(max_makespan_seconds: u64, accumulated_runtime_seconds: u64) -> TimeScaling {
        TimeScaling::from_memory(
            max_makespan_seconds,
            accumulated_runtime_seconds,
            PAPER_X_BYTES,
            PAPER_MEMORY_BYTES,
        )
    }

    /// Estimated matrix memory (bytes) at this scale, per the paper's
    /// approximation.
    pub fn estimated_bytes(
        &self,
        max_makespan_seconds: u64,
        accumulated_runtime_seconds: u64,
        x_bytes: f64,
    ) -> f64 {
        max_makespan_seconds as f64 * accumulated_runtime_seconds as f64 * x_bytes
            / (self.seconds_per_slot as f64 * self.seconds_per_slot as f64)
    }

    /// Number of slots covering `span` seconds (rounded up).
    pub fn slots_for(&self, span_seconds: u64) -> usize {
        span_seconds.div_ceil(self.seconds_per_slot) as usize
    }

    /// Converts a slot index back to an absolute start time given `now`.
    pub fn slot_start(&self, now: u64, slot: usize) -> u64 {
        now + slot as u64 * self.seconds_per_slot
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_sized_instance_lands_in_minutes() {
        // A Table-1-sized instance: makespan 155559 s, acc. runtime
        // 1798684 s. Eq. 6 with x = 0.1 kB and 2 GB yields a raw scale of
        // ~116 s, i.e. 2 full minutes — the same order as the paper's
        // reported scales (1–6 min).
        let s = TimeScaling::paper(155_559, 1_798_684);
        assert_eq!(s.seconds_per_slot, 120);
    }

    #[test]
    fn more_paper_sized_rows_stay_in_the_minutes_range() {
        for (makespan, acc) in [
            (152_596u64, 1_862_241u64),
            (37_412, 637_947),
            (172_776, 1_617_178),
            (116_391, 1_030_642),
        ] {
            let s = TimeScaling::paper(makespan, acc);
            assert!(
                (60..=360).contains(&s.seconds_per_slot),
                "scale {} s out of the paper's 1-6 min range",
                s.seconds_per_slot
            );
        }
    }

    #[test]
    fn small_instances_get_the_minimum_minute() {
        let s = TimeScaling::paper(3600, 7200);
        assert_eq!(s.seconds_per_slot, 60);
    }

    #[test]
    fn scale_rounds_up_to_full_minutes() {
        // Force a raw value between 1 and 2 minutes.
        let s = TimeScaling::from_memory(100_000, 100_000, 102.4, 100_000_000.0);
        assert_eq!(s.seconds_per_slot % 60, 0);
        assert!(s.seconds_per_slot >= 60);
    }

    #[test]
    fn estimated_bytes_respects_budget() {
        let makespan = 155_559;
        let acc = 1_798_684;
        let s = TimeScaling::paper(makespan, acc);
        // At the chosen scale the estimate must fit the budget (that is the
        // whole point of Eq. 6).
        assert!(s.estimated_bytes(makespan, acc, PAPER_X_BYTES) <= PAPER_MEMORY_BYTES);
    }

    #[test]
    fn bigger_memory_means_finer_scale() {
        let coarse = TimeScaling::from_memory(200_000, 2_000_000, 102.4, 1e8);
        let fine = TimeScaling::from_memory(200_000, 2_000_000, 102.4, 1e10);
        assert!(fine.seconds_per_slot <= coarse.seconds_per_slot);
    }

    #[test]
    fn slot_arithmetic() {
        let s = TimeScaling::fixed(300);
        assert_eq!(s.slots_for(0), 0);
        assert_eq!(s.slots_for(1), 1);
        assert_eq!(s.slots_for(300), 1);
        assert_eq!(s.slots_for(301), 2);
        assert_eq!(s.slot_start(1000, 0), 1000);
        assert_eq!(s.slot_start(1000, 3), 1900);
    }

    #[test]
    fn fixed_scale_floors_at_one_second() {
        assert_eq!(TimeScaling::fixed(0).seconds_per_slot, 1);
    }
}
