//! The time-indexed integer program of §3.1, on the §3.2 slot grid.
//!
//! Variables: `x_it = 1` iff job `i` starts at slot `t` (Eq. 1). Objective:
//! minimize response time weighted by width (Eq. 2) — on the slot grid this
//! reduces to integer costs `w_i · t`, which both preserves the argmin and
//! lets branch & bound ceil its LP bounds. Constraints: every job starts
//! exactly once (Eq. 3) and per-slot capacity reduced by the machine
//! history (Eq. 4), where a slot's capacity is the **minimum** free count
//! over the real-time window it covers, so any slot-grid schedule is
//! feasible in real time.
//!
//! The horizon `T` is the caller's bound (§3.1 recommends the maximum
//! makespan of the FCFS/SJF/LJF schedules), automatically extended until a
//! greedy slot schedule fits, which guarantees model feasibility without
//! giving the search more room than it needs.

use crate::model::{Milp, Sense};
use crate::scaling::TimeScaling;

/// Bound modifications `(variable, new lower, new upper)` for the two
/// children of an SOS branch (see [`TimeIndexedModel::sos_branch`]).
pub type BranchChildren = (Vec<(usize, f64, f64)>, Vec<(usize, f64, f64)>);
use crate::simplex::LpSolution;
use crate::sparse::CscBuilder;
use dynp_sched::{Schedule, ScheduleEntry, SchedulingProblem};
use dynp_trace::JobId;

/// The §3.1 formulation built for one snapshot.
#[derive(Clone, Debug)]
pub struct TimeIndexedModel {
    /// The MILP ready for [`crate::branch`].
    pub model: Milp,
    /// The slot width used.
    pub scaling: TimeScaling,
    /// Number of slots `T`.
    pub horizon_slots: usize,
    /// Slot capacities `M_t` after subtracting the machine history.
    pub slot_capacity: Vec<u32>,
    /// Per-job duration in slots (`ceil(d_i / scale)`).
    pub duration_slots: Vec<usize>,
    /// `var_map[v] = (job index, start slot)`.
    pub var_map: Vec<(usize, usize)>,
    /// Variable range `[start, end)` of each job's columns.
    pub job_vars: Vec<(usize, usize)>,
    /// Observation time of the snapshot.
    pub now: u64,
    /// Job ids in snapshot order (for extraction).
    pub job_ids: Vec<JobId>,
    /// Job widths in snapshot order.
    pub widths: Vec<u32>,
}

impl TimeIndexedModel {
    /// Builds the formulation for `problem` at `scaling`, with an initial
    /// horizon of `horizon_end` absolute seconds (e.g. the max policy
    /// makespan per §3.1). The horizon is extended if a greedy placement
    /// needs more room, so the model is always feasible.
    ///
    /// # Panics
    /// Panics on an empty snapshot — there is nothing to optimize.
    pub fn build(
        problem: &SchedulingProblem,
        scaling: TimeScaling,
        horizon_end: u64,
    ) -> TimeIndexedModel {
        assert!(!problem.is_empty(), "empty snapshot has no ILP");
        let now = problem.now;
        let scale = scaling.seconds_per_slot;
        let duration_slots: Vec<usize> = problem
            .jobs
            .iter()
            .map(|j| (j.estimated_duration.max(1)).div_ceil(scale) as usize)
            .collect();
        let base_slots = scaling
            .slots_for(horizon_end.saturating_sub(now))
            .max(*duration_slots.iter().max().unwrap());

        // Capacity of a slot = min free over its real window of the
        // availability profile (history minus reservations).
        let profile = problem.availability_profile();
        let capacity_at = |t: usize| -> u32 {
            let a = now + t as u64 * scale;
            let b = a + scale;
            profile.min_free(a, b)
        };

        // Greedy placement in snapshot order to find a horizon that surely
        // admits a feasible solution.
        let horizon_slots = {
            let mut t_needed = base_slots;
            loop {
                let mut rem: Vec<i64> = (0..t_needed).map(|t| capacity_at(t) as i64).collect();
                if greedy_fill(problem, &duration_slots, &mut rem).is_some() {
                    break t_needed;
                }
                t_needed += base_slots.max(16);
            }
        };
        let slot_capacity: Vec<u32> = (0..horizon_slots).map(capacity_at).collect();

        // Assemble the model: rows 0..n are assignment (Eq), rows
        // n..n+T are capacity (Le).
        let n = problem.jobs.len();
        let m = n + horizon_slots;
        let mut builder = CscBuilder::new(m);
        let mut objective = Vec::new();
        let mut var_map = Vec::new();
        let mut job_vars = Vec::new();
        for (i, job) in problem.jobs.iter().enumerate() {
            let d = duration_slots[i];
            let first_var = objective.len();
            for t in 0..=(horizon_slots - d) {
                let mut col: Vec<(usize, f64)> = Vec::with_capacity(1 + d);
                col.push((i, 1.0));
                for s in t..t + d {
                    col.push((n + s, job.width as f64));
                }
                builder.push_column(&col);
                objective.push(job.width as f64 * t as f64);
                var_map.push((i, t));
            }
            job_vars.push((first_var, objective.len()));
        }
        let mut senses = vec![Sense::Eq; n];
        senses.extend(vec![Sense::Le; horizon_slots]);
        let mut rhs = vec![1.0; n];
        rhs.extend(slot_capacity.iter().map(|&c| c as f64));
        let model = Milp::binary(objective, builder.build(), senses, rhs);
        TimeIndexedModel {
            model,
            scaling,
            horizon_slots,
            slot_capacity,
            duration_slots,
            var_map,
            job_vars,
            now,
            job_ids: problem.jobs.iter().map(|j| j.id).collect(),
            widths: problem.jobs.iter().map(|j| j.width).collect(),
        }
    }

    /// Start slot of each job in an integral solution.
    pub fn start_slots(&self, x: &[f64]) -> Vec<usize> {
        assert_eq!(x.len(), self.model.num_vars());
        let mut slots = vec![usize::MAX; self.job_ids.len()];
        for (v, &xv) in x.iter().enumerate() {
            if xv > 0.5 {
                let (i, t) = self.var_map[v];
                debug_assert_eq!(slots[i], usize::MAX, "job {i} started twice");
                slots[i] = t;
            }
        }
        debug_assert!(slots.iter().all(|&s| s != usize::MAX));
        slots
    }

    /// The §3.2 *starting order*: job ids sorted by start slot (ties by
    /// id), ready for compaction against the real-second profile.
    pub fn start_order(&self, x: &[f64]) -> Vec<JobId> {
        let slots = self.start_slots(x);
        let mut order: Vec<usize> = (0..self.job_ids.len()).collect();
        order.sort_by_key(|&i| (slots[i], self.job_ids[i]));
        order.into_iter().map(|i| self.job_ids[i]).collect()
    }

    /// The raw (uncompacted) slot-grid schedule of an integral solution, in
    /// absolute seconds, with estimated durations. Mostly useful to measure
    /// how much compaction reclaims.
    pub fn slot_schedule(&self, x: &[f64], problem: &SchedulingProblem) -> Schedule {
        let slots = self.start_slots(x);
        let mut schedule = Schedule::new();
        for (i, job) in problem.jobs.iter().enumerate() {
            let start = self.scaling.slot_start(self.now, slots[i]);
            schedule.push(ScheduleEntry {
                id: job.id,
                start,
                end: start + job.estimated_duration,
                width: job.width,
            });
        }
        schedule
    }

    /// Greedy slot-grid placement in the given job order; returns the
    /// variable vector of a feasible solution. Used both for incumbent
    /// seeding (from the best policy's start order) and as the rounding
    /// heuristic's engine.
    pub fn greedy_solution(&self, order: &[usize]) -> Option<Vec<f64>> {
        let mut rem: Vec<i64> = self.slot_capacity.iter().map(|&c| c as i64).collect();
        let starts = greedy_fill_order(order, &self.duration_slots, &self.widths, &mut rem)?;
        let mut x = vec![0.0; self.model.num_vars()];
        for (i, &t) in starts.iter().enumerate() {
            let (lo, hi) = self.job_vars[i];
            let var = lo + t;
            debug_assert!(var < hi && self.var_map[var] == (i, t));
            x[var] = 1.0;
        }
        Some(x)
    }

    /// Builds a primal-feasible crash basis for the node described by
    /// `(lower, upper)` bound vectors, skipping simplex phase 1 entirely
    /// (see [`crate::simplex::SimplexStart`]).
    ///
    /// The basis exploits the model's block structure: one chosen `x_it`
    /// per job is basic in its assignment row, and every capacity row keeps
    /// its slack basic — a lower-triangular, trivially invertible basis.
    /// The chosen starts come from a greedy earliest-fit that honours the
    /// node's fixings (`lower = 1` forces a start slot, `upper = 0`
    /// forbids one). Returns `None` when the greedy cannot satisfy the
    /// fixings (the node may still be LP-feasible; the solver then falls
    /// back to phase 1).
    #[allow(clippy::needless_range_loop)] // parallel arrays indexed by job
    pub fn crash_start(
        &self,
        lower: &[f64],
        upper: &[f64],
    ) -> Option<crate::simplex::SimplexStart> {
        let n = self.job_ids.len();
        let mut rem: Vec<i64> = self.slot_capacity.iter().map(|&c| c as i64).collect();
        let mut chosen = vec![usize::MAX; n];
        // Forced starts first: vars with lower bound 1.
        for i in 0..n {
            let (lo, hi) = self.job_vars[i];
            for v in lo..hi {
                if lower[v] > 0.5 {
                    let (_, t) = self.var_map[v];
                    let d = self.duration_slots[i];
                    let w = self.widths[i] as i64;
                    if (t..t + d).any(|s| rem[s] < w) {
                        return None; // forced starts clash
                    }
                    for s in t..t + d {
                        rem[s] -= w;
                    }
                    chosen[i] = v;
                    break;
                }
            }
        }
        // Remaining jobs: earliest allowed fit.
        for i in 0..n {
            if chosen[i] != usize::MAX {
                continue;
            }
            let (lo, hi) = self.job_vars[i];
            let d = self.duration_slots[i];
            let w = self.widths[i] as i64;
            let mut placed = false;
            for v in lo..hi {
                if upper[v] < 0.5 {
                    continue; // slot forbidden at this node
                }
                let (_, t) = self.var_map[v];
                if (t..t + d).all(|s| rem[s] >= w) {
                    for s in t..t + d {
                        rem[s] -= w;
                    }
                    chosen[i] = v;
                    placed = true;
                    break;
                }
            }
            if !placed {
                return None;
            }
        }
        // Basis: assignment row i -> chosen x var; capacity row t -> its
        // slack, which (with all-Le capacity rows after all-Eq assignment
        // rows) has solver index n_vars + t.
        let n_vars = self.model.num_vars();
        let mut basis = Vec::with_capacity(n + self.horizon_slots);
        basis.extend_from_slice(&chosen);
        basis.extend((0..self.horizon_slots).map(|t| n_vars + t));
        Some(crate::simplex::SimplexStart {
            basis,
            at_upper: Vec::new(),
            unit_lower_triangular: true,
        })
    }

    /// SOS-style branching on job start times: picks the job with the most
    /// fractional start distribution and splits its allowed slots at the
    /// mass median θ — child A forbids starts after θ, child B forbids
    /// starts at or before θ. This partitions the feasible set (exactness
    /// preserved) and is far stronger than single-variable branching on
    /// time-indexed models. Returns `None` when no job is fractional.
    #[allow(clippy::needless_range_loop)] // parallel arrays indexed by job
    pub fn sos_branch(&self, lp: &crate::simplex::LpSolution) -> Option<BranchChildren> {
        let n = self.job_ids.len();
        // Pick the job with the largest number of fractionally used slots,
        // ties broken by index for determinism.
        let mut best: Option<(usize, usize)> = None; // (job, frac slots)
        for i in 0..n {
            let (lo, hi) = self.job_vars[i];
            let frac = (lo..hi)
                .filter(|&v| lp.x[v] > 1e-6 && lp.x[v] < 1.0 - 1e-6)
                .count();
            if frac > 0 && best.is_none_or(|(_, b)| frac > b) {
                best = Some((i, frac));
            }
        }
        let (job, _) = best?;
        let (lo, hi) = self.job_vars[job];
        // Mass median split point θ over start slots.
        let masses: Vec<(usize, f64)> = (lo..hi)
            .filter(|&v| lp.x[v] > 1e-9)
            .map(|v| (self.var_map[v].1, lp.x[v]))
            .collect();
        debug_assert!(masses.len() >= 2, "fractional job has >= 2 used slots");
        let mut cum = 0.0;
        let mut split = masses[0].0;
        for (k, &(t, mass)) in masses.iter().enumerate() {
            cum += mass;
            if cum >= 0.5 {
                // Never put *all* mass on one side.
                split = if k + 1 == masses.len() {
                    masses[k - 1].0
                } else {
                    t
                };
                break;
            }
        }
        let mut forbid_late = Vec::new(); // child A: start <= split
        let mut forbid_early = Vec::new(); // child B: start > split
        for v in lo..hi {
            let (_, t) = self.var_map[v];
            if t > split {
                forbid_late.push((v, 0.0, 0.0));
            } else {
                forbid_early.push((v, 0.0, 0.0));
            }
        }
        debug_assert!(!forbid_late.is_empty() && !forbid_early.is_empty());
        Some((forbid_late, forbid_early))
    }

    /// Rounding heuristic for branch & bound: order jobs by their LP mean
    /// start slot and place greedily.
    pub fn rounding_heuristic(&self, lp: &LpSolution) -> Option<Vec<f64>> {
        let n = self.job_ids.len();
        let mut mean = vec![0.0f64; n];
        for (v, &xv) in lp.x.iter().enumerate() {
            if xv > 1e-9 {
                let (i, t) = self.var_map[v];
                mean[i] += xv * t as f64;
            }
        }
        let mut order: Vec<usize> = (0..n).collect();
        order.sort_by(|&a, &b| {
            mean[a]
                .partial_cmp(&mean[b])
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.cmp(&b))
        });
        self.greedy_solution(&order)
    }

    /// Real-seconds ARTwW (Eq. 2) of an integral solution *on the slot
    /// grid* (before compaction), for diagnostics.
    pub fn artww_seconds(&self, x: &[f64], problem: &SchedulingProblem) -> f64 {
        let slots = self.start_slots(x);
        let mut num = 0.0;
        let mut den = 0.0;
        for (i, job) in problem.jobs.iter().enumerate() {
            let start = self.scaling.slot_start(self.now, slots[i]);
            let response = (start - job.submit + job.estimated_duration) as f64;
            num += response * job.width as f64;
            den += job.width as f64;
        }
        num / den
    }
}

/// Greedy earliest-fit on a slot capacity vector, jobs in snapshot order.
/// Returns start slots or `None` if the horizon is too short.
fn greedy_fill(
    problem: &SchedulingProblem,
    duration_slots: &[usize],
    rem: &mut [i64],
) -> Option<Vec<usize>> {
    let widths: Vec<u32> = problem.jobs.iter().map(|j| j.width).collect();
    let order: Vec<usize> = (0..problem.jobs.len()).collect();
    greedy_fill_order(&order, duration_slots, &widths, rem)
}

/// Greedy earliest-fit in an explicit order; mutates `rem` in place.
fn greedy_fill_order(
    order: &[usize],
    duration_slots: &[usize],
    widths: &[u32],
    rem: &mut [i64],
) -> Option<Vec<usize>> {
    let horizon = rem.len();
    let mut starts = vec![0usize; duration_slots.len()];
    for &i in order {
        let d = duration_slots[i];
        let w = widths[i] as i64;
        if d > horizon {
            return None;
        }
        let mut placed = false;
        let mut t = 0usize;
        while t + d <= horizon {
            match (t..t + d).find(|&s| rem[s] < w) {
                Some(blocked) => t = blocked + 1,
                None => {
                    for slot in rem.iter_mut().take(t + d).skip(t) {
                        *slot -= w;
                    }
                    starts[i] = t;
                    placed = true;
                    break;
                }
            }
        }
        if !placed {
            return None;
        }
    }
    Some(starts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::branch::{solve_mip, BranchLimits, MipStatus};
    use dynp_platform::MachineHistory;
    use dynp_trace::Job;

    fn snapshot() -> SchedulingProblem {
        SchedulingProblem::on_empty_machine(
            0,
            4,
            vec![
                Job::exact(0, 0, 4, 600), // 10 min, full machine
                Job::exact(1, 0, 2, 300), // 5 min
                Job::exact(2, 0, 2, 300),
            ],
        )
    }

    fn build(problem: &SchedulingProblem, scale: u64) -> TimeIndexedModel {
        // A generous horizon: serial execution of everything.
        TimeIndexedModel::build(problem, TimeScaling::fixed(scale), problem.naive_horizon())
    }

    #[test]
    fn model_dimensions_are_consistent() {
        let p = snapshot();
        let ti = build(&p, 60);
        // durations in slots: 10, 5, 5.
        assert_eq!(ti.duration_slots, vec![10, 5, 5]);
        let n_vars: usize = ti.job_vars.iter().map(|&(lo, hi)| hi - lo).sum();
        assert_eq!(n_vars, ti.model.num_vars());
        assert_eq!(
            ti.model.num_constraints(),
            3 + ti.horizon_slots,
            "assignment + capacity rows"
        );
    }

    #[test]
    fn capacities_reflect_machine_history() {
        // 3 of 4 busy until t=120.
        let history = MachineHistory::build(4, 0, &[(3, 120)]);
        let p = SchedulingProblem::new(0, history, vec![Job::exact(0, 0, 1, 60)]);
        let ti = build(&p, 60);
        assert_eq!(ti.slot_capacity[0], 1);
        assert_eq!(ti.slot_capacity[1], 1);
        assert_eq!(ti.slot_capacity[2], 4);
    }

    #[test]
    fn partial_slot_overlap_uses_min_free() {
        // Busy until t=90, slot width 60: slot 1 ([60,120)) must use the
        // constrained capacity.
        let history = MachineHistory::build(4, 0, &[(3, 90)]);
        let p = SchedulingProblem::new(0, history, vec![Job::exact(0, 0, 1, 60)]);
        let ti = build(&p, 60);
        assert_eq!(ti.slot_capacity[0], 1);
        assert_eq!(ti.slot_capacity[1], 1, "min over [60,120) is 1");
        assert_eq!(ti.slot_capacity[2], 4);
    }

    #[test]
    fn solving_the_model_gives_an_optimal_packing() {
        let p = snapshot();
        let ti = build(&p, 60);
        let sol = solve_mip(&ti.model, BranchLimits::default());
        assert_eq!(sol.status, MipStatus::Optimal);
        let x = sol.x.unwrap();
        ti.model.check_feasible(&x, 1e-6).unwrap();
        // Optimal slot objective: the two 2-wide jobs run together first
        // (slots 0-4), then the full-machine job (slot 5):
        // cost = 2*0 + 2*0 + 4*5 = 20. Running the wide job first costs
        // 0 + 2*10*2 = 40. So the optimum is 20.
        assert!((sol.objective.unwrap() - 20.0).abs() < 1e-6);
        let slots = ti.start_slots(&x);
        assert_eq!(slots[0], 5);
        assert_eq!(slots[1], 0);
        assert_eq!(slots[2], 0);
    }

    #[test]
    fn start_order_sorts_by_slot() {
        let p = snapshot();
        let ti = build(&p, 60);
        let sol = solve_mip(&ti.model, BranchLimits::default());
        let x = sol.x.unwrap();
        let order = ti.start_order(&x);
        assert_eq!(order, vec![JobId(1), JobId(2), JobId(0)]);
    }

    #[test]
    fn greedy_solution_is_feasible() {
        let p = snapshot();
        let ti = build(&p, 60);
        let x = ti.greedy_solution(&[0, 1, 2]).unwrap();
        ti.model.check_feasible(&x, 1e-9).unwrap();
        assert!(ti.model.is_integral(&x, 1e-9));
        // Greedy in snapshot order runs job 0 first: objective 40.
        assert!((ti.model.objective_value(&x) - 40.0).abs() < 1e-9);
        // Greedy in SJF-ish order finds the optimum.
        let x2 = ti.greedy_solution(&[1, 2, 0]).unwrap();
        assert!((ti.model.objective_value(&x2) - 20.0).abs() < 1e-9);
    }

    #[test]
    fn horizon_extends_until_feasible() {
        // Horizon end = now (zero slots) must still produce a feasible
        // model by extension.
        let p = snapshot();
        let ti = TimeIndexedModel::build(&p, TimeScaling::fixed(60), 0);
        assert!(ti.horizon_slots >= 20, "needs at least serial length");
        assert!(ti.greedy_solution(&[0, 1, 2]).is_some());
    }

    #[test]
    fn slot_schedule_respects_grid() {
        let p = snapshot();
        let ti = build(&p, 60);
        let sol = solve_mip(&ti.model, BranchLimits::default());
        let x = sol.x.unwrap();
        let sched = ti.slot_schedule(&x, &p);
        for e in sched.entries() {
            assert_eq!((e.start - p.now) % 60, 0, "start off the grid");
        }
    }

    #[test]
    fn artww_seconds_matches_manual_computation() {
        let p = snapshot();
        let ti = build(&p, 60);
        let sol = solve_mip(&ti.model, BranchLimits::default());
        let x = sol.x.unwrap();
        // starts: job0 at 300, jobs 1,2 at 0.
        // responses: 900 (w4), 300 (w2), 300 (w2).
        let expect = (900.0 * 4.0 + 300.0 * 2.0 + 300.0 * 2.0) / 8.0;
        assert!((ti.artww_seconds(&x, &p) - expect).abs() < 1e-9);
    }

    #[test]
    fn rounding_heuristic_returns_feasible_point() {
        let p = snapshot();
        let ti = build(&p, 60);
        let lp = crate::simplex::solve_lp(&ti.model, 100_000);
        let lp = lp.optimal().unwrap();
        let x = ti.rounding_heuristic(lp).unwrap();
        ti.model.check_feasible(&x, 1e-6).unwrap();
        assert!(ti.model.is_integral(&x, 1e-9));
    }

    #[test]
    #[should_panic(expected = "empty snapshot")]
    fn empty_snapshot_panics() {
        let p = SchedulingProblem::on_empty_machine(0, 4, vec![]);
        TimeIndexedModel::build(&p, TimeScaling::fixed(60), 100);
    }

    #[test]
    fn coarse_scale_shrinks_the_model() {
        let p = snapshot();
        let fine = build(&p, 60);
        let coarse = build(&p, 300);
        assert!(coarse.model.num_vars() < fine.model.num_vars());
        assert!(coarse.horizon_slots < fine.horizon_slots);
    }
}
