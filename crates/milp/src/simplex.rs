//! A bounded-variable, two-phase revised primal simplex.
//!
//! This is the LP engine under the branch & bound of [`crate::branch`]. It
//! is written for the structure of time-indexed scheduling relaxations —
//! many binary-bounded columns, few rows — but is a general solver:
//!
//! * variables with finite lower/upper bounds (slacks unbounded above),
//! * all three constraint senses (slack/surplus added internally),
//! * phase 1 over a full artificial basis (artificials are fixed to zero
//!   afterwards, which safely neutralizes redundant rows),
//! * explicit dense basis inverse with periodic refactorization,
//! * Dantzig pricing with a permanent switch to Bland's rule after a
//!   stall, guaranteeing termination.
//!
//! Determinism: no randomness, no wall clock; the iteration limit is the
//! only resource bound, so results are reproducible bit-for-bit.

// Dense linear-algebra kernels below index row-major buffers directly;
// iterator adaptors obscure the math there.
#![allow(clippy::needless_range_loop)]

use crate::model::{Milp, Sense};

/// Feasibility / optimality tolerance.
const TOL: f64 = 1e-7;
/// Smallest pivot magnitude accepted.
const PIVOT_TOL: f64 = 1e-9;
/// Refactorize the basis inverse every this many pivots.
const REFACTOR_EVERY: usize = 128;
/// Switch from Dantzig to Bland pricing after this many iterations without
/// improvement, to break degenerate cycles.
const STALL_LIMIT: usize = 512;
/// Column block size for partial pricing.
const PARTIAL_BLOCK: usize = 512;

/// A solved LP relaxation.
#[derive(Clone, Debug)]
pub struct LpSolution {
    /// Optimal objective value.
    pub objective: f64,
    /// Values of the *structural* variables (slacks stripped).
    pub x: Vec<f64>,
    /// Phase-2 reduced costs of the structural variables (0 for basic
    /// ones). At optimality these certify the bound and enable
    /// reduced-cost fixing in branch & bound: forcing a nonbasic variable
    /// off its bound costs at least its reduced cost.
    pub reduced_costs: Vec<f64>,
    /// Simplex iterations used (both phases).
    pub iterations: usize,
}

/// Outcome of an LP solve.
#[derive(Clone, Debug)]
pub enum LpOutcome {
    /// Proven optimal.
    Optimal(LpSolution),
    /// No feasible point exists (within tolerance).
    Infeasible,
    /// The objective is unbounded below.
    Unbounded,
    /// Gave up after the iteration limit; no usable bound.
    IterationLimit,
}

impl LpOutcome {
    /// The solution if optimal.
    pub fn optimal(&self) -> Option<&LpSolution> {
        match self {
            LpOutcome::Optimal(s) => Some(s),
            _ => None,
        }
    }
}

/// A primal-feasible starting basis ("crash basis") that skips phase 1.
///
/// `basis[i]` is the variable basic in row `i`. Variable indexing follows
/// the solver's internal layout: structural variables are `0..n`, and the
/// slack of the `k`-th **inequality** row (counting only `≤`/`≥` rows, in
/// row order) has index `n + k`. `at_upper` lists nonbasic variables
/// resting at their *upper* bound; all other nonbasic variables rest at
/// their lower bound.
///
/// The solver verifies the basis (nonsingular, primal feasible within
/// tolerance) and silently falls back to the artificial phase-1 start if
/// the verification fails, so a wrong crash can cost time but never
/// correctness.
#[derive(Clone, Debug)]
pub struct SimplexStart {
    /// Basic variable per row.
    pub basis: Vec<usize>,
    /// Nonbasic variables parked at their upper bound.
    pub at_upper: Vec<usize>,
    /// Declares that the basis matrix is `B = I + L` with unit diagonal
    /// and `L` strictly lower triangular satisfying `L² = 0` (e.g. the
    /// assignment/capacity crash of time-indexed models). The solver
    /// verifies the claim structurally and then builds `B⁻¹ = I − L` in
    /// O(nnz) instead of a dense O(m³) inversion.
    pub unit_lower_triangular: bool,
}

/// Solves the LP relaxation of `model` with overridden variable bounds
/// (`node_lower` / `node_upper`, as branch & bound fixes variables).
/// Integrality flags are ignored.
pub fn solve_lp_with_bounds(
    model: &Milp,
    node_lower: &[f64],
    node_upper: &[f64],
    max_iterations: usize,
) -> LpOutcome {
    solve_lp_with_start(model, node_lower, node_upper, None, max_iterations)
}

/// Like [`solve_lp_with_bounds`], optionally crash-starting from a caller
/// supplied basis (see [`SimplexStart`]).
pub fn solve_lp_with_start(
    model: &Milp,
    node_lower: &[f64],
    node_upper: &[f64],
    start: Option<&SimplexStart>,
    max_iterations: usize,
) -> LpOutcome {
    let mut simplex = Simplex::new(model, node_lower, node_upper);
    let crashed = start.is_some_and(|s| simplex.try_crash(s));
    simplex.solve(max_iterations, crashed)
}

/// Solves the plain LP relaxation of `model`.
pub fn solve_lp(model: &Milp, max_iterations: usize) -> LpOutcome {
    solve_lp_with_bounds(model, &model.lower, &model.upper, max_iterations)
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum VarState {
    Basic(usize),
    AtLower,
    AtUpper,
}

struct Simplex<'a> {
    model: &'a Milp,
    m: usize,
    n_struct: usize,
    n_slack: usize,
    n_total: usize,
    /// Row and sign of each slack variable.
    slack_row: Vec<usize>,
    slack_sign: Vec<f64>,
    /// Sign of the artificial column in each row.
    art_sign: Vec<f64>,
    lower: Vec<f64>,
    upper: Vec<f64>,
    basis: Vec<usize>,
    state: Vec<VarState>,
    /// Dense m x m basis inverse, row-major.
    binv: Vec<f64>,
    /// Current values of all variables.
    x: Vec<f64>,
    pivots_since_refactor: usize,
    iterations: usize,
    /// Rotating cursor for partial pricing.
    price_start: usize,
}

impl<'a> Simplex<'a> {
    fn new(model: &'a Milp, node_lower: &[f64], node_upper: &[f64]) -> Simplex<'a> {
        let m = model.num_constraints();
        let n_struct = model.num_vars();
        assert_eq!(node_lower.len(), n_struct);
        assert_eq!(node_upper.len(), n_struct);
        let mut slack_row = Vec::new();
        let mut slack_sign = Vec::new();
        for (i, sense) in model.senses.iter().enumerate() {
            match sense {
                Sense::Le => {
                    slack_row.push(i);
                    slack_sign.push(1.0);
                }
                Sense::Ge => {
                    slack_row.push(i);
                    slack_sign.push(-1.0);
                }
                Sense::Eq => {}
            }
        }
        let n_slack = slack_row.len();
        let n_total = n_struct + n_slack + m;
        let mut lower = Vec::with_capacity(n_total);
        let mut upper = Vec::with_capacity(n_total);
        lower.extend_from_slice(node_lower);
        upper.extend_from_slice(node_upper);
        lower.extend(std::iter::repeat_n(0.0, n_slack));
        upper.extend(std::iter::repeat_n(f64::INFINITY, n_slack));
        lower.extend(std::iter::repeat_n(0.0, m));
        upper.extend(std::iter::repeat_n(f64::INFINITY, m));

        let mut sx = Simplex {
            model,
            m,
            n_struct,
            n_slack,
            n_total,
            slack_row,
            slack_sign,
            art_sign: vec![1.0; m],
            lower,
            upper,
            basis: Vec::new(),
            state: vec![VarState::AtLower; n_total],
            binv: vec![0.0; m * m],
            x: vec![0.0; n_total],
            pivots_since_refactor: 0,
            iterations: 0,
            price_start: 0,
        };
        sx.initialize();
        sx
    }

    /// Iterates the non-zero entries of column `j` (structural, slack or
    /// artificial) as `(row, value)`.
    fn for_column(&self, j: usize, mut f: impl FnMut(usize, f64)) {
        if j < self.n_struct {
            for (r, v) in self.model.matrix.column(j) {
                f(r, v);
            }
        } else if j < self.n_struct + self.n_slack {
            let k = j - self.n_struct;
            f(self.slack_row[k], self.slack_sign[k]);
        } else {
            let r = j - self.n_struct - self.n_slack;
            f(r, self.art_sign[r]);
        }
    }

    /// Places nonbasic variables on a bound and builds the all-artificial
    /// starting basis with signs chosen so artificial values are >= 0.
    fn initialize(&mut self) {
        // Nonbasic structural + slack variables at their finite bound.
        for j in 0..self.n_struct + self.n_slack {
            if self.lower[j].is_finite() {
                self.state[j] = VarState::AtLower;
                self.x[j] = self.lower[j];
            } else if self.upper[j].is_finite() {
                self.state[j] = VarState::AtUpper;
                self.x[j] = self.upper[j];
            } else {
                // Free variable: park at zero (treated as "at lower" with
                // an infinite bound; it can enter but never flip).
                self.state[j] = VarState::AtLower;
                self.x[j] = 0.0;
            }
        }
        // Residual r = b - A x_N decides artificial signs.
        let mut residual = self.model.rhs.clone();
        for j in 0..self.n_struct + self.n_slack {
            let xj = self.x[j];
            if xj != 0.0 {
                self.for_column(j, |r, v| residual[r] -= v * xj);
            }
        }
        self.basis = Vec::with_capacity(self.m);
        for i in 0..self.m {
            self.art_sign[i] = if residual[i] >= 0.0 { 1.0 } else { -1.0 };
            let art = self.n_struct + self.n_slack + i;
            self.basis.push(art);
            self.state[art] = VarState::Basic(i);
            self.x[art] = residual[i].abs();
        }
        // B = diag(art_sign) so B^-1 = diag(art_sign).
        self.binv.iter_mut().for_each(|v| *v = 0.0);
        for i in 0..self.m {
            self.binv[i * self.m + i] = self.art_sign[i];
        }
        self.pivots_since_refactor = 0;
    }

    /// Cost vector of the given phase.
    fn cost(&self, phase1: bool, j: usize) -> f64 {
        if phase1 {
            if j >= self.n_struct + self.n_slack {
                1.0
            } else {
                0.0
            }
        } else if j < self.n_struct {
            self.model.objective[j]
        } else {
            0.0
        }
    }

    /// Reduced-cost test of one nonbasic column: returns `(|d|, direction)`
    /// when entering `j` improves the phase objective.
    fn price_candidate(&self, phase1: bool, j: usize, y: &[f64]) -> Option<(f64, f64)> {
        let dir = match self.state[j] {
            VarState::Basic(_) => return None,
            VarState::AtLower => 1.0,
            VarState::AtUpper => -1.0,
        };
        if self.lower[j] == self.upper[j] {
            return None; // fixed (e.g. neutralized artificials)
        }
        let mut d = self.cost(phase1, j);
        self.for_column(j, |r, v| d -= y[r] * v);
        let improving = if dir > 0.0 { d < -TOL } else { d > TOL };
        improving.then_some((d.abs(), dir))
    }

    /// y = c_B^T B^-1.
    fn btran(&self, phase1: bool) -> Vec<f64> {
        let mut y = vec![0.0; self.m];
        for i in 0..self.m {
            let cb = self.cost(phase1, self.basis[i]);
            if cb != 0.0 {
                let row = &self.binv[i * self.m..(i + 1) * self.m];
                for k in 0..self.m {
                    y[k] += cb * row[k];
                }
            }
        }
        y
    }

    /// w = B^-1 A_j.
    fn ftran(&self, j: usize) -> Vec<f64> {
        let mut w = vec![0.0; self.m];
        self.for_column(j, |r, v| {
            for i in 0..self.m {
                w[i] += self.binv[i * self.m + r] * v;
            }
        });
        w
    }

    /// Rebuilds B^-1 from the basis columns by Gauss-Jordan elimination
    /// and recomputes the basic variable values, curing drift.
    ///
    /// # Panics
    /// Panics on a singular basis — impossible when the basis evolved via
    /// legal pivots. Crash bases use [`Self::try_refactorize`] instead.
    fn refactorize(&mut self) {
        assert!(
            self.try_refactorize(),
            "singular basis during refactorization"
        );
    }

    /// Non-panicking refactorization; returns `false` on a singular basis
    /// (leaving the inverse in an undefined state — reinitialize after).
    fn try_refactorize(&mut self) -> bool {
        let m = self.m;
        // Dense B, column i = column of basis[i].
        let mut b = vec![0.0; m * m];
        for (i, &var) in self.basis.iter().enumerate() {
            self.for_column(var, |r, v| b[r * m + i] = v);
        }
        // Gauss-Jordan with partial pivoting on [B | I].
        let mut inv = vec![0.0; m * m];
        for i in 0..m {
            inv[i * m + i] = 1.0;
        }
        for col in 0..m {
            // Pivot search.
            let mut best = col;
            let mut best_abs = b[col * m + col].abs();
            for row in col + 1..m {
                let a = b[row * m + col].abs();
                if a > best_abs {
                    best = row;
                    best_abs = a;
                }
            }
            if best_abs <= PIVOT_TOL {
                return false;
            }
            if best != col {
                for k in 0..m {
                    b.swap(col * m + k, best * m + k);
                    inv.swap(col * m + k, best * m + k);
                }
            }
            let piv = b[col * m + col];
            for k in 0..m {
                b[col * m + k] /= piv;
                inv[col * m + k] /= piv;
            }
            for row in 0..m {
                if row != col {
                    let factor = b[row * m + col];
                    if factor != 0.0 {
                        for k in 0..m {
                            b[row * m + k] -= factor * b[col * m + k];
                            inv[row * m + k] -= factor * inv[col * m + k];
                        }
                    }
                }
            }
        }
        self.binv = inv;
        self.recompute_basics();
        self.pivots_since_refactor = 0;
        true
    }

    /// Builds `B⁻¹ = I − L` for a verified unit-lower-triangular basis
    /// with `L² = 0` (see [`SimplexStart::unit_lower_triangular`]), then
    /// recomputes the basic values. O(m² + nnz) instead of O(m³).
    fn try_triangular_inverse(&mut self) -> bool {
        let m = self.m;
        // Verify structure while collecting L's entries: column c (the
        // basis var of row c) must have a unit entry on the diagonal and
        // all other entries strictly below it; sub-diagonal entries must
        // only land on rows whose own columns are "light" (no
        // sub-diagonal entries), which is exactly L² = 0.
        let mut entries: Vec<(usize, usize, f64)> = Vec::new();
        let mut heavy = vec![false; m]; // column has sub-diagonal entries
        for (c, &var) in self.basis.iter().enumerate() {
            let mut diag_ok = false;
            let mut bad = false;
            self.for_column(var, |r, v| {
                if r == c {
                    if (v - 1.0).abs() < 1e-12 {
                        diag_ok = true;
                    } else {
                        bad = true;
                    }
                } else if r > c {
                    entries.push((r, c, v));
                    heavy[c] = true;
                } else {
                    bad = true; // entry above the diagonal
                }
            });
            if bad || !diag_ok {
                return false;
            }
        }
        if entries.iter().any(|&(r, _, _)| heavy[r]) {
            return false; // L² != 0
        }
        self.binv.iter_mut().for_each(|v| *v = 0.0);
        for i in 0..m {
            self.binv[i * m + i] = 1.0;
        }
        for &(r, c, v) in &entries {
            self.binv[r * m + c] = -v;
        }
        self.recompute_basics();
        self.pivots_since_refactor = 0;
        true
    }

    /// Attempts to install a caller-supplied crash basis; returns whether
    /// the basis is usable (nonsingular and primal feasible), in which case
    /// phase 1 can be skipped. On failure the solver is restored to the
    /// artificial start.
    fn try_crash(&mut self, start: &SimplexStart) -> bool {
        if start.basis.len() != self.m {
            return false;
        }
        let limit = self.n_struct + self.n_slack;
        if start.basis.iter().any(|&v| v >= limit) {
            return false;
        }
        // Install states: nonbasic at lower unless listed at_upper.
        let old_basis = self.basis.clone();
        let old_state = self.state.clone();
        let old_x = self.x.clone();
        for j in 0..limit {
            if self.lower[j].is_finite() {
                self.state[j] = VarState::AtLower;
                self.x[j] = self.lower[j];
            } else if self.upper[j].is_finite() {
                self.state[j] = VarState::AtUpper;
                self.x[j] = self.upper[j];
            } else {
                self.state[j] = VarState::AtLower;
                self.x[j] = 0.0;
            }
        }
        for &j in &start.at_upper {
            if j < limit && self.upper[j].is_finite() {
                self.state[j] = VarState::AtUpper;
                self.x[j] = self.upper[j];
            }
        }
        // Artificials nonbasic, pinned at zero.
        for i in 0..self.m {
            let art = limit + i;
            self.state[art] = VarState::AtLower;
            self.x[art] = 0.0;
            self.lower[art] = 0.0;
            self.upper[art] = 0.0;
        }
        let mut seen = vec![false; limit];
        let mut duplicate = false;
        for (row, &var) in start.basis.iter().enumerate() {
            if seen[var] {
                duplicate = true;
                break;
            }
            seen[var] = true;
            self.basis[row] = var;
            self.state[var] = VarState::Basic(row);
        }
        let inverted = !duplicate
            && if start.unit_lower_triangular {
                self.try_triangular_inverse()
            } else {
                self.try_refactorize()
            };
        let ok = inverted && self.is_primal_feasible();
        if !ok {
            // Restore the artificial start untouched.
            self.basis = old_basis;
            self.state = old_state;
            self.x = old_x;
            for i in 0..self.m {
                let art = limit + i;
                self.lower[art] = 0.0;
                self.upper[art] = f64::INFINITY;
            }
            self.binv.iter_mut().for_each(|v| *v = 0.0);
            for i in 0..self.m {
                self.binv[i * self.m + i] = self.art_sign[i];
            }
            self.pivots_since_refactor = 0;
        }
        ok
    }

    /// Checks the current basic values against their bounds.
    fn is_primal_feasible(&self) -> bool {
        self.basis.iter().all(|&var| {
            self.x[var] >= self.lower[var] - TOL && self.x[var] <= self.upper[var] + TOL
        })
    }

    /// x_B = B^-1 (b - N x_N).
    fn recompute_basics(&mut self) {
        let mut rhs = self.model.rhs.clone();
        for j in 0..self.n_total {
            if let VarState::Basic(_) = self.state[j] {
                continue;
            }
            let xj = self.x[j];
            if xj != 0.0 {
                self.for_column(j, |r, v| rhs[r] -= v * xj);
            }
        }
        for i in 0..self.m {
            let mut v = 0.0;
            for k in 0..self.m {
                v += self.binv[i * self.m + k] * rhs[k];
            }
            self.x[self.basis[i]] = v;
        }
    }

    /// One phase of the simplex; returns `Ok(())` at optimality.
    fn run_phase(&mut self, phase1: bool, max_iterations: usize) -> Result<(), LpOutcome> {
        let mut stall = 0usize;
        let mut last_obj = f64::INFINITY;
        loop {
            if self.iterations >= max_iterations {
                return Err(LpOutcome::IterationLimit);
            }
            // Poll the cooperative cancel token every 256 iterations; a
            // cancelled LP surfaces as the iteration limit, which the
            // branch-and-bound loop already folds into its budget
            // accounting. The mask keeps the common-path cost at one
            // branch per iteration.
            if self.iterations & 0xff == 0 && dynp_obs::cancelled() {
                return Err(LpOutcome::IterationLimit);
            }
            self.iterations += 1;
            if self.pivots_since_refactor >= REFACTOR_EVERY {
                self.refactorize();
            }
            let bland = stall >= STALL_LIMIT;
            let y = self.btran(phase1);
            // Pricing: partial (rotating blocks) under Dantzig, full scan
            // from index 0 under Bland (anti-cycling needs a fixed order).
            let mut enter: Option<(usize, f64, f64)> = None; // (var, |d|, dir)
            if bland {
                for j in 0..self.n_total {
                    if let Some((d_abs, dir)) = self.price_candidate(phase1, j, &y) {
                        enter = Some((j, d_abs, dir));
                        break; // Bland: first improving index wins
                    }
                }
            } else {
                // Rotate through blocks; stop at the end of the first
                // block that contained an improving column.
                let n = self.n_total;
                let mut scanned = 0usize;
                while scanned < n {
                    let block_end = (scanned + PARTIAL_BLOCK).min(n);
                    for off in scanned..block_end {
                        let j = (self.price_start + off) % n;
                        if let Some((d_abs, dir)) = self.price_candidate(phase1, j, &y) {
                            if enter.is_none_or(|(_, best, _)| d_abs > best) {
                                enter = Some((j, d_abs, dir));
                            }
                        }
                    }
                    scanned = block_end;
                    if enter.is_some() {
                        self.price_start = (self.price_start + scanned) % n;
                        break;
                    }
                }
            }
            let Some((j_enter, _, dir)) = enter else {
                return Ok(()); // optimal for this phase
            };
            // Ratio test.
            let w = self.ftran(j_enter);
            let range = self.upper[j_enter] - self.lower[j_enter]; // may be inf
            let mut t_max = range;
            let mut blocking: Option<usize> = None; // basis row
            for i in 0..self.m {
                let delta = dir * w[i]; // x_B[i] decreases by delta * t
                let var = self.basis[i];
                let xb = self.x[var];
                if delta > PIVOT_TOL {
                    let slack = xb - self.lower[var];
                    let t = slack.max(0.0) / delta;
                    if t < t_max {
                        t_max = t;
                        blocking = Some(i);
                    }
                } else if delta < -PIVOT_TOL {
                    let headroom = self.upper[var] - xb;
                    if headroom.is_finite() {
                        let t = headroom.max(0.0) / (-delta);
                        if t < t_max {
                            t_max = t;
                            blocking = Some(i);
                        }
                    }
                }
            }
            if t_max.is_infinite() {
                return Err(if phase1 {
                    // Phase 1 objective is bounded below by 0; cannot be
                    // unbounded. Treat as numerical trouble.
                    LpOutcome::IterationLimit
                } else {
                    LpOutcome::Unbounded
                });
            }
            let t = t_max.max(0.0);
            // Apply the step.
            self.x[j_enter] += dir * t;
            for i in 0..self.m {
                let var = self.basis[i];
                self.x[var] -= dir * t * w[i];
            }
            match blocking {
                None => {
                    // Bound flip: entering variable hit its opposite bound.
                    self.state[j_enter] = match self.state[j_enter] {
                        VarState::AtLower => {
                            self.x[j_enter] = self.upper[j_enter];
                            VarState::AtUpper
                        }
                        VarState::AtUpper => {
                            self.x[j_enter] = self.lower[j_enter];
                            VarState::AtLower
                        }
                        VarState::Basic(_) => unreachable!("entering var is nonbasic"),
                    };
                }
                Some(r) => {
                    let leaving = self.basis[r];
                    let delta = dir * w[r];
                    // Snap the leaving variable exactly onto the bound it hit.
                    if delta > 0.0 {
                        self.x[leaving] = self.lower[leaving];
                        self.state[leaving] = VarState::AtLower;
                    } else {
                        self.x[leaving] = self.upper[leaving];
                        self.state[leaving] = VarState::AtUpper;
                    }
                    self.basis[r] = j_enter;
                    self.state[j_enter] = VarState::Basic(r);
                    self.pivot_update(r, &w);
                    self.pivots_since_refactor += 1;
                }
            }
            // Stall detection on the phase objective.
            let obj = self.phase_objective(phase1);
            if obj < last_obj - TOL {
                stall = 0;
                last_obj = obj;
            } else {
                stall += 1;
            }
        }
    }

    fn phase_objective(&self, phase1: bool) -> f64 {
        (0..self.n_total)
            .map(|j| self.cost(phase1, j) * self.x[j])
            .sum()
    }

    /// Rank-one update of B^-1 after pivoting column `w` into row `r`.
    fn pivot_update(&mut self, r: usize, w: &[f64]) {
        let m = self.m;
        let piv = w[r];
        debug_assert!(piv.abs() > PIVOT_TOL, "tiny pivot {piv}");
        // Row r /= piv.
        for k in 0..m {
            self.binv[r * m + k] /= piv;
        }
        for i in 0..m {
            if i != r {
                let factor = w[i];
                if factor != 0.0 {
                    for k in 0..m {
                        self.binv[i * m + k] -= factor * self.binv[r * m + k];
                    }
                }
            }
        }
    }

    fn solve(mut self, max_iterations: usize, crashed: bool) -> LpOutcome {
        // Phase 1: drive artificials to zero (skipped entirely when a
        // verified primal-feasible crash basis is installed).
        if self.m > 0 && !crashed {
            match self.run_phase(true, max_iterations) {
                Ok(()) => {}
                Err(out) => return out,
            }
            self.recompute_basics();
            let infeas = self.phase_objective(true);
            if infeas > 1e-6 {
                return LpOutcome::Infeasible;
            }
            // Fix artificials at zero so phase 2 can never reuse them.
            for i in 0..self.m {
                let art = self.n_struct + self.n_slack + i;
                self.lower[art] = 0.0;
                self.upper[art] = 0.0;
                if !matches!(self.state[art], VarState::Basic(_)) {
                    self.x[art] = 0.0;
                }
            }
        }
        // Phase 2: the real objective.
        match self.run_phase(false, max_iterations) {
            Ok(()) => {}
            Err(out) => return out,
        }
        self.recompute_basics();
        let x = self.x[..self.n_struct].to_vec();
        // Reduced costs d_j = c_j - y A_j at the optimal basis.
        let y = self.btran(false);
        let mut reduced_costs = vec![0.0; self.n_struct];
        for (j, rc) in reduced_costs.iter_mut().enumerate() {
            if matches!(self.state[j], VarState::Basic(_)) {
                continue;
            }
            let mut d = self.model.objective[j];
            self.for_column(j, |r, v| d -= y[r] * v);
            *rc = d;
        }
        LpOutcome::Optimal(LpSolution {
            objective: self.model.objective_value(&x),
            x,
            reduced_costs,
            iterations: self.iterations,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sparse::CscMatrix;

    fn lp(
        c: Vec<f64>,
        rows: &[Vec<f64>],
        senses: Vec<Sense>,
        rhs: Vec<f64>,
        lower: Vec<f64>,
        upper: Vec<f64>,
    ) -> Milp {
        let n = c.len();
        Milp::new(
            c,
            CscMatrix::from_dense(rows),
            senses,
            rhs,
            lower,
            upper,
            vec![false; n],
        )
    }

    fn solve(model: &Milp) -> LpOutcome {
        solve_lp(model, 100_000)
    }

    #[test]
    fn textbook_maximization() {
        // max 3x + 5y s.t. x <= 4, 2y <= 12, 3x + 2y <= 18 (min of the
        // negation): optimum x=2, y=6, obj = -36.
        let m = lp(
            vec![-3.0, -5.0],
            &[vec![1.0, 0.0], vec![0.0, 2.0], vec![3.0, 2.0]],
            vec![Sense::Le, Sense::Le, Sense::Le],
            vec![4.0, 12.0, 18.0],
            vec![0.0, 0.0],
            vec![f64::INFINITY, f64::INFINITY],
        );
        let sol = solve(&m);
        let s = sol.optimal().expect("optimal");
        assert!((s.objective + 36.0).abs() < 1e-6, "obj {}", s.objective);
        assert!((s.x[0] - 2.0).abs() < 1e-6);
        assert!((s.x[1] - 6.0).abs() < 1e-6);
        m.check_feasible(&s.x, 1e-6).unwrap();
    }

    #[test]
    fn equality_constraints() {
        // min x + y s.t. x + y = 2, x - y = 0 -> x = y = 1.
        let m = lp(
            vec![1.0, 1.0],
            &[vec![1.0, 1.0], vec![1.0, -1.0]],
            vec![Sense::Eq, Sense::Eq],
            vec![2.0, 0.0],
            vec![0.0, 0.0],
            vec![f64::INFINITY, f64::INFINITY],
        );
        let s = solve(&m);
        let s = s.optimal().unwrap();
        assert!((s.objective - 2.0).abs() < 1e-6);
        assert!((s.x[0] - 1.0).abs() < 1e-6);
    }

    #[test]
    fn ge_constraints_and_upper_bounds() {
        // min x s.t. x >= 3, x <= 10.
        let m = lp(
            vec![1.0],
            &[vec![1.0]],
            vec![Sense::Ge],
            vec![3.0],
            vec![0.0],
            vec![10.0],
        );
        let s = solve(&m);
        let s = s.optimal().unwrap();
        assert!((s.objective - 3.0).abs() < 1e-7);
    }

    #[test]
    fn bounded_variables_sit_at_upper() {
        // max x + y (min -x - y) with x,y in [0,1] and x + y <= 3: both hit
        // their upper bound 1, not the constraint.
        let m = lp(
            vec![-1.0, -1.0],
            &[vec![1.0, 1.0]],
            vec![Sense::Le],
            vec![3.0],
            vec![0.0, 0.0],
            vec![1.0, 1.0],
        );
        let s = solve(&m);
        let s = s.optimal().unwrap();
        assert!((s.objective + 2.0).abs() < 1e-7);
        assert!((s.x[0] - 1.0).abs() < 1e-7);
        assert!((s.x[1] - 1.0).abs() < 1e-7);
    }

    #[test]
    fn detects_infeasible() {
        // x <= 1 and x >= 2.
        let m = lp(
            vec![0.0],
            &[vec![1.0], vec![1.0]],
            vec![Sense::Le, Sense::Ge],
            vec![1.0, 2.0],
            vec![0.0],
            vec![f64::INFINITY],
        );
        assert!(matches!(solve(&m), LpOutcome::Infeasible));
    }

    #[test]
    fn detects_unbounded() {
        // min -x with x >= 0 unbounded above, one non-binding row.
        let m = lp(
            vec![-1.0],
            &[vec![-1.0]],
            vec![Sense::Le],
            vec![0.0],
            vec![0.0],
            vec![f64::INFINITY],
        );
        assert!(matches!(solve(&m), LpOutcome::Unbounded));
    }

    #[test]
    fn negative_rhs_rows_are_handled() {
        // min x s.t. -x <= -3  (i.e. x >= 3).
        let m = lp(
            vec![1.0],
            &[vec![-1.0]],
            vec![Sense::Le],
            vec![-3.0],
            vec![0.0],
            vec![f64::INFINITY],
        );
        let s = solve(&m);
        let s = s.optimal().unwrap();
        assert!((s.objective - 3.0).abs() < 1e-7);
    }

    #[test]
    fn fixed_variables_respected() {
        // min -x - y, x fixed to 0 via node bounds, y in [0,1].
        let m = lp(
            vec![-1.0, -1.0],
            &[vec![1.0, 1.0]],
            vec![Sense::Le],
            vec![2.0],
            vec![0.0, 0.0],
            vec![1.0, 1.0],
        );
        let out = solve_lp_with_bounds(&m, &[0.0, 0.0], &[0.0, 1.0], 10_000);
        let s = out.optimal().unwrap();
        assert!(s.x[0].abs() < 1e-9);
        assert!((s.x[1] - 1.0).abs() < 1e-7);
    }

    #[test]
    fn degenerate_problem_terminates() {
        // Classic degeneracy: several redundant constraints through the
        // same vertex.
        let m = lp(
            vec![-1.0, -1.0],
            &[
                vec![1.0, 0.0],
                vec![1.0, 0.0],
                vec![0.0, 1.0],
                vec![1.0, 1.0],
            ],
            vec![Sense::Le, Sense::Le, Sense::Le, Sense::Le],
            vec![1.0, 1.0, 1.0, 2.0],
            vec![0.0, 0.0],
            vec![f64::INFINITY, f64::INFINITY],
        );
        let s = solve(&m);
        let s = s.optimal().unwrap();
        assert!((s.objective + 2.0).abs() < 1e-6);
    }

    #[test]
    fn redundant_equality_rows_are_survivable() {
        // x + y = 1 twice: phase 1 leaves an artificial basic at zero.
        let m = lp(
            vec![1.0, 2.0],
            &[vec![1.0, 1.0], vec![1.0, 1.0]],
            vec![Sense::Eq, Sense::Eq],
            vec![1.0, 1.0],
            vec![0.0, 0.0],
            vec![1.0, 1.0],
        );
        let s = solve(&m);
        let s = s.optimal().unwrap();
        assert!((s.objective - 1.0).abs() < 1e-6);
        assert!((s.x[0] - 1.0).abs() < 1e-6);
    }

    #[test]
    fn assignment_like_structure() {
        // Two jobs, two slots, slot capacity 1 each:
        // min 1*x00 + 2*x01 + 1*x10 + 3*x11
        // x00 + x01 = 1; x10 + x11 = 1; x00 + x10 <= 1; x01 + x11 <= 1.
        // Optimum: one job in each slot; cheapest is x00=1, x11=1 (1+3=4)
        // or x01=1, x10=1 (2+1=3) -> 3.
        let m = lp(
            vec![1.0, 2.0, 1.0, 3.0],
            &[
                vec![1.0, 1.0, 0.0, 0.0],
                vec![0.0, 0.0, 1.0, 1.0],
                vec![1.0, 0.0, 1.0, 0.0],
                vec![0.0, 1.0, 0.0, 1.0],
            ],
            vec![Sense::Eq, Sense::Eq, Sense::Le, Sense::Le],
            vec![1.0, 1.0, 1.0, 1.0],
            vec![0.0; 4],
            vec![1.0; 4],
        );
        let s = solve(&m);
        let s = s.optimal().unwrap();
        assert!((s.objective - 3.0).abs() < 1e-6, "obj {}", s.objective);
        m.check_feasible(&s.x, 1e-6).unwrap();
    }

    #[test]
    fn reduced_costs_certify_optimality() {
        // min -3x -5y s.t. x <= 4, 2y <= 12, 3x + 2y <= 18.
        let m = lp(
            vec![-3.0, -5.0],
            &[vec![1.0, 0.0], vec![0.0, 2.0], vec![3.0, 2.0]],
            vec![Sense::Le, Sense::Le, Sense::Le],
            vec![4.0, 12.0, 18.0],
            vec![0.0, 0.0],
            vec![f64::INFINITY, f64::INFINITY],
        );
        let out = solve_lp(&m, 100_000);
        let s = out.optimal().unwrap();
        assert_eq!(s.reduced_costs.len(), 2);
        // At optimality, nonbasic-at-lower variables have nonnegative
        // reduced costs (minimization); basic ones report 0.
        for (j, &d) in s.reduced_costs.iter().enumerate() {
            if s.x[j] > 1e-9 {
                assert!(d.abs() < 1e-6, "basic var {j} has rc {d}");
            } else {
                assert!(d >= -1e-6, "at-lower var {j} has negative rc {d}");
            }
        }
    }

    #[test]
    fn reduced_cost_lower_bound_property() {
        // Forcing a nonbasic variable off its bound by delta raises the
        // optimum by at least rc * delta.
        let m = lp(
            vec![2.0, 1.0],
            &[vec![1.0, 1.0]],
            vec![Sense::Ge],
            vec![1.0],
            vec![0.0, 0.0],
            vec![1.0, 1.0],
        );
        let base = solve_lp(&m, 10_000);
        let base = base.optimal().unwrap();
        // Optimal: y = 1 (cost 1), x = 0 nonbasic with rc = 2 - 1 = 1.
        assert!((base.objective - 1.0).abs() < 1e-7);
        let rc_x = base.reduced_costs[0];
        assert!(rc_x > 0.5);
        // Force x = 1: new optimum must be >= base + rc_x * 1.
        let forced = solve_lp_with_bounds(&m, &[1.0, 0.0], &[1.0, 1.0], 10_000);
        let forced = forced.optimal().unwrap();
        assert!(forced.objective >= base.objective + rc_x - 1e-6);
    }

    #[test]
    fn no_constraints_model() {
        // min -x + y with x,y in [0,1] and no rows: x=1, y=0.
        let mut b = crate::sparse::CscBuilder::new(0);
        b.push_column(&[]);
        b.push_column(&[]);
        let m = Milp::new(
            vec![-1.0, 1.0],
            b.build(),
            vec![],
            vec![],
            vec![0.0, 0.0],
            vec![1.0, 1.0],
            vec![false, false],
        );
        let s = solve(&m);
        let s = s.optimal().unwrap();
        assert!((s.objective + 1.0).abs() < 1e-9);
    }
}
