//! An exact 0/1 integer-programming solver and the paper's time-indexed
//! scheduling formulation — the from-scratch substitute for ILOG CPLEX
//! (DESIGN.md §1).
//!
//! §3.1 of the paper models the quasi-off-line scheduling problem as an
//! integer program over binary variables `x_it` ("job `i` starts at time
//! `t`"), minimizing average response time weighted by width (ARTwW),
//! subject to each job starting exactly once and per-time capacity limits
//! reduced by the machine history. §3.2 adds *time-scaling* so the problem
//! fits in memory, and a compaction pass that re-inserts jobs in the
//! ILP's starting order to reclaim the slack the coarse grid introduces.
//!
//! Crate layout, bottom-up:
//! * [`sparse`] — compressed sparse-column matrix used by the LP solver,
//! * [`simplex`] — a bounded-variable, two-phase revised primal simplex,
//! * [`model`] — the general mixed 0/1 linear-program description,
//! * [`branch`] — best-first branch & bound with LP bounds, integral
//!   rounding and node/deterministic-work limits,
//! * [`scaling`] — the paper's Eq. 6 memory-driven time-scale choice,
//! * [`timeindex`] — builds the §3.1 formulation from a
//!   [`SchedulingProblem`](dynp_sched::SchedulingProblem) and extracts
//!   schedules from solutions,
//! * [`mod@compact`] — the §3.2 forward-move compaction,
//! * [`solve`] — the one-call "CPLEX run": scale, build, solve, extract,
//!   compact, report.

pub mod branch;
pub mod compact;
pub mod model;
pub mod scaling;
pub mod simplex;
pub mod solve;
pub mod sparse;
pub mod timeindex;

pub use branch::{solve_mip, BranchBound, BranchLimits, GapPoint, MipSolution, MipStatus};
pub use compact::compact;
pub use model::{Milp, Sense};
pub use scaling::{TimeScaling, PAPER_MEMORY_BYTES, PAPER_X_BYTES};
pub use simplex::{solve_lp, solve_lp_with_bounds, LpOutcome, LpSolution};
pub use solve::{
    solve_snapshot, ExactComparison, ExactRun, SolveConfig, SolveError, SolveIncomplete,
};
pub use timeindex::TimeIndexedModel;
