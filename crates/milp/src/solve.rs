//! The full "CPLEX run" of §3–§4: given one quasi-off-line snapshot,
//! choose the time scale (Eq. 6), build the time-indexed model with the
//! max-policy-makespan horizon (§3.1), seed the best policy schedule as the
//! incumbent, solve exactly, extract the starting order, compact (§3.2),
//! and report the paper's Table 1 quantities (problem size, time scale,
//! quality, performance loss, solve effort).

use crate::branch::{BranchBound, BranchLimits, GapPoint, MipStatus};
use crate::compact::compact;
use crate::scaling::{TimeScaling, PAPER_MEMORY_BYTES, PAPER_X_BYTES};
use crate::timeindex::TimeIndexedModel;
use dynp_sched::metrics::{performance_loss_percent, quality};
use dynp_sched::{plan, Metric, PlanError, Policy, Schedule, SchedulingProblem};
use std::time::{Duration, Instant};

/// Why an exact solve could not run at all (as opposed to running out of
/// budget, which still produces an [`ExactRun`]).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SolveError {
    /// The snapshot has no waiting jobs — there is nothing to compare.
    EmptySnapshot,
    /// The configuration names no baseline policies.
    NoPolicies,
    /// A policy schedule could not be planned (a job can never fit the
    /// machine), so neither the baseline nor the ILP horizon exists.
    Plan(PlanError),
}

impl std::fmt::Display for SolveError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SolveError::EmptySnapshot => {
                write!(f, "empty snapshot: no waiting jobs to compare")
            }
            SolveError::NoPolicies => {
                write!(f, "solve config lists no baseline policies")
            }
            SolveError::Plan(e) => write!(f, "policy baseline failed to plan: {e}"),
        }
    }
}

impl std::error::Error for SolveError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SolveError::Plan(e) => Some(e),
            _ => None,
        }
    }
}

impl From<PlanError> for SolveError {
    fn from(e: PlanError) -> SolveError {
        SolveError::Plan(e)
    }
}

/// The solve ran but its budget expired before any incumbent was found —
/// the paper's "CPLEX is still computing" regime. Returned by
/// [`ExactRun::comparison`] so consumers handle it as a value instead of
/// unwrapping `Option`s.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SolveIncomplete {
    /// Search status at exit (never [`MipStatus::Optimal`]).
    pub status: MipStatus,
    /// Nodes explored before the budget expired.
    pub nodes: usize,
}

impl std::fmt::Display for SolveIncomplete {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "exact solver still running: no incumbent after {} nodes ({:?})",
            self.nodes, self.status
        )
    }
}

impl std::error::Error for SolveIncomplete {}

/// The exact-vs-policy comparison of one finished solve, borrowed from an
/// [`ExactRun`] that found an incumbent.
#[derive(Clone, Copy, Debug)]
pub struct ExactComparison<'a> {
    /// The compacted exact schedule.
    pub schedule: &'a Schedule,
    /// Its metric value.
    pub exact_value: f64,
    /// Eq. 7 quality of the best policy vs the exact schedule.
    pub quality: f64,
    /// `(1 - quality) * 100`.
    pub perf_loss_percent: f64,
}

/// Configuration of one exact solve.
#[derive(Clone, Debug)]
pub struct SolveConfig {
    /// Metric used for the quality comparison (the paper uses SLDwA).
    pub metric: Metric,
    /// Policies whose best schedule is the comparison baseline (the
    /// paper: FCFS, SJF, LJF).
    pub policies: Vec<Policy>,
    /// Memory per matrix entry for Eq. 6.
    pub x_bytes: f64,
    /// Memory budget for Eq. 6.
    pub memory_bytes: f64,
    /// Overrides Eq. 6 with a fixed slot width (ablation experiments).
    pub scale_override: Option<u64>,
    /// Branch & bound limits.
    pub limits: BranchLimits,
    /// Seed the best policy schedule as the starting incumbent.
    pub seed_incumbent: bool,
    /// Use the LP rounding heuristic during the search.
    pub use_heuristic: bool,
    /// Skip the §3.2 compaction (ablation; the paper always compacts).
    pub skip_compaction: bool,
}

impl Default for SolveConfig {
    fn default() -> Self {
        SolveConfig {
            metric: Metric::SldwA,
            policies: Policy::PAPER_SET.to_vec(),
            x_bytes: PAPER_X_BYTES,
            memory_bytes: PAPER_MEMORY_BYTES,
            scale_override: None,
            limits: BranchLimits::default(),
            seed_incumbent: true,
            use_heuristic: true,
            skip_compaction: false,
        }
    }
}

/// One Table 1 row: the exact solve of one snapshot and its comparison
/// against the best basic policy.
#[derive(Clone, Debug)]
pub struct ExactRun {
    /// Snapshot size: number of waiting jobs.
    pub jobs: usize,
    /// Upper bound on the makespan (seconds from "now"): the §3.1 horizon,
    /// i.e. the max makespan over the policy schedules.
    pub max_makespan: u64,
    /// Accumulated estimated runtime of the waiting jobs (seconds).
    pub accumulated_runtime: u64,
    /// The time scale chosen (seconds per slot).
    pub time_scale: u64,
    /// Model size actually built.
    pub num_variables: usize,
    /// Constraint count actually built.
    pub num_constraints: usize,
    /// Search outcome.
    pub status: MipStatus,
    /// Branch & bound nodes explored.
    pub nodes: usize,
    /// Total simplex iterations.
    pub lp_iterations: usize,
    /// Final relative optimality gap (0 when proven optimal, `None`
    /// without an incumbent).
    pub gap: Option<f64>,
    /// Incumbent/gap trajectory of the exact solve (see
    /// [`GapPoint`]).
    pub trajectory: Vec<GapPoint>,
    /// Wall-clock solve time.
    pub solve_time: Duration,
    /// Best basic policy under the configured metric.
    pub best_policy: Policy,
    /// Its metric value.
    pub best_policy_value: f64,
    /// The compacted exact schedule (when a solution was found).
    pub exact_schedule: Option<Schedule>,
    /// Metric value of the compacted exact schedule.
    pub exact_value: Option<f64>,
    /// Wall time spent planning the three policy schedules (the paper's
    /// "< 10 ms" side of the power comparison).
    pub policy_plan_time: Duration,
    /// Eq. 7 quality of the best policy vs the exact schedule.
    pub quality: Option<f64>,
    /// `(1 - quality) * 100`: how much the policy loses (negative when
    /// time-scaling makes the "exact" schedule worse, as in the paper).
    pub perf_loss_percent: Option<f64>,
}

impl ExactRun {
    /// The exact side of the comparison, or [`SolveIncomplete`] when the
    /// budget expired without an incumbent. This is the supported way to
    /// consume `exact_schedule`/`quality`: the "CPLEX still running"
    /// regime is a value, not a panic.
    pub fn comparison(&self) -> Result<ExactComparison<'_>, SolveIncomplete> {
        match (&self.exact_schedule, self.exact_value, self.quality, self.perf_loss_percent) {
            (Some(schedule), Some(exact_value), Some(quality), Some(perf_loss_percent)) => {
                Ok(ExactComparison {
                    schedule,
                    exact_value,
                    quality,
                    perf_loss_percent,
                })
            }
            _ => Err(SolveIncomplete {
                status: self.status,
                nodes: self.nodes,
            }),
        }
    }

    /// Scheduler *power* of the best basic policy: quality per compute
    /// second, the paper's §3 yardstick ("the physical definition of
    /// power, i.e. work per time unit, is well suited for measuring the
    /// performance of a scheduler"). The policy's quality is Eq. 7
    /// relative to the exact schedule; its compute time is the planning
    /// time measured here.
    pub fn policy_power(&self) -> Option<f64> {
        let q = self.quality?;
        Some(q / self.policy_plan_time.as_secs_f64().max(1e-9))
    }

    /// Scheduler power of the exact solver: quality 1 (it is the
    /// reference) per solve second.
    pub fn exact_power(&self) -> Option<f64> {
        self.exact_value?;
        Some(1.0 / self.solve_time.as_secs_f64().max(1e-9))
    }

    /// Formats the run as a row in the style of the paper's Table 1.
    pub fn table_row(&self) -> String {
        let (quality, loss) = match (self.quality, self.perf_loss_percent) {
            (Some(q), Some(l)) => (format!("{q:.3}"), format!("{l:+.1}%")),
            _ => ("-".into(), "-".into()),
        };
        format!(
            "{:>5} {:>9} {:>11} {:>6.1} {:>9} {:>8} {:>7} {:>8} {:>9.3}s",
            self.jobs,
            self.max_makespan,
            self.accumulated_runtime,
            self.time_scale as f64 / 60.0,
            self.num_variables,
            quality,
            loss,
            self.nodes,
            self.solve_time.as_secs_f64(),
        )
    }
}

/// Runs the complete exact pipeline on one snapshot.
///
/// Errors are *input* defects ([`SolveError`]); a solve that merely runs
/// out of budget still returns `Ok` with [`MipStatus::Feasible`] or
/// [`MipStatus::Unknown`] — consume it via [`ExactRun::comparison`].
pub fn solve_snapshot(
    problem: &SchedulingProblem,
    config: &SolveConfig,
) -> Result<ExactRun, SolveError> {
    if problem.is_empty() {
        return Err(SolveError::EmptySnapshot);
    }
    if config.policies.is_empty() {
        return Err(SolveError::NoPolicies);
    }
    // Everything below — policy baselines, TI model build, B&B search,
    // compaction — is one traced exact-solve span per snapshot.
    let _solve_span = dynp_obs::span("milp.solve");
    // 1. Policy schedules: baseline values and the §3.1 horizon.
    let plan_clock = Instant::now();
    let mut best: Option<(Policy, f64, Schedule)> = None;
    let mut horizon_end = problem.now;
    for &policy in &config.policies {
        let schedule = plan(problem, policy)?;
        let value = config.metric.eval(problem, &schedule);
        if let Some(end) = schedule.makespan_end() {
            horizon_end = horizon_end.max(end);
        }
        let better = match &best {
            None => true,
            Some((_, best_value, _)) => config.metric.better(value, *best_value),
        };
        if better {
            best = Some((policy, value, schedule));
        }
    }
    let (best_policy, best_policy_value, best_schedule) =
        best.expect("policy set checked non-empty above");
    let policy_plan_time = plan_clock.elapsed();
    let max_makespan = horizon_end - problem.now;
    let accumulated_runtime = problem.accumulated_runtime();

    // 2. Time scale per Eq. 6 (or the override).
    let scaling = match config.scale_override {
        Some(s) => TimeScaling::fixed(s),
        None => TimeScaling::from_memory(
            max_makespan,
            accumulated_runtime,
            config.x_bytes,
            config.memory_bytes,
        ),
    };

    // 3. Build the time-indexed model.
    let ti = TimeIndexedModel::build(problem, scaling, horizon_end);

    // 4. Solve, seeding the best policy's start order as the incumbent.
    let mut bb = BranchBound::new(&ti.model, config.limits);
    if config.seed_incumbent {
        let order: Vec<usize> = {
            // Map the best schedule's start order onto snapshot indices.
            let order_ids: Vec<_> = best_schedule.start_order().iter().map(|e| e.id).collect();
            order_ids
                .iter()
                .map(|id| {
                    problem
                        .jobs
                        .iter()
                        .position(|j| j.id == *id)
                        .expect("schedule entry in snapshot")
                })
                .collect()
        };
        if let Some(seed) = ti.greedy_solution(&order) {
            bb = match bb.with_incumbent(seed) {
                Ok(seeded) => seeded,
                Err(err) => {
                    // A rejected seed costs the warm start, never the
                    // sweep: continue cold rather than abort the run.
                    if let Some(r) = dynp_obs::recorder() {
                        r.event("milp.seed_rejected")
                            .kv("jobs", problem.len())
                            .kv("error", err.as_str())
                            .emit();
                    }
                    BranchBound::new(&ti.model, config.limits)
                }
            };
        }
    }
    if config.use_heuristic {
        let ti_ref = &ti;
        bb = bb.with_heuristic(Box::new(move |_, lp| ti_ref.rounding_heuristic(lp)));
    }
    {
        // Structure-aware acceleration: crash bases skip simplex phase 1,
        // SOS branching on job start times replaces weak single-variable
        // branching. Both preserve exactness (see their docs).
        let ti_ref = &ti;
        bb = bb
            .with_crash(Box::new(move |lower, upper| {
                ti_ref.crash_start(lower, upper)
            }))
            .with_brancher(Box::new(move |_, lp| ti_ref.sos_branch(lp)));
    }
    let mip = bb.solve();

    // 5. Extract, compact, compare.
    let (exact_schedule, exact_value) = match &mip.x {
        Some(x) => {
            let schedule = if config.skip_compaction {
                ti.slot_schedule(x, problem)
            } else {
                // Every job planned under a policy above, so it fits.
                compact(problem, &ti.start_order(x))?
            };
            debug_assert!(schedule.validate(problem).is_ok());
            let value = config.metric.eval(problem, &schedule);
            (Some(schedule), Some(value))
        }
        None => (None, None),
    };
    let quality_ratio = exact_value.map(|ev| quality(config.metric, ev, best_policy_value));
    let loss = exact_value.map(|ev| performance_loss_percent(config.metric, ev, best_policy_value));

    Ok(ExactRun {
        jobs: problem.len(),
        max_makespan,
        accumulated_runtime,
        time_scale: scaling.seconds_per_slot,
        num_variables: ti.model.num_vars(),
        num_constraints: ti.model.num_constraints(),
        status: mip.status,
        nodes: mip.nodes,
        lp_iterations: mip.lp_iterations,
        gap: mip.gap(),
        trajectory: mip.trajectory,
        solve_time: mip.wall_time,
        policy_plan_time,
        best_policy,
        best_policy_value,
        exact_schedule,
        exact_value,
        quality: quality_ratio,
        perf_loss_percent: loss,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use dynp_platform::MachineHistory;
    use dynp_trace::Job;

    fn config_fine() -> SolveConfig {
        SolveConfig {
            scale_override: Some(60),
            ..SolveConfig::default()
        }
    }

    fn snapshot() -> SchedulingProblem {
        SchedulingProblem::on_empty_machine(
            0,
            4,
            vec![
                Job::exact(0, 0, 4, 3600),
                Job::exact(1, 0, 2, 600),
                Job::exact(2, 0, 2, 600),
                Job::exact(3, 0, 1, 1200),
            ],
        )
    }

    #[test]
    fn exact_run_completes_and_reports() {
        let run = solve_snapshot(&snapshot(), &config_fine()).unwrap();
        assert_eq!(run.status, MipStatus::Optimal);
        assert_eq!(run.jobs, 4);
        assert!(run.comparison().is_ok());
        assert_eq!(run.time_scale, 60);
        assert!(run.num_variables > 0);
    }

    #[test]
    fn exact_never_loses_to_policies_at_fine_scale() {
        // At 60 s scale with 60 s-multiple durations there is no grid loss:
        // the exact schedule must be at least as good as the best policy.
        let run = solve_snapshot(&snapshot(), &config_fine()).unwrap();
        let cmp = run.comparison().expect("solved to optimality");
        assert!(
            cmp.quality <= 1.0 + 1e-9,
            "exact worse than policy at lossless scale: quality {}",
            cmp.quality
        );
        assert!(cmp.perf_loss_percent >= -1e-7);
    }

    #[test]
    fn machine_history_is_honoured() {
        let history = MachineHistory::build(4, 100, &[(3, 500)]);
        let p = SchedulingProblem::new(
            100,
            history,
            vec![Job::exact(0, 50, 2, 300), Job::exact(1, 80, 2, 300)],
        );
        let run = solve_snapshot(&p, &config_fine()).unwrap();
        assert_eq!(run.status, MipStatus::Optimal);
        let cmp = run.comparison().expect("solved to optimality");
        cmp.schedule.validate(&p).unwrap();
        // Only 1 resource free before t=500: neither width-2 job fits.
        for e in cmp.schedule.entries() {
            assert!(e.start >= 500);
        }
    }

    #[test]
    fn empty_snapshot_is_a_typed_error_not_a_panic() {
        let p = SchedulingProblem::on_empty_machine(0, 4, vec![]);
        assert_eq!(
            solve_snapshot(&p, &config_fine()).unwrap_err(),
            SolveError::EmptySnapshot
        );
        let no_policies = SolveConfig {
            policies: vec![],
            ..config_fine()
        };
        assert_eq!(
            solve_snapshot(&snapshot(), &no_policies).unwrap_err(),
            SolveError::NoPolicies
        );
        // Errors render and chain like std errors.
        let err = solve_snapshot(&p, &config_fine()).unwrap_err();
        assert!(format!("{err}").contains("empty snapshot"));
    }

    #[test]
    fn coarse_scale_can_lose_to_policies() {
        // With a very coarse grid the ILP's schedule (even compacted) can
        // be worse than the best policy — the paper's negative perf-loss
        // rows. We only assert the pipeline handles it gracefully, not
        // that it always happens.
        let cfg = SolveConfig {
            scale_override: Some(1800),
            ..SolveConfig::default()
        };
        let run = solve_snapshot(&snapshot(), &cfg).unwrap();
        assert_eq!(run.status, MipStatus::Optimal);
        assert!(run.comparison().is_ok());
    }

    #[test]
    fn table_row_renders() {
        let run = solve_snapshot(&snapshot(), &config_fine()).unwrap();
        let row = run.table_row();
        assert!(row.contains('%'));
        assert!(row.trim().starts_with('4'));
    }

    #[test]
    fn node_limited_run_still_reports_policy_side() {
        let cfg = SolveConfig {
            scale_override: Some(60),
            limits: BranchLimits {
                max_nodes: 0,
                ..BranchLimits::default()
            },
            // Without a seed there is no incumbent at node 0.
            seed_incumbent: false,
            use_heuristic: false,
            ..SolveConfig::default()
        };
        let run = solve_snapshot(&snapshot(), &cfg).unwrap();
        assert_eq!(run.status, MipStatus::Unknown);
        // "CPLEX still running" is a value, not a panic.
        let incomplete = run.comparison().unwrap_err();
        assert_eq!(incomplete.status, MipStatus::Unknown);
        assert!(format!("{incomplete}").contains("still running"));
        // Policy side is always available.
        assert!(run.best_policy_value > 0.0);
    }

    #[test]
    fn seeded_run_at_zero_nodes_returns_the_seed() {
        let cfg = SolveConfig {
            scale_override: Some(60),
            limits: BranchLimits {
                max_nodes: 0,
                ..BranchLimits::default()
            },
            ..SolveConfig::default()
        };
        let run = solve_snapshot(&snapshot(), &cfg).unwrap();
        // The seed (best policy embedded in the grid) is the incumbent.
        assert_eq!(run.status, MipStatus::Feasible);
        assert!(run.comparison().is_ok());
    }

    #[test]
    fn default_config_uses_eq6() {
        let run = solve_snapshot(&snapshot(), &SolveConfig::default()).unwrap();
        // Tiny instance: Eq. 6 gives the minimum one-minute scale.
        assert_eq!(run.time_scale, 60);
        assert_eq!(run.status, MipStatus::Optimal);
    }
}
