//! Slicing a long trace into fixed-length experiment shards.
//!
//! The paper's evaluation protocol (§4) sweeps *weekly slices* of the CTC
//! trace: each week is replayed as an independent experiment and the
//! per-week results are aggregated into the comparison tables. [`shards`]
//! produces exactly those slices — half-open `[k·len, (k+1)·len)` windows
//! anchored at the first submission — lazily, re-based to time 0 like
//! [`crate::filter::window`], so shards from different trace regions are
//! directly comparable.

use crate::filter::rebase;
use crate::job::{sort_by_submit, Job};

/// Seconds in the paper's shard unit: one week.
pub const WEEK_SECONDS: u64 = 604_800;

/// One experiment slice of a trace.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TraceShard {
    /// Absolute window index from the trace start (`0` = first window).
    /// Indices of empty windows are skipped but never reused, so the
    /// index identifies the same calendar window across runs.
    pub index: usize,
    /// Window start in original trace time (inclusive).
    pub from: u64,
    /// Window end in original trace time (exclusive).
    pub to: u64,
    /// The window's jobs, re-based to submit at 0 and renumbered.
    pub jobs: Vec<Job>,
}

/// Lazy iterator over the non-empty shards of a trace. See [`shards`].
#[derive(Clone, Debug)]
pub struct ShardIter {
    sorted: Vec<Job>,
    cursor: usize,
    base: u64,
    shard_seconds: u64,
    next_index: usize,
}

impl Iterator for ShardIter {
    type Item = TraceShard;

    fn next(&mut self) -> Option<TraceShard> {
        while self.cursor < self.sorted.len() {
            // The window holding the next unconsumed job: empty windows
            // in between are skipped (their indices stay vacant).
            let offset = self.sorted[self.cursor].submit - self.base;
            let index = (offset / self.shard_seconds) as usize;
            let index = index.max(self.next_index);
            let from = self.base + index as u64 * self.shard_seconds;
            let to = from + self.shard_seconds;
            let mut jobs = Vec::new();
            while self.cursor < self.sorted.len() && self.sorted[self.cursor].submit < to {
                jobs.push(self.sorted[self.cursor]);
                self.cursor += 1;
            }
            self.next_index = index + 1;
            if jobs.is_empty() {
                continue;
            }
            rebase(&mut jobs);
            return Some(TraceShard {
                index,
                from,
                to,
                jobs,
            });
        }
        None
    }
}

/// Iterates over the non-empty `shard_seconds`-long windows of `jobs`,
/// anchored at the earliest submission. Use [`WEEK_SECONDS`] for the
/// paper's weekly protocol.
///
/// # Panics
/// Panics when `shard_seconds == 0`.
pub fn shards(jobs: &[Job], shard_seconds: u64) -> ShardIter {
    assert!(shard_seconds > 0, "shard length must be positive");
    let mut sorted = jobs.to_vec();
    sort_by_submit(&mut sorted);
    let base = sorted.first().map(|j| j.submit).unwrap_or(0);
    ShardIter {
        sorted,
        cursor: 0,
        base,
        shard_seconds,
        next_index: 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::JobId;

    fn job(id: u32, submit: u64) -> Job {
        Job::exact(id, submit, 1, 60)
    }

    #[test]
    fn splits_at_window_boundaries() {
        let jobs = vec![job(0, 100), job(1, 599), job(2, 600), job(3, 1100)];
        let got: Vec<TraceShard> = shards(&jobs, 500).collect();
        // Anchored at the first submission (100): windows [100,600),
        // [600,1100), [1100,1600).
        assert_eq!(got.len(), 3);
        assert_eq!((got[0].index, got[0].from, got[0].to), (0, 100, 600));
        assert_eq!(got[0].jobs.len(), 2);
        assert_eq!((got[1].index, got[1].from, got[1].to), (1, 600, 1100));
        assert_eq!(got[1].jobs.len(), 1);
        assert_eq!((got[2].index, got[2].from, got[2].to), (2, 1100, 1600));
        assert_eq!(got[2].jobs.len(), 1);
    }

    #[test]
    fn shards_are_rebased_and_renumbered() {
        let jobs = vec![job(7, 1000), job(9, 1200)];
        let got: Vec<TraceShard> = shards(&jobs, 600).collect();
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].jobs[0].submit, 0);
        assert_eq!(got[0].jobs[1].submit, 200);
        assert_eq!(got[0].jobs[0].id, JobId(0));
        assert_eq!(got[0].jobs[1].id, JobId(1));
    }

    #[test]
    fn empty_windows_are_skipped_but_keep_indices() {
        // A gap of 3 windows between the two bursts.
        let jobs = vec![job(0, 0), job(1, 4_050), job(2, 4_060)];
        let got: Vec<TraceShard> = shards(&jobs, 1_000).collect();
        assert_eq!(got.len(), 2);
        assert_eq!(got[0].index, 0);
        assert_eq!(got[1].index, 4);
        assert_eq!(got[1].from, 4_000);
    }

    #[test]
    fn empty_trace_yields_nothing() {
        assert_eq!(shards(&[], WEEK_SECONDS).count(), 0);
    }

    #[test]
    fn unsorted_input_is_handled() {
        let jobs = vec![job(0, 900), job(1, 100), job(2, 500)];
        let got: Vec<TraceShard> = shards(&jobs, 10_000).collect();
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].jobs.len(), 3);
        assert!(got[0].jobs.windows(2).all(|w| w[0].submit <= w[1].submit));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_shard_length_rejected() {
        let _ = shards(&[], 0);
    }

    #[test]
    fn week_protocol_covers_a_multi_week_trace() {
        let jobs: Vec<Job> = (0..30)
            .map(|i| job(i, i as u64 * (WEEK_SECONDS / 10)))
            .collect();
        let got: Vec<TraceShard> = shards(&jobs, WEEK_SECONDS).collect();
        assert_eq!(got.len(), 3);
        assert_eq!(got.iter().map(|s| s.jobs.len()).sum::<usize>(), 30);
        for s in &got {
            assert_eq!(s.to - s.from, WEEK_SECONDS);
        }
    }
}
