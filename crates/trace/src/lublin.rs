//! A second synthetic workload model, loosely following the structure of
//! the Lublin–Feitelson model (JPDC 2003): hyper-gamma runtimes, two job
//! classes (batch/interactive), strong daily arrival cycle.
//!
//! The CTC-specific model lives in [`crate::synth`]; this one exists so
//! experiments can check that conclusions are not an artifact of a single
//! workload generator (workload diversity is standard practice in the
//! parallel-scheduling literature the paper builds on). The implementation
//! is a structural simplification — gamma sampling via
//! Marsaglia–Tsang, two-stage uniform-log widths, hour-of-day arrival
//! weights — not a parameter-exact port; DESIGN.md documents it as an
//! extension.

use crate::job::{sort_by_submit, Job, JobId};
use crate::synth::{SyntheticTrace, WorkloadModel};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Simplified Lublin–Feitelson-style workload model.
#[derive(Clone, Debug)]
pub struct LublinModel {
    /// Machine size in resources.
    pub nodes: u32,
    /// Fraction of *interactive* jobs (short, mostly serial); the rest
    /// are *batch* (long, wider).
    pub interactive_fraction: f64,
    /// Mean number of job arrivals per hour at the daily peak.
    pub peak_arrivals_per_hour: f64,
    /// Gamma shape of batch runtimes.
    pub batch_shape: f64,
    /// Gamma scale (seconds) of batch runtimes.
    pub batch_scale: f64,
    /// Gamma shape of interactive runtimes.
    pub interactive_shape: f64,
    /// Gamma scale (seconds) of interactive runtimes.
    pub interactive_scale: f64,
    /// Maximum runtime cap in seconds.
    pub max_runtime: u64,
}

impl Default for LublinModel {
    fn default() -> Self {
        LublinModel {
            nodes: 128,
            interactive_fraction: 0.6,
            peak_arrivals_per_hour: 18.0,
            batch_shape: 1.8,
            batch_scale: 6_000.0,
            interactive_shape: 1.2,
            interactive_scale: 450.0,
            max_runtime: 36 * 3600,
        }
    }
}

/// Hour-of-day arrival weights (fraction of the daily peak), a stylized
/// double-hump work-day profile as measured across archive traces.
const HOUR_WEIGHT: [f64; 24] = [
    0.25, 0.20, 0.18, 0.17, 0.18, 0.22, 0.32, 0.48, 0.70, 0.88, 0.97, 1.00, 0.95, 0.92, 0.98, 0.99,
    0.93, 0.82, 0.68, 0.55, 0.45, 0.38, 0.32, 0.28,
];

impl LublinModel {
    /// Gamma(shape, scale) sample via Marsaglia–Tsang (shape >= 1) or the
    /// boost trick for shape < 1.
    fn gamma(&self, rng: &mut StdRng, shape: f64, scale: f64) -> f64 {
        if shape < 1.0 {
            let u: f64 = rng.random::<f64>().max(1e-12);
            return self.gamma(rng, shape + 1.0, scale) * u.powf(1.0 / shape);
        }
        let d = shape - 1.0 / 3.0;
        let c = 1.0 / (9.0 * d).sqrt();
        loop {
            // Standard normal via Box–Muller.
            let u1: f64 = rng.random::<f64>().max(1e-12);
            let u2: f64 = rng.random();
            let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
            let v = (1.0 + c * z).powi(3);
            if v <= 0.0 {
                continue;
            }
            let u: f64 = rng.random::<f64>().max(1e-12);
            if u.ln() < 0.5 * z * z + d - d * v + d * v.ln() {
                return d * v * scale;
            }
        }
    }

    fn sample_width(&self, rng: &mut StdRng, interactive: bool) -> u32 {
        let serial_p = if interactive { 0.75 } else { 0.25 };
        if rng.random::<f64>() < serial_p {
            return 1;
        }
        // Uniform-log width with power-of-two snapping (the two-stage
        // model's dominant effect).
        let max_log = (self.nodes as f64).log2();
        let raw = (rng.random::<f64>() * max_log).exp2();
        let width = if rng.random::<f64>() < 0.75 {
            (raw.round() as u32).next_power_of_two()
        } else {
            raw.round() as u32
        };
        width.clamp(2, self.nodes)
    }

    fn sample_estimate(&self, rng: &mut StdRng, actual: u64) -> u64 {
        // Coarse user estimates: a factor 1..8, rounded up to 15 minutes.
        let factor = 1.0 + 7.0 * rng.random::<f64>() * rng.random::<f64>();
        let raw = (actual as f64 * factor).ceil() as u64;
        let est = raw.div_ceil(900) * 900;
        est.clamp(actual.max(1), self.max_runtime.max(actual))
    }
}

impl WorkloadModel for LublinModel {
    fn machine_size(&self) -> u32 {
        self.nodes
    }

    fn generate(&self, n: usize, seed: u64) -> SyntheticTrace {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut jobs = Vec::with_capacity(n);
        let mut t = 0.0f64;
        let peak_rate = self.peak_arrivals_per_hour / 3600.0; // per second
        while jobs.len() < n {
            // Thinned Poisson process with hour-of-day weights.
            let hour = ((t / 3600.0) as usize) % 24;
            let rate = (peak_rate * HOUR_WEIGHT[hour]).max(peak_rate * 0.05);
            let u: f64 = rng.random::<f64>().max(1e-12);
            t += -u.ln() / rate;
            let interactive = rng.random::<f64>() < self.interactive_fraction;
            let (shape, scale) = if interactive {
                (self.interactive_shape, self.interactive_scale)
            } else {
                (self.batch_shape, self.batch_scale)
            };
            let actual =
                (self.gamma(&mut rng, shape, scale).round() as u64).clamp(1, self.max_runtime);
            let width = self.sample_width(&mut rng, interactive);
            let estimated = self.sample_estimate(&mut rng, actual);
            jobs.push(Job {
                id: JobId(jobs.len() as u32),
                submit: t.round() as u64,
                width,
                estimated_duration: estimated,
                actual_duration: actual,
                user: if interactive { 1 } else { 2 },
            });
        }
        sort_by_submit(&mut jobs);
        for (i, job) in jobs.iter_mut().enumerate() {
            job.id = JobId(i as u32);
        }
        SyntheticTrace {
            machine_size: self.nodes,
            jobs,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::TraceStats;

    fn gen(n: usize, seed: u64) -> SyntheticTrace {
        LublinModel::default().generate(n, seed)
    }

    #[test]
    fn generates_valid_sorted_jobs() {
        let t = gen(800, 1);
        assert_eq!(t.jobs.len(), 800);
        for w in t.jobs.windows(2) {
            assert!(w[0].submit <= w[1].submit);
        }
        for j in &t.jobs {
            j.validate().unwrap();
            assert!(j.width <= t.machine_size);
            assert!(j.estimated_duration >= j.actual_duration);
        }
    }

    #[test]
    fn deterministic_per_seed() {
        assert_eq!(gen(200, 9).jobs, gen(200, 9).jobs);
        assert_ne!(gen(200, 9).jobs, gen(200, 10).jobs);
    }

    #[test]
    fn interactive_jobs_are_shorter_than_batch() {
        let t = gen(2000, 3);
        let mean = |class: u32| -> f64 {
            let v: Vec<u64> = t
                .jobs
                .iter()
                .filter(|j| j.user == class)
                .map(|j| j.actual_duration)
                .collect();
            v.iter().sum::<u64>() as f64 / v.len().max(1) as f64
        };
        assert!(
            mean(1) * 3.0 < mean(2),
            "interactive mean {} vs batch mean {}",
            mean(1),
            mean(2)
        );
    }

    #[test]
    fn daily_cycle_modulates_arrivals() {
        let t = gen(4000, 5);
        // Count arrivals by hour of day; peak hours must beat night hours.
        let mut per_hour = [0usize; 24];
        for j in &t.jobs {
            per_hour[((j.submit / 3600) % 24) as usize] += 1;
        }
        let day: usize = (9..17).map(|h| per_hour[h]).sum();
        let night: usize = (0..6).map(|h| per_hour[h]).sum();
        assert!(
            day > night * 2,
            "no daily cycle: day {day} vs night {night}"
        );
    }

    #[test]
    fn estimates_are_quarter_hour_rounded() {
        let t = gen(500, 7);
        let rounded = t
            .jobs
            .iter()
            .filter(|j| j.estimated_duration % 900 == 0)
            .count();
        assert!(
            rounded as f64 / t.jobs.len() as f64 > 0.8,
            "estimates not human-rounded"
        );
    }

    #[test]
    fn stats_are_plausible() {
        let t = gen(2000, 11);
        let s = TraceStats::compute(&t.jobs);
        assert!(s.serial_fraction > 0.3 && s.serial_fraction < 0.9);
        assert!(s.mean_overestimation >= 1.0);
        assert!(s.max_runtime <= LublinModel::default().max_runtime);
    }

    #[test]
    fn gamma_sampler_matches_moments() {
        let model = LublinModel::default();
        let mut rng = StdRng::seed_from_u64(42);
        let shape = 2.5;
        let scale = 100.0;
        let n = 20_000;
        let samples: Vec<f64> = (0..n)
            .map(|_| model.gamma(&mut rng, shape, scale))
            .collect();
        let mean: f64 = samples.iter().sum::<f64>() / n as f64;
        let var: f64 = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        // E = k*theta = 250, Var = k*theta^2 = 25000.
        assert!((mean - 250.0).abs() < 10.0, "gamma mean {mean}");
        assert!((var - 25_000.0).abs() < 2_500.0, "gamma variance {var}");
        // Shape < 1 branch.
        let small: Vec<f64> = (0..n).map(|_| model.gamma(&mut rng, 0.5, 100.0)).collect();
        let mean_small: f64 = small.iter().sum::<f64>() / n as f64;
        assert!(
            (mean_small - 50.0).abs() < 5.0,
            "gamma(0.5) mean {mean_small}"
        );
    }
}
