//! Windowing and rescaling helpers for carving experiment slices out of
//! long traces.
//!
//! The paper's Table 1 studies individual self-tuning steps; the harness
//! replays trace *prefixes* and *windows* to reach interesting system states
//! quickly. These helpers keep that slicing logic in one tested place.

use crate::job::{sort_by_submit, Job, JobId};

/// Returns the jobs submitted in `[from, to)`, re-based so the first kept
/// submission happens at time 0, with ids renumbered from 0 in submit order.
///
/// Re-basing keeps simulation clocks small and makes windows from different
/// trace regions directly comparable.
pub fn window(jobs: &[Job], from: u64, to: u64) -> Vec<Job> {
    let mut kept: Vec<Job> = jobs
        .iter()
        .filter(|j| j.submit >= from && j.submit < to)
        .copied()
        .collect();
    sort_by_submit(&mut kept);
    rebase(&mut kept);
    kept
}

/// Returns the first `n` jobs in submit order, re-based to start at 0.
pub fn prefix(jobs: &[Job], n: usize) -> Vec<Job> {
    let mut sorted: Vec<Job> = jobs.to_vec();
    sort_by_submit(&mut sorted);
    sorted.truncate(n);
    rebase(&mut sorted);
    sorted
}

/// Shifts submissions so the earliest is 0 and renumbers ids in submit
/// order. No-op on an empty slice.
pub fn rebase(jobs: &mut [Job]) {
    let Some(base) = jobs.iter().map(|j| j.submit).min() else {
        return;
    };
    jobs.sort_by(crate::job::submit_order);
    for (i, j) in jobs.iter_mut().enumerate() {
        j.submit -= base;
        j.id = JobId(i as u32);
    }
}

/// Multiplies every interarrival gap by `factor`, compressing (`< 1`) or
/// stretching (`> 1`) the load while keeping job shapes intact. Used to
/// sweep offered load in the ablation experiments.
pub fn scale_interarrival(jobs: &[Job], factor: f64) -> Vec<Job> {
    assert!(factor > 0.0, "interarrival factor must be positive");
    let mut sorted: Vec<Job> = jobs.to_vec();
    sort_by_submit(&mut sorted);
    if sorted.is_empty() {
        return sorted;
    }
    let base = sorted[0].submit;
    for j in &mut sorted {
        j.submit = base + ((j.submit - base) as f64 * factor).round() as u64;
    }
    // Rounding can reorder ties only in degenerate cases; restore order.
    sort_by_submit(&mut sorted);
    sorted
}

/// Re-estimates every job as `factor ×` its *actual* runtime (rounded,
/// floored at 1 s): the over-estimation axis of the paper's §4 sweeps,
/// where users request `factor` times what their job really needs.
///
/// `factor = 1` makes estimates exact; larger factors inflate the
/// planner's view of the queue without changing the delivered work. A
/// factor below 1 would make planning-based RMSs *kill* jobs at the
/// (now too short) estimate, silently changing the workload, so it is
/// rejected.
///
/// # Panics
/// Panics when `factor < 1`.
pub fn overestimate(jobs: &[Job], factor: f64) -> Vec<Job> {
    assert!(factor >= 1.0, "over-estimation factor must be >= 1");
    jobs.iter()
        .map(|j| Job {
            estimated_duration: ((j.actual_duration as f64 * factor).round() as u64)
                .max(j.actual_duration)
                .max(1),
            ..*j
        })
        .collect()
}

/// Clamps every width to `machine_size` — used when replaying a trace on a
/// smaller machine than it was recorded on.
pub fn clamp_widths(jobs: &[Job], machine_size: u32) -> Vec<Job> {
    jobs.iter()
        .map(|j| Job {
            width: j.width.min(machine_size),
            ..*j
        })
        .collect()
}

/// Drops jobs a planning-based RMS cannot schedule: zero width, zero
/// estimated or actual duration, or wider than `machine_size`. The SWF
/// reader already rejects sentinel records at parse time; this is the
/// belt-and-suspenders pass for jobs from other sources (synthetic
/// generators, hand-built tests) before they reach the simulator.
/// Returns the kept jobs and the number dropped.
pub fn sanitize(jobs: &[Job], machine_size: u32) -> (Vec<Job>, usize) {
    let kept: Vec<Job> = jobs
        .iter()
        .filter(|j| {
            j.width > 0
                && j.width <= machine_size
                && j.estimated_duration > 0
                && j.actual_duration > 0
        })
        .copied()
        .collect();
    let dropped = jobs.len() - kept.len();
    (kept, dropped)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<Job> {
        vec![
            Job::exact(0, 100, 1, 10),
            Job::exact(1, 200, 2, 20),
            Job::exact(2, 300, 4, 30),
            Job::exact(3, 400, 8, 40),
        ]
    }

    #[test]
    fn window_keeps_half_open_range() {
        let w = window(&sample(), 200, 400);
        assert_eq!(w.len(), 2);
        // Re-based: 200 -> 0, 300 -> 100.
        assert_eq!(w[0].submit, 0);
        assert_eq!(w[1].submit, 100);
        assert_eq!(w[0].width, 2);
        assert_eq!(w[1].width, 4);
    }

    #[test]
    fn window_renumbers_ids() {
        let w = window(&sample(), 200, 400);
        assert_eq!(w[0].id, JobId(0));
        assert_eq!(w[1].id, JobId(1));
    }

    #[test]
    fn empty_window_is_ok() {
        assert!(window(&sample(), 1000, 2000).is_empty());
    }

    #[test]
    fn prefix_takes_first_n_by_submit() {
        let mut jobs = sample();
        jobs.reverse(); // deliberately unsorted input
        let p = prefix(&jobs, 2);
        assert_eq!(p.len(), 2);
        assert_eq!(p[0].width, 1);
        assert_eq!(p[1].width, 2);
        assert_eq!(p[0].submit, 0);
        assert_eq!(p[1].submit, 100);
    }

    #[test]
    fn prefix_longer_than_trace_returns_all() {
        assert_eq!(prefix(&sample(), 100).len(), 4);
    }

    #[test]
    fn scale_interarrival_stretches_gaps() {
        let s = scale_interarrival(&sample(), 2.0);
        assert_eq!(s[0].submit, 100);
        assert_eq!(s[1].submit, 300);
        assert_eq!(s[3].submit, 700);
    }

    #[test]
    fn scale_interarrival_compresses_gaps() {
        let s = scale_interarrival(&sample(), 0.5);
        assert_eq!(s[0].submit, 100);
        assert_eq!(s[1].submit, 150);
        assert_eq!(s[3].submit, 250);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn scale_interarrival_rejects_zero() {
        scale_interarrival(&sample(), 0.0);
    }

    #[test]
    fn overestimate_scales_estimates_only() {
        let jobs = vec![Job::new(0, 0, 2, 100, 100), Job::new(1, 10, 4, 50, 30)];
        let o = overestimate(&jobs, 3.0);
        assert_eq!(o[0].estimated_duration, 300);
        assert_eq!(o[0].actual_duration, 100);
        // Factor applies to the *actual* runtime, replacing the old
        // estimate entirely.
        assert_eq!(o[1].estimated_duration, 90);
        assert_eq!(o[1].actual_duration, 30);
        // Identity factor pins estimates to actuals.
        let exact = overestimate(&jobs, 1.0);
        assert_eq!(exact[1].estimated_duration, 30);
    }

    #[test]
    #[should_panic(expected = ">= 1")]
    fn overestimate_rejects_underestimation() {
        overestimate(&sample(), 0.5);
    }

    #[test]
    fn clamp_widths_caps_at_machine() {
        let c = clamp_widths(&sample(), 3);
        assert_eq!(
            c.iter().map(|j| j.width).collect::<Vec<_>>(),
            vec![1, 2, 3, 3]
        );
    }

    #[test]
    fn sanitize_drops_degenerate_and_oversized_jobs() {
        let mut jobs = sample();
        jobs.push(Job {
            width: 0,
            ..Job::exact(4, 500, 1, 10)
        });
        jobs.push(Job {
            estimated_duration: 0,
            ..Job::exact(5, 600, 2, 10)
        });
        jobs.push(Job {
            actual_duration: 0,
            ..Job::exact(6, 700, 2, 10)
        });
        jobs.push(Job::exact(7, 800, 64, 10)); // wider than the machine
        let (kept, dropped) = sanitize(&jobs, 8);
        assert_eq!(kept, sample());
        assert_eq!(dropped, 4);
    }

    #[test]
    fn sanitize_keeps_clean_traces_intact() {
        let (kept, dropped) = sanitize(&sample(), 8);
        assert_eq!(kept, sample());
        assert_eq!(dropped, 0);
    }
}
