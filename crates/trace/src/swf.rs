//! Reader/writer for the Standard Workload Format (SWF) of the Parallel
//! Workloads Archive.
//!
//! The paper's evaluation replays the **CTC trace** ("we used the CTC job
//! trace from Dror Feitelson's Parallel Workloads Archive"). That archive
//! distributes traces in SWF: one line per job with 18 whitespace-separated
//! fields, `;`-prefixed header comments carrying machine metadata such as
//! `MaxNodes`. This module parses exactly that format so the original trace —
//! or any other archive trace — can be dropped into the simulator, and writes
//! it back out so synthetic workloads can be inspected with standard tooling.
//!
//! Field layout (see the archive's documentation):
//! ```text
//!  0 job number          6 used memory        12 executable id
//!  1 submit time         7 requested procs    13 queue id
//!  2 wait time           8 requested time     14 partition id
//!  3 run time            9 requested memory   15 preceding job
//!  4 allocated procs    10 status             16 think time
//!  5 avg cpu time       11 user id            17 (end)
//! ```
//! `-1` denotes "unknown" throughout.

use crate::job::{Job, JobId};
use std::fmt;
use std::io::{BufRead, Write};

/// One raw SWF record, all 18 fields, `-1` = unknown.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SwfJob {
    pub job_number: i64,
    pub submit_time: i64,
    pub wait_time: i64,
    pub run_time: i64,
    pub allocated_procs: i64,
    pub avg_cpu_time: f64,
    pub used_memory: i64,
    pub requested_procs: i64,
    pub requested_time: i64,
    pub requested_memory: i64,
    pub status: i64,
    pub user_id: i64,
    pub group_id: i64,
    pub executable: i64,
    pub queue: i64,
    pub partition: i64,
    pub preceding_job: i64,
    pub think_time: i64,
}

impl SwfJob {
    /// Converts the raw record into the workspace [`Job`] model, applying the
    /// archive conventions: requested processors fall back to allocated
    /// processors, the runtime estimate falls back to the actual runtime,
    /// and records that are unusable for scheduling (zero width, zero
    /// runtime, cancelled before start) are rejected with a reason.
    pub fn to_job(&self) -> Result<Job, String> {
        // SWF status: 1 = completed, 0 = failed, 5 = cancelled (before
        // start). Failed and cancelled records carry `-1` sentinels in
        // their time fields; letting them through would smuggle clamped
        // one-second durations into the workload and pollute every
        // duration-weighted metric (SLDwA weighs by job area).
        match self.status {
            0 => return Err(format!("job {}: failed (status 0)", self.job_number)),
            5 => return Err(format!("job {}: cancelled (status 5)", self.job_number)),
            _ => {}
        }
        let width = if self.requested_procs > 0 {
            self.requested_procs
        } else {
            self.allocated_procs
        };
        if width <= 0 {
            return Err(format!("job {}: no processor count", self.job_number));
        }
        let actual = self.run_time;
        if actual <= 0 {
            return Err(format!("job {}: no positive runtime", self.job_number));
        }
        // Planning-based RMSs require an estimate; fall back to the actual
        // runtime when the trace has none (the archive marks it -1). A
        // zero/negative estimate with a positive runtime is a sentinel
        // leak, not a one-second job — reject instead of clamping.
        let estimated = if self.requested_time > 0 {
            self.requested_time
        } else {
            actual
        };
        if estimated <= 0 {
            return Err(format!("job {}: no positive time estimate", self.job_number));
        }
        if self.submit_time < 0 {
            return Err(format!("job {}: negative submit time", self.job_number));
        }
        let job = Job {
            id: JobId(self.job_number as u32),
            submit: self.submit_time as u64,
            width: width as u32,
            // Jobs may exceed their estimate in archive traces; the planner
            // and the simulator cap the runtime at the estimate (CCS
            // semantics), so keep both raw values here.
            estimated_duration: estimated as u64,
            actual_duration: actual as u64,
            user: if self.user_id > 0 {
                self.user_id as u32
            } else {
                0
            },
        };
        job.validate()?;
        Ok(job)
    }

    /// Builds a raw record from a [`Job`], with unknown fields set to `-1`.
    pub fn from_job(job: &Job) -> SwfJob {
        SwfJob {
            job_number: job.id.0 as i64,
            submit_time: job.submit as i64,
            wait_time: -1,
            run_time: job.actual_duration as i64,
            allocated_procs: job.width as i64,
            avg_cpu_time: -1.0,
            used_memory: -1,
            requested_procs: job.width as i64,
            requested_time: job.estimated_duration as i64,
            requested_memory: -1,
            status: 1,
            user_id: if job.user == 0 { -1 } else { job.user as i64 },
            group_id: -1,
            executable: -1,
            queue: -1,
            partition: -1,
            preceding_job: -1,
            think_time: -1,
        }
    }
}

/// A parsed SWF trace: machine metadata from header comments plus all
/// usable jobs in submit order.
#[derive(Clone, Debug, Default)]
pub struct SwfTrace {
    /// `MaxNodes` from the header, if present (430 for CTC).
    pub max_nodes: Option<u32>,
    /// `MaxProcs` from the header, if present.
    pub max_procs: Option<u32>,
    /// Usable jobs, in file order.
    pub jobs: Vec<Job>,
    /// Records skipped during conversion, with reasons (for diagnostics).
    pub skipped: Vec<String>,
}

impl SwfTrace {
    /// Number of resources the trace's machine exposes: `MaxProcs` if known,
    /// else `MaxNodes`, else the widest job.
    pub fn machine_size(&self) -> u32 {
        self.max_procs
            .or(self.max_nodes)
            .unwrap_or_else(|| self.jobs.iter().map(|j| j.width).max().unwrap_or(1))
    }
}

/// Errors produced by the SWF reader.
#[derive(Debug)]
pub enum SwfError {
    /// I/O failure while reading.
    Io(std::io::Error),
    /// A data line that could not be tokenized into 18 numeric fields.
    Malformed { line_number: usize, reason: String },
}

impl fmt::Display for SwfError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SwfError::Io(e) => write!(f, "I/O error reading SWF: {e}"),
            SwfError::Malformed {
                line_number,
                reason,
            } => {
                write!(f, "malformed SWF line {line_number}: {reason}")
            }
        }
    }
}

impl std::error::Error for SwfError {}

impl From<std::io::Error> for SwfError {
    fn from(e: std::io::Error) -> Self {
        SwfError::Io(e)
    }
}

fn parse_i64(tok: &str, line_number: usize, field: &str) -> Result<i64, SwfError> {
    // Some archive traces write integral fields with a decimal point.
    if let Ok(v) = tok.parse::<i64>() {
        return Ok(v);
    }
    if let Ok(v) = tok.parse::<f64>() {
        return Ok(v.round() as i64);
    }
    Err(SwfError::Malformed {
        line_number,
        reason: format!("field {field}: cannot parse {tok:?} as a number"),
    })
}

/// Parses an SWF document from any buffered reader.
///
/// Header comments (`; Key: Value`) are scanned for `MaxNodes` / `MaxProcs`.
/// Data lines with fewer than 18 fields are an error; records that parse but
/// are unusable for scheduling (no width, no runtime) are collected in
/// [`SwfTrace::skipped`] rather than aborting the whole read, mirroring how
/// simulation studies clean archive traces.
pub fn read_swf<R: BufRead>(reader: R) -> Result<SwfTrace, SwfError> {
    let mut trace = SwfTrace::default();
    for (idx, line) in reader.lines().enumerate() {
        let line = line?;
        let line_number = idx + 1;
        let trimmed = line.trim();
        if trimmed.is_empty() {
            continue;
        }
        if let Some(comment) = trimmed.strip_prefix(';') {
            if let Some((key, value)) = comment.split_once(':') {
                let key = key.trim();
                let value = value.trim();
                match key {
                    "MaxNodes" => trace.max_nodes = value.parse().ok(),
                    "MaxProcs" => trace.max_procs = value.parse().ok(),
                    _ => {}
                }
            }
            continue;
        }
        let toks: Vec<&str> = trimmed.split_whitespace().collect();
        if toks.len() < 18 {
            return Err(SwfError::Malformed {
                line_number,
                reason: format!("expected 18 fields, found {}", toks.len()),
            });
        }
        let avg_cpu_time = toks[5].parse::<f64>().unwrap_or(-1.0);
        let record = SwfJob {
            job_number: parse_i64(toks[0], line_number, "job_number")?,
            submit_time: parse_i64(toks[1], line_number, "submit_time")?,
            wait_time: parse_i64(toks[2], line_number, "wait_time")?,
            run_time: parse_i64(toks[3], line_number, "run_time")?,
            allocated_procs: parse_i64(toks[4], line_number, "allocated_procs")?,
            avg_cpu_time,
            used_memory: parse_i64(toks[6], line_number, "used_memory")?,
            requested_procs: parse_i64(toks[7], line_number, "requested_procs")?,
            requested_time: parse_i64(toks[8], line_number, "requested_time")?,
            requested_memory: parse_i64(toks[9], line_number, "requested_memory")?,
            status: parse_i64(toks[10], line_number, "status")?,
            user_id: parse_i64(toks[11], line_number, "user_id")?,
            group_id: parse_i64(toks[12], line_number, "group_id")?,
            executable: parse_i64(toks[13], line_number, "executable")?,
            queue: parse_i64(toks[14], line_number, "queue")?,
            partition: parse_i64(toks[15], line_number, "partition")?,
            preceding_job: parse_i64(toks[16], line_number, "preceding_job")?,
            think_time: parse_i64(toks[17], line_number, "think_time")?,
        };
        match record.to_job() {
            Ok(job) => trace.jobs.push(job),
            Err(reason) => trace.skipped.push(reason),
        }
    }
    Ok(trace)
}

/// Parses an SWF document from an in-memory string.
pub fn parse_swf(text: &str) -> Result<SwfTrace, SwfError> {
    read_swf(std::io::BufReader::new(text.as_bytes()))
}

/// Serializes jobs as an SWF document, including a minimal header.
pub fn write_swf<W: Write>(mut w: W, jobs: &[Job], machine_size: u32) -> std::io::Result<()> {
    writeln!(w, "; Generated by dynp-rs")?;
    writeln!(w, "; MaxNodes: {machine_size}")?;
    writeln!(w, "; MaxProcs: {machine_size}")?;
    for job in jobs {
        let r = SwfJob::from_job(job);
        writeln!(
            w,
            "{} {} {} {} {} {} {} {} {} {} {} {} {} {} {} {} {} {}",
            r.job_number,
            r.submit_time,
            r.wait_time,
            r.run_time,
            r.allocated_procs,
            r.avg_cpu_time,
            r.used_memory,
            r.requested_procs,
            r.requested_time,
            r.requested_memory,
            r.status,
            r.user_id,
            r.group_id,
            r.executable,
            r.queue,
            r.partition,
            r.preceding_job,
            r.think_time,
        )?;
    }
    Ok(())
}

/// Serializes jobs as an SWF document into a `String`.
pub fn swf_to_string(jobs: &[Job], machine_size: u32) -> String {
    let mut buf = Vec::new();
    write_swf(&mut buf, jobs, machine_size).expect("writing to Vec cannot fail");
    String::from_utf8(buf).expect("SWF output is ASCII")
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "\
; Version: 2
; MaxNodes: 430
; MaxProcs: 430
1 0 5 100 4 -1 -1 4 200 -1 1 7 1 -1 -1 -1 -1 -1
2 60 0 50 1 -1 -1 1 60 -1 1 8 1 -1 -1 -1 -1 -1
3 60 0 -1 2 -1 -1 2 60 -1 0 8 1 -1 -1 -1 -1 -1
";

    #[test]
    fn parses_header_metadata() {
        let t = parse_swf(SAMPLE).unwrap();
        assert_eq!(t.max_nodes, Some(430));
        assert_eq!(t.max_procs, Some(430));
        assert_eq!(t.machine_size(), 430);
    }

    #[test]
    fn parses_jobs_and_skips_unusable() {
        let t = parse_swf(SAMPLE).unwrap();
        assert_eq!(t.jobs.len(), 2);
        assert_eq!(t.skipped.len(), 1); // job 3 has run_time -1
        let j = &t.jobs[0];
        assert_eq!(j.id, JobId(1));
        assert_eq!(j.submit, 0);
        assert_eq!(j.width, 4);
        assert_eq!(j.estimated_duration, 200);
        assert_eq!(j.actual_duration, 100);
        assert_eq!(j.user, 7);
    }

    #[test]
    fn estimate_falls_back_to_runtime() {
        let line = "5 10 0 300 2 -1 -1 2 -1 -1 1 -1 -1 -1 -1 -1 -1 -1\n";
        let t = parse_swf(line).unwrap();
        assert_eq!(t.jobs[0].estimated_duration, 300);
    }

    #[test]
    fn width_falls_back_to_allocated() {
        let line = "5 10 0 300 8 -1 -1 -1 400 -1 1 -1 -1 -1 -1 -1 -1 -1\n";
        let t = parse_swf(line).unwrap();
        assert_eq!(t.jobs[0].width, 8);
    }

    #[test]
    fn short_line_is_an_error() {
        let err = parse_swf("1 2 3\n").unwrap_err();
        match err {
            SwfError::Malformed { line_number, .. } => assert_eq!(line_number, 1),
            other => panic!("unexpected error: {other}"),
        }
    }

    #[test]
    fn accepts_decimal_points_in_integral_fields() {
        let line = "5 10.0 0 300.5 2 1.5 -1 2 400 -1 1 -1 -1 -1 -1 -1 -1 -1\n";
        let t = parse_swf(line).unwrap();
        assert_eq!(t.jobs[0].submit, 10);
        // 300.5 rounds to 301 seconds of runtime.
        assert_eq!(t.jobs[0].actual_duration, 301);
    }

    #[test]
    fn failed_job_with_positive_runtime_is_rejected() {
        // Regression: a status-0 (failed) record with a real runtime used
        // to pass conversion and enter the workload. Field 10 = status.
        let line = "7 10 0 300 4 -1 -1 4 400 -1 0 -1 -1 -1 -1 -1 -1 -1\n";
        let t = parse_swf(line).unwrap();
        assert!(t.jobs.is_empty());
        assert_eq!(t.skipped.len(), 1);
        assert!(t.skipped[0].contains("failed"), "{}", t.skipped[0]);
    }

    #[test]
    fn cancelled_job_is_rejected() {
        // Status 5 = cancelled before start; such records typically carry
        // -1 in run_time, but even a positive one must not be scheduled.
        let line = "8 10 0 300 4 -1 -1 4 400 -1 5 -1 -1 -1 -1 -1 -1 -1\n";
        let t = parse_swf(line).unwrap();
        assert!(t.jobs.is_empty());
        assert!(t.skipped[0].contains("cancelled"), "{}", t.skipped[0]);
    }

    #[test]
    fn run_time_sentinel_is_rejected() {
        // run_time -1 (field 3) on an otherwise completed record.
        let line = "9 10 0 -1 4 -1 -1 4 400 -1 1 -1 -1 -1 -1 -1 -1 -1\n";
        let t = parse_swf(line).unwrap();
        assert!(t.jobs.is_empty());
        assert!(t.skipped[0].contains("runtime"), "{}", t.skipped[0]);
    }

    #[test]
    fn both_time_sentinels_are_rejected_not_clamped() {
        // Both run_time and requested_time -1: before this was checked,
        // the estimate was silently clamped to 1 second. Nothing about
        // this record is schedulable.
        let line = "10 10 0 -1 4 -1 -1 4 -1 -1 1 -1 -1 -1 -1 -1 -1 -1\n";
        let t = parse_swf(line).unwrap();
        assert!(t.jobs.is_empty());
        assert_eq!(t.skipped.len(), 1);
    }

    #[test]
    fn width_sentinels_in_both_proc_fields_are_rejected() {
        // requested_procs and allocated_procs both -1 (fields 7 and 4).
        let line = "11 10 0 300 -1 -1 -1 -1 400 -1 1 -1 -1 -1 -1 -1 -1 -1\n";
        let t = parse_swf(line).unwrap();
        assert!(t.jobs.is_empty());
        assert!(t.skipped[0].contains("processor"), "{}", t.skipped[0]);
    }

    #[test]
    fn submit_time_sentinel_is_rejected() {
        let line = "12 -1 0 300 4 -1 -1 4 400 -1 1 -1 -1 -1 -1 -1 -1 -1\n";
        let t = parse_swf(line).unwrap();
        assert!(t.jobs.is_empty());
        assert!(t.skipped[0].contains("submit"), "{}", t.skipped[0]);
    }

    #[test]
    fn unknown_status_with_usable_times_is_kept() {
        // Status -1 (unknown) records with real time fields are usable —
        // only explicit failure/cancellation is disqualifying.
        let line = "13 10 0 300 4 -1 -1 4 400 -1 -1 -1 -1 -1 -1 -1 -1 -1\n";
        let t = parse_swf(line).unwrap();
        assert_eq!(t.jobs.len(), 1);
        assert!(t.skipped.is_empty());
    }

    #[test]
    fn roundtrip_preserves_scheduling_fields() {
        let jobs = vec![Job::new(1, 0, 4, 200, 100), Job::new(2, 60, 1, 60, 50)];
        let text = swf_to_string(&jobs, 430);
        let back = parse_swf(&text).unwrap();
        assert_eq!(back.machine_size(), 430);
        assert_eq!(back.jobs, jobs);
    }

    #[test]
    fn machine_size_falls_back_to_widest_job() {
        let line = "5 10 0 300 8 -1 -1 16 400 -1 1 -1 -1 -1 -1 -1 -1 -1\n";
        let t = parse_swf(line).unwrap();
        assert_eq!(t.machine_size(), 16);
    }

    #[test]
    fn empty_input_gives_empty_trace() {
        let t = parse_swf("").unwrap();
        assert!(t.jobs.is_empty());
        assert_eq!(t.machine_size(), 1);
    }
}
