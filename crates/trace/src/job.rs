//! The rigid-job model shared by every crate in the workspace.
//!
//! Following §3.1 of the paper, a job `i` is described by three values at
//! scheduling time: its requested width `w_i` (number of resources), its
//! *estimated* duration `d_i`, and its submission time `s_i`. The simulator
//! additionally carries the *actual* duration so that a finished job can
//! release its resources at the real completion time, while the planner only
//! ever sees the estimate ("the scheduler … knows only the estimated duration
//! at scheduling time").

use std::fmt;

/// Identifier of a job, unique within one trace / simulation run.
///
/// Stored as `u32`: the largest archive traces are well below 2^32 jobs and
/// a small id keeps the hot scheduling structs compact.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct JobId(pub u32);

impl fmt::Debug for JobId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "J{}", self.0)
    }
}

impl fmt::Display for JobId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl From<u32> for JobId {
    fn from(v: u32) -> Self {
        JobId(v)
    }
}

/// A rigid parallel job.
///
/// Invariants (checked by [`Job::validate`]):
/// * `width >= 1`,
/// * `estimated_duration >= 1` and `actual_duration >= 1`,
/// * `actual_duration <= estimated_duration` is **not** required in general
///   (users under-estimate too), but planning-based systems kill jobs at the
///   estimate, so [`Job::effective_duration`] caps the actual duration at the
///   estimate the way CCS (the paper's RMS) enforces it.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Job {
    /// Unique id within the trace.
    pub id: JobId,
    /// Submission time `s_i` in seconds since trace start.
    pub submit: u64,
    /// Requested number of resources `w_i` (processors/nodes).
    pub width: u32,
    /// User-supplied runtime estimate `d_i` in seconds; the only duration
    /// visible to the scheduler.
    pub estimated_duration: u64,
    /// Real runtime in seconds, revealed to the simulator when the job ends.
    pub actual_duration: u64,
    /// Originating user (for workload statistics; `0` if unknown).
    pub user: u32,
}

impl Job {
    /// Creates a job whose actual duration equals its estimate — convenient
    /// in unit tests and in the quasi-off-line snapshots of §3, where only
    /// estimates matter.
    pub fn exact(id: u32, submit: u64, width: u32, duration: u64) -> Self {
        Job {
            id: JobId(id),
            submit,
            width,
            estimated_duration: duration,
            actual_duration: duration,
            user: 0,
        }
    }

    /// Creates a job with distinct estimated and actual durations.
    pub fn new(id: u32, submit: u64, width: u32, estimated: u64, actual: u64) -> Self {
        Job {
            id: JobId(id),
            submit,
            width,
            estimated_duration: estimated,
            actual_duration: actual,
            user: 0,
        }
    }

    /// The duration the job really occupies the machine for: the actual
    /// runtime, truncated at the estimate (planning-based RMSs kill jobs that
    /// exceed their reservation).
    pub fn effective_duration(&self) -> u64 {
        self.actual_duration.min(self.estimated_duration)
    }

    /// Job *area* `w_i * d_i` over the estimated duration — the weight used
    /// by the SLDwA metric ("slowdown weighted by job area").
    pub fn estimated_area(&self) -> u64 {
        self.width as u64 * self.estimated_duration
    }

    /// Job area over the effective (real, capped) duration.
    pub fn effective_area(&self) -> u64 {
        self.width as u64 * self.effective_duration()
    }

    /// Checks the structural invariants, returning a human-readable reason on
    /// failure. Used by the SWF reader and the synthetic generator.
    pub fn validate(&self) -> Result<(), String> {
        if self.width == 0 {
            return Err(format!("job {}: width must be >= 1", self.id));
        }
        if self.estimated_duration == 0 {
            return Err(format!("job {}: estimated duration must be >= 1", self.id));
        }
        if self.actual_duration == 0 {
            return Err(format!("job {}: actual duration must be >= 1", self.id));
        }
        Ok(())
    }
}

/// Orders jobs by submission time, breaking ties by id — the canonical event
/// order of an online trace. Sorting with this comparator makes replay
/// deterministic even when many jobs are submitted in the same second (e.g.
/// parameter studies submitted by a script, as the paper's intro describes).
pub fn submit_order(a: &Job, b: &Job) -> std::cmp::Ordering {
    a.submit.cmp(&b.submit).then(a.id.cmp(&b.id))
}

/// Sorts a job slice into canonical submit order.
pub fn sort_by_submit(jobs: &mut [Job]) {
    jobs.sort_by(submit_order);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_job_has_equal_durations() {
        let j = Job::exact(1, 10, 4, 3600);
        assert_eq!(j.estimated_duration, 3600);
        assert_eq!(j.actual_duration, 3600);
        assert_eq!(j.effective_duration(), 3600);
    }

    #[test]
    fn effective_duration_caps_at_estimate() {
        let j = Job::new(1, 0, 2, 100, 150);
        assert_eq!(j.effective_duration(), 100);
        let j = Job::new(2, 0, 2, 100, 70);
        assert_eq!(j.effective_duration(), 70);
    }

    #[test]
    fn area_uses_width_times_duration() {
        let j = Job::new(1, 0, 8, 100, 60);
        assert_eq!(j.estimated_area(), 800);
        assert_eq!(j.effective_area(), 480);
    }

    #[test]
    fn validate_rejects_degenerate_jobs() {
        assert!(Job::exact(1, 0, 0, 10).validate().is_err());
        assert!(Job::new(1, 0, 1, 0, 5).validate().is_err());
        assert!(Job::new(1, 0, 1, 5, 0).validate().is_err());
        assert!(Job::exact(1, 0, 1, 1).validate().is_ok());
    }

    #[test]
    fn submit_order_breaks_ties_by_id() {
        let mut jobs = vec![
            Job::exact(3, 50, 1, 1),
            Job::exact(1, 50, 1, 1),
            Job::exact(2, 20, 1, 1),
        ];
        sort_by_submit(&mut jobs);
        let ids: Vec<u32> = jobs.iter().map(|j| j.id.0).collect();
        assert_eq!(ids, vec![2, 1, 3]);
    }

    #[test]
    fn job_id_formats_compactly() {
        assert_eq!(format!("{:?}", JobId(7)), "J7");
        assert_eq!(format!("{}", JobId(7)), "7");
    }
}
