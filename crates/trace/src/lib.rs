//! Workload substrate for the dynP reproduction.
//!
//! The paper evaluates the self-tuning dynP scheduler against CPLEX-computed
//! schedules on the **CTC trace** from the Parallel Workloads Archive. This
//! crate provides everything needed to feed such workloads into the
//! simulator:
//!
//! * [`job`] — the rigid-job model used throughout the workspace (requested
//!   width, estimated duration, actual duration, submission time),
//! * [`swf`] — a reader/writer for the Standard Workload Format used by the
//!   Parallel Workloads Archive, so real traces (CTC, KTH, SDSC, …) can be
//!   replayed unchanged,
//! * [`synth`] — a statistically CTC-like synthetic workload generator used
//!   when the original trace file is not available (see DESIGN.md §1),
//! * [`stats`] — summary statistics over job sets (interarrival times, width
//!   and runtime distributions) used to sanity-check generated workloads,
//! * [`filter`] — windowing and rescaling helpers for carving experiment
//!   slices out of long traces,
//! * [`shard`] — the paper's weekly-slice protocol: a lazy iterator over
//!   fixed-length trace windows for batch experiment campaigns.
//!
//! All times are integer **seconds** (`u64`), matching the paper's "the
//! smallest time step in resource management systems is usually one second".

pub mod filter;
pub mod job;
pub mod lublin;
pub mod shard;
pub mod stats;
pub mod swf;
pub mod synth;

pub use job::{Job, JobId};
pub use lublin::LublinModel;
pub use shard::{shards, ShardIter, TraceShard, WEEK_SECONDS};
pub use stats::TraceStats;
pub use swf::{SwfError, SwfJob, SwfTrace};
pub use synth::{CtcModel, SyntheticTrace, WorkloadModel};
