//! Summary statistics over job sets.
//!
//! Used to sanity-check synthetic workloads against the CTC statistics the
//! paper quotes (mean interarrival time 369 s) and to report workload
//! characteristics in the experiment harness.

use crate::job::Job;

/// Aggregate statistics of a job stream.
#[derive(Clone, Debug, PartialEq)]
pub struct TraceStats {
    /// Number of jobs.
    pub count: usize,
    /// Mean interarrival time in seconds (0 for traces with < 2 jobs).
    pub mean_interarrival: f64,
    /// Mean requested width.
    pub mean_width: f64,
    /// Maximum requested width.
    pub max_width: u32,
    /// Fraction of serial (width 1) jobs.
    pub serial_fraction: f64,
    /// Mean actual runtime in seconds.
    pub mean_runtime: f64,
    /// Median actual runtime in seconds.
    pub median_runtime: u64,
    /// Maximum actual runtime in seconds.
    pub max_runtime: u64,
    /// Mean over-estimation factor `estimate / actual`.
    pub mean_overestimation: f64,
    /// Total work (sum of width * actual runtime) in resource-seconds.
    pub total_work: u64,
    /// Trace span: last submit minus first submit, in seconds.
    pub span: u64,
}

impl TraceStats {
    /// Computes statistics for a job slice. Jobs need not be sorted; the
    /// interarrival statistic sorts a copy of the submit times internally.
    pub fn compute(jobs: &[Job]) -> TraceStats {
        if jobs.is_empty() {
            return TraceStats {
                count: 0,
                mean_interarrival: 0.0,
                mean_width: 0.0,
                max_width: 0,
                serial_fraction: 0.0,
                mean_runtime: 0.0,
                median_runtime: 0,
                max_runtime: 0,
                mean_overestimation: 0.0,
                total_work: 0,
                span: 0,
            };
        }
        let n = jobs.len();
        let mut submits: Vec<u64> = jobs.iter().map(|j| j.submit).collect();
        submits.sort_unstable();
        let span = submits[n - 1] - submits[0];
        let mean_interarrival = if n >= 2 {
            span as f64 / (n - 1) as f64
        } else {
            0.0
        };
        let mut runtimes: Vec<u64> = jobs.iter().map(|j| j.actual_duration).collect();
        runtimes.sort_unstable();
        let median_runtime = runtimes[n / 2];
        let total_width: u64 = jobs.iter().map(|j| j.width as u64).sum();
        let total_runtime: u64 = jobs.iter().map(|j| j.actual_duration).sum();
        let serial = jobs.iter().filter(|j| j.width == 1).count();
        let over: f64 = jobs
            .iter()
            .map(|j| j.estimated_duration as f64 / j.actual_duration.max(1) as f64)
            .sum::<f64>()
            / n as f64;
        TraceStats {
            count: n,
            mean_interarrival,
            mean_width: total_width as f64 / n as f64,
            max_width: jobs.iter().map(|j| j.width).max().unwrap_or(0),
            serial_fraction: serial as f64 / n as f64,
            mean_runtime: total_runtime as f64 / n as f64,
            median_runtime,
            max_runtime: runtimes[n - 1],
            mean_overestimation: over,
            total_work: jobs
                .iter()
                .map(|j| j.width as u64 * j.actual_duration)
                .sum(),
            span,
        }
    }

    /// Offered load against a machine of `machine_size` resources over the
    /// trace span: total work divided by available resource-seconds.
    /// Values near or above 1.0 mean the machine is saturated.
    pub fn offered_load(&self, machine_size: u32) -> f64 {
        if self.span == 0 || machine_size == 0 {
            return 0.0;
        }
        self.total_work as f64 / (self.span as f64 * machine_size as f64)
    }
}

impl std::fmt::Display for TraceStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "jobs:                {}", self.count)?;
        writeln!(f, "span:                {} s", self.span)?;
        writeln!(f, "mean interarrival:   {:.1} s", self.mean_interarrival)?;
        writeln!(
            f,
            "width:               mean {:.1}, max {}, serial {:.0}%",
            self.mean_width,
            self.max_width,
            self.serial_fraction * 100.0
        )?;
        writeln!(
            f,
            "runtime:             mean {:.0} s, median {} s, max {} s",
            self.mean_runtime, self.median_runtime, self.max_runtime
        )?;
        writeln!(f, "mean overestimation: {:.2}x", self.mean_overestimation)?;
        write!(
            f,
            "total work:          {} resource-seconds",
            self.total_work
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::Job;

    #[test]
    fn empty_trace_is_all_zero() {
        let s = TraceStats::compute(&[]);
        assert_eq!(s.count, 0);
        assert_eq!(s.total_work, 0);
        assert_eq!(s.offered_load(100), 0.0);
    }

    #[test]
    fn single_job_stats() {
        let s = TraceStats::compute(&[Job::new(1, 100, 4, 200, 100)]);
        assert_eq!(s.count, 1);
        assert_eq!(s.mean_interarrival, 0.0);
        assert_eq!(s.max_width, 4);
        assert_eq!(s.total_work, 400);
        assert_eq!(s.mean_overestimation, 2.0);
    }

    #[test]
    fn interarrival_and_span() {
        let jobs = vec![
            Job::exact(1, 0, 1, 10),
            Job::exact(2, 100, 1, 10),
            Job::exact(3, 200, 1, 10),
        ];
        let s = TraceStats::compute(&jobs);
        assert_eq!(s.span, 200);
        assert_eq!(s.mean_interarrival, 100.0);
    }

    #[test]
    fn interarrival_tolerates_unsorted_input() {
        let jobs = vec![
            Job::exact(3, 200, 1, 10),
            Job::exact(1, 0, 1, 10),
            Job::exact(2, 100, 1, 10),
        ];
        assert_eq!(TraceStats::compute(&jobs).mean_interarrival, 100.0);
    }

    #[test]
    fn serial_fraction_counts_width_one() {
        let jobs = vec![
            Job::exact(1, 0, 1, 10),
            Job::exact(2, 1, 2, 10),
            Job::exact(3, 2, 1, 10),
            Job::exact(4, 3, 8, 10),
        ];
        assert_eq!(TraceStats::compute(&jobs).serial_fraction, 0.5);
    }

    #[test]
    fn offered_load_is_work_over_capacity() {
        let jobs = vec![Job::exact(1, 0, 10, 100), Job::exact(2, 100, 10, 100)];
        let s = TraceStats::compute(&jobs);
        // work = 2 * 10 * 100 = 2000; span = 100; machine 20 => 2000/2000 = 1
        assert!((s.offered_load(20) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn display_mentions_job_count() {
        let s = TraceStats::compute(&[Job::exact(1, 0, 1, 10)]);
        assert!(format!("{s}").contains("jobs:"));
    }
}
