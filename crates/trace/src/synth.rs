//! Synthetic workload generation modelled on the CTC trace.
//!
//! The original CTC trace (Cornell Theory Center IBM SP2, 430 nodes) is
//! distributed by the Parallel Workloads Archive and is not bundled here; per
//! DESIGN.md §1 we substitute a statistically CTC-like generator. The
//! generator reproduces the first-order properties the paper's evaluation
//! depends on:
//!
//! * **Arrivals**: Poisson with the paper's stated mean interarrival time of
//!   369 s, modulated by a day/night cycle, plus occasional *bursts* — the
//!   "hundreds of jobs for a parameter study … submitted in one go via a
//!   script" from the paper's introduction. Bursts are what make policy
//!   switching worthwhile, because they abruptly change the waiting queue's
//!   characteristics.
//! * **Widths**: dominated by serial jobs with strong power-of-two bias,
//!   capped at the 430-node machine size.
//! * **Runtimes**: log-uniform over seconds-to-hours, with user classes that
//!   skew short-sequential or long-parallel.
//! * **Estimates**: actual runtime times an over-estimation factor, rounded
//!   up to "human" values (full minutes/hours), as archive studies of user
//!   estimates observe.
//!
//! Everything is driven by a seedable RNG so experiments are reproducible.

use crate::job::{sort_by_submit, Job, JobId};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Number of nodes of the CTC machine.
pub const CTC_NODES: u32 = 430;
/// Mean interarrival time of the CTC trace, as stated in §4 of the paper.
pub const CTC_MEAN_INTERARRIVAL: f64 = 369.0;

/// A workload model produces a job stream for a machine of a given size.
pub trait WorkloadModel {
    /// Number of resources the modelled machine exposes.
    fn machine_size(&self) -> u32;
    /// Generates `n` jobs starting at time 0, in submit order with ids
    /// `0..n`.
    fn generate(&self, n: usize, seed: u64) -> SyntheticTrace;
}

/// A generated workload plus the machine it targets.
#[derive(Clone, Debug)]
pub struct SyntheticTrace {
    /// Machine size in resources.
    pub machine_size: u32,
    /// Jobs in canonical submit order, ids `0..len`.
    pub jobs: Vec<Job>,
}

/// Tunable CTC-like workload model. [`CtcModel::default`] matches the
/// paper's setting; the fields are public so ablation experiments can sweep
/// them.
#[derive(Clone, Debug)]
pub struct CtcModel {
    /// Machine size (default: 430 nodes).
    pub nodes: u32,
    /// Mean interarrival time in seconds (default: 369).
    pub mean_interarrival: f64,
    /// Probability that a submission event is a *burst* (script submission)
    /// rather than a single job.
    pub burst_probability: f64,
    /// Burst length range (inclusive), e.g. a parameter study of 5–60 jobs.
    pub burst_len: (usize, usize),
    /// Probability that a job is serial (width 1).
    pub serial_fraction: f64,
    /// Maximum runtime in seconds (default: 18 h, CTC's queue limit).
    pub max_runtime: u64,
    /// Minimum runtime in seconds.
    pub min_runtime: u64,
    /// Strength of the day/night arrival modulation in `[0, 1)`: 0 = flat,
    /// 0.5 = daytime rate is 3x the night rate.
    pub diurnal_amplitude: f64,
}

impl Default for CtcModel {
    fn default() -> Self {
        CtcModel {
            nodes: CTC_NODES,
            mean_interarrival: CTC_MEAN_INTERARRIVAL,
            burst_probability: 0.06,
            burst_len: (5, 40),
            serial_fraction: 0.35,
            max_runtime: 18 * 3600,
            min_runtime: 30,
            diurnal_amplitude: 0.45,
        }
    }
}

/// The user classes whose mix changes over time and drives dynP's policy
/// switches: short sequential work favours SJF, long massively-parallel
/// work favours LJF, mixed interactive work favours FCFS.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum UserClass {
    /// Hundreds of short, mostly sequential jobs (parameter studies).
    ShortSequential,
    /// Long-running, wide production jobs.
    LongParallel,
    /// General mix.
    Mixed,
}

impl CtcModel {
    /// Samples an exponential interarrival gap with the given mean.
    fn exp_gap(&self, rng: &mut StdRng, mean: f64) -> f64 {
        // Inverse-CDF sampling; `random` returns [0,1), so 1-u is in (0,1].
        let u: f64 = rng.random();
        -mean * (1.0 - u).ln()
    }

    /// Arrival-rate multiplier at a given time of day (seconds since trace
    /// start, day = 86 400 s). Peak at 14:00, trough at 02:00.
    fn diurnal_factor(&self, t: f64) -> f64 {
        let day_fraction = (t % 86_400.0) / 86_400.0;
        let phase = (day_fraction - 14.0 / 24.0) * std::f64::consts::TAU;
        1.0 + self.diurnal_amplitude * phase.cos()
    }

    fn sample_class(&self, rng: &mut StdRng) -> UserClass {
        let u: f64 = rng.random();
        if u < 0.4 {
            UserClass::ShortSequential
        } else if u < 0.7 {
            UserClass::Mixed
        } else {
            UserClass::LongParallel
        }
    }

    /// Samples a job width for a user class: serial with probability
    /// `serial_fraction`, otherwise power-of-two biased, occasionally an
    /// arbitrary size, capped at the machine.
    fn sample_width(&self, rng: &mut StdRng, class: UserClass) -> u32 {
        let serial_p = match class {
            UserClass::ShortSequential => (self.serial_fraction * 2.0).min(0.9),
            UserClass::Mixed => self.serial_fraction,
            UserClass::LongParallel => self.serial_fraction * 0.2,
        };
        if rng.random::<f64>() < serial_p {
            return 1;
        }
        let max_log2 = (self.nodes as f64).log2().floor() as u32; // 8 for 430
        let bias = match class {
            UserClass::ShortSequential => 0.35,
            UserClass::Mixed => 0.5,
            UserClass::LongParallel => 0.75,
        };
        // Power of two with exponent drawn from a triangular-ish distribution
        // whose mode scales with `bias`.
        let exp =
            (rng.random::<f64>() * rng.random::<f64>().max(bias) * max_log2 as f64).round() as u32;
        let mut width = 1u32 << exp.min(max_log2);
        // ~20% of parallel jobs use a non-power-of-two size.
        if rng.random::<f64>() < 0.2 {
            let lo = (width / 2).max(2);
            let hi = (width * 3 / 2).min(self.nodes);
            if lo < hi {
                width = rng.random_range(lo..=hi);
            }
        }
        width.clamp(1, self.nodes)
    }

    /// Samples an actual runtime (log-uniform within a class-specific band).
    fn sample_runtime(&self, rng: &mut StdRng, class: UserClass) -> u64 {
        let (lo, hi) = match class {
            UserClass::ShortSequential => (self.min_runtime, 30 * 60),
            UserClass::Mixed => (self.min_runtime, self.max_runtime / 3),
            UserClass::LongParallel => (30 * 60, self.max_runtime),
        };
        let (lo, hi) = (lo.max(1) as f64, hi.max(2u64) as f64);
        let v = (lo.ln() + rng.random::<f64>() * (hi.ln() - lo.ln())).exp();
        (v.round() as u64).clamp(self.min_runtime.max(1), self.max_runtime)
    }

    /// Samples the user's runtime estimate: the actual runtime inflated by an
    /// over-estimation factor and rounded up to a "human" granularity.
    fn sample_estimate(&self, rng: &mut StdRng, actual: u64) -> u64 {
        // Over-estimation factors follow the well-documented pattern that
        // many users pick the queue limit or a generous round number:
        // a point mass near 1 plus a heavy tail up to ~10x.
        let u: f64 = rng.random();
        let factor = if u < 0.2 {
            1.0
        } else if u < 0.75 {
            1.0 + 2.0 * rng.random::<f64>() // 1x..3x
        } else {
            3.0 + 7.0 * rng.random::<f64>() // 3x..10x
        };
        let raw = (actual as f64 * factor).ceil() as u64;
        let granularity = if raw < 1800 {
            60 // round to minutes below 30 min
        } else if raw < 4 * 3600 {
            600 // 10-minute steps below 4 h
        } else {
            3600 // full hours above
        };
        let rounded = raw.div_ceil(granularity) * granularity;
        rounded.clamp(actual.max(1), self.max_runtime.max(actual))
    }
}

impl WorkloadModel for CtcModel {
    fn machine_size(&self) -> u32 {
        self.nodes
    }

    fn generate(&self, n: usize, seed: u64) -> SyntheticTrace {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut jobs = Vec::with_capacity(n);
        let mut t = 0.0_f64;
        while jobs.len() < n {
            // Thin the base Poisson process by the diurnal factor.
            let gap = self.exp_gap(&mut rng, self.mean_interarrival) / self.diurnal_factor(t);
            t += gap;
            let submit = t.round() as u64;
            let class = self.sample_class(&mut rng);
            let burst = if rng.random::<f64>() < self.burst_probability {
                rng.random_range(self.burst_len.0..=self.burst_len.1)
            } else {
                1
            };
            // Jobs in a burst share a class and (mostly) a shape: the same
            // program run over a parameter sweep.
            let burst_width = self.sample_width(&mut rng, class);
            let burst_runtime = self.sample_runtime(&mut rng, class);
            for k in 0..burst {
                if jobs.len() >= n {
                    break;
                }
                let (width, actual) = if burst == 1 {
                    (burst_width, burst_runtime)
                } else {
                    // Within a burst, runtimes scatter by +-30%, widths stay.
                    let jitter = 0.7 + 0.6 * rng.random::<f64>();
                    (
                        burst_width,
                        ((burst_runtime as f64 * jitter).round() as u64)
                            .clamp(self.min_runtime.max(1), self.max_runtime),
                    )
                };
                let estimated = self.sample_estimate(&mut rng, actual);
                jobs.push(Job {
                    id: JobId(jobs.len() as u32),
                    // Script submissions arrive in the same second or a few
                    // seconds apart.
                    submit: submit + k as u64,
                    width,
                    estimated_duration: estimated,
                    actual_duration: actual,
                    user: class as u32 + 1,
                });
            }
        }
        sort_by_submit(&mut jobs);
        // Re-id after sorting so ids are again monotone in submit order.
        for (i, job) in jobs.iter_mut().enumerate() {
            job.id = JobId(i as u32);
        }
        SyntheticTrace {
            machine_size: self.nodes,
            jobs,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gen(n: usize, seed: u64) -> SyntheticTrace {
        CtcModel::default().generate(n, seed)
    }

    #[test]
    fn generates_requested_count_in_submit_order() {
        let t = gen(500, 42);
        assert_eq!(t.jobs.len(), 500);
        for w in t.jobs.windows(2) {
            assert!(w[0].submit <= w[1].submit);
        }
        for (i, j) in t.jobs.iter().enumerate() {
            assert_eq!(j.id.0 as usize, i);
        }
    }

    #[test]
    fn deterministic_for_same_seed() {
        assert_eq!(gen(200, 7).jobs, gen(200, 7).jobs);
    }

    #[test]
    fn different_seed_changes_workload() {
        assert_ne!(gen(200, 7).jobs, gen(200, 8).jobs);
    }

    #[test]
    fn all_jobs_valid_and_fit_machine() {
        let t = gen(1000, 1);
        for j in &t.jobs {
            j.validate().unwrap();
            assert!(j.width <= t.machine_size);
            assert!(j.estimated_duration >= j.actual_duration.min(j.estimated_duration));
            assert!(j.actual_duration >= CtcModel::default().min_runtime);
            assert!(j.actual_duration <= CtcModel::default().max_runtime);
        }
    }

    #[test]
    fn estimates_never_below_actual() {
        let t = gen(1000, 3);
        for j in &t.jobs {
            assert!(
                j.estimated_duration >= j.actual_duration,
                "job {:?}: estimate {} < actual {}",
                j.id,
                j.estimated_duration,
                j.actual_duration
            );
        }
    }

    #[test]
    fn mean_interarrival_roughly_matches_ctc() {
        let t = gen(5000, 11);
        let span = t.jobs.last().unwrap().submit - t.jobs[0].submit;
        let mean = span as f64 / (t.jobs.len() - 1) as f64;
        // Bursts compress arrivals, diurnal thinning stretches them; the
        // effective mean just needs to be the right order of magnitude.
        assert!(
            (50.0..=800.0).contains(&mean),
            "mean interarrival {mean} out of plausible range"
        );
    }

    #[test]
    fn serial_jobs_are_common() {
        let t = gen(2000, 5);
        let serial = t.jobs.iter().filter(|j| j.width == 1).count();
        let frac = serial as f64 / t.jobs.len() as f64;
        assert!(
            (0.2..=0.7).contains(&frac),
            "serial fraction {frac} out of range"
        );
    }

    #[test]
    fn widths_are_power_of_two_biased() {
        let t = gen(2000, 9);
        let parallel: Vec<_> = t.jobs.iter().filter(|j| j.width > 1).collect();
        let pow2 = parallel
            .iter()
            .filter(|j| j.width.is_power_of_two())
            .count();
        assert!(
            pow2 as f64 / parallel.len() as f64 > 0.5,
            "power-of-two fraction too low"
        );
    }

    #[test]
    fn workload_mixes_short_and_long_jobs() {
        let t = gen(2000, 13);
        let short = t.jobs.iter().filter(|j| j.actual_duration < 1800).count();
        let long = t
            .jobs
            .iter()
            .filter(|j| j.actual_duration > 4 * 3600)
            .count();
        assert!(short > 100, "too few short jobs: {short}");
        assert!(long > 50, "too few long jobs: {long}");
    }

    #[test]
    fn bursts_occur() {
        let t = gen(3000, 17);
        // A burst shows as many consecutive submissions 1 second apart with
        // identical width.
        let mut max_run = 1;
        let mut run = 1;
        for w in t.jobs.windows(2) {
            if w[1].submit - w[0].submit <= 1 && w[1].width == w[0].width {
                run += 1;
                max_run = max_run.max(run);
            } else {
                run = 1;
            }
        }
        assert!(max_run >= 5, "no bursts detected (max run {max_run})");
    }

    #[test]
    fn custom_model_respects_node_cap() {
        let model = CtcModel {
            nodes: 64,
            ..CtcModel::default()
        };
        let t = model.generate(500, 23);
        assert!(t.jobs.iter().all(|j| j.width <= 64));
    }
}
