//! Scheduling policies: orderings of the waiting queue.
//!
//! CCS — the RMS the paper builds on — implements three policies (§2):
//! **FCFS** (first come first serve), **SJF** (shortest job first) and
//! **LJF** (longest job first). dynP switches among them. A policy here is
//! *only* an ordering; the planner ([`crate::planner`]) turns an ordering
//! into a full schedule with implicit backfilling.
//!
//! Beyond the paper's three, two extension policies are provided for the
//! ablation experiments (DESIGN.md §3): smallest/largest estimated *area*
//! first, which weigh width as well as duration. They are never used by the
//! paper-faithful dynP configuration unless explicitly requested.

use dynp_trace::Job;
use std::cmp::Ordering;

/// A waiting-queue ordering policy.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Policy {
    /// First come first serve: by submission time.
    Fcfs,
    /// Shortest job first: by estimated duration, ascending.
    Sjf,
    /// Longest job first: by estimated duration, descending.
    Ljf,
    /// Extension: smallest estimated area (width x duration) first.
    Saf,
    /// Extension: largest estimated area (width x duration) first.
    Laf,
}

impl Policy {
    /// The paper's policy set, in the order CCS enumerates them.
    pub const PAPER_SET: [Policy; 3] = [Policy::Fcfs, Policy::Sjf, Policy::Ljf];

    /// All implemented policies, including extensions.
    pub const ALL: [Policy; 5] = [
        Policy::Fcfs,
        Policy::Sjf,
        Policy::Ljf,
        Policy::Saf,
        Policy::Laf,
    ];

    /// Short display name as used in the paper's tables.
    pub fn name(&self) -> &'static str {
        match self {
            Policy::Fcfs => "FCFS",
            Policy::Sjf => "SJF",
            Policy::Ljf => "LJF",
            Policy::Saf => "SAF",
            Policy::Laf => "LAF",
        }
    }

    /// Comparator realizing the policy. Every policy breaks ties by
    /// submission time and then job id, so orderings — and therefore whole
    /// simulations — are fully deterministic.
    pub fn compare(&self, a: &Job, b: &Job) -> Ordering {
        let primary = match self {
            Policy::Fcfs => Ordering::Equal,
            Policy::Sjf => a.estimated_duration.cmp(&b.estimated_duration),
            Policy::Ljf => b.estimated_duration.cmp(&a.estimated_duration),
            Policy::Saf => a.estimated_area().cmp(&b.estimated_area()),
            Policy::Laf => b.estimated_area().cmp(&a.estimated_area()),
        };
        primary.then(a.submit.cmp(&b.submit)).then(a.id.cmp(&b.id))
    }

    /// Returns the waiting jobs sorted according to the policy.
    pub fn order(&self, jobs: &[Job]) -> Vec<Job> {
        let mut sorted = jobs.to_vec();
        sorted.sort_by(|a, b| self.compare(a, b));
        sorted
    }
}

impl std::fmt::Display for Policy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

impl std::str::FromStr for Policy {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_uppercase().as_str() {
            "FCFS" => Ok(Policy::Fcfs),
            "SJF" => Ok(Policy::Sjf),
            "LJF" => Ok(Policy::Ljf),
            "SAF" => Ok(Policy::Saf),
            "LAF" => Ok(Policy::Laf),
            other => Err(format!("unknown policy {other:?}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dynp_trace::JobId;

    fn jobs() -> Vec<Job> {
        vec![
            Job::exact(0, 10, 2, 300), // medium, early
            Job::exact(1, 20, 8, 100), // short, wide
            Job::exact(2, 30, 1, 900), // long, narrow
        ]
    }

    fn ids(policy: Policy, jobs: &[Job]) -> Vec<u32> {
        policy.order(jobs).iter().map(|j| j.id.0).collect()
    }

    #[test]
    fn fcfs_orders_by_submit() {
        assert_eq!(ids(Policy::Fcfs, &jobs()), vec![0, 1, 2]);
    }

    #[test]
    fn sjf_orders_by_estimate_ascending() {
        assert_eq!(ids(Policy::Sjf, &jobs()), vec![1, 0, 2]);
    }

    #[test]
    fn ljf_orders_by_estimate_descending() {
        assert_eq!(ids(Policy::Ljf, &jobs()), vec![2, 0, 1]);
    }

    #[test]
    fn saf_orders_by_area_ascending() {
        // areas: 600, 800, 900
        assert_eq!(ids(Policy::Saf, &jobs()), vec![0, 1, 2]);
    }

    #[test]
    fn laf_orders_by_area_descending() {
        assert_eq!(ids(Policy::Laf, &jobs()), vec![2, 1, 0]);
    }

    #[test]
    fn ties_break_by_submit_then_id() {
        let tied = vec![
            Job::exact(5, 100, 1, 60),
            Job::exact(3, 100, 1, 60),
            Job::exact(4, 50, 1, 60),
        ];
        assert_eq!(ids(Policy::Sjf, &tied), vec![4, 3, 5]);
        assert_eq!(ids(Policy::Ljf, &tied), vec![4, 3, 5]);
    }

    #[test]
    fn ordering_is_deterministic_under_shuffle() {
        let mut shuffled = jobs();
        shuffled.reverse();
        assert_eq!(ids(Policy::Sjf, &jobs()), ids(Policy::Sjf, &shuffled));
    }

    #[test]
    fn parse_and_display_roundtrip() {
        for p in Policy::ALL {
            let parsed: Policy = p.name().parse().unwrap();
            assert_eq!(parsed, p);
        }
        assert!("NOPE".parse::<Policy>().is_err());
        assert_eq!("fcfs".parse::<Policy>().unwrap(), Policy::Fcfs);
    }

    #[test]
    fn paper_set_is_fcfs_sjf_ljf() {
        assert_eq!(Policy::PAPER_SET.map(|p| p.name()), ["FCFS", "SJF", "LJF"]);
    }

    #[test]
    fn compare_is_a_total_order() {
        // Antisymmetry + transitivity spot check on a tricky triple.
        let a = Job::exact(1, 0, 1, 100);
        let b = Job::exact(2, 0, 2, 100);
        let c = Job::exact(3, 0, 3, 100);
        for p in Policy::ALL {
            assert_eq!(p.compare(&a, &b), p.compare(&b, &a).reverse());
            if p.compare(&a, &b) != Ordering::Greater && p.compare(&b, &c) != Ordering::Greater {
                assert_ne!(p.compare(&a, &c), Ordering::Greater);
            }
            assert_eq!(p.compare(&a, &a), Ordering::Equal);
        }
        let _ = JobId(0); // silence unused import in some cfgs
    }
}
