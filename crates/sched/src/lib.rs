//! Planning-based scheduling core: full schedules, scheduling policies,
//! performance metrics, and the quasi-off-line problem snapshot.
//!
//! The paper's RMS (CCS) is *planning based* (§2): at every submission it
//! computes a **full schedule** assigning a planned start time to *every*
//! waiting job, against the machine history of already-running jobs. This
//! crate implements that machinery:
//!
//! * [`snapshot`] — [`SchedulingProblem`], the quasi-off-line instance
//!   (waiting jobs + machine history + "now"), consumed identically by the
//!   policy planner and by the integer program in `dynp-milp`,
//! * [`policy`] — the waiting-queue orders: FCFS, SJF, LJF (the three
//!   policies of CCS) plus extension policies for ablations,
//! * [`planner`] — profile-based list scheduling that realizes a policy
//!   order as a full schedule with implicit backfilling, plus an
//!   EASY-style aggressive variant,
//! * [`schedule`] — the schedule data structure with validity checking,
//! * [`metrics`] — ARTwW, SLDwA and friends, exactly as the paper weighs
//!   them.

pub mod metrics;
pub mod planner;
pub mod policy;
pub mod reservation;
pub mod schedule;
pub mod snapshot;

pub use metrics::{Metric, MetricValue};
pub use planner::{plan, plan_easy, plan_ordered, plan_ordered_in, plan_with_profile, PlanError};
pub use policy::Policy;
pub use reservation::{admit, AdmissionRule, Reservation, ReservationRequest};
pub use schedule::{Schedule, ScheduleEntry};
pub use snapshot::SchedulingProblem;
