//! Advance reservations — the feature that motivates planning-based RMS in
//! the paper (§3): *"a request for a reservation is submitted right after.
//! An answer is expected immediately as other reservation requests might
//! depend on the acceptance of this request. Hence, the updated resource
//! plan has to be computed fast."*
//!
//! A [`Reservation`] blocks a fixed `[start, end)` window of `width`
//! resources. Reservations are first-class in the
//! [`SchedulingProblem`]: the planner,
//! the schedule validator and the ILP all see capacities reduced by both
//! the machine history *and* the admitted reservations.
//!
//! [`admit`] implements the admission workflow: plan the waiting jobs
//! first (they were there first), then find the earliest window that still
//! fits the request — answering in planner time, i.e. milliseconds, which
//! is exactly why the paper deems exact solvers impractical for this path.

use crate::planner::plan_with_profile;
use crate::policy::Policy;
use crate::snapshot::SchedulingProblem;

use dynp_platform::ResourceProfile;

/// A fixed block of resources promised to a future activity.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Reservation {
    /// Identifier, unique within one problem.
    pub id: u32,
    /// Absolute start time (inclusive).
    pub start: u64,
    /// Absolute end time (exclusive).
    pub end: u64,
    /// Resources blocked.
    pub width: u32,
}

impl Reservation {
    /// Duration of the reserved window.
    pub fn duration(&self) -> u64 {
        self.end - self.start
    }

    /// Basic shape validation.
    pub fn validate(&self, capacity: u32) -> Result<(), String> {
        if self.start >= self.end {
            return Err(format!(
                "reservation {}: empty window [{}, {})",
                self.id, self.start, self.end
            ));
        }
        if self.width == 0 || self.width > capacity {
            return Err(format!(
                "reservation {}: width {} out of 1..={capacity}",
                self.id, self.width
            ));
        }
        Ok(())
    }
}

/// A reservation request: `width` resources for `duration` seconds, no
/// earlier than `earliest`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ReservationRequest {
    /// Resources required.
    pub width: u32,
    /// Window length in seconds.
    pub duration: u64,
    /// Earliest acceptable start (absolute).
    pub earliest: u64,
}

/// Admission policy: where may a new reservation be placed relative to the
/// already-planned jobs?
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AdmissionRule {
    /// The reservation must not displace any currently planned job: jobs
    /// are planned first (with `policy`), the reservation fills a gap.
    AroundPlannedJobs(Policy),
    /// Only running jobs and existing reservations constrain the window;
    /// waiting jobs will be re-planned around it (they have no guaranteed
    /// start times in a planning-based RMS).
    JobsYield,
}

/// Tries to admit `request` into `problem`, returning the granted
/// reservation (earliest possible window) or `None` if the request — or,
/// under [`AdmissionRule::AroundPlannedJobs`], any waiting job — can never
/// fit the machine. The availability profile is built **once** and shared
/// between the planning pass and the gap search.
pub fn admit(
    problem: &SchedulingProblem,
    rule: AdmissionRule,
    request: ReservationRequest,
) -> Option<Reservation> {
    let mut profile: ResourceProfile = problem.availability_profile();
    if let AdmissionRule::AroundPlannedJobs(policy) = rule {
        // A planning failure (an unplannable waiting job) means no start
        // time can be promised around the planned jobs: decline.
        let schedule = plan_with_profile(problem, policy, &profile).ok()?;
        for entry in schedule.entries() {
            profile.allocate(entry.start, entry.end, entry.width);
        }
    }
    let earliest = request.earliest.max(problem.now);
    let start = profile.earliest_fit(earliest, request.duration.max(1), request.width)?;
    let next_id = problem
        .reservations
        .iter()
        .map(|r| r.id + 1)
        .max()
        .unwrap_or(0);
    Some(Reservation {
        id: next_id,
        start,
        end: start + request.duration.max(1),
        width: request.width,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::Metric;
    use crate::planner::plan;
    use dynp_platform::MachineHistory;
    use dynp_trace::Job;

    fn problem_with_jobs() -> SchedulingProblem {
        let history = MachineHistory::build(8, 0, &[(4, 600)]);
        SchedulingProblem::new(
            0,
            history,
            vec![Job::exact(0, 0, 6, 1200), Job::exact(1, 0, 2, 300)],
        )
    }

    #[test]
    fn reservation_shape_validation() {
        assert!(Reservation {
            id: 0,
            start: 10,
            end: 10,
            width: 1
        }
        .validate(8)
        .is_err());
        assert!(Reservation {
            id: 0,
            start: 0,
            end: 10,
            width: 9
        }
        .validate(8)
        .is_err());
        assert!(Reservation {
            id: 0,
            start: 0,
            end: 10,
            width: 0
        }
        .validate(8)
        .is_err());
        Reservation {
            id: 0,
            start: 0,
            end: 10,
            width: 8,
        }
        .validate(8)
        .unwrap();
    }

    #[test]
    fn admission_respects_running_jobs() {
        // 4 of 8 busy until 600: an 8-wide reservation can start at 600
        // at the earliest (JobsYield ignores waiting jobs).
        let p = problem_with_jobs();
        let r = admit(
            &p,
            AdmissionRule::JobsYield,
            ReservationRequest {
                width: 8,
                duration: 100,
                earliest: 0,
            },
        )
        .unwrap();
        assert_eq!(r.start, 600);
        assert_eq!(r.end, 700);
    }

    #[test]
    fn admission_around_planned_jobs_goes_later() {
        // Around the planned jobs, the full machine only frees after the
        // 6-wide job finishes.
        let p = problem_with_jobs();
        let r = admit(
            &p,
            AdmissionRule::AroundPlannedJobs(Policy::Fcfs),
            ReservationRequest {
                width: 8,
                duration: 100,
                earliest: 0,
            },
        )
        .unwrap();
        // FCFS: job0 (w6) runs 600..1800, job1 (w2) 0..300; machine fully
        // free from 1800.
        assert_eq!(r.start, 1800);
    }

    #[test]
    fn narrow_request_fits_into_gaps() {
        let p = problem_with_jobs();
        let r = admit(
            &p,
            AdmissionRule::AroundPlannedJobs(Policy::Fcfs),
            ReservationRequest {
                width: 2,
                duration: 100,
                earliest: 0,
            },
        )
        .unwrap();
        // 4 running + 2 planned (job1) leaves 2 free right now.
        assert_eq!(r.start, 0);
    }

    #[test]
    fn too_wide_request_is_rejected() {
        let p = problem_with_jobs();
        assert!(admit(
            &p,
            AdmissionRule::JobsYield,
            ReservationRequest {
                width: 9,
                duration: 10,
                earliest: 0
            },
        )
        .is_none());
    }

    #[test]
    fn earliest_bound_is_respected() {
        let p = problem_with_jobs();
        let r = admit(
            &p,
            AdmissionRule::JobsYield,
            ReservationRequest {
                width: 1,
                duration: 60,
                earliest: 5000,
            },
        )
        .unwrap();
        assert_eq!(r.start, 5000);
    }

    #[test]
    fn planner_routes_jobs_around_reservations() {
        // An admitted reservation becomes part of the problem; planning
        // afterwards must avoid it.
        let mut p = problem_with_jobs();
        let r = admit(
            &p,
            AdmissionRule::JobsYield,
            ReservationRequest {
                width: 8,
                duration: 1000,
                earliest: 600,
            },
        )
        .unwrap();
        p.reservations.push(r);
        p.validate().unwrap();
        for policy in Policy::PAPER_SET {
            let s = plan(&p, policy).unwrap();
            s.validate(&p).unwrap();
            // No planned job may overlap the full-machine reservation.
            for e in s.entries() {
                assert!(
                    e.end <= r.start || e.start >= r.end,
                    "{policy}: job {} [{}, {}) overlaps reservation [{}, {})",
                    e.id,
                    e.start,
                    e.end,
                    r.start,
                    r.end
                );
            }
        }
    }

    #[test]
    fn metrics_still_work_with_reservations() {
        let mut p = problem_with_jobs();
        p.reservations.push(Reservation {
            id: 0,
            start: 600,
            end: 1600,
            width: 8,
        });
        let s = plan(&p, Policy::Sjf).unwrap();
        assert!(Metric::SldwA.eval(&p, &s) >= 1.0);
    }

    #[test]
    fn unplannable_waiting_job_declines_instead_of_panicking() {
        // A waiting job wider than the machine used to make
        // AroundPlannedJobs *panic* inside plan(); the documented contract
        // is to answer the requester with None.
        let p = SchedulingProblem {
            now: 0,
            history: MachineHistory::empty(4, 0),
            jobs: vec![Job::exact(0, 0, 8, 100)],
            reservations: Vec::new(),
        };
        assert!(admit(
            &p,
            AdmissionRule::AroundPlannedJobs(Policy::Fcfs),
            ReservationRequest {
                width: 1,
                duration: 10,
                earliest: 0
            },
        )
        .is_none());
        // JobsYield ignores waiting jobs, so the same problem still admits.
        assert!(admit(
            &p,
            AdmissionRule::JobsYield,
            ReservationRequest {
                width: 1,
                duration: 10,
                earliest: 0
            },
        )
        .is_some());
    }

    #[test]
    fn successive_admissions_stack() {
        let mut p = SchedulingProblem::on_empty_machine(0, 4, vec![]);
        for k in 0..3 {
            let r = admit(
                &p,
                AdmissionRule::JobsYield,
                ReservationRequest {
                    width: 4,
                    duration: 100,
                    earliest: 0,
                },
            )
            .unwrap();
            assert_eq!(r.start, k * 100, "reservations must queue up");
            p.reservations.push(r);
        }
        p.validate().unwrap();
    }
}
