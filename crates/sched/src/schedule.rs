//! Full schedules: planned start (and end) times for every waiting job.
//!
//! "For all waiting jobs the scheduler computes a full schedule, which
//! contains planned start times for every waiting job in the system. With
//! this information it is possible to measure the schedule by means of a
//! performance metrics." (§2)
//!
//! A [`Schedule`] is the output of both the policy planner and the integer
//! program; [`Schedule::validate`] checks it against the snapshot it was
//! planned for (capacity never exceeded including running jobs, every job
//! placed exactly once, no job starts before "now").

use crate::snapshot::SchedulingProblem;
use dynp_trace::JobId;

/// One planned job placement.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ScheduleEntry {
    /// Which job.
    pub id: JobId,
    /// Planned start time (absolute seconds).
    pub start: u64,
    /// Planned end = start + estimated duration.
    pub end: u64,
    /// Resources occupied.
    pub width: u32,
}

impl ScheduleEntry {
    /// Planned (estimated) duration.
    pub fn duration(&self) -> u64 {
        self.end - self.start
    }
}

/// A full schedule for one [`SchedulingProblem`].
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Schedule {
    entries: Vec<ScheduleEntry>,
}

impl Schedule {
    /// An empty schedule.
    pub fn new() -> Schedule {
        Schedule::default()
    }

    /// Builds a schedule from entries (order is irrelevant; kept as given).
    pub fn from_entries(entries: Vec<ScheduleEntry>) -> Schedule {
        Schedule { entries }
    }

    /// Adds a placement.
    pub fn push(&mut self, entry: ScheduleEntry) {
        self.entries.push(entry);
    }

    /// All placements, in insertion order (the planner inserts in policy
    /// order, so this doubles as the "starting order" §3.2 needs for
    /// compaction).
    pub fn entries(&self) -> &[ScheduleEntry] {
        &self.entries
    }

    /// Number of placed jobs.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no job is placed.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Looks up the placement of a job.
    pub fn entry(&self, id: JobId) -> Option<&ScheduleEntry> {
        self.entries.iter().find(|e| e.id == id)
    }

    /// Planned start of a job.
    pub fn start_of(&self, id: JobId) -> Option<u64> {
        self.entry(id).map(|e| e.start)
    }

    /// Latest planned end over all entries; `now` for an empty schedule is
    /// the caller's business, hence `Option`.
    pub fn makespan_end(&self) -> Option<u64> {
        self.entries.iter().map(|e| e.end).max()
    }

    /// Entries sorted by planned start (ties by id) — the "starting order"
    /// used when reconstructing a time-scaled ILP schedule (§3.2).
    pub fn start_order(&self) -> Vec<ScheduleEntry> {
        let mut sorted = self.entries.clone();
        sorted.sort_by(|a, b| a.start.cmp(&b.start).then(a.id.cmp(&b.id)));
        sorted
    }

    /// Validates this schedule against the snapshot it was planned for:
    ///
    /// 1. exactly the snapshot's job set is placed, each job once,
    /// 2. every entry's width/duration matches the job description,
    /// 3. no job starts before `now`,
    /// 4. at no time does total usage (running jobs via the history, plus
    ///    planned jobs) exceed the machine capacity.
    pub fn validate(&self, problem: &SchedulingProblem) -> Result<(), String> {
        // 1 + 2: job set equality and attribute match.
        if self.entries.len() != problem.jobs.len() {
            return Err(format!(
                "schedule places {} jobs, snapshot has {}",
                self.entries.len(),
                problem.jobs.len()
            ));
        }
        let mut seen = std::collections::HashSet::new();
        for entry in &self.entries {
            if !seen.insert(entry.id) {
                return Err(format!("job {} placed twice", entry.id));
            }
            let job = problem
                .jobs
                .iter()
                .find(|j| j.id == entry.id)
                .ok_or_else(|| format!("job {} not in snapshot", entry.id))?;
            if entry.width != job.width {
                return Err(format!(
                    "job {}: width {} != requested {}",
                    entry.id, entry.width, job.width
                ));
            }
            if entry.duration() != job.estimated_duration {
                return Err(format!(
                    "job {}: planned duration {} != estimate {}",
                    entry.id,
                    entry.duration(),
                    job.estimated_duration
                ));
            }
            if entry.start < problem.now {
                return Err(format!(
                    "job {} starts at {} before now {}",
                    entry.id, entry.start, problem.now
                ));
            }
        }
        // 4: capacity, via sweep over start/end events against the
        // availability profile (history minus reservations).
        let profile = problem.availability_profile();
        let mut events: Vec<(u64, i64)> = Vec::with_capacity(self.entries.len() * 2);
        for e in &self.entries {
            events.push((e.start, e.width as i64));
            events.push((e.end, -(e.width as i64)));
        }
        events.sort_unstable();
        let mut usage: i64 = 0;
        let mut i = 0;
        while i < events.len() {
            let t = events[i].0;
            while i < events.len() && events[i].0 == t {
                usage += events[i].1;
                i += 1;
            }
            let free = profile.free_at(t.max(problem.now)) as i64;
            if usage > free {
                return Err(format!(
                    "capacity exceeded at t={t}: planned usage {usage} > free {free}"
                ));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dynp_platform::MachineHistory;
    use dynp_trace::Job;

    fn problem() -> SchedulingProblem {
        SchedulingProblem::on_empty_machine(
            100,
            8,
            vec![Job::exact(0, 50, 4, 100), Job::exact(1, 60, 6, 200)],
        )
    }

    fn entry(id: u32, start: u64, dur: u64, width: u32) -> ScheduleEntry {
        ScheduleEntry {
            id: JobId(id),
            start,
            end: start + dur,
            width,
        }
    }

    #[test]
    fn valid_schedule_passes() {
        let s = Schedule::from_entries(vec![entry(0, 100, 100, 4), entry(1, 200, 200, 6)]);
        s.validate(&problem()).unwrap();
        assert_eq!(s.makespan_end(), Some(400));
        assert_eq!(s.start_of(JobId(0)), Some(100));
    }

    #[test]
    fn concurrent_fit_passes() {
        // 4 + 6 > 8, so they must not overlap; 4 alone and 6 alone fit.
        let s = Schedule::from_entries(vec![entry(0, 100, 100, 4), entry(1, 200, 200, 6)]);
        assert!(s.validate(&problem()).is_ok());
    }

    #[test]
    fn overcommit_fails() {
        let s = Schedule::from_entries(vec![entry(0, 100, 100, 4), entry(1, 150, 200, 6)]);
        assert!(s.validate(&problem()).unwrap_err().contains("capacity"));
    }

    #[test]
    fn start_before_now_fails() {
        let s = Schedule::from_entries(vec![entry(0, 90, 100, 4), entry(1, 200, 200, 6)]);
        assert!(s.validate(&problem()).unwrap_err().contains("before now"));
    }

    #[test]
    fn missing_job_fails() {
        let s = Schedule::from_entries(vec![entry(0, 100, 100, 4)]);
        assert!(s.validate(&problem()).is_err());
    }

    #[test]
    fn duplicate_job_fails() {
        let s = Schedule::from_entries(vec![entry(0, 100, 100, 4), entry(0, 300, 100, 4)]);
        assert!(s.validate(&problem()).unwrap_err().contains("twice"));
    }

    #[test]
    fn wrong_width_fails() {
        let s = Schedule::from_entries(vec![entry(0, 100, 100, 2), entry(1, 200, 200, 6)]);
        assert!(s.validate(&problem()).unwrap_err().contains("width"));
    }

    #[test]
    fn wrong_duration_fails() {
        let s = Schedule::from_entries(vec![entry(0, 100, 50, 4), entry(1, 200, 200, 6)]);
        assert!(s.validate(&problem()).unwrap_err().contains("duration"));
    }

    #[test]
    fn history_reduces_available_capacity() {
        // 5 resources busy until t=300.
        let history = MachineHistory::build(8, 100, &[(5, 300)]);
        let p = SchedulingProblem::new(100, history, vec![Job::exact(0, 50, 4, 100)]);
        let bad = Schedule::from_entries(vec![entry(0, 100, 100, 4)]);
        assert!(bad.validate(&p).is_err());
        let good = Schedule::from_entries(vec![entry(0, 300, 100, 4)]);
        good.validate(&p).unwrap();
    }

    #[test]
    fn start_order_sorts_by_start() {
        let s = Schedule::from_entries(vec![entry(1, 200, 200, 6), entry(0, 100, 100, 4)]);
        let order: Vec<u32> = s.start_order().iter().map(|e| e.id.0).collect();
        assert_eq!(order, vec![0, 1]);
    }

    #[test]
    fn empty_schedule_has_no_makespan() {
        let s = Schedule::new();
        assert!(s.is_empty());
        assert_eq!(s.makespan_end(), None);
        s.validate(&SchedulingProblem::on_empty_machine(0, 4, vec![]))
            .unwrap();
    }
}
