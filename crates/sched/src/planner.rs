//! Profile-based list scheduling: turning a policy order into a full
//! schedule.
//!
//! "Planning based RMS schedule the present and future resource usage, so
//! that newly submitted jobs are placed in the active schedule as soon as
//! possible and they get a start time assigned. With this approach
//! backfilling is done implicitly." (§2)
//!
//! [`plan`] realizes exactly that: jobs are taken in policy order and each
//! is placed at the *earliest* time with enough free resources in the
//! availability profile (machine history plus already-placed jobs). Because
//! later jobs may slot into holes left before earlier jobs' starts, this is
//! equivalent to *conservative backfilling* relative to the policy order.
//!
//! [`plan_easy`] is an extension (not used by the paper's dynP): EASY-style
//! aggressive backfilling where only the head job of the order holds a
//! reservation, which can improve utilization at the cost of delaying
//! non-head jobs unboundedly.

use crate::policy::Policy;
use crate::schedule::{Schedule, ScheduleEntry};
use crate::snapshot::SchedulingProblem;

/// Plans a full schedule for `problem` with the waiting queue ordered by
/// `policy`. Every job is placed at its earliest feasible start; the
/// schedule is guaranteed valid (see [`Schedule::validate`]).
pub fn plan(problem: &SchedulingProblem, policy: Policy) -> Schedule {
    plan_ordered(problem, &policy.order(&problem.jobs))
}

/// Plans a full schedule with an explicit job order (must be a permutation
/// of the snapshot's jobs). Exposed so the ILP compaction step (§3.2) can
/// re-insert jobs "according to the starting order of the schedule computed
/// by CPLEX".
pub fn plan_ordered(problem: &SchedulingProblem, order: &[dynp_trace::Job]) -> Schedule {
    let mut profile = problem.availability_profile();
    let mut schedule = Schedule::new();
    for job in order {
        let duration = job.estimated_duration.max(1);
        let start = profile
            .earliest_fit(problem.now, duration, job.width)
            .unwrap_or_else(|| {
                panic!(
                    "job {} (width {}) cannot ever fit machine of {}",
                    job.id,
                    job.width,
                    problem.capacity()
                )
            });
        profile.allocate(start, start + duration, job.width);
        schedule.push(ScheduleEntry {
            id: job.id,
            start,
            end: start + duration,
            width: job.width,
        });
    }
    schedule
}

/// EASY-style aggressive backfilling (extension; see module docs).
///
/// The head job of the policy order gets a reservation at its earliest
/// feasible start. Remaining jobs are started (planned) in policy order
/// only if they can run without delaying the head job's reservation;
/// otherwise they queue behind it. This repeats each time the head job is
/// placed, mirroring the EASY LoadLeveler algorithm transplanted into a
/// planning context.
pub fn plan_easy(problem: &SchedulingProblem, policy: Policy) -> Schedule {
    let mut waiting = policy.order(&problem.jobs);
    let mut profile = problem.availability_profile();
    let mut schedule = Schedule::new();
    let mut clock = problem.now;
    while !waiting.is_empty() {
        // Reserve the head job.
        let head = waiting.remove(0);
        let head_dur = head.estimated_duration.max(1);
        let head_start = profile
            .earliest_fit(clock, head_dur, head.width)
            .expect("head job wider than machine");
        profile.allocate(head_start, head_start + head_dur, head.width);
        schedule.push(ScheduleEntry {
            id: head.id,
            start: head_start,
            end: head_start + head_dur,
            width: head.width,
        });
        // Backfill: place any remaining job that can start before the head
        // reservation *without moving it* — i.e. at its earliest fit in the
        // updated profile, but only if that start is < head_start (true
        // backfill) — in policy order, one pass.
        let mut i = 0;
        while i < waiting.len() {
            let cand = waiting[i];
            let dur = cand.estimated_duration.max(1);
            match profile.earliest_fit(clock, dur, cand.width) {
                Some(start) if start < head_start => {
                    profile.allocate(start, start + dur, cand.width);
                    schedule.push(ScheduleEntry {
                        id: cand.id,
                        start,
                        end: start + dur,
                        width: cand.width,
                    });
                    waiting.remove(i);
                }
                _ => i += 1,
            }
        }
        // Next round plans from the head start onward.
        clock = head_start;
    }
    schedule
}

#[cfg(test)]
mod tests {
    use super::*;
    use dynp_platform::MachineHistory;
    use dynp_trace::{Job, JobId};

    fn snapshot(capacity: u32, jobs: Vec<Job>) -> SchedulingProblem {
        SchedulingProblem::on_empty_machine(0, capacity, jobs)
    }

    #[test]
    fn single_job_starts_now() {
        let p = snapshot(8, vec![Job::exact(0, 0, 4, 100)]);
        let s = plan(&p, Policy::Fcfs);
        assert_eq!(s.start_of(JobId(0)), Some(0));
        s.validate(&p).unwrap();
    }

    #[test]
    fn fcfs_respects_submission_order() {
        // Two jobs that cannot run together.
        let p = snapshot(8, vec![Job::exact(0, 0, 6, 100), Job::exact(1, 0, 6, 50)]);
        let s = plan(&p, Policy::Fcfs);
        assert_eq!(s.start_of(JobId(0)), Some(0));
        assert_eq!(s.start_of(JobId(1)), Some(100));
        s.validate(&p).unwrap();
    }

    #[test]
    fn sjf_reorders_but_stays_valid() {
        let p = snapshot(8, vec![Job::exact(0, 0, 6, 100), Job::exact(1, 0, 6, 50)]);
        let s = plan(&p, Policy::Sjf);
        assert_eq!(s.start_of(JobId(1)), Some(0));
        assert_eq!(s.start_of(JobId(0)), Some(50));
        s.validate(&p).unwrap();
    }

    #[test]
    fn implicit_backfilling_fills_holes() {
        // FCFS order: wide job 0 first, then wider job 1 must wait, but
        // narrow job 2 fits alongside job 0 and is backfilled implicitly.
        let p = snapshot(
            8,
            vec![
                Job::exact(0, 0, 6, 100),
                Job::exact(1, 0, 7, 100),
                Job::exact(2, 0, 2, 100),
            ],
        );
        let s = plan(&p, Policy::Fcfs);
        assert_eq!(s.start_of(JobId(0)), Some(0));
        assert_eq!(s.start_of(JobId(1)), Some(100));
        // Job 2 runs next to job 0 even though job 1 was placed earlier.
        assert_eq!(s.start_of(JobId(2)), Some(0));
        s.validate(&p).unwrap();
    }

    #[test]
    fn machine_history_delays_starts() {
        let history = MachineHistory::build(8, 10, &[(8, 500)]);
        let p = SchedulingProblem::new(10, history, vec![Job::exact(0, 5, 1, 100)]);
        let s = plan(&p, Policy::Fcfs);
        assert_eq!(s.start_of(JobId(0)), Some(500));
        s.validate(&p).unwrap();
    }

    #[test]
    fn partial_availability_is_used() {
        // 5 of 8 busy until 200; a width-3 job can start immediately.
        let history = MachineHistory::build(8, 0, &[(5, 200)]);
        let p = SchedulingProblem::new(
            0,
            history,
            vec![Job::exact(0, 0, 3, 50), Job::exact(1, 0, 4, 50)],
        );
        let s = plan(&p, Policy::Fcfs);
        assert_eq!(s.start_of(JobId(0)), Some(0));
        assert_eq!(s.start_of(JobId(1)), Some(200));
        s.validate(&p).unwrap();
    }

    #[test]
    fn empty_snapshot_plans_empty_schedule() {
        let p = snapshot(8, vec![]);
        assert!(plan(&p, Policy::Ljf).is_empty());
    }

    #[test]
    fn all_policies_produce_valid_schedules() {
        let p = snapshot(
            16,
            (0..20)
                .map(|i| Job::exact(i, 0, 1 + (i % 7), 60 * (1 + (i as u64 % 9))))
                .collect(),
        );
        for policy in Policy::ALL {
            plan(&p, policy).validate(&p).unwrap();
        }
    }

    #[test]
    #[should_panic(expected = "cannot ever fit")]
    fn job_wider_than_machine_panics() {
        let p = SchedulingProblem {
            now: 0,
            history: MachineHistory::empty(4, 0),
            jobs: vec![Job::exact(0, 0, 8, 100)],
            reservations: Vec::new(),
        };
        plan(&p, Policy::Fcfs);
    }

    #[test]
    fn easy_backfill_is_valid_and_fills() {
        let p = snapshot(
            8,
            vec![
                Job::exact(0, 0, 6, 100),
                Job::exact(1, 0, 7, 100),
                Job::exact(2, 0, 2, 50),
            ],
        );
        let s = plan_easy(&p, Policy::Fcfs);
        s.validate(&p).unwrap();
        // Job 2 backfills next to job 0.
        assert_eq!(s.start_of(JobId(2)), Some(0));
    }

    #[test]
    fn easy_equals_conservative_on_independent_jobs() {
        // When everything fits at once the two variants agree.
        let p = snapshot(
            16,
            vec![
                Job::exact(0, 0, 4, 100),
                Job::exact(1, 0, 4, 100),
                Job::exact(2, 0, 4, 100),
            ],
        );
        let a = plan(&p, Policy::Fcfs);
        let b = plan_easy(&p, Policy::Fcfs);
        for id in [0u32, 1, 2] {
            assert_eq!(a.start_of(JobId(id)), b.start_of(JobId(id)));
        }
    }

    #[test]
    fn plan_ordered_respects_explicit_order() {
        let jobs = vec![Job::exact(0, 0, 6, 100), Job::exact(1, 0, 6, 50)];
        let p = snapshot(8, jobs.clone());
        let s = plan_ordered(&p, &[jobs[1], jobs[0]]);
        assert_eq!(s.start_of(JobId(1)), Some(0));
        assert_eq!(s.start_of(JobId(0)), Some(50));
    }
}
