//! Profile-based list scheduling: turning a policy order into a full
//! schedule.
//!
//! "Planning based RMS schedule the present and future resource usage, so
//! that newly submitted jobs are placed in the active schedule as soon as
//! possible and they get a start time assigned. With this approach
//! backfilling is done implicitly." (§2)
//!
//! [`plan`] realizes exactly that: jobs are taken in policy order and each
//! is placed at the *earliest* time with enough free resources in the
//! availability profile (machine history plus already-placed jobs). Because
//! later jobs may slot into holes left before earlier jobs' starts, this is
//! equivalent to *conservative backfilling* relative to the policy order.
//!
//! [`plan_easy`] is an extension (not used by the paper's dynP): EASY-style
//! aggressive backfilling where only the head job of the order holds a
//! reservation, which can improve utilization at the cost of delaying
//! non-head jobs unboundedly.

use crate::policy::Policy;
use crate::schedule::{Schedule, ScheduleEntry};
use crate::snapshot::SchedulingProblem;
use dynp_platform::ResourceProfile;

/// Why a planning pass could not produce a schedule.
///
/// Planning is total except for one input defect: a waiting job that can
/// *never* fit the machine (its width exceeds capacity, or the profile
/// stays too full forever). Earlier revisions panicked on this, which made
/// `admit()` violate its own "returns `None`" contract; now every planner
/// entry point surfaces it as a value.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum PlanError {
    /// A job can never be placed: wider than the machine, or blocked by a
    /// profile that never frees enough resources.
    JobTooWide {
        /// The offending job.
        id: dynp_trace::JobId,
        /// Its resource requirement.
        width: u32,
        /// The machine capacity it exceeds (or the profile's eternal free
        /// count falls below).
        capacity: u32,
    },
    /// An explicit job order referenced a job id that is not part of the
    /// snapshot being planned (raised by MILP compaction when the solver's
    /// starting order disagrees with the problem it was built from).
    UnknownJob {
        /// The referenced-but-absent job.
        id: dynp_trace::JobId,
    },
}

impl std::fmt::Display for PlanError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PlanError::JobTooWide {
                id,
                width,
                capacity,
            } => write!(
                f,
                "job {id} (width {width}) cannot ever fit machine of {capacity}"
            ),
            PlanError::UnknownJob { id } => write!(f, "job {id} not in snapshot"),
        }
    }
}

impl std::error::Error for PlanError {}

/// Plans a full schedule for `problem` with the waiting queue ordered by
/// `policy`. Every job is placed at its earliest feasible start; the
/// schedule is guaranteed valid (see [`Schedule::validate`]).
///
/// Builds the availability profile from the snapshot; callers planning the
/// same snapshot several times (the self-tuning step plans once *per
/// policy*) should build it once and use [`plan_with_profile`].
pub fn plan(problem: &SchedulingProblem, policy: Policy) -> Result<Schedule, PlanError> {
    plan_with_profile(problem, policy, &problem.availability_profile())
}

/// [`plan`] against a caller-supplied availability profile (as returned by
/// [`SchedulingProblem::availability_profile`]). The profile is cloned,
/// not consumed, so one build can serve every policy of a tuning step.
pub fn plan_with_profile(
    problem: &SchedulingProblem,
    policy: Policy,
    profile: &ResourceProfile,
) -> Result<Schedule, PlanError> {
    if let Some(r) = dynp_obs::recorder() {
        r.counter("planner.profile_clones").inc();
    }
    plan_ordered_in(problem, &policy.order(&problem.jobs), profile.clone())
}

/// Plans a full schedule with an explicit job order (must be a permutation
/// of the snapshot's jobs). Exposed so the ILP compaction step (§3.2) can
/// re-insert jobs "according to the starting order of the schedule computed
/// by CPLEX".
pub fn plan_ordered(
    problem: &SchedulingProblem,
    order: &[dynp_trace::Job],
) -> Result<Schedule, PlanError> {
    plan_ordered_in(problem, order, problem.availability_profile())
}

/// Core list-scheduling pass: places `order` into an owned working
/// `profile`. All planner entry points funnel here.
///
/// The profile's pre-`now` prefix is compressed away first
/// ([`ResourceProfile::compress_before`]) — no job may start before `now`,
/// and a short profile keeps every subsequent skip-scan and allocation
/// cheap. Emits `planner.fit_probes` (total segment probes) and the
/// `planner.plan_ordered` latency span when a recorder is installed.
pub fn plan_ordered_in(
    problem: &SchedulingProblem,
    order: &[dynp_trace::Job],
    mut profile: ResourceProfile,
) -> Result<Schedule, PlanError> {
    let _span = dynp_obs::Span::enter("planner.plan_ordered");
    profile.compress_before(problem.now);
    let mut schedule = Schedule::new();
    let mut probes = 0u64;
    for job in order {
        let duration = job.estimated_duration.max(1);
        let (start, fit_probes) = profile.earliest_fit_probed(problem.now, duration, job.width);
        probes += fit_probes;
        let start = start.ok_or(PlanError::JobTooWide {
            id: job.id,
            width: job.width,
            capacity: problem.capacity(),
        })?;
        profile.allocate(start, start + duration, job.width);
        schedule.push(ScheduleEntry {
            id: job.id,
            start,
            end: start + duration,
            width: job.width,
        });
    }
    if let Some(r) = dynp_obs::recorder() {
        r.counter("planner.fit_probes").add(probes);
    }
    Ok(schedule)
}

/// EASY-style aggressive backfilling (extension; see module docs).
///
/// The head job of the policy order gets a reservation at its earliest
/// feasible start. Remaining jobs are started (planned) in policy order
/// only if they can run without delaying the head job's reservation;
/// otherwise they queue behind it. This repeats each time the head job is
/// placed, mirroring the EASY LoadLeveler algorithm transplanted into a
/// planning context.
pub fn plan_easy(problem: &SchedulingProblem, policy: Policy) -> Result<Schedule, PlanError> {
    let mut waiting = policy.order(&problem.jobs);
    let mut profile = problem.availability_profile();
    profile.compress_before(problem.now);
    let mut schedule = Schedule::new();
    let mut clock = problem.now;
    while !waiting.is_empty() {
        // Reserve the head job.
        let head = waiting.remove(0);
        let head_dur = head.estimated_duration.max(1);
        let head_start =
            profile
                .earliest_fit(clock, head_dur, head.width)
                .ok_or(PlanError::JobTooWide {
                    id: head.id,
                    width: head.width,
                    capacity: problem.capacity(),
                })?;
        profile.allocate(head_start, head_start + head_dur, head.width);
        schedule.push(ScheduleEntry {
            id: head.id,
            start: head_start,
            end: head_start + head_dur,
            width: head.width,
        });
        // Backfill: place any remaining job that can start before the head
        // reservation *without moving it* — i.e. at its earliest fit in the
        // updated profile, but only if that start is < head_start (true
        // backfill) — in policy order, one pass.
        let mut i = 0;
        while i < waiting.len() {
            let cand = waiting[i];
            let dur = cand.estimated_duration.max(1);
            match profile.earliest_fit(clock, dur, cand.width) {
                Some(start) if start < head_start => {
                    profile.allocate(start, start + dur, cand.width);
                    schedule.push(ScheduleEntry {
                        id: cand.id,
                        start,
                        end: start + dur,
                        width: cand.width,
                    });
                    waiting.remove(i);
                }
                _ => i += 1,
            }
        }
        // Next round plans from the head start onward.
        clock = head_start;
    }
    Ok(schedule)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dynp_platform::MachineHistory;
    use dynp_trace::{Job, JobId};

    fn snapshot(capacity: u32, jobs: Vec<Job>) -> SchedulingProblem {
        SchedulingProblem::on_empty_machine(0, capacity, jobs)
    }

    #[test]
    fn single_job_starts_now() {
        let p = snapshot(8, vec![Job::exact(0, 0, 4, 100)]);
        let s = plan(&p, Policy::Fcfs).unwrap();
        assert_eq!(s.start_of(JobId(0)), Some(0));
        s.validate(&p).unwrap();
    }

    #[test]
    fn fcfs_respects_submission_order() {
        // Two jobs that cannot run together.
        let p = snapshot(8, vec![Job::exact(0, 0, 6, 100), Job::exact(1, 0, 6, 50)]);
        let s = plan(&p, Policy::Fcfs).unwrap();
        assert_eq!(s.start_of(JobId(0)), Some(0));
        assert_eq!(s.start_of(JobId(1)), Some(100));
        s.validate(&p).unwrap();
    }

    #[test]
    fn sjf_reorders_but_stays_valid() {
        let p = snapshot(8, vec![Job::exact(0, 0, 6, 100), Job::exact(1, 0, 6, 50)]);
        let s = plan(&p, Policy::Sjf).unwrap();
        assert_eq!(s.start_of(JobId(1)), Some(0));
        assert_eq!(s.start_of(JobId(0)), Some(50));
        s.validate(&p).unwrap();
    }

    #[test]
    fn implicit_backfilling_fills_holes() {
        // FCFS order: wide job 0 first, then wider job 1 must wait, but
        // narrow job 2 fits alongside job 0 and is backfilled implicitly.
        let p = snapshot(
            8,
            vec![
                Job::exact(0, 0, 6, 100),
                Job::exact(1, 0, 7, 100),
                Job::exact(2, 0, 2, 100),
            ],
        );
        let s = plan(&p, Policy::Fcfs).unwrap();
        assert_eq!(s.start_of(JobId(0)), Some(0));
        assert_eq!(s.start_of(JobId(1)), Some(100));
        // Job 2 runs next to job 0 even though job 1 was placed earlier.
        assert_eq!(s.start_of(JobId(2)), Some(0));
        s.validate(&p).unwrap();
    }

    #[test]
    fn machine_history_delays_starts() {
        let history = MachineHistory::build(8, 10, &[(8, 500)]);
        let p = SchedulingProblem::new(10, history, vec![Job::exact(0, 5, 1, 100)]);
        let s = plan(&p, Policy::Fcfs).unwrap();
        assert_eq!(s.start_of(JobId(0)), Some(500));
        s.validate(&p).unwrap();
    }

    #[test]
    fn partial_availability_is_used() {
        // 5 of 8 busy until 200; a width-3 job can start immediately.
        let history = MachineHistory::build(8, 0, &[(5, 200)]);
        let p = SchedulingProblem::new(
            0,
            history,
            vec![Job::exact(0, 0, 3, 50), Job::exact(1, 0, 4, 50)],
        );
        let s = plan(&p, Policy::Fcfs).unwrap();
        assert_eq!(s.start_of(JobId(0)), Some(0));
        assert_eq!(s.start_of(JobId(1)), Some(200));
        s.validate(&p).unwrap();
    }

    #[test]
    fn empty_snapshot_plans_empty_schedule() {
        let p = snapshot(8, vec![]);
        assert!(plan(&p, Policy::Ljf).unwrap().is_empty());
    }

    #[test]
    fn all_policies_produce_valid_schedules() {
        let p = snapshot(
            16,
            (0..20)
                .map(|i| Job::exact(i, 0, 1 + (i % 7), 60 * (1 + (i as u64 % 9))))
                .collect(),
        );
        for policy in Policy::ALL {
            plan(&p, policy).unwrap().validate(&p).unwrap();
        }
    }

    #[test]
    fn job_wider_than_machine_is_an_error_not_a_panic() {
        let p = SchedulingProblem {
            now: 0,
            history: MachineHistory::empty(4, 0),
            jobs: vec![Job::exact(0, 0, 8, 100)],
            reservations: Vec::new(),
        };
        let err = plan(&p, Policy::Fcfs).unwrap_err();
        assert_eq!(
            err,
            PlanError::JobTooWide {
                id: JobId(0),
                width: 8,
                capacity: 4
            }
        );
        assert!(err.to_string().contains("cannot ever fit"));
        assert_eq!(plan_easy(&p, Policy::Fcfs).unwrap_err(), err);
    }

    #[test]
    fn plan_with_profile_matches_plan() {
        let p = snapshot(
            16,
            (0..30)
                .map(|i| Job::exact(i, 0, 1 + (i % 9), 30 * (1 + (i as u64 % 11))))
                .collect(),
        );
        let profile = p.availability_profile();
        for policy in Policy::ALL {
            assert_eq!(
                plan_with_profile(&p, policy, &profile).unwrap(),
                plan(&p, policy).unwrap(),
                "policy {policy:?}"
            );
        }
    }

    #[test]
    fn easy_backfill_is_valid_and_fills() {
        let p = snapshot(
            8,
            vec![
                Job::exact(0, 0, 6, 100),
                Job::exact(1, 0, 7, 100),
                Job::exact(2, 0, 2, 50),
            ],
        );
        let s = plan_easy(&p, Policy::Fcfs).unwrap();
        s.validate(&p).unwrap();
        // Job 2 backfills next to job 0.
        assert_eq!(s.start_of(JobId(2)), Some(0));
    }

    #[test]
    fn easy_equals_conservative_on_independent_jobs() {
        // When everything fits at once the two variants agree.
        let p = snapshot(
            16,
            vec![
                Job::exact(0, 0, 4, 100),
                Job::exact(1, 0, 4, 100),
                Job::exact(2, 0, 4, 100),
            ],
        );
        let a = plan(&p, Policy::Fcfs).unwrap();
        let b = plan_easy(&p, Policy::Fcfs).unwrap();
        for id in [0u32, 1, 2] {
            assert_eq!(a.start_of(JobId(id)), b.start_of(JobId(id)));
        }
    }

    #[test]
    fn plan_ordered_respects_explicit_order() {
        let jobs = vec![Job::exact(0, 0, 6, 100), Job::exact(1, 0, 6, 50)];
        let p = snapshot(8, jobs.clone());
        let s = plan_ordered(&p, &[jobs[1], jobs[0]]).unwrap();
        assert_eq!(s.start_of(JobId(1)), Some(0));
        assert_eq!(s.start_of(JobId(0)), Some(50));
    }
}
