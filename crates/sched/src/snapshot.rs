//! The quasi-off-line scheduling problem of §3.
//!
//! "In each self-tuning step a quasi off-line scheduling is done as the
//! number of jobs are fixed. However, it is not a classic off-line
//! scheduling … the schedule does not start with an empty machine."
//!
//! A [`SchedulingProblem`] captures exactly that instance: the observation
//! time, the machine history of running jobs, and the fixed set of waiting
//! jobs. Both the policy planner ([`crate::planner`]) and the integer
//! program (`dynp-milp`) consume the same snapshot, which is what makes the
//! paper's comparison apples-to-apples.

use crate::reservation::Reservation;
use dynp_platform::{MachineHistory, ResourceProfile};
use dynp_trace::Job;

/// One quasi-off-line scheduling instance.
#[derive(Clone, Debug)]
pub struct SchedulingProblem {
    /// Observation time ("now"); no job may start earlier.
    pub now: u64,
    /// Machine history: capacity and the release times of running jobs.
    pub history: MachineHistory,
    /// The fixed set of waiting jobs. All have `submit <= now`.
    pub jobs: Vec<Job>,
    /// Admitted advance reservations; capacities are reduced by these in
    /// addition to the history (see [`crate::reservation`]).
    pub reservations: Vec<Reservation>,
}

impl SchedulingProblem {
    /// Creates a snapshot, normalizing job submit times to be `<= now`
    /// (a waiting job cannot have been submitted in the future).
    ///
    /// # Panics
    /// Panics if the history's observation time differs from `now`.
    pub fn new(now: u64, history: MachineHistory, jobs: Vec<Job>) -> Self {
        assert_eq!(history.now(), now, "history observed at a different time");
        debug_assert!(
            jobs.iter().all(|j| j.submit <= now),
            "waiting job submitted after now"
        );
        SchedulingProblem {
            now,
            history,
            jobs,
            reservations: Vec::new(),
        }
    }

    /// Adds admitted reservations (builder style).
    pub fn with_reservations(mut self, reservations: Vec<Reservation>) -> Self {
        self.reservations = reservations;
        self
    }

    /// The availability profile every consumer plans against: machine
    /// history (running jobs) minus admitted reservations. Reservations
    /// ending at or before `now` no longer constrain anything.
    pub fn availability_profile(&self) -> ResourceProfile {
        let mut profile = self.history.to_profile();
        for r in &self.reservations {
            if r.end > self.now {
                profile.allocate(r.start.max(self.now), r.end, r.width);
            }
        }
        profile
    }

    /// Convenience constructor for an empty machine.
    pub fn on_empty_machine(now: u64, capacity: u32, jobs: Vec<Job>) -> Self {
        SchedulingProblem::new(now, MachineHistory::empty(capacity, now), jobs)
    }

    /// Machine capacity.
    pub fn capacity(&self) -> u32 {
        self.history.capacity()
    }

    /// Number of waiting jobs.
    pub fn len(&self) -> usize {
        self.jobs.len()
    }

    /// Whether there are no waiting jobs.
    pub fn is_empty(&self) -> bool {
        self.jobs.is_empty()
    }

    /// Accumulated estimated run time of all waiting jobs (the "acc. run
    /// time" column of Table 1).
    pub fn accumulated_runtime(&self) -> u64 {
        self.jobs.iter().map(|j| j.estimated_duration).sum()
    }

    /// A trivially safe upper bound on the makespan of any reasonable
    /// schedule: all running jobs drain, then waiting jobs run one after
    /// another. The ILP uses the tighter per-policy bound of §3.1 instead
    /// (max makespan of the FCFS/SJF/LJF schedules).
    pub fn naive_horizon(&self) -> u64 {
        self.history.drained_at() + self.accumulated_runtime()
    }

    /// Checks that every waiting job fits the machine at all.
    pub fn validate(&self) -> Result<(), String> {
        for r in &self.reservations {
            r.validate(self.capacity())?;
        }
        for job in &self.jobs {
            job.validate()?;
            if job.width > self.capacity() {
                return Err(format!(
                    "job {} wider ({}) than machine ({})",
                    job.id,
                    job.width,
                    self.capacity()
                ));
            }
            if job.submit > self.now {
                return Err(format!(
                    "job {} submitted at {} after now {}",
                    job.id, job.submit, self.now
                ));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dynp_trace::Job;

    #[test]
    fn snapshot_on_empty_machine() {
        let p = SchedulingProblem::on_empty_machine(
            100,
            16,
            vec![Job::exact(0, 50, 4, 600), Job::exact(1, 80, 2, 300)],
        );
        assert_eq!(p.capacity(), 16);
        assert_eq!(p.len(), 2);
        assert!(!p.is_empty());
        assert_eq!(p.accumulated_runtime(), 900);
        assert_eq!(p.naive_horizon(), 100 + 900);
        p.validate().unwrap();
    }

    #[test]
    fn horizon_includes_drain_time() {
        let history = MachineHistory::build(16, 100, &[(8, 500)]);
        let p = SchedulingProblem::new(100, history, vec![Job::exact(0, 50, 4, 600)]);
        assert_eq!(p.naive_horizon(), 500 + 600);
    }

    #[test]
    fn validate_rejects_too_wide_jobs() {
        let p = SchedulingProblem::on_empty_machine(0, 4, vec![Job::exact(0, 0, 8, 100)]);
        assert!(p.validate().unwrap_err().contains("wider"));
    }

    #[test]
    #[should_panic(expected = "different time")]
    fn mismatched_history_time_panics() {
        let history = MachineHistory::empty(4, 50);
        SchedulingProblem::new(100, history, vec![]);
    }

    #[test]
    fn empty_snapshot_is_empty() {
        let p = SchedulingProblem::on_empty_machine(0, 4, vec![]);
        assert!(p.is_empty());
        assert_eq!(p.accumulated_runtime(), 0);
        p.validate().unwrap();
    }
}
