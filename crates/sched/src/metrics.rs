//! Performance metrics over full schedules, weighted exactly as the paper
//! defines them.
//!
//! The self-tuning step measures each policy's schedule "by means of a
//! performance metrics (e.g. response time, slowdown, or utilization)" (§2).
//! The paper's ILP objective is **ARTwW** — average response time weighted
//! by width (Eq. 2) — and Table 1 is measured with **SLDwA** — average
//! slowdown weighted by job area.
//!
//! At planning time all metrics use the *estimated* duration, because that
//! is the only duration the scheduler knows (§3.1). The same weighted-mean
//! helpers are reused by `dynp-sim` on actual durations for end-of-run
//! statistics.

use crate::schedule::Schedule;
use crate::snapshot::SchedulingProblem;

/// A schedule performance metric.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Metric {
    /// Average response time weighted by width (Eq. 2); the ILP objective.
    ArtwW,
    /// Average slowdown weighted by job area; the Table 1 yardstick.
    SldwA,
    /// Plain average response time.
    Art,
    /// Plain average waiting time.
    AvgWait,
    /// Plain average slowdown.
    AvgSlowdown,
    /// Machine utilization over the schedule span (higher is better).
    Utilization,
    /// Schedule makespan measured from "now" (lower is better).
    Makespan,
}

/// A metric value paired with its direction, so deciders can compare
/// without re-deriving which way is "better".
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct MetricValue {
    /// Which metric.
    pub metric: Metric,
    /// The value; `0.0` for an empty schedule.
    pub value: f64,
}

impl Metric {
    /// Whether smaller values are better for this metric.
    pub fn lower_is_better(&self) -> bool {
        !matches!(self, Metric::Utilization)
    }

    /// Returns `true` if `a` is strictly better than `b` under this metric.
    pub fn better(&self, a: f64, b: f64) -> bool {
        if self.lower_is_better() {
            a < b
        } else {
            a > b
        }
    }

    /// Short name for tables.
    pub fn name(&self) -> &'static str {
        match self {
            Metric::ArtwW => "ARTwW",
            Metric::SldwA => "SLDwA",
            Metric::Art => "ART",
            Metric::AvgWait => "AvgWait",
            Metric::AvgSlowdown => "AvgSLD",
            Metric::Utilization => "Util",
            Metric::Makespan => "Makespan",
        }
    }

    /// Evaluates the metric on a planned schedule against its snapshot.
    /// Returns `0.0` for an empty schedule (no waiting jobs: nothing to
    /// measure, and the self-tuning step is skipped upstream anyway).
    pub fn eval(&self, problem: &SchedulingProblem, schedule: &Schedule) -> f64 {
        if schedule.is_empty() {
            return 0.0;
        }
        match self {
            Metric::ArtwW => {
                let mut num = 0.0;
                let mut den = 0.0;
                for (job, entry) in zip_jobs(problem, schedule) {
                    // (t - s_i + d_i) * w_i, per Eq. 2.
                    let response = (entry.start - job.submit + job.estimated_duration) as f64;
                    num += response * job.width as f64;
                    den += job.width as f64;
                }
                num / den
            }
            Metric::SldwA => {
                let mut num = 0.0;
                let mut den = 0.0;
                for (job, entry) in zip_jobs(problem, schedule) {
                    let wait = (entry.start - job.submit) as f64;
                    let run = job.estimated_duration as f64;
                    let slowdown = (wait + run) / run;
                    let area = job.estimated_area() as f64;
                    num += slowdown * area;
                    den += area;
                }
                num / den
            }
            Metric::Art => mean(
                zip_jobs(problem, schedule)
                    .map(|(job, e)| (e.start - job.submit + job.estimated_duration) as f64),
            ),
            Metric::AvgWait => {
                mean(zip_jobs(problem, schedule).map(|(job, e)| (e.start - job.submit) as f64))
            }
            Metric::AvgSlowdown => mean(zip_jobs(problem, schedule).map(|(job, e)| {
                let wait = (e.start - job.submit) as f64;
                let run = job.estimated_duration as f64;
                (wait + run) / run
            })),
            Metric::Utilization => {
                let end = schedule.makespan_end().expect("non-empty") as f64;
                let span = end - problem.now as f64;
                if span <= 0.0 {
                    return 0.0;
                }
                let work: f64 = problem.jobs.iter().map(|j| j.estimated_area() as f64).sum();
                work / (span * problem.capacity() as f64)
            }
            Metric::Makespan => (schedule.makespan_end().expect("non-empty") - problem.now) as f64,
        }
    }

    /// Evaluates and wraps into a [`MetricValue`].
    pub fn measure(&self, problem: &SchedulingProblem, schedule: &Schedule) -> MetricValue {
        MetricValue {
            metric: *self,
            value: self.eval(problem, schedule),
        }
    }
}

impl std::fmt::Display for Metric {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Pairs each schedule entry with its job record.
///
/// Metrics run once per policy per self-tuning step, so the lookup is on
/// the planning hot path: jobs are indexed by id once and found by binary
/// search per entry (`O((n+m) log n)`) instead of a linear scan per entry.
fn zip_jobs<'a>(
    problem: &'a SchedulingProblem,
    schedule: &'a Schedule,
) -> impl Iterator<Item = (&'a dynp_trace::Job, &'a crate::schedule::ScheduleEntry)> {
    let mut by_id: Vec<&dynp_trace::Job> = problem.jobs.iter().collect();
    by_id.sort_unstable_by_key(|j| j.id);
    schedule.entries().iter().map(move |entry| {
        let idx = by_id
            .binary_search_by_key(&entry.id, |j| j.id)
            .expect("validated schedule entry has a job");
        (by_id[idx], entry)
    })
}

fn mean(values: impl Iterator<Item = f64>) -> f64 {
    let mut sum = 0.0;
    let mut n = 0usize;
    for v in values {
        sum += v;
        n += 1;
    }
    if n == 0 {
        0.0
    } else {
        sum / n as f64
    }
}

/// The paper's schedule quality ratio (Eq. 7):
/// `quality(p, m) = performance(CPLEX, m) / performance(p, m)` for
/// lower-is-better metrics (and the reciprocal for utilization), so that
/// `quality < 1` means the reference (exact) schedule is better and
/// `(1 - quality) * 100` is the percentage performance loss of policy `p`.
pub fn quality(metric: Metric, reference: f64, policy_value: f64) -> f64 {
    if policy_value == 0.0 && reference == 0.0 {
        return 1.0;
    }
    if metric.lower_is_better() {
        reference / policy_value
    } else {
        policy_value / reference
    }
}

/// Percentage performance lost by the policy relative to the reference:
/// `(1 - quality) * 100`. Negative when the policy beats the (time-scaled)
/// reference, as the paper observes can happen.
pub fn performance_loss_percent(metric: Metric, reference: f64, policy_value: f64) -> f64 {
    (1.0 - quality(metric, reference, policy_value)) * 100.0
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::planner::plan;
    use crate::policy::Policy;
    use dynp_trace::Job;

    fn one_job_problem() -> (SchedulingProblem, Schedule) {
        let p = SchedulingProblem::on_empty_machine(100, 8, vec![Job::exact(0, 40, 4, 60)]);
        let s = plan(&p, Policy::Fcfs).unwrap();
        (p, s)
    }

    #[test]
    fn artww_single_job() {
        let (p, s) = one_job_problem();
        // start = 100, submit = 40, d = 60 -> response = 120.
        assert_eq!(Metric::ArtwW.eval(&p, &s), 120.0);
        assert_eq!(Metric::Art.eval(&p, &s), 120.0);
        assert_eq!(Metric::AvgWait.eval(&p, &s), 60.0);
    }

    #[test]
    fn sldwa_single_job() {
        let (p, s) = one_job_problem();
        // wait = 60, run = 60 -> slowdown 2.
        assert_eq!(Metric::SldwA.eval(&p, &s), 2.0);
        assert_eq!(Metric::AvgSlowdown.eval(&p, &s), 2.0);
    }

    #[test]
    fn artww_weights_by_width() {
        let p = SchedulingProblem::on_empty_machine(
            0,
            16,
            vec![Job::exact(0, 0, 1, 100), Job::exact(1, 0, 3, 100)],
        );
        let s = plan(&p, Policy::Fcfs).unwrap(); // both start at 0
                                        // responses both 100; weighted mean still 100.
        assert_eq!(Metric::ArtwW.eval(&p, &s), 100.0);
        // Force different responses: narrow machine.
        let p2 = SchedulingProblem::on_empty_machine(
            0,
            3,
            vec![Job::exact(0, 0, 1, 100), Job::exact(1, 0, 3, 100)],
        );
        let s2 = plan(&p2, Policy::Fcfs).unwrap();
        // job0: resp 100 weight 1; job1: starts at 100, resp 200, weight 3.
        let expect = (100.0 * 1.0 + 200.0 * 3.0) / 4.0;
        assert_eq!(Metric::ArtwW.eval(&p2, &s2), expect);
        // Plain ART ignores width.
        assert_eq!(Metric::Art.eval(&p2, &s2), 150.0);
    }

    #[test]
    fn sldwa_weights_by_area() {
        let p = SchedulingProblem::on_empty_machine(
            0,
            2,
            vec![Job::exact(0, 0, 2, 100), Job::exact(1, 0, 2, 300)],
        );
        let s = plan(&p, Policy::Fcfs).unwrap();
        // job0: wait 0, sld 1, area 200. job1: wait 100, run 300, sld 4/3,
        // area 600.
        let expect = (1.0 * 200.0 + (400.0 / 300.0) * 600.0) / 800.0;
        assert!((Metric::SldwA.eval(&p, &s) - expect).abs() < 1e-12);
    }

    #[test]
    fn utilization_and_makespan() {
        let p = SchedulingProblem::on_empty_machine(
            0,
            4,
            vec![Job::exact(0, 0, 2, 100), Job::exact(1, 0, 2, 100)],
        );
        let s = plan(&p, Policy::Fcfs).unwrap();
        // Both run in parallel: makespan 100, work 400, capacity*span 400.
        assert_eq!(Metric::Makespan.eval(&p, &s), 100.0);
        assert_eq!(Metric::Utilization.eval(&p, &s), 1.0);
    }

    #[test]
    fn empty_schedule_measures_zero() {
        let p = SchedulingProblem::on_empty_machine(4, 4, vec![]);
        let s = Schedule::new();
        for m in [
            Metric::ArtwW,
            Metric::SldwA,
            Metric::Art,
            Metric::AvgWait,
            Metric::AvgSlowdown,
            Metric::Utilization,
            Metric::Makespan,
        ] {
            assert_eq!(m.eval(&p, &s), 0.0);
        }
    }

    #[test]
    fn direction_of_metrics() {
        assert!(Metric::ArtwW.lower_is_better());
        assert!(Metric::SldwA.lower_is_better());
        assert!(!Metric::Utilization.lower_is_better());
        assert!(Metric::ArtwW.better(1.0, 2.0));
        assert!(Metric::Utilization.better(0.9, 0.5));
    }

    #[test]
    fn quality_ratio_matches_paper_definition() {
        // CPLEX better: quality < 1, positive loss.
        let q = quality(Metric::SldwA, 1.0, 1.25);
        assert!((q - 0.8).abs() < 1e-12);
        assert!((performance_loss_percent(Metric::SldwA, 1.0, 1.25) - 20.0).abs() < 1e-9);
        // Policy better (time-scaling artifact): quality > 1, negative loss.
        let q = quality(Metric::SldwA, 1.2, 1.0);
        assert!(q > 1.0);
        assert!(performance_loss_percent(Metric::SldwA, 1.2, 1.0) < 0.0);
        // Utilization flips the ratio.
        let q = quality(Metric::Utilization, 0.8, 0.4);
        assert!((q - 0.5).abs() < 1e-12);
    }

    #[test]
    fn measure_wraps_value() {
        let (p, s) = one_job_problem();
        let v = Metric::SldwA.measure(&p, &s);
        assert_eq!(v.metric, Metric::SldwA);
        assert_eq!(v.value, 2.0);
    }
}
