//! Discrete-event simulation of a planning-based resource management
//! system (the paper's CCS).
//!
//! The simulator replays a job trace against a [`Machine`]
//! (`dynp-platform`), re-planning the full schedule at every submission and
//! completion exactly like a planning-based RMS:
//!
//! * **submission** → the new job joins the waiting queue, a quasi-off-line
//!   snapshot is taken, the policy selector (fixed policy or the
//!   self-tuning dynP) picks the policy, a full schedule is planned, and
//!   every job whose planned start is "now" is dispatched;
//! * **completion** → resources are released (jobs may finish *earlier*
//!   than their estimate) and the schedule is re-planned with the active
//!   policy so waiting jobs move forward.
//!
//! [`snapshots`] taps the per-submission snapshots — the instances the
//! paper hands to CPLEX — without influencing the simulation, matching §4:
//! "Although these schedules are available, they are not used for the
//! actual scheduling process."
//!
//! [`Machine`]: dynp_platform::Machine

pub mod queueing;
pub mod record;
pub mod rms;
pub mod run;
pub mod snapshots;

pub use queueing::{simulate_queue, QueueDiscipline, QueueRms};
pub use record::{utilization_timeline, JobRecord, SimSummary};
pub use rms::{Rms, RmsEvent};
pub use run::{simulate, SimConfig, SimRun};
pub use snapshots::{SnapshotFilter, SnapshotLog, TunedSnapshot};
