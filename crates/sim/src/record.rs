//! Per-job completion records and end-of-run aggregate statistics.
//!
//! Planning happens on *estimated* durations, but a simulation run reveals
//! the *actual* runtimes, so the end-of-run metrics here are computed on
//! what really happened — the numbers a machine owner would report.

use dynp_trace::JobId;

/// Everything known about one completed job.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct JobRecord {
    /// Which job.
    pub id: JobId,
    /// Submission time.
    pub submit: u64,
    /// Dispatch (start) time.
    pub start: u64,
    /// Completion time.
    pub end: u64,
    /// Resources occupied.
    pub width: u32,
    /// The runtime estimate the planner saw.
    pub estimated_duration: u64,
}

impl JobRecord {
    /// Waiting time: start minus submit.
    pub fn wait(&self) -> u64 {
        self.start - self.submit
    }

    /// Response time: end minus submit.
    pub fn response(&self) -> u64 {
        self.end - self.submit
    }

    /// Actual runtime.
    pub fn runtime(&self) -> u64 {
        self.end - self.start
    }

    /// Slowdown = response / runtime (runtime floored at 1 s).
    pub fn slowdown(&self) -> f64 {
        self.response() as f64 / self.runtime().max(1) as f64
    }

    /// Bounded slowdown with threshold `tau` seconds: short jobs do not
    /// blow the metric up (Feitelson's bounded slowdown).
    pub fn bounded_slowdown(&self, tau: u64) -> f64 {
        let denom = self.runtime().max(tau).max(1) as f64;
        ((self.wait() + self.runtime()) as f64 / denom).max(1.0)
    }

    /// Actual area: width times actual runtime.
    pub fn area(&self) -> u64 {
        self.width as u64 * self.runtime()
    }
}

/// Aggregate statistics over all completed jobs of a run.
#[derive(Clone, Debug, PartialEq)]
pub struct SimSummary {
    /// Number of completed jobs.
    pub jobs: usize,
    /// Completion time of the last job.
    pub makespan_end: u64,
    /// Average response time in seconds.
    pub avg_response: f64,
    /// Average response time weighted by width (ARTwW on actual times).
    pub artww: f64,
    /// Average waiting time in seconds.
    pub avg_wait: f64,
    /// Average slowdown.
    pub avg_slowdown: f64,
    /// Average slowdown weighted by actual job area (SLDwA on actual
    /// times) — the paper's Table 1 yardstick.
    pub sldwa: f64,
    /// Average bounded slowdown (tau = 10 s).
    pub avg_bounded_slowdown: f64,
    /// Machine utilization: total actual work over capacity x (last end −
    /// first submit).
    pub utilization: f64,
}

impl SimSummary {
    /// The all-zero summary of an empty record set.
    pub fn empty() -> SimSummary {
        SimSummary {
            jobs: 0,
            makespan_end: 0,
            avg_response: 0.0,
            artww: 0.0,
            avg_wait: 0.0,
            avg_slowdown: 0.0,
            sldwa: 0.0,
            avg_bounded_slowdown: 0.0,
            utilization: 0.0,
        }
    }

    /// Computes the summary for `records` on a machine of `capacity`.
    /// Returns [`SimSummary::empty`] for an empty record set — callers
    /// that must treat an empty run as a failure (the campaign runner
    /// does) check emptiness *before* simulating, so this path stays
    /// panic-free.
    pub fn compute(records: &[JobRecord], capacity: u32) -> SimSummary {
        // Structurally unwrap-free: the span is derived in one pass and
        // its absence (no records) yields the zero summary.
        let Some((first_submit, last_end)) = records.iter().fold(None, |acc, r| match acc {
            None => Some((r.submit, r.end)),
            Some((lo, hi)) => Some((lo.min(r.submit), hi.max(r.end))),
        }) else {
            return SimSummary::empty();
        };
        let n = records.len() as f64;
        let mut resp_sum = 0.0;
        let mut artww_num = 0.0;
        let mut artww_den = 0.0;
        let mut wait_sum = 0.0;
        let mut sld_sum = 0.0;
        let mut sldwa_num = 0.0;
        let mut sldwa_den = 0.0;
        let mut bsld_sum = 0.0;
        let mut work = 0.0;
        for r in records {
            resp_sum += r.response() as f64;
            artww_num += r.response() as f64 * r.width as f64;
            artww_den += r.width as f64;
            wait_sum += r.wait() as f64;
            sld_sum += r.slowdown();
            let area = r.area() as f64;
            sldwa_num += r.slowdown() * area;
            sldwa_den += area;
            bsld_sum += r.bounded_slowdown(10);
            work += area;
        }
        let span = (last_end - first_submit).max(1) as f64;
        SimSummary {
            jobs: records.len(),
            makespan_end: last_end,
            avg_response: resp_sum / n,
            artww: artww_num / artww_den,
            avg_wait: wait_sum / n,
            avg_slowdown: sld_sum / n,
            sldwa: if sldwa_den > 0.0 {
                sldwa_num / sldwa_den
            } else {
                0.0
            },
            avg_bounded_slowdown: bsld_sum / n,
            utilization: work / (span * capacity.max(1) as f64),
        }
    }
}

impl std::fmt::Display for SimSummary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "jobs:          {}", self.jobs)?;
        writeln!(f, "avg response:  {:.1} s", self.avg_response)?;
        writeln!(f, "ARTwW:         {:.1} s", self.artww)?;
        writeln!(f, "avg wait:      {:.1} s", self.avg_wait)?;
        writeln!(f, "avg slowdown:  {:.2}", self.avg_slowdown)?;
        writeln!(f, "SLDwA:         {:.2}", self.sldwa)?;
        writeln!(f, "bounded sld:   {:.2}", self.avg_bounded_slowdown)?;
        write!(f, "utilization:   {:.1}%", self.utilization * 100.0)
    }
}

/// Machine utilization over time as a step function: fraction of
/// `capacity` busy between consecutive job start/end events. Useful for
/// plotting load timelines of a finished run.
pub fn utilization_timeline(records: &[JobRecord], capacity: u32) -> Vec<(u64, f64)> {
    if records.is_empty() || capacity == 0 {
        return Vec::new();
    }
    let mut events: Vec<(u64, i64)> = Vec::with_capacity(records.len() * 2);
    for r in records {
        events.push((r.start, r.width as i64));
        events.push((r.end, -(r.width as i64)));
    }
    events.sort_unstable();
    let mut timeline = Vec::new();
    let mut busy = 0i64;
    let mut i = 0;
    while i < events.len() {
        let t = events[i].0;
        while i < events.len() && events[i].0 == t {
            busy += events[i].1;
            i += 1;
        }
        timeline.push((t, busy as f64 / capacity as f64));
    }
    timeline
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(id: u32, submit: u64, start: u64, end: u64, width: u32) -> JobRecord {
        JobRecord {
            id: JobId(id),
            submit,
            start,
            end,
            width,
            estimated_duration: end - start,
        }
    }

    #[test]
    fn record_derived_quantities() {
        let r = rec(1, 100, 150, 250, 4);
        assert_eq!(r.wait(), 50);
        assert_eq!(r.response(), 150);
        assert_eq!(r.runtime(), 100);
        assert!((r.slowdown() - 1.5).abs() < 1e-12);
        assert_eq!(r.area(), 400);
    }

    #[test]
    fn bounded_slowdown_floors_short_jobs() {
        // 1-second job waiting 100 s: raw slowdown 101, bounded (tau=10)
        // uses max(runtime, 10) in the denominator.
        let r = rec(1, 0, 100, 101, 1);
        assert!(r.slowdown() > 100.0);
        assert!((r.bounded_slowdown(10) - 10.1).abs() < 1e-9);
        // Bounded slowdown never drops below 1.
        let idle = rec(2, 0, 0, 5, 1);
        assert_eq!(idle.bounded_slowdown(10), 1.0);
    }

    #[test]
    fn summary_single_job() {
        let s = SimSummary::compute(&[rec(1, 0, 50, 150, 2)], 4);
        assert_eq!(s.jobs, 1);
        assert_eq!(s.avg_response, 150.0);
        assert_eq!(s.artww, 150.0);
        assert_eq!(s.avg_wait, 50.0);
        assert!((s.avg_slowdown - 1.5).abs() < 1e-12);
        // work = 2*100 = 200; span = 150; capacity 4 -> 200/600.
        assert!((s.utilization - 200.0 / 600.0).abs() < 1e-12);
    }

    #[test]
    fn artww_weights_wide_jobs_heavier() {
        let records = vec![rec(1, 0, 0, 100, 1), rec(2, 0, 100, 300, 3)];
        let s = SimSummary::compute(&records, 4);
        // responses: 100 (w1), 300 (w3) -> ARTwW = (100 + 900)/4 = 250.
        assert_eq!(s.artww, 250.0);
        assert_eq!(s.avg_response, 200.0);
    }

    #[test]
    fn sldwa_weights_by_actual_area() {
        let records = vec![rec(1, 0, 0, 100, 2), rec(2, 0, 100, 400, 2)];
        let s = SimSummary::compute(&records, 4);
        // job1: sld 1, area 200. job2: response 400, runtime 300 -> sld
        // 4/3, area 600.
        let expect = (1.0 * 200.0 + (4.0 / 3.0) * 600.0) / 800.0;
        assert!((s.sldwa - expect).abs() < 1e-12);
    }

    #[test]
    fn empty_summary_is_zero() {
        let s = SimSummary::compute(&[], 16);
        assert_eq!(s.jobs, 0);
        assert_eq!(s.utilization, 0.0);
    }

    #[test]
    fn utilization_timeline_steps_through_events() {
        let records = vec![rec(1, 0, 0, 100, 2), rec(2, 0, 50, 150, 2)];
        let tl = utilization_timeline(&records, 4);
        assert_eq!(tl, vec![(0, 0.5), (50, 1.0), (100, 0.5), (150, 0.0),]);
    }

    #[test]
    fn utilization_timeline_empty_and_zero_capacity() {
        assert!(utilization_timeline(&[], 4).is_empty());
        assert!(utilization_timeline(&[rec(1, 0, 0, 10, 1)], 0).is_empty());
    }

    #[test]
    fn display_is_humane() {
        let s = SimSummary::compute(&[rec(1, 0, 0, 100, 1)], 4);
        let text = format!("{s}");
        assert!(text.contains("jobs:"));
        assert!(text.contains("utilization:"));
    }
}
