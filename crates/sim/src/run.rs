//! High-level trace replay: one call from a job list to a finished run.

use crate::record::{JobRecord, SimSummary};
use crate::rms::{Rms, RmsEvent};
use crate::snapshots::{SnapshotFilter, SnapshotLog, TunedSnapshot};
use dynp_core::PolicySelector;
use dynp_des::{run_to_completion, EventQueue};
use dynp_sched::Policy;
use dynp_trace::Job;

/// Configuration of one simulation run.
///
/// Construct with [`SimConfig::new`] (or [`SimConfig::default`] for the
/// paper's 430-node CTC machine) and refine with the `with_*` builders.
/// The struct is `#[non_exhaustive]` so new knobs — the experiment
/// campaign runner grows them regularly — are not breaking changes.
#[derive(Clone, Copy, Debug)]
#[non_exhaustive]
pub struct SimConfig {
    /// Machine size in resources (CTC: 430).
    pub machine_size: u32,
    /// Run a self-tuning step on completions too (the paper tunes on
    /// submissions only).
    pub tune_on_finish: bool,
    /// Collect quasi-off-line snapshots matching this filter.
    pub snapshots: Option<SnapshotFilter>,
}

impl Default for SimConfig {
    /// The paper's machine: 430 nodes, submission-only tuning, no
    /// snapshot collection.
    fn default() -> SimConfig {
        SimConfig::new(430)
    }
}

impl SimConfig {
    /// Paper-faithful configuration for a machine of `machine_size`.
    pub fn new(machine_size: u32) -> SimConfig {
        SimConfig {
            machine_size,
            tune_on_finish: false,
            snapshots: None,
        }
    }

    /// Enables snapshot collection.
    pub fn with_snapshots(mut self, filter: SnapshotFilter) -> SimConfig {
        self.snapshots = Some(filter);
        self
    }

    /// Also runs a self-tuning step when a job completes (the paper tunes
    /// on submissions only, so `false` is the default).
    pub fn with_tune_on_finish(mut self, tune_on_finish: bool) -> SimConfig {
        self.tune_on_finish = tune_on_finish;
        self
    }
}

/// Everything a finished run produces.
#[derive(Debug)]
pub struct SimRun<S> {
    /// Per-job completion records, in completion order.
    pub records: Vec<JobRecord>,
    /// Aggregate statistics on actual times.
    pub summary: SimSummary,
    /// `(time, policy)` at every selection point.
    pub policy_log: Vec<(u64, Policy)>,
    /// Captured quasi-off-line snapshots (empty unless configured).
    pub snapshots: Vec<TunedSnapshot>,
    /// The selector in its final state (e.g. dynP switch statistics).
    pub selector: S,
    /// Label of the selector, for tables.
    pub label: String,
    /// Jobs dropped because they were wider than the machine.
    pub skipped: Vec<Job>,
}

/// Replays `jobs` through a planning-based RMS driven by `selector`.
///
/// Jobs wider than the machine are skipped (and reported), matching how
/// trace-replay studies clean archive traces.
pub fn simulate<S: PolicySelector>(jobs: &[Job], selector: S, config: SimConfig) -> SimRun<S> {
    // Whole-run wall time, one histogram sample per replay; traced so
    // the span close event lands under the enclosing campaign cell.
    let _run_span = dynp_obs::span("sim.run");
    let label = selector.label();
    let log = match config.snapshots {
        Some(filter) => SnapshotLog::with_filter(filter),
        None => SnapshotLog::disabled(),
    };
    let mut rms =
        Rms::new(config.machine_size, selector, log).tune_on_finish(config.tune_on_finish);
    let mut queue = EventQueue::new();
    let mut skipped = Vec::new();
    for job in jobs {
        if job.width > config.machine_size {
            skipped.push(*job);
            continue;
        }
        queue.schedule(job.submit, RmsEvent::Submit(*job));
    }
    run_to_completion(&mut rms, &mut queue);
    if let Some(r) = dynp_obs::recorder() {
        r.event("sim.complete")
            .kv("selector", label.as_str())
            .kv("jobs", jobs.len() - skipped.len())
            .kv("skipped", skipped.len())
            .kv("end_time", queue.now())
            .emit();
    }
    let machine_size = rms.machine().capacity();
    let crate::rms::RmsParts { records, policy_log, snapshot_log, selector, declined } = rms.into_parts();
    // Jobs the RMS declined mid-run (none on this path — the width filter
    // above catches them first — unless a selector rejects a job for
    // another reason) join the pre-filtered ones.
    skipped.extend(declined);
    let summary = SimSummary::compute(&records, machine_size);
    SimRun {
        summary,
        policy_log,
        snapshots: snapshot_log.into_snapshots(),
        records,
        selector,
        label,
        skipped,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dynp_core::{FixedPolicy, SelfTuning};
    use dynp_sched::Metric;
    use dynp_trace::{CtcModel, WorkloadModel};

    fn small_trace(n: usize, seed: u64) -> (Vec<Job>, u32) {
        let model = CtcModel {
            nodes: 64,
            mean_interarrival: 120.0,
            ..CtcModel::default()
        };
        let t = model.generate(n, seed);
        (t.jobs, t.machine_size)
    }

    #[test]
    fn fixed_policy_run_completes_all_jobs() {
        let (jobs, size) = small_trace(100, 1);
        let run = simulate(&jobs, FixedPolicy(Policy::Fcfs), SimConfig::new(size));
        assert_eq!(run.records.len(), 100);
        assert_eq!(run.summary.jobs, 100);
        assert!(run.skipped.is_empty());
        assert!(run.summary.utilization > 0.0);
        assert_eq!(run.label, "FCFS");
    }

    #[test]
    fn dynp_run_completes_and_logs_policies() {
        let (jobs, size) = small_trace(150, 2);
        let run = simulate(
            &jobs,
            SelfTuning::paper_config(Metric::SldwA),
            SimConfig::new(size),
        );
        assert_eq!(run.records.len(), 150);
        assert_eq!(run.policy_log.len(), 150); // one per submission
        assert_eq!(run.selector.stats().steps(), 150);
        assert!(run.label.starts_with("dynP"));
    }

    #[test]
    fn dynp_actually_switches_policies_on_bursty_traces() {
        let (jobs, size) = small_trace(400, 3);
        let run = simulate(
            &jobs,
            SelfTuning::paper_config(Metric::SldwA),
            SimConfig::new(size),
        );
        assert!(
            run.selector.stats().switches() > 0,
            "dynP never switched on a bursty CTC-like trace"
        );
    }

    #[test]
    fn snapshots_are_collected_when_configured() {
        let (jobs, size) = small_trace(80, 4);
        let run = simulate(
            &jobs,
            FixedPolicy(Policy::Fcfs),
            SimConfig::new(size).with_snapshots(SnapshotFilter {
                min_jobs: 2,
                max_count: 10,
                ..SnapshotFilter::default()
            }),
        );
        assert!(!run.snapshots.is_empty());
        assert!(run.snapshots.len() <= 10);
        for s in &run.snapshots {
            assert!(s.problem.len() >= 2);
            s.problem.validate().unwrap();
        }
    }

    #[test]
    fn oversized_jobs_are_skipped_not_fatal() {
        let mut jobs = vec![Job::exact(0, 0, 4, 100)];
        jobs.push(Job::exact(1, 10, 100, 100)); // wider than machine
        let run = simulate(&jobs, FixedPolicy(Policy::Fcfs), SimConfig::new(8));
        assert_eq!(run.records.len(), 1);
        assert_eq!(run.skipped.len(), 1);
    }

    #[test]
    fn deterministic_replay() {
        let (jobs, size) = small_trace(120, 5);
        let a = simulate(
            &jobs,
            SelfTuning::paper_config(Metric::SldwA),
            SimConfig::new(size),
        );
        let b = simulate(
            &jobs,
            SelfTuning::paper_config(Metric::SldwA),
            SimConfig::new(size),
        );
        assert_eq!(a.records, b.records);
        assert_eq!(a.policy_log, b.policy_log);
    }

    #[test]
    fn policies_differ_in_outcome_on_contended_traces() {
        // Sanity: FCFS and SJF should not produce identical summaries on a
        // contended workload (they plan different orders).
        let (jobs, size) = small_trace(300, 6);
        let fcfs = simulate(&jobs, FixedPolicy(Policy::Fcfs), SimConfig::new(size));
        let sjf = simulate(&jobs, FixedPolicy(Policy::Sjf), SimConfig::new(size));
        assert_ne!(fcfs.summary, sjf.summary);
    }
}
