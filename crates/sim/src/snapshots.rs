//! Tapping the quasi-off-line snapshots the self-tuning steps produce.
//!
//! Table 1 of the paper is computed from the scheduling instances that
//! arise "at every job submission" (§4). The simulator offers every
//! instance to a [`SnapshotLog`], which filters (by queue length, stride,
//! count cap) and stores them for the off-line ILP comparison — without
//! ever feeding results back into the simulation, exactly as the paper
//! prescribes for a fair comparison.

use dynp_sched::{Policy, SchedulingProblem};

/// One captured self-tuning instance.
#[derive(Clone, Debug)]
pub struct TunedSnapshot {
    /// Index of the self-tuning step that produced this snapshot.
    pub step: usize,
    /// The quasi-off-line problem (waiting jobs + machine history + now).
    pub problem: SchedulingProblem,
    /// The policy dynP (or the fixed selector) chose at this step.
    pub chosen: Policy,
}

/// Which snapshots to keep.
#[derive(Clone, Copy, Debug)]
pub struct SnapshotFilter {
    /// Keep only snapshots with at least this many waiting jobs.
    pub min_jobs: usize,
    /// Keep only snapshots with at most this many waiting jobs (the ILP
    /// blows up beyond a few dozen, just like CPLEX did in the paper).
    pub max_jobs: usize,
    /// Keep every `stride`-th accepted snapshot (1 = all).
    pub stride: usize,
    /// Stop collecting after this many snapshots.
    pub max_count: usize,
}

impl Default for SnapshotFilter {
    fn default() -> Self {
        SnapshotFilter {
            min_jobs: 1,
            max_jobs: usize::MAX,
            stride: 1,
            max_count: usize::MAX,
        }
    }
}

/// Collects snapshots according to a filter.
#[derive(Clone, Debug, Default)]
pub struct SnapshotLog {
    filter: Option<SnapshotFilter>,
    accepted: usize,
    steps_seen: usize,
    snapshots: Vec<TunedSnapshot>,
}

impl SnapshotLog {
    /// A log that collects nothing (the default for plain simulations).
    pub fn disabled() -> SnapshotLog {
        SnapshotLog::default()
    }

    /// A log collecting snapshots matching `filter`.
    pub fn with_filter(filter: SnapshotFilter) -> SnapshotLog {
        SnapshotLog {
            filter: Some(filter),
            ..SnapshotLog::default()
        }
    }

    /// Offers a snapshot; the log decides whether to keep a clone.
    pub fn offer(&mut self, problem: &SchedulingProblem, chosen: Policy) {
        self.steps_seen += 1;
        let Some(filter) = self.filter else {
            return;
        };
        if self.snapshots.len() >= filter.max_count {
            return;
        }
        let n = problem.len();
        if n < filter.min_jobs || n > filter.max_jobs {
            return;
        }
        self.accepted += 1;
        if !(self.accepted - 1).is_multiple_of(filter.stride.max(1)) {
            return;
        }
        self.snapshots.push(TunedSnapshot {
            step: self.steps_seen - 1,
            problem: problem.clone(),
            chosen,
        });
    }

    /// The kept snapshots, in step order.
    pub fn snapshots(&self) -> &[TunedSnapshot] {
        &self.snapshots
    }

    /// Consumes the log, returning the kept snapshots.
    pub fn into_snapshots(self) -> Vec<TunedSnapshot> {
        self.snapshots
    }

    /// Total self-tuning steps observed (kept or not).
    pub fn steps_seen(&self) -> usize {
        self.steps_seen
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dynp_trace::Job;

    fn problem(n: usize) -> SchedulingProblem {
        SchedulingProblem::on_empty_machine(
            0,
            64,
            (0..n as u32).map(|i| Job::exact(i, 0, 1, 100)).collect(),
        )
    }

    #[test]
    fn disabled_log_keeps_nothing_but_counts() {
        let mut log = SnapshotLog::disabled();
        log.offer(&problem(5), Policy::Fcfs);
        assert!(log.snapshots().is_empty());
        assert_eq!(log.steps_seen(), 1);
    }

    #[test]
    fn filter_by_queue_length() {
        let mut log = SnapshotLog::with_filter(SnapshotFilter {
            min_jobs: 3,
            max_jobs: 5,
            ..SnapshotFilter::default()
        });
        for n in [1, 3, 5, 7] {
            log.offer(&problem(n), Policy::Sjf);
        }
        let lens: Vec<usize> = log.snapshots().iter().map(|s| s.problem.len()).collect();
        assert_eq!(lens, vec![3, 5]);
    }

    #[test]
    fn stride_skips_snapshots() {
        let mut log = SnapshotLog::with_filter(SnapshotFilter {
            stride: 2,
            ..SnapshotFilter::default()
        });
        for _ in 0..6 {
            log.offer(&problem(2), Policy::Fcfs);
        }
        assert_eq!(log.snapshots().len(), 3);
        // Steps 0, 2, 4 kept.
        let steps: Vec<usize> = log.snapshots().iter().map(|s| s.step).collect();
        assert_eq!(steps, vec![0, 2, 4]);
    }

    #[test]
    fn max_count_caps_collection() {
        let mut log = SnapshotLog::with_filter(SnapshotFilter {
            max_count: 2,
            ..SnapshotFilter::default()
        });
        for _ in 0..10 {
            log.offer(&problem(2), Policy::Fcfs);
        }
        assert_eq!(log.snapshots().len(), 2);
    }

    #[test]
    fn snapshot_records_step_and_policy() {
        let mut log = SnapshotLog::with_filter(SnapshotFilter::default());
        log.offer(&problem(1), Policy::Ljf);
        let s = &log.snapshots()[0];
        assert_eq!(s.step, 0);
        assert_eq!(s.chosen, Policy::Ljf);
        assert_eq!(s.problem.len(), 1);
    }
}
