//! The planning-based RMS as a discrete-event model.
//!
//! Event semantics follow CCS (§2): submissions trigger a self-tuning step
//! (snapshot → policy selection → full re-plan); completions release
//! resources and re-plan with the active policy so the plan tracks reality
//! when jobs finish earlier than estimated. Jobs are dispatched whenever
//! the freshly planned schedule says their start is "now".

use crate::record::JobRecord;
use crate::snapshots::SnapshotLog;
use dynp_core::PolicySelector;
use dynp_des::{EventQueue, Model};
use dynp_platform::Machine;
use dynp_sched::{plan, PlanError, Policy, SchedulingProblem};
use dynp_trace::{Job, JobId};
use std::collections::HashMap;

/// Events driving the RMS.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RmsEvent {
    /// A job arrives in the system.
    Submit(Job),
    /// A running job completes (its *actual* end).
    Finish(JobId),
}

/// Everything an [`Rms`] hands back after a run (see [`Rms::into_parts`]).
#[derive(Debug)]
pub struct RmsParts<S> {
    /// Completed-job records, in completion order.
    pub records: Vec<JobRecord>,
    /// `(time, policy)` at every selection point.
    pub policy_log: Vec<(u64, Policy)>,
    /// The snapshot tap.
    pub snapshot_log: SnapshotLog,
    /// The policy selector, with whatever statistics it accumulated.
    pub selector: S,
    /// Jobs refused as unplannable.
    pub declined: Vec<Job>,
}

/// The resource management system under simulation.
#[derive(Debug)]
pub struct Rms<S: PolicySelector> {
    machine: Machine,
    selector: S,
    /// Waiting queue: submitted, not yet dispatched.
    waiting: Vec<Job>,
    /// Jobs currently running, for completion bookkeeping.
    started: HashMap<JobId, Job>,
    /// Start times of running jobs.
    start_times: HashMap<JobId, u64>,
    /// Completed-job records, in completion order.
    records: Vec<JobRecord>,
    /// `(time, policy)` at every selection point.
    policy_log: Vec<(u64, Policy)>,
    /// Snapshot tap for the off-line ILP comparison.
    snapshot_log: SnapshotLog,
    /// The policy used for the most recent plan.
    active: Option<Policy>,
    /// Run a self-tuning step on completions too (extension; the paper
    /// tunes on submissions only).
    tune_on_finish: bool,
    /// Jobs refused because no planner could ever place them (wider than
    /// the machine); the malformed-input analogue of a trace filter.
    declined: Vec<Job>,
}

impl<S: PolicySelector> Rms<S> {
    /// A fresh RMS over `capacity` resources driven by `selector`.
    pub fn new(capacity: u32, selector: S, snapshot_log: SnapshotLog) -> Rms<S> {
        Rms {
            machine: Machine::new(capacity),
            selector,
            waiting: Vec::new(),
            started: HashMap::new(),
            start_times: HashMap::new(),
            records: Vec::new(),
            policy_log: Vec::new(),
            snapshot_log,
            active: None,
            tune_on_finish: false,
            declined: Vec::new(),
        }
    }

    /// Enables self-tuning on completion events as well (ablation).
    pub fn tune_on_finish(mut self, enabled: bool) -> Self {
        self.tune_on_finish = enabled;
        self
    }

    /// Completed-job records so far.
    pub fn records(&self) -> &[JobRecord] {
        &self.records
    }

    /// Policy chosen at each selection point.
    pub fn policy_log(&self) -> &[(u64, Policy)] {
        &self.policy_log
    }

    /// The snapshot tap.
    pub fn snapshot_log(&self) -> &SnapshotLog {
        &self.snapshot_log
    }

    /// The underlying machine (for capacity / utilization queries).
    pub fn machine(&self) -> &Machine {
        &self.machine
    }

    /// The policy selector (e.g. to read dynP statistics after the run).
    pub fn selector(&self) -> &S {
        &self.selector
    }

    /// Jobs refused as unplannable (see [`Rms::handle`] on `Submit`).
    pub fn declined(&self) -> &[Job] {
        &self.declined
    }

    /// Decomposes the RMS into its result parts.
    pub fn into_parts(self) -> RmsParts<S> {
        RmsParts {
            records: self.records,
            policy_log: self.policy_log,
            snapshot_log: self.snapshot_log,
            selector: self.selector,
            declined: self.declined,
        }
    }

    /// Records `job` as declined, with the error as the reason.
    fn record_declined(&mut self, job: Job, now: u64, error: &PlanError) {
        if let Some(r) = dynp_obs::recorder() {
            r.counter("sim.jobs_declined").inc();
            r.event("sim.job_declined")
                .kv("job", format!("{}", job.id))
                .kv("time", now)
                .kv("reason", error.to_string())
                .emit();
        }
        self.declined.push(job);
    }

    /// Removes the job a [`PlanError`] names from the waiting queue and
    /// records it as declined. Returns `false` if the job is not waiting
    /// (nothing to decline — the caller must not retry, or it would spin).
    fn decline(&mut self, now: u64, error: &PlanError) -> bool {
        let id = match error {
            PlanError::JobTooWide { id, .. } => *id,
            PlanError::UnknownJob { id } => *id,
        };
        let Some(idx) = self.waiting.iter().position(|j| j.id == id) else {
            return false;
        };
        let job = self.waiting.swap_remove(idx);
        self.record_declined(job, now, error);
        true
    }

    /// Re-plans the full schedule and dispatches all jobs due now.
    /// `tune` decides whether the policy selector runs a self-tuning step
    /// or the active policy is reused.
    ///
    /// A [`PlanError`] from the selector or the planner names a single
    /// unplannable job; that job is declined and planning retries with
    /// the rest of the queue — one malformed job must not kill the
    /// simulation (it used to unwind a whole campaign cell).
    fn replan(&mut self, now: u64, queue: &mut EventQueue<RmsEvent>, tune: bool) {
        loop {
            if self.waiting.is_empty() {
                return;
            }
            let problem =
                SchedulingProblem::new(now, self.machine.history(now), self.waiting.clone());
            let policy = match self.active {
                Some(active) if !tune => active,
                _ => match self.selector.select(&problem) {
                    Ok(chosen) => {
                        self.policy_log.push((now, chosen));
                        self.snapshot_log.offer(&problem, chosen);
                        chosen
                    }
                    Err(e) => {
                        if self.decline(now, &e) {
                            continue;
                        }
                        return;
                    }
                },
            };
            self.active = Some(policy);
            let schedule = match plan(&problem, policy) {
                Ok(s) => s,
                Err(e) => {
                    if self.decline(now, &e) {
                        continue;
                    }
                    return;
                }
            };
            debug_assert!(schedule.validate(&problem).is_ok());
            // Dispatch everything planned to start right now.
            for entry in schedule.entries() {
                if entry.start != now {
                    continue;
                }
                let idx = self
                    .waiting
                    .iter()
                    .position(|j| j.id == entry.id)
                    .expect("planned job is waiting");
                let job = self.waiting.swap_remove(idx);
                let actual_end = self.machine.start(&job, now);
                self.started.insert(job.id, job);
                self.start_times.insert(job.id, now);
                queue.schedule(actual_end, RmsEvent::Finish(job.id));
            }
            return;
        }
    }
}

impl<S: PolicySelector> Model for Rms<S> {
    type Event = RmsEvent;

    fn handle(&mut self, now: u64, event: RmsEvent, queue: &mut EventQueue<RmsEvent>) {
        match event {
            RmsEvent::Submit(job) => {
                debug_assert!(job.submit == now, "submit event at wrong time");
                if job.width > self.machine.capacity() {
                    // A job no planner can ever place is declined at the
                    // door (a real RMS rejects it at submission); it used
                    // to be an assert, which let one malformed job abort
                    // a whole campaign cell.
                    let error = PlanError::JobTooWide {
                        id: job.id,
                        width: job.width,
                        capacity: self.machine.capacity(),
                    };
                    self.record_declined(job, now, &error);
                    return;
                }
                self.waiting.push(job);
                // Every submission is a self-tuning step (§4: "at every job
                // submission").
                self.replan(now, queue, true);
            }
            RmsEvent::Finish(id) => {
                if self.machine.complete(id).is_err() {
                    // A duplicate (or spurious) completion releases
                    // nothing and must not corrupt the records.
                    if let Some(r) = dynp_obs::recorder() {
                        r.counter("sim.duplicate_finish").inc();
                        r.event("sim.duplicate_finish")
                            .kv("job", format!("{id}"))
                            .kv("time", now)
                            .emit();
                    }
                    return;
                }
                let job = self.started.remove(&id).expect("finished job was started");
                let start = self.start_times.remove(&id).expect("start recorded");
                self.records.push(JobRecord {
                    id,
                    submit: job.submit,
                    start,
                    end: now,
                    width: job.width,
                    estimated_duration: job.estimated_duration,
                });
                // Completions release resources; re-plan so waiting jobs
                // move forward (with the active policy unless configured to
                // tune here too).
                self.replan(now, queue, self.tune_on_finish);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dynp_core::FixedPolicy;
    use dynp_des::run_to_completion;

    fn drive(capacity: u32, jobs: Vec<Job>, policy: Policy) -> Rms<FixedPolicy> {
        let mut rms = Rms::new(capacity, FixedPolicy(policy), SnapshotLog::disabled());
        let mut queue = EventQueue::new();
        for job in jobs {
            queue.schedule(job.submit, RmsEvent::Submit(job));
        }
        run_to_completion(&mut rms, &mut queue);
        rms
    }

    #[test]
    fn single_job_runs_to_completion() {
        let rms = drive(4, vec![Job::exact(0, 10, 2, 100)], Policy::Fcfs);
        assert_eq!(rms.records().len(), 1);
        let r = rms.records()[0];
        assert_eq!(r.start, 10);
        assert_eq!(r.end, 110);
        assert_eq!(r.wait(), 0);
    }

    #[test]
    fn sequentialized_jobs_queue_up() {
        let jobs = vec![Job::exact(0, 0, 4, 100), Job::exact(1, 0, 4, 100)];
        let rms = drive(4, jobs, Policy::Fcfs);
        let mut records = rms.records().to_vec();
        records.sort_by_key(|r| r.id);
        assert_eq!(records[0].start, 0);
        assert_eq!(records[1].start, 100);
    }

    #[test]
    fn early_finish_pulls_waiting_jobs_forward() {
        // Job 0 estimates 1000 s but actually runs 100 s; job 1 must not
        // wait for the estimate.
        let jobs = vec![Job::new(0, 0, 4, 1000, 100), Job::exact(1, 0, 4, 50)];
        let rms = drive(4, jobs, Policy::Fcfs);
        let mut records = rms.records().to_vec();
        records.sort_by_key(|r| r.id);
        assert_eq!(records[0].end, 100);
        assert_eq!(records[1].start, 100);
    }

    #[test]
    fn narrow_jobs_backfill_alongside_wide_ones() {
        let jobs = vec![
            Job::exact(0, 0, 3, 100),
            Job::exact(1, 0, 4, 100), // must wait (3+4 > 4)
            Job::exact(2, 0, 1, 100), // fits alongside job 0
        ];
        let rms = drive(4, jobs, Policy::Fcfs);
        let mut records = rms.records().to_vec();
        records.sort_by_key(|r| r.id);
        assert_eq!(records[0].start, 0);
        assert_eq!(records[2].start, 0);
        assert_eq!(records[1].start, 100);
    }

    #[test]
    fn sjf_reorders_the_queue() {
        // All compete for the full machine; SJF runs short before long even
        // though the long one arrived first (both waiting when machine
        // frees).
        let jobs = vec![
            Job::exact(0, 0, 4, 100), // running first
            Job::exact(1, 1, 4, 1000),
            Job::exact(2, 2, 4, 10),
        ];
        let rms = drive(4, jobs, Policy::Sjf);
        let mut records = rms.records().to_vec();
        records.sort_by_key(|r| r.id);
        assert_eq!(records[2].start, 100); // short first
        assert_eq!(records[1].start, 110);
    }

    #[test]
    fn ljf_runs_long_jobs_first() {
        let jobs = vec![
            Job::exact(0, 0, 4, 100),
            Job::exact(1, 1, 4, 10),
            Job::exact(2, 2, 4, 1000),
        ];
        let rms = drive(4, jobs, Policy::Ljf);
        let mut records = rms.records().to_vec();
        records.sort_by_key(|r| r.id);
        assert_eq!(records[2].start, 100);
        assert_eq!(records[1].start, 1100);
    }

    #[test]
    fn policy_log_has_one_entry_per_submission() {
        let jobs: Vec<Job> = (0..5)
            .map(|i| Job::exact(i, i as u64 * 10, 1, 50))
            .collect();
        let rms = drive(4, jobs, Policy::Fcfs);
        assert_eq!(rms.policy_log().len(), 5);
    }

    #[test]
    fn all_jobs_complete_and_machine_drains() {
        let jobs: Vec<Job> = (0..30)
            .map(|i| Job::exact(i, (i as u64) * 7, 1 + i % 4, 60 + (i as u64 % 5) * 30))
            .collect();
        let rms = drive(8, jobs, Policy::Fcfs);
        assert_eq!(rms.records().len(), 30);
        assert_eq!(rms.machine().free(), 8);
        // No job starts before its submission.
        for r in rms.records() {
            assert!(r.start >= r.submit);
        }
    }

    #[test]
    fn oversized_job_is_declined_not_fatal() {
        let rms = drive(
            4,
            vec![Job::exact(0, 0, 2, 100), Job::exact(1, 5, 8, 100)],
            Policy::Fcfs,
        );
        assert_eq!(rms.records().len(), 1, "the plannable job completes");
        assert_eq!(rms.declined().len(), 1);
        assert_eq!(rms.declined()[0].id, JobId(1));
        assert_eq!(rms.machine().free(), 4);
    }

    /// A malformed job injected mid-simulation (the queue already busy)
    /// must decline alone: every other job completes as if it never
    /// arrived. This drives `Rms` directly because `simulate()` filters
    /// oversized jobs before submission.
    #[test]
    fn oversized_job_injected_mid_simulation_declines_alone() {
        let jobs = vec![
            Job::exact(0, 0, 4, 100),  // running when the bad job arrives
            Job::exact(1, 10, 9, 50),  // wider than the machine
            Job::exact(2, 20, 4, 100), // must still complete
        ];
        let rms = drive(4, jobs, Policy::Fcfs);
        assert_eq!(rms.declined().len(), 1);
        assert_eq!(rms.declined()[0].id, JobId(1));
        let mut records = rms.records().to_vec();
        records.sort_by_key(|r| r.id);
        assert_eq!(records.len(), 2);
        assert_eq!(records[0].start, 0);
        assert_eq!(records[1].start, 100, "queue drains as if job 1 never came");
    }

    /// Same injection under dynP: the self-tuning step's `PlanError`
    /// surfaces through the selector, the job declines, and the cell
    /// (here: the run) finishes.
    #[test]
    fn dynp_declines_oversized_job_injected_mid_simulation() {
        let mut rms = Rms::new(
            4,
            dynp_core::SelfTuning::paper_config(dynp_sched::Metric::SldwA),
            SnapshotLog::disabled(),
        );
        let mut queue = EventQueue::new();
        for job in [
            Job::exact(0, 0, 4, 100),
            Job::exact(1, 10, 9, 50),
            Job::exact(2, 10, 2, 60),
        ] {
            queue.schedule(job.submit, RmsEvent::Submit(job));
        }
        run_to_completion(&mut rms, &mut queue);
        assert_eq!(rms.declined().len(), 1);
        assert_eq!(rms.declined()[0].id, JobId(1));
        assert_eq!(rms.records().len(), 2);
        assert_eq!(rms.machine().free(), 4);
    }

    /// Regression: a duplicate Finish event must be ignored, not panic,
    /// and must not corrupt the machine's free count.
    #[test]
    fn duplicate_finish_event_is_ignored() {
        let mut rms = Rms::new(4, FixedPolicy(Policy::Fcfs), SnapshotLog::disabled());
        let mut queue = EventQueue::new();
        queue.schedule(0, RmsEvent::Submit(Job::exact(0, 0, 2, 50)));
        // The spurious second completion for a job the first Finish will
        // have already released.
        queue.schedule(60, RmsEvent::Finish(JobId(0)));
        run_to_completion(&mut rms, &mut queue);
        assert_eq!(rms.records().len(), 1);
        assert_eq!(rms.machine().free(), 4, "free count must not drift");
    }
}
