//! A queue-based RMS: the architecture the paper *contrasts* planning-based
//! systems with (§1/§3, following Hovestadt et al., "Queuing vs. Planning").
//!
//! Queue-based systems (EASY LoadLeveler, classic PBS) keep waiting jobs in
//! a queue and make decisions only at dispatch time:
//!
//! * [`QueueDiscipline::Plain`] — strict head-of-queue dispatch: if the
//!   head job does not fit, *nothing* starts (no backfilling),
//! * [`QueueDiscipline::EasyBackfill`] — the EASY algorithm: the head job
//!   gets a *shadow-time* reservation from the running jobs' estimated
//!   ends; any later job may start now iff it terminates (by estimate)
//!   before the shadow time, or uses no more than the nodes left over at
//!   the shadow time ("extra nodes").
//!
//! Queue order follows any [`Policy`]. Unlike the planning RMS
//! ([`crate::rms`]), a queue-based system assigns **no future start
//! times** — which is exactly why the paper's self-tuning step (it needs
//! full schedules to evaluate) and reservation admission require planning.

use crate::record::JobRecord;
use dynp_des::{EventQueue, Model};
use dynp_platform::Machine;
use dynp_sched::Policy;
use dynp_trace::{Job, JobId};
use std::collections::HashMap;

/// Dispatch rule of the queue-based RMS.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum QueueDiscipline {
    /// Strict in-order dispatch; a stuck head blocks the whole queue.
    Plain,
    /// EASY backfilling: later jobs may jump ahead iff they cannot delay
    /// the head job's shadow-time reservation.
    EasyBackfill,
}

/// Events of the queue-based RMS (same shape as the planning RMS).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum QueueEvent {
    /// A job arrives.
    Submit(Job),
    /// A running job completes.
    Finish(JobId),
}

/// The queue-based resource management system.
#[derive(Debug)]
pub struct QueueRms {
    machine: Machine,
    policy: Policy,
    discipline: QueueDiscipline,
    queue: Vec<Job>,
    started: HashMap<JobId, (Job, u64)>,
    records: Vec<JobRecord>,
    /// Count of dispatches that jumped the queue (backfills).
    backfills: usize,
}

impl QueueRms {
    /// A queue-based RMS over `capacity` resources.
    pub fn new(capacity: u32, policy: Policy, discipline: QueueDiscipline) -> QueueRms {
        QueueRms {
            machine: Machine::new(capacity),
            policy,
            discipline,
            queue: Vec::new(),
            started: HashMap::new(),
            records: Vec::new(),
            backfills: 0,
        }
    }

    /// Completed-job records so far.
    pub fn records(&self) -> &[JobRecord] {
        &self.records
    }

    /// Number of backfilled (queue-jumping) dispatches.
    pub fn backfills(&self) -> usize {
        self.backfills
    }

    /// The machine (for capacity queries).
    pub fn machine(&self) -> &Machine {
        &self.machine
    }

    /// Consumes the RMS, returning the completion records.
    pub fn into_records(self) -> Vec<JobRecord> {
        self.records
    }

    fn start_job(&mut self, job: Job, now: u64, queue: &mut EventQueue<QueueEvent>) {
        let end = self.machine.start(&job, now);
        self.started.insert(job.id, (job, now));
        queue.schedule(end, QueueEvent::Finish(job.id));
    }

    /// The EASY shadow time and extra nodes for the current head job:
    /// the earliest time the head can start given the running jobs'
    /// estimated ends, and the nodes that will still be free then beyond
    /// the head's request.
    fn shadow(&self, head: &Job, now: u64) -> (u64, u32) {
        let history = self.machine.history(now);
        let mut shadow_time = now;
        for p in history.points() {
            shadow_time = p.time;
            if p.free >= head.width {
                break;
            }
        }
        let extra = self.machine.history(now).free_at(shadow_time) - head.width;
        (shadow_time, extra)
    }

    /// Dispatches everything the discipline allows right now.
    fn dispatch(&mut self, now: u64, queue: &mut EventQueue<QueueEvent>) {
        // Queue in policy order.
        self.queue.sort_by(|a, b| self.policy.compare(a, b));
        // First, drain in-order starts.
        while let Some(head) = self.queue.first().copied() {
            if self.machine.can_start(head.width) {
                self.queue.remove(0);
                self.start_job(head, now, queue);
            } else {
                break;
            }
        }
        if self.discipline == QueueDiscipline::Plain {
            return;
        }
        // EASY backfilling behind a stuck head.
        let Some(head) = self.queue.first().copied() else {
            return;
        };
        let (mut shadow_time, mut extra) = self.shadow(&head, now);
        let mut i = 1;
        while i < self.queue.len() {
            let cand = self.queue[i];
            if !self.machine.can_start(cand.width) {
                i += 1;
                continue;
            }
            let finishes_before_shadow = now + cand.estimated_duration <= shadow_time;
            let fits_extra = cand.width <= extra;
            if finishes_before_shadow || fits_extra {
                self.queue.remove(i);
                self.start_job(cand, now, queue);
                self.backfills += 1;
                // Starting a backfill changes the running set; re-derive
                // the head's shadow reservation so later candidates are
                // admitted against the tightened conditions.
                (shadow_time, extra) = self.shadow(&head, now);
            } else {
                i += 1;
            }
        }
    }
}

impl Model for QueueRms {
    type Event = QueueEvent;

    fn handle(&mut self, now: u64, event: QueueEvent, queue: &mut EventQueue<QueueEvent>) {
        match event {
            QueueEvent::Submit(job) => {
                assert!(
                    job.width <= self.machine.capacity(),
                    "job {} wider than machine",
                    job.id
                );
                self.queue.push(job);
                self.dispatch(now, queue);
            }
            QueueEvent::Finish(id) => {
                if self.machine.complete(id).is_err() {
                    // Duplicate completion: nothing was released, so
                    // there is nothing to record or dispatch against.
                    return;
                }
                let (job, start) = self.started.remove(&id).expect("was started");
                self.records.push(JobRecord {
                    id,
                    submit: job.submit,
                    start,
                    end: now,
                    width: job.width,
                    estimated_duration: job.estimated_duration,
                });
                self.dispatch(now, queue);
            }
        }
    }
}

/// Replays `jobs` through a queue-based RMS; returns completion records
/// and the backfill count.
pub fn simulate_queue(
    jobs: &[Job],
    capacity: u32,
    policy: Policy,
    discipline: QueueDiscipline,
) -> (Vec<JobRecord>, usize) {
    let mut rms = QueueRms::new(capacity, policy, discipline);
    let mut queue = EventQueue::new();
    for job in jobs {
        if job.width <= capacity {
            queue.schedule(job.submit, QueueEvent::Submit(*job));
        }
    }
    dynp_des::run_to_completion(&mut rms, &mut queue);
    let backfills = rms.backfills();
    (rms.into_records(), backfills)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::SimSummary;
    use dynp_trace::{CtcModel, WorkloadModel};

    fn by_id(records: &[JobRecord]) -> Vec<JobRecord> {
        let mut v = records.to_vec();
        v.sort_by_key(|r| r.id);
        v
    }

    #[test]
    fn plain_queue_blocks_behind_stuck_head() {
        // Head (wide) cannot start; narrow job behind it must NOT start
        // under Plain even though it would fit.
        let jobs = vec![
            Job::exact(0, 0, 3, 100), // runs
            Job::exact(1, 1, 4, 100), // stuck head (needs 4, 1 free)
            Job::exact(2, 2, 1, 50),  // would fit, must wait
        ];
        let (records, backfills) = simulate_queue(&jobs, 4, Policy::Fcfs, QueueDiscipline::Plain);
        let r = by_id(&records);
        assert_eq!(backfills, 0);
        assert_eq!(r[1].start, 100);
        assert!(r[2].start >= 100, "plain queue must not backfill");
    }

    #[test]
    fn easy_backfills_short_narrow_jobs() {
        let jobs = vec![
            Job::exact(0, 0, 3, 100),
            Job::exact(1, 1, 4, 100), // stuck head; shadow time = 100
            Job::exact(2, 2, 1, 50),  // finishes by 52 <= 100: backfill
        ];
        let (records, backfills) =
            simulate_queue(&jobs, 4, Policy::Fcfs, QueueDiscipline::EasyBackfill);
        let r = by_id(&records);
        assert_eq!(backfills, 1);
        assert_eq!(r[2].start, 2);
        // Head starts exactly at its shadow time, undelayed.
        assert_eq!(r[1].start, 100);
    }

    #[test]
    fn easy_never_delays_the_head_job() {
        // A long narrow job must NOT backfill because it would overrun the
        // shadow time and block the head.
        let jobs = vec![
            Job::exact(0, 0, 3, 100),
            Job::exact(1, 1, 4, 100), // head, shadow 100
            Job::exact(2, 2, 1, 500), // too long to backfill
        ];
        let (records, backfills) =
            simulate_queue(&jobs, 4, Policy::Fcfs, QueueDiscipline::EasyBackfill);
        let r = by_id(&records);
        assert_eq!(backfills, 0);
        assert_eq!(r[1].start, 100, "head delayed by a backfill");
        assert_eq!(r[2].start, 200);
    }

    #[test]
    fn extra_nodes_backfill_is_allowed() {
        // Head needs 4 of 6; at shadow time 2 nodes remain extra, so a
        // width-2 job of any length may backfill.
        let jobs = vec![
            Job::exact(0, 0, 4, 100),
            Job::exact(1, 1, 4, 100),    // head; shadow 100, extra = 2
            Job::exact(2, 2, 2, 10_000), // wide enough for extras, any length
        ];
        let (records, backfills) =
            simulate_queue(&jobs, 6, Policy::Fcfs, QueueDiscipline::EasyBackfill);
        let r = by_id(&records);
        assert_eq!(backfills, 1);
        assert_eq!(r[2].start, 2);
        assert_eq!(r[1].start, 100);
    }

    #[test]
    fn easy_beats_plain_on_throughput() {
        let trace = CtcModel {
            nodes: 32,
            mean_interarrival: 60.0,
            ..CtcModel::default()
        }
        .generate(300, 11);
        let (plain, _) = simulate_queue(&trace.jobs, 32, Policy::Fcfs, QueueDiscipline::Plain);
        let (easy, backfills) =
            simulate_queue(&trace.jobs, 32, Policy::Fcfs, QueueDiscipline::EasyBackfill);
        assert!(backfills > 0);
        let s_plain = SimSummary::compute(&plain, 32);
        let s_easy = SimSummary::compute(&easy, 32);
        assert!(
            s_easy.avg_wait <= s_plain.avg_wait,
            "EASY {} should not wait longer than Plain {}",
            s_easy.avg_wait,
            s_plain.avg_wait
        );
    }

    #[test]
    fn all_jobs_complete_under_both_disciplines() {
        let trace = CtcModel {
            nodes: 16,
            mean_interarrival: 200.0,
            ..CtcModel::default()
        }
        .generate(120, 13);
        for discipline in [QueueDiscipline::Plain, QueueDiscipline::EasyBackfill] {
            let (records, _) = simulate_queue(&trace.jobs, 16, Policy::Fcfs, discipline);
            assert_eq!(records.len(), 120, "{discipline:?} dropped jobs");
            for r in &records {
                assert!(r.start >= r.submit);
            }
        }
    }

    #[test]
    fn sjf_queue_order_is_respected() {
        let jobs = vec![
            Job::exact(0, 0, 4, 100), // running
            Job::exact(1, 1, 4, 900),
            Job::exact(2, 2, 4, 50),
        ];
        let (records, _) = simulate_queue(&jobs, 4, Policy::Sjf, QueueDiscipline::Plain);
        let r = by_id(&records);
        // SJF: the short job goes first when the machine frees.
        assert_eq!(r[2].start, 100);
        assert_eq!(r[1].start, 150);
    }
}
