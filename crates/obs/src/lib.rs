//! # dynp-obs — workspace observability layer
//!
//! Std-only (zero external dependencies, by policy — CI asserts it)
//! metrics, span timing, and structured event logging for the dynp-rs
//! solver and simulator:
//!
//! * **Metrics** — atomic [`Counter`]s, [`Gauge`]s with high-water
//!   marks, and fixed-bucket base-2 [`Histogram`]s with merge support.
//! * **Spans** — RAII [`Span`] timers feeding latency histograms;
//!   near-zero cost when no global recorder is installed.
//! * **Events** — one-line JSONL records (`{"ts":…,"target":…,…}`)
//!   written to a file, an in-memory buffer, or discarded; escaping is
//!   hand-rolled in [`json`], which also ships a strict serde-free
//!   validator used by the test suite.
//!
//! The [`Recorder`] owns the metric registries and the event sink.
//! Production code uses the optional process-global recorder:
//! [`install`] one at program start (the bench binaries do), then
//! instrumented subsystems fetch handles via [`recorder`]. When nothing
//! is installed, instrumentation costs one atomic load per handle fetch
//! and nothing per loop iteration.
//!
//! ```
//! use dynp_obs::{Recorder, Sink, Span};
//!
//! let r = Recorder::new(Sink::memory());
//! r.counter("milp.nodes").add(128);
//! r.gauge("des.queue_depth").set(17);
//! {
//!     let _timer = Span::enter_with(&r, "milp.node");
//! }
//! r.event("milp.incumbent").kv("objective", 42.0).emit();
//! assert_eq!(r.events().len(), 1);
//! ```

pub mod json;
pub mod metrics;
mod recorder;

pub use json::{parse as parse_json, validate as validate_json, JsonValue};
pub use metrics::{bucket_index, bucket_lower_bound, Counter, Gauge, Histogram, HistogramSnapshot, BUCKETS};
pub use recorder::{install, recorder, EventBuilder, Recorder, Sink, Span};
