//! # dynp-obs — workspace observability layer
//!
//! Std-only (zero external dependencies, by policy — CI asserts it)
//! metrics, span timing, and structured event logging for the dynp-rs
//! solver and simulator:
//!
//! * **Metrics** — atomic [`Counter`]s, [`Gauge`]s with high-water
//!   marks, and fixed-bucket base-2 [`Histogram`]s with merge support.
//! * **Spans** — RAII [`Span`] timers feeding latency histograms;
//!   near-zero cost when no global recorder is installed.
//! * **Events** — one-line JSONL records (`{"ts":…,"target":…,…}`)
//!   written to a file, an in-memory buffer, a bounded ring, a
//!   size-rotating file set, or discarded; escaping is hand-rolled in
//!   [`json`], which also ships a strict serde-free validator used by
//!   the test suite. Every event carries a `seq` logical-clock value so
//!   interleaved multi-worker logs merge into one total order.
//! * **Trace context** — [`context`] threads
//!   `(campaign, cell, span, parent)` correlation ids through worker
//!   threads; all events emitted under an active context are tagged
//!   automatically and span ids are deterministic per cell, so the
//!   `dynp-insight` analyzer can rebuild the causal tree independent of
//!   worker count.
//! * **Exposition** — [`expo`] renders a recorder snapshot in the
//!   OpenMetrics/Prometheus text format (and strictly validates it),
//!   including sink self-diagnostics (ring drops, log rotations).
//! * **Profiling** — an opt-in hook ([`Recorder::set_profiling`])
//!   captures every closed trace-context span; [`profile`] folds the
//!   records into per-kind self times and `flamegraph.pl`-compatible
//!   collapsed stacks, checking the parent ≥ Σ children invariant on
//!   the way.
//! * **Alerts** — declarative online [`alert::Rule`]s (counter rate,
//!   gauge threshold, histogram p99 bound) evaluated on a sampling
//!   tick by an [`AlertSet`]; state transitions land in the event log.
//! * **Cancellation** — a cooperative [`CancelToken`] with an optional
//!   wall-clock deadline, installed thread-locally ([`install_cancel`])
//!   and polled from the solver's and simulator's unbounded loops via
//!   [`cancelled`]; how campaign cells get a wall-clock budget without
//!   new dependency edges.
//!
//! The [`Recorder`] owns the metric registries and the event sink.
//! Production code uses the optional process-global recorder:
//! [`install`] one at program start (the bench binaries do), then
//! instrumented subsystems fetch handles via [`recorder`]. When nothing
//! is installed, instrumentation costs one atomic load per handle fetch
//! and nothing per loop iteration. Long-lived runs hold a
//! [`FlushGuard`] (see [`flush_on_drop`]) so buffered event sinks reach
//! disk even when the run panics.
//!
//! ```
//! use dynp_obs::{Recorder, Sink, Span};
//!
//! let r = Recorder::new(Sink::memory());
//! r.counter("milp.nodes").add(128);
//! r.gauge("des.queue_depth").set(17);
//! {
//!     let _timer = Span::enter_with(&r, "milp.node");
//! }
//! r.event("milp.incumbent").kv("objective", 42.0).emit();
//! assert_eq!(r.events().len(), 1);
//! ```

pub mod alert;
pub mod cancel;
pub mod context;
pub mod expo;
pub mod json;
pub mod metrics;
pub mod profile;
mod recorder;

pub use alert::{AlertSet, Rule, RuleKind};
pub use cancel::{cancelled, install_cancel, CancelGuard, CancelToken};
pub use context::{campaign_hash, cell_span_base, enter_cell, span, CellGuard, SpanGuard, TraceContext};
pub use json::{parse as parse_json, validate as validate_json, JsonValue};
pub use metrics::{bucket_index, bucket_lower_bound, Counter, Gauge, Histogram, HistogramSnapshot, BUCKETS};
pub use profile::{profile_spans, render_folded, KindStat, Profile, SpanRec};
pub use recorder::{install, flush_on_drop, recorder, EventBuilder, FlushGuard, Recorder, Sink, SinkStats, Span};
