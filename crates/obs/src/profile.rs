//! Span-tree profiling: per-kind self-time aggregation and the
//! collapsed-stack ("folded") exporter consumed by inferno /
//! `flamegraph.pl`.
//!
//! The input is a flat list of [`SpanRec`]s — one per closed span, as
//! captured live by the recorder's profiling hook or rebuilt offline by
//! `dynp-insight` from `span` close events. Both producers feed the same
//! [`profile_spans`] fold, so the live `.folded` profile and the offline
//! report agree by construction.
//!
//! *Self time* is a span's own duration minus the summed durations of
//! its **direct** children (saturating at zero). Summing self time over
//! a stack path is what a flamegraph renders; the fold also checks the
//! parent ≥ Σ children invariant and counts violations instead of
//! silently clamping them away.
//!
//! Span ids are only unique within one cell (and one run), so records
//! are grouped by [`SpanRec::cell`] before the tree is rebuilt; spans
//! closed outside any cell form one shared free group (their ids come
//! from a process-global counter, so they never collide).

use crate::json::JsonValue;
use std::collections::BTreeMap;

/// One closed span, ready for tree reconstruction.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SpanRec {
    /// Campaign cell the span ran under; `None` for free spans.
    pub cell: Option<u64>,
    /// The span's id (deterministic inside a cell).
    pub span: u64,
    /// Enclosing span's id; `0` for a root.
    pub parent: u64,
    /// Span kind, e.g. `milp.search` or `exp.replay`.
    pub kind: String,
    /// Wall-clock duration in nanoseconds.
    pub dur_ns: u64,
}

/// Aggregate times of one span kind across a profile.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct KindStat {
    /// Spans of this kind.
    pub count: u64,
    /// Summed wall-clock duration (includes time spent in children).
    pub total_ns: u64,
    /// Summed self time (duration minus direct children).
    pub self_ns: u64,
}

/// The result of folding a set of [`SpanRec`]s.
#[derive(Clone, Debug, Default)]
pub struct Profile {
    /// Collapsed stacks: `"root;child;leaf"` → summed self time (ns).
    pub stacks: BTreeMap<String, u64>,
    /// Per-kind aggregate times.
    pub kinds: BTreeMap<String, KindStat>,
    /// Spans that had at least one child (parents whose invariant was
    /// checked).
    pub parents_checked: u64,
    /// Parents whose direct children's durations sum past their own.
    pub violations: u64,
    /// Spans whose non-zero parent was missing from the record set
    /// (dropped by a bounded sink, or an incomplete log); they are
    /// folded as stack roots rather than discarded.
    pub orphans: u64,
}

impl Profile {
    /// Folds `other` into `self` (stack and kind tables add up, the
    /// invariant counters accumulate). Used to combine per-run profiles
    /// whose deterministic span ids would collide in a single fold.
    pub fn merge(&mut self, other: &Profile) {
        for (stack, ns) in &other.stacks {
            *self.stacks.entry(stack.clone()).or_insert(0) += ns;
        }
        for (kind, stat) in &other.kinds {
            let slot = self.kinds.entry(kind.clone()).or_default();
            slot.count += stat.count;
            slot.total_ns += stat.total_ns;
            slot.self_ns += stat.self_ns;
        }
        self.parents_checked += other.parents_checked;
        self.violations += other.violations;
        self.orphans += other.orphans;
    }
}

/// Maximum stack depth folded into a path; deeper chains (only possible
/// with a cyclic or corrupt parent graph) are cut off at the top.
const MAX_STACK_DEPTH: usize = 128;

/// Rebuilds the span trees from `records` (grouped by cell) and folds
/// them into collapsed stacks, per-kind self times, and the parent ≥
/// Σ children reconciliation counters.
pub fn profile_spans(records: &[SpanRec]) -> Profile {
    let mut groups: BTreeMap<Option<u64>, Vec<&SpanRec>> = BTreeMap::new();
    for rec in records {
        groups.entry(rec.cell).or_default().push(rec);
    }
    let mut profile = Profile::default();
    for group in groups.values() {
        fold_group(group, &mut profile);
    }
    profile
}

fn fold_group(group: &[&SpanRec], profile: &mut Profile) {
    // Last close wins on a duplicated id (cannot happen in well-formed
    // logs; analyzer inputs are untrusted).
    let mut by_id: BTreeMap<u64, &SpanRec> = BTreeMap::new();
    for rec in group {
        by_id.insert(rec.span, rec);
    }
    let mut child_sums: BTreeMap<u64, u64> = BTreeMap::new();
    for rec in by_id.values() {
        if rec.parent != 0 {
            if by_id.contains_key(&rec.parent) {
                *child_sums.entry(rec.parent).or_insert(0) += rec.dur_ns;
            } else {
                profile.orphans += 1;
            }
        }
    }
    for (parent, sum) in &child_sums {
        profile.parents_checked += 1;
        if *sum > by_id[parent].dur_ns {
            profile.violations += 1;
        }
    }
    for rec in by_id.values() {
        let self_ns = rec
            .dur_ns
            .saturating_sub(child_sums.get(&rec.span).copied().unwrap_or(0));
        let stat = profile.kinds.entry(rec.kind.clone()).or_default();
        stat.count += 1;
        stat.total_ns += rec.dur_ns;
        stat.self_ns += self_ns;
        *profile.stacks.entry(stack_path(rec, &by_id)).or_insert(0) += self_ns;
    }
}

/// The span's ancestry as a `root;…;self` kind path. Walks up `parent`
/// links; a missing parent truncates the path there (the span becomes a
/// root of its own stack).
fn stack_path(rec: &SpanRec, by_id: &BTreeMap<u64, &SpanRec>) -> String {
    let mut kinds: Vec<&str> = vec![&rec.kind];
    let mut cursor = rec.parent;
    while cursor != 0 && kinds.len() < MAX_STACK_DEPTH {
        let Some(parent) = by_id.get(&cursor) else {
            break;
        };
        kinds.push(&parent.kind);
        cursor = parent.parent;
    }
    kinds.reverse();
    kinds.join(";")
}

/// Renders a profile's collapsed stacks in the format `flamegraph.pl`
/// and inferno consume: one `stack;path value` line per stack, sorted,
/// values in nanoseconds of self time.
pub fn render_folded(profile: &Profile) -> String {
    let mut out = String::with_capacity(profile.stacks.len() * 48);
    for (stack, ns) in &profile.stacks {
        out.push_str(stack);
        out.push(' ');
        out.push_str(&ns.to_string());
        out.push('\n');
    }
    out
}

/// Parses a collapsed-stack file back into `stack → value`, merging
/// duplicate stacks. Blank lines are skipped; anything else malformed is
/// an error naming the line.
pub fn parse_folded(text: &str) -> Result<BTreeMap<String, u64>, String> {
    let mut stacks = BTreeMap::new();
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let (stack, value) = line
            .rsplit_once(' ')
            .ok_or_else(|| format!("line {}: no value field: {line:?}", i + 1))?;
        let value: u64 = value
            .parse()
            .map_err(|_| format!("line {}: non-integer value: {line:?}", i + 1))?;
        if stack.is_empty() {
            return Err(format!("line {}: empty stack: {line:?}", i + 1));
        }
        *stacks.entry(stack.to_string()).or_insert(0) += value;
    }
    Ok(stacks)
}

/// Serializes per-kind stats for reports: `kind → {count, total_ns,
/// self_ns}`, sorted by kind.
pub fn kinds_json(profile: &Profile) -> JsonValue {
    let mut out = JsonValue::object();
    for (kind, stat) in &profile.kinds {
        out.set(
            kind,
            JsonValue::object()
                .with("count", stat.count)
                .with("total_ns", stat.total_ns)
                .with("self_ns", stat.self_ns),
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(cell: Option<u64>, span: u64, parent: u64, kind: &str, dur_ns: u64) -> SpanRec {
        SpanRec {
            cell,
            span,
            parent,
            kind: kind.to_string(),
            dur_ns,
        }
    }

    #[test]
    fn self_time_subtracts_direct_children_only() {
        // root(100) -> a(60) -> b(25): root self 40, a self 35, b self 25.
        let records = vec![
            rec(Some(0), 1, 0, "root", 100),
            rec(Some(0), 2, 1, "a", 60),
            rec(Some(0), 3, 2, "b", 25),
        ];
        let p = profile_spans(&records);
        assert_eq!(p.kinds["root"].self_ns, 40);
        assert_eq!(p.kinds["a"].self_ns, 35);
        assert_eq!(p.kinds["b"].self_ns, 25);
        assert_eq!(p.kinds["a"].total_ns, 60);
        assert_eq!(p.parents_checked, 2);
        assert_eq!(p.violations, 0);
        assert_eq!(p.orphans, 0);
        // Stacks carry the full ancestry.
        assert_eq!(p.stacks["root"], 40);
        assert_eq!(p.stacks["root;a"], 35);
        assert_eq!(p.stacks["root;a;b"], 25);
        // Total self time equals the root's duration.
        assert_eq!(p.stacks.values().sum::<u64>(), 100);
    }

    #[test]
    fn violations_are_counted_not_clamped_away() {
        let records = vec![
            rec(Some(0), 1, 0, "root", 10),
            rec(Some(0), 2, 1, "a", 8),
            rec(Some(0), 3, 1, "b", 7),
        ];
        let p = profile_spans(&records);
        assert_eq!(p.violations, 1);
        // Self time saturates instead of going negative.
        assert_eq!(p.kinds["root"].self_ns, 0);
    }

    #[test]
    fn orphans_become_stack_roots() {
        let records = vec![rec(Some(0), 5, 99, "lost", 3)];
        let p = profile_spans(&records);
        assert_eq!(p.orphans, 1);
        assert_eq!(p.stacks["lost"], 3);
    }

    #[test]
    fn cells_are_disjoint_trees() {
        // Same span ids in two cells must not cross-link.
        let records = vec![
            rec(Some(0), 1, 0, "root", 10),
            rec(Some(1), 1, 0, "root", 20),
            rec(None, 1 << 48, 0, "free", 5),
        ];
        let p = profile_spans(&records);
        assert_eq!(p.kinds["root"].count, 2);
        assert_eq!(p.kinds["root"].total_ns, 30);
        assert_eq!(p.stacks["free"], 5);
    }

    #[test]
    fn folded_round_trips_through_the_parser() {
        let records = vec![
            rec(Some(0), 1, 0, "root", 100),
            rec(Some(0), 2, 1, "a", 60),
        ];
        let p = profile_spans(&records);
        let text = render_folded(&p);
        assert!(text.contains("root;a 60\n"));
        let parsed = parse_folded(&text).unwrap();
        assert_eq!(parsed, p.stacks);
        assert!(parse_folded("no-value-here\n").is_err());
        assert!(parse_folded(" 12\n").is_err());
        assert!(parse_folded("a;b twelve\n").is_err());
    }

    #[test]
    fn merge_accumulates_everything() {
        let a = profile_spans(&[rec(Some(0), 1, 0, "root", 10)]);
        let b = profile_spans(&[
            rec(Some(0), 1, 0, "root", 30),
            rec(Some(0), 2, 99, "lost", 1),
        ]);
        let mut merged = Profile::default();
        merged.merge(&a);
        merged.merge(&b);
        assert_eq!(merged.kinds["root"].count, 2);
        assert_eq!(merged.kinds["root"].total_ns, 40);
        assert_eq!(merged.stacks["root"], 40);
        assert_eq!(merged.orphans, 1);
    }

    #[test]
    fn kinds_json_is_sorted_and_strict() {
        let p = profile_spans(&[
            rec(Some(0), 1, 0, "b.kind", 10),
            rec(Some(0), 2, 1, "a.kind", 4),
        ]);
        let json = kinds_json(&p).to_json();
        crate::json::validate(&json).unwrap();
        assert!(json.find("a.kind").unwrap() < json.find("b.kind").unwrap());
    }
}
