//! Cooperative cancellation: a shared token with an optional wall-clock
//! deadline, consulted from long-running loops.
//!
//! The campaign runner gives every cell a wall-clock budget
//! (`CampaignConfig::cell_deadline`) — the analogue of the paper's
//! observation that exact (CPLEX) solves are *unpredictable*: a cell
//! that should take seconds can run for hours. Killing the thread is
//! not an option (no safe preemption in Rust, and the worker holds
//! checkpoint state), so the budget is enforced cooperatively: the
//! worker installs a [`CancelToken`] for the duration of the cell, and
//! the three unbounded loops down the stack — the milp branch-and-bound
//! node loop, the simplex iteration loop, and the DES event loop — poll
//! [`cancelled`] and wind down early when the deadline has passed.
//!
//! This module lives in `dynp-obs` for the same reason the trace
//! context does: it is the one zero-dependency crate every layer
//! already links, so the token can cross the exp → sim → des → milp
//! stack without new edges. Like the context, the installed token is
//! **thread-local** — a campaign cell runs entirely on one worker
//! thread, so installing at the cell boundary covers everything the
//! cell calls.
//!
//! Cost model: [`cancelled`] with no token installed is one
//! thread-local read (the common case for library users — measured in
//! the `obs_cancel` bench group); with a token it adds one atomic load,
//! plus one `Instant::now()` while an un-expired deadline is still
//! being watched. Once tripped, the flag is latched and later checks
//! are atomic-load cheap. Hot loops amortize further by polling every
//! N iterations.

use std::cell::RefCell;
use std::marker::PhantomData;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

#[derive(Debug)]
struct Inner {
    /// Latched once cancelled — by [`CancelToken::cancel`] or by the
    /// deadline check — so repeat polls never re-read the clock.
    cancelled: AtomicBool,
    /// Absolute wall-clock cutoff, if this token carries a budget.
    deadline: Option<Instant>,
}

/// A cloneable cancellation token; all clones share one flag.
///
/// Create one with [`CancelToken::new`] (manual cancellation only) or
/// [`CancelToken::with_deadline`] (auto-cancels once the wall-clock
/// budget elapses), keep a clone to observe, and [`install_cancel`] another
/// for the code being bounded.
#[derive(Clone, Debug)]
pub struct CancelToken {
    inner: Arc<Inner>,
}

impl CancelToken {
    /// A token that only cancels when [`CancelToken::cancel`] is called.
    pub fn new() -> CancelToken {
        CancelToken {
            inner: Arc::new(Inner {
                cancelled: AtomicBool::new(false),
                deadline: None,
            }),
        }
    }

    /// A token that auto-cancels `budget` from now (and can still be
    /// cancelled earlier by hand).
    pub fn with_deadline(budget: Duration) -> CancelToken {
        CancelToken {
            inner: Arc::new(Inner {
                cancelled: AtomicBool::new(false),
                deadline: Some(Instant::now() + budget),
            }),
        }
    }

    /// Cancels the token; every clone observes it immediately.
    pub fn cancel(&self) {
        self.inner.cancelled.store(true, Ordering::Relaxed);
    }

    /// Whether the token is cancelled (manually, or past its deadline).
    pub fn is_cancelled(&self) -> bool {
        if self.inner.cancelled.load(Ordering::Relaxed) {
            return true;
        }
        match self.inner.deadline {
            Some(deadline) if Instant::now() >= deadline => {
                // Latch, so later polls skip the clock read.
                self.inner.cancelled.store(true, Ordering::Relaxed);
                true
            }
            _ => false,
        }
    }
}

impl Default for CancelToken {
    fn default() -> CancelToken {
        CancelToken::new()
    }
}

thread_local! {
    /// Installed tokens, innermost last (nesting mirrors the context
    /// stack: a campaign cell installs one, and a test or library user
    /// may install a tighter one inside).
    static INSTALLED: RefCell<Vec<CancelToken>> = const { RefCell::new(Vec::new()) };
}

/// Installs `token` as this thread's active cancellation token until
/// the returned guard drops (restoring the previously installed one,
/// if any).
pub fn install_cancel(token: &CancelToken) -> CancelGuard {
    INSTALLED.with(|s| s.borrow_mut().push(token.clone()));
    CancelGuard {
        _not_send: PhantomData,
    }
}

/// Whether the innermost installed token on this thread is cancelled.
///
/// With no token installed this is a single thread-local read returning
/// `false` — cheap enough for per-event and per-node polling (see the
/// `obs_cancel` bench group).
pub fn cancelled() -> bool {
    INSTALLED.with(|s| match s.borrow().last() {
        Some(token) => token.is_cancelled(),
        None => false,
    })
}

/// RAII guard of an installed token; see [`install_cancel`].
#[must_use = "the token stays installed until the guard drops; binding it to _ uninstalls immediately"]
#[derive(Debug)]
pub struct CancelGuard {
    _not_send: PhantomData<*const ()>,
}

impl Drop for CancelGuard {
    fn drop(&mut self) {
        INSTALLED.with(|s| {
            s.borrow_mut().pop();
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_token_means_not_cancelled() {
        assert!(!cancelled());
    }

    #[test]
    fn manual_cancel_propagates_to_clones_and_installs() {
        let token = CancelToken::new();
        let observer = token.clone();
        let _guard = install_cancel(&token);
        assert!(!cancelled());
        observer.cancel();
        assert!(token.is_cancelled());
        assert!(cancelled());
    }

    #[test]
    fn deadline_trips_and_latches() {
        let token = CancelToken::with_deadline(Duration::from_millis(0));
        // A zero budget is already expired.
        assert!(token.is_cancelled());
        assert!(token.is_cancelled(), "stays cancelled once latched");
        let generous = CancelToken::with_deadline(Duration::from_secs(3600));
        assert!(!generous.is_cancelled());
    }

    #[test]
    fn guard_restores_the_previous_token() {
        let outer = CancelToken::new();
        let inner = CancelToken::new();
        let _outer_guard = install_cancel(&outer);
        {
            let _inner_guard = install_cancel(&inner);
            inner.cancel();
            assert!(cancelled(), "innermost token governs");
        }
        assert!(!cancelled(), "outer token is intact after the guard drops");
        outer.cancel();
        assert!(cancelled());
    }

    #[test]
    fn default_is_uncancelled() {
        assert!(!CancelToken::default().is_cancelled());
    }
}
