//! Lock-free metric primitives: monotonic counters, last/max gauges, and
//! fixed-bucket base-2 histograms.
//!
//! Everything here is `&self`-updatable over atomics so instrumented hot
//! loops (the branch-and-bound node loop, the DES dispatch loop) can share
//! one `Arc` handle across threads without locking. Reads are snapshots
//! with `Relaxed` ordering — metrics are diagnostics, not synchronization.

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};

/// A monotonically increasing event counter.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// A fresh counter at zero.
    pub fn new() -> Counter {
        Counter::default()
    }

    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Current total.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A gauge tracking both the last value written and the running maximum
/// (high-water mark).
#[derive(Debug, Default)]
pub struct Gauge {
    last: AtomicI64,
    max: AtomicI64,
}

impl Gauge {
    /// A fresh gauge at zero.
    pub fn new() -> Gauge {
        Gauge::default()
    }

    /// Records `v` as the current value, updating the high-water mark.
    pub fn set(&self, v: i64) {
        self.last.store(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Shifts the current value by `delta` (e.g. ±1 around an in-flight
    /// section) and returns the new value; the high-water mark tracks
    /// the result. Unlike [`Gauge::set`], concurrent `add`s never lose
    /// updates.
    pub fn add(&self, delta: i64) -> i64 {
        let v = self.last.fetch_add(delta, Ordering::Relaxed) + delta;
        self.max.fetch_max(v, Ordering::Relaxed);
        v
    }

    /// Last value written.
    pub fn get(&self) -> i64 {
        self.last.load(Ordering::Relaxed)
    }

    /// Largest value ever written.
    pub fn high_water(&self) -> i64 {
        self.max.load(Ordering::Relaxed)
    }
}

/// Number of buckets in every [`Histogram`].
pub const BUCKETS: usize = 64;

/// A fixed-size base-2 histogram of `u64` samples.
///
/// Bucket `0` holds the value `0`; bucket `i > 0` holds values in
/// `[2^(i-1), 2^i)`, with the final bucket absorbing everything from
/// `2^62` up. The unit is caller-defined (nanoseconds for latency
/// histograms, plain counts for e.g. simplex iterations per LP solve).
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }
}

/// Bucket index a value lands in.
pub fn bucket_index(value: u64) -> usize {
    if value == 0 {
        0
    } else {
        ((64 - value.leading_zeros()) as usize).min(BUCKETS - 1)
    }
}

/// Inclusive lower bound of bucket `i`.
pub fn bucket_lower_bound(i: usize) -> u64 {
    if i == 0 {
        0
    } else {
        1u64 << (i - 1)
    }
}

impl Histogram {
    /// A fresh, empty histogram.
    pub fn new() -> Histogram {
        Histogram::default()
    }

    /// Records one sample.
    pub fn record(&self, value: u64) {
        self.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.min.fetch_min(value, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
    }

    /// Records a [`std::time::Duration`] in nanoseconds (saturating).
    pub fn record_duration(&self, d: std::time::Duration) {
        self.record(u64::try_from(d.as_nanos()).unwrap_or(u64::MAX));
    }

    /// Total number of samples recorded.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Folds every sample of `other` into `self`.
    pub fn merge(&self, other: &Histogram) {
        for (mine, theirs) in self.buckets.iter().zip(&other.buckets) {
            let n = theirs.load(Ordering::Relaxed);
            if n > 0 {
                mine.fetch_add(n, Ordering::Relaxed);
            }
        }
        self.count
            .fetch_add(other.count.load(Ordering::Relaxed), Ordering::Relaxed);
        self.sum
            .fetch_add(other.sum.load(Ordering::Relaxed), Ordering::Relaxed);
        self.min
            .fetch_min(other.min.load(Ordering::Relaxed), Ordering::Relaxed);
        self.max
            .fetch_max(other.max.load(Ordering::Relaxed), Ordering::Relaxed);
    }

    /// A point-in-time copy for reporting.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed)),
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
            min: self.min.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
        }
    }
}

/// An immutable copy of a [`Histogram`]'s state.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Per-bucket sample counts (see [`bucket_lower_bound`]).
    pub buckets: [u64; BUCKETS],
    /// Total samples.
    pub count: u64,
    /// Sum of all samples (wrapping on overflow).
    pub sum: u64,
    /// Smallest sample, `u64::MAX` when empty.
    pub min: u64,
    /// Largest sample, `0` when empty.
    pub max: u64,
}

impl HistogramSnapshot {
    /// Arithmetic mean of the samples, `None` when empty.
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum as f64 / self.count as f64)
    }

    /// Approximate value at quantile `q` in `[0, 1]`, resolved to the
    /// lower bound of the bucket containing that rank. `None` when empty.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                // Clamp to observed extremes so q=0/q=1 are exact-ish.
                return Some(bucket_lower_bound(i).clamp(self.min, self.max));
            }
        }
        Some(self.max)
    }

    /// Serializes as a JSON object for result files.
    pub fn to_json(&self) -> crate::json::JsonValue {
        use crate::json::JsonValue;
        let mut nonzero = JsonValue::array();
        for (i, &n) in self.buckets.iter().enumerate() {
            if n > 0 {
                nonzero.push(
                    JsonValue::object()
                        .with("ge", bucket_lower_bound(i))
                        .with("count", n),
                );
            }
        }
        JsonValue::object()
            .with("count", self.count)
            .with("sum", self.sum)
            .with("min", if self.count > 0 { Some(self.min) } else { None })
            .with("max", if self.count > 0 { Some(self.max) } else { None })
            .with("mean", self.mean())
            .with("p50", self.quantile(0.5))
            .with("p99", self.quantile(0.99))
            .with("buckets", nonzero)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_accumulates() {
        let c = Counter::new();
        c.inc();
        c.add(41);
        assert_eq!(c.get(), 42);
    }

    #[test]
    fn gauge_tracks_last_and_high_water() {
        let g = Gauge::new();
        g.set(5);
        g.set(9);
        g.set(3);
        assert_eq!(g.get(), 3);
        assert_eq!(g.high_water(), 9);
    }

    #[test]
    fn bucket_index_boundaries() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(u64::MAX), BUCKETS - 1);
        for i in 1..BUCKETS - 1 {
            let lo = bucket_lower_bound(i);
            assert_eq!(bucket_index(lo), i);
            assert_eq!(bucket_index(2 * lo - 1), i);
        }
    }

    #[test]
    fn histogram_records_and_snapshots() {
        let h = Histogram::new();
        for v in [0u64, 1, 1, 7, 1000] {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 5);
        assert_eq!(s.sum, 1009);
        assert_eq!(s.min, 0);
        assert_eq!(s.max, 1000);
        assert_eq!(s.mean(), Some(201.8));
        assert_eq!(s.buckets[0], 1);
        assert_eq!(s.buckets[1], 2);
        assert_eq!(s.buckets.iter().sum::<u64>(), 5);
        crate::json::validate(&s.to_json().to_json()).unwrap();
    }

    #[test]
    fn quantiles_on_empty_and_single() {
        assert_eq!(Histogram::new().snapshot().quantile(0.5), None);
        let h = Histogram::new();
        h.record(42);
        assert_eq!(h.snapshot().quantile(0.5), Some(42));
        assert_eq!(h.snapshot().quantile(1.0), Some(42));
    }

    #[test]
    fn merge_sums_everything() {
        let a = Histogram::new();
        let b = Histogram::new();
        for v in [1u64, 2, 3] {
            a.record(v);
        }
        for v in [10u64, 0] {
            b.record(v);
        }
        a.merge(&b);
        let s = a.snapshot();
        assert_eq!(s.count, 5);
        assert_eq!(s.sum, 16);
        assert_eq!(s.min, 0);
        assert_eq!(s.max, 10);
    }
}
