//! Trace-context propagation: correlating every event with the unit of
//! work that emitted it.
//!
//! A *cell* (one campaign unit: shard × selector × factor) establishes a
//! root context via [`enter_cell`]; nested stages (trace replay, exact
//! solve, B&B search, dynP decision) open child spans via [`span`]. Every
//! event emitted while a context is active — including the `span` close
//! events the guards emit themselves — automatically carries
//! `campaign`/`cell`/`span`/`parent` fields, so an offline analyzer can
//! reassemble the full causal tree from interleaved multi-worker logs.
//!
//! **Span ids are deterministic.** Inside a cell, ids are allocated from
//! a per-cell counter starting at [`cell_span_base`]`(cell)`, and a cell
//! runs on exactly one worker thread, so the id sequence depends only on
//! the work — not on the worker count or scheduling. Replaying the same
//! campaign with 1 or 8 workers produces the same `(campaign, cell,
//! span, parent)` tuples. Spans opened outside any cell draw
//! process-unique ids from a global counter (at [`FREE_SPAN_BASE`] and
//! up) instead; those are stable within a run but not across runs.
//!
//! The context lives in a thread-local stack: guards are cheap, `!Send`,
//! and strictly LIFO by RAII. When no global recorder is installed both
//! guards are inert — they never touch the clock or the thread-local.

use std::cell::RefCell;
use std::marker::PhantomData;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use crate::profile::SpanRec;
use crate::recorder::{recorder, Recorder};

/// The correlation fields stamped on events emitted under a context.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TraceContext {
    /// Campaign identity (FNV-1a of the campaign fingerprint); only
    /// meaningful when [`TraceContext::in_cell`] is set.
    pub campaign: u64,
    /// Cell index within the campaign's deterministic enumeration; only
    /// meaningful when [`TraceContext::in_cell`] is set.
    pub cell: u64,
    /// This unit's span id.
    pub span: u64,
    /// The enclosing span's id; `0` for a root.
    pub parent: u64,
    /// Whether a campaign cell context is active (spans opened outside
    /// any cell still get ids, but no campaign/cell identity).
    pub in_cell: bool,
}

struct State {
    frames: Vec<TraceContext>,
    /// Next deterministic span id; valid only while a cell is active.
    next_span: u64,
}

thread_local! {
    static STATE: RefCell<State> = const {
        RefCell::new(State { frames: Vec::new(), next_span: 0 })
    };
}

/// First span id handed to spans opened *outside* any cell. Cell-local
/// ids live below this (see [`cell_span_base`]), so the two namespaces
/// never collide.
pub const FREE_SPAN_BASE: u64 = 1 << 48;

static FREE_SPAN: AtomicU64 = AtomicU64::new(FREE_SPAN_BASE);

/// First span id of cell `cell`: ids `base..base + 2^32` belong to that
/// cell, deterministically.
pub const fn cell_span_base(cell: u64) -> u64 {
    (cell + 1) << 32
}

/// FNV-1a hash of a campaign fingerprint string, the numeric campaign
/// identity events carry (rendered as 16 hex digits).
pub fn campaign_hash(fingerprint: &str) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in fingerprint.as_bytes() {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// The innermost active context on this thread, if any.
pub fn current() -> Option<TraceContext> {
    STATE.with(|s| s.borrow().frames.last().copied())
}

/// Opens the root context of campaign cell `cell` and starts timing it.
///
/// The guard itself is the cell's root span (kind `exp.cell`): on drop it
/// records the cell's wall time into the `exp.cell` histogram and emits
/// one `span` close event. Dropping the guard restores whatever context
/// (usually none) was active before.
pub fn enter_cell(campaign: u64, cell: u64) -> CellGuard {
    let Some(r) = recorder() else {
        return CellGuard {
            state: None,
            _not_send: PhantomData,
        };
    };
    let base = cell_span_base(cell);
    let saved_next_span = STATE.with(|s| {
        let mut s = s.borrow_mut();
        s.frames.push(TraceContext {
            campaign,
            cell,
            span: base,
            parent: 0,
            in_cell: true,
        });
        std::mem::replace(&mut s.next_span, base + 1)
    });
    CellGuard {
        state: Some((r, Instant::now(), saved_next_span)),
        _not_send: PhantomData,
    }
}

/// Opens a child span of kind `kind` under the current context (or as a
/// free root span when none is active) and starts timing it.
///
/// On drop the guard records the elapsed time into the histogram named
/// `kind` — so existing span histograms (`sim.run`, `dynp.step`, …) keep
/// their names — and emits one `span` close event carrying `kind`,
/// `dur_ns`, and the correlation fields.
pub fn span(kind: &'static str) -> SpanGuard {
    let Some(r) = recorder() else {
        return SpanGuard {
            state: None,
            _not_send: PhantomData,
        };
    };
    STATE.with(|s| {
        let mut s = s.borrow_mut();
        let frame = match s.frames.last().copied() {
            Some(top) if top.in_cell => {
                let id = s.next_span;
                s.next_span += 1;
                TraceContext {
                    campaign: top.campaign,
                    cell: top.cell,
                    span: id,
                    parent: top.span,
                    in_cell: true,
                }
            }
            top => TraceContext {
                campaign: 0,
                cell: 0,
                span: FREE_SPAN.fetch_add(1, Ordering::Relaxed),
                parent: top.map(|t| t.span).unwrap_or(0),
                in_cell: false,
            },
        };
        s.frames.push(frame);
    });
    SpanGuard {
        state: Some((r, kind, Instant::now())),
        _not_send: PhantomData,
    }
}

/// Everything a closing span guard does while its frame is still on
/// the stack: emit the close event (which picks up this span's own id
/// from the thread-local context), feed the kind-named histogram, and —
/// when the recorder's profiling hook is on — capture a [`SpanRec`] for
/// collapsed-stack export. One `elapsed()` read feeds all three, so the
/// event, the histogram, and the profile agree exactly.
fn close_span(r: &Recorder, kind: &'static str, started: Instant) {
    let dur = started.elapsed();
    let dur_ns = u64::try_from(dur.as_nanos()).unwrap_or(u64::MAX);
    r.event("span").kv("kind", kind).kv("dur_ns", dur_ns).emit();
    r.histogram(kind).record_duration(dur);
    if r.profiling_enabled() {
        if let Some(ctx) = current() {
            r.record_profile(SpanRec {
                cell: ctx.in_cell.then_some(ctx.cell),
                span: ctx.span,
                parent: ctx.parent,
                kind: kind.to_string(),
                dur_ns,
            });
        }
    }
}

/// RAII guard of a cell context; see [`enter_cell`].
#[must_use = "a cell context lasts until the guard drops; binding it to _ drops immediately"]
#[derive(Debug)]
pub struct CellGuard {
    state: Option<(&'static Recorder, Instant, u64)>,
    _not_send: PhantomData<*const ()>,
}

impl Drop for CellGuard {
    fn drop(&mut self) {
        if let Some((r, started, saved_next_span)) = self.state.take() {
            close_span(r, "exp.cell", started);
            STATE.with(|s| {
                let mut s = s.borrow_mut();
                s.frames.pop();
                s.next_span = saved_next_span;
            });
        }
    }
}

/// RAII guard of a traced span; see [`span`].
#[must_use = "a span measures until dropped; binding it to _ drops immediately"]
#[derive(Debug)]
pub struct SpanGuard {
    state: Option<(&'static Recorder, &'static str, Instant)>,
    _not_send: PhantomData<*const ()>,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some((r, kind, started)) = self.state.take() {
            close_span(r, kind, started);
            STATE.with(|s| {
                s.borrow_mut().frames.pop();
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recorder::{install, Sink};
    use crate::JsonValue;
    use std::sync::{Mutex, MutexGuard};

    // The recorder is process-global; serialize tests that install one.
    static LOCK: Mutex<()> = Mutex::new(());

    fn fresh() -> (&'static Recorder, MutexGuard<'static, ()>) {
        let guard = LOCK.lock().unwrap_or_else(|e| e.into_inner());
        (install(Recorder::new(Sink::memory())), guard)
    }

    fn parsed_events(r: &Recorder) -> Vec<JsonValue> {
        r.events()
            .iter()
            .map(|l| crate::json::parse(l).unwrap())
            .collect()
    }

    fn u(v: &JsonValue, key: &str) -> u64 {
        v.get(key).and_then(JsonValue::as_u64).unwrap()
    }

    #[test]
    fn cell_context_tags_events_and_spans_deterministically() {
        let (r, _guard) = fresh();
        {
            let _cell = enter_cell(campaign_hash("fp"), 7);
            r.event("inner.note").kv("k", 1u64).emit();
            {
                let _stage = span("stage.a");
                r.event("deep.note").emit();
            }
            let _stage_b = span("stage.b");
        }
        let events = parsed_events(r);
        assert_eq!(events.len(), 5); // 2 notes + 3 span closes
        let base = cell_span_base(7);
        // Every event carries the cell identity + a span id.
        for e in &events {
            assert_eq!(u(e, "cell"), 7);
            assert_eq!(
                e.get("campaign").and_then(JsonValue::as_str).unwrap(),
                format!("{:016x}", campaign_hash("fp"))
            );
        }
        // inner.note sits on the cell root span.
        assert_eq!(u(&events[0], "span"), base);
        assert_eq!(u(&events[0], "parent"), 0);
        // deep.note sits on stage.a, a child of the root.
        assert_eq!(u(&events[1], "span"), base + 1);
        assert_eq!(u(&events[1], "parent"), base);
        // Span closes: stage.a, stage.b (next id), then the cell root.
        assert_eq!(events[2].get("kind").unwrap().as_str(), Some("stage.a"));
        assert_eq!(u(&events[2], "span"), base + 1);
        assert_eq!(events[3].get("kind").unwrap().as_str(), Some("stage.b"));
        assert_eq!(u(&events[3], "span"), base + 2);
        assert_eq!(events[4].get("kind").unwrap().as_str(), Some("exp.cell"));
        assert_eq!(u(&events[4], "span"), base);
        // Span histograms were fed under the kind names.
        assert_eq!(r.histogram("stage.a").snapshot().count, 1);
        assert_eq!(r.histogram("exp.cell").snapshot().count, 1);
    }

    #[test]
    fn span_ids_repeat_exactly_when_a_cell_is_re_entered() {
        let (r, _guard) = fresh();
        let ids = |r: &Recorder, skip: usize| -> Vec<u64> {
            r.events()
                .iter()
                .skip(skip)
                .map(|l| {
                    let v = crate::json::parse(l).unwrap();
                    u(&v, "span")
                })
                .collect()
        };
        {
            let _cell = enter_cell(1, 3);
            let _a = span("a");
            drop(_a);
            let _b = span("b");
        }
        let first = ids(r, 0);
        let n = first.len();
        {
            let _cell = enter_cell(1, 3);
            let _a = span("a");
            drop(_a);
            let _b = span("b");
        }
        let second = ids(r, n);
        assert_eq!(first, second, "re-running a cell must reuse its span ids");
    }

    #[test]
    fn free_spans_outside_cells_carry_no_cell_identity() {
        let (r, _guard) = fresh();
        {
            let _free = span("free.stage");
        }
        let events = parsed_events(r);
        assert_eq!(events.len(), 1);
        assert!(events[0].get("cell").is_none());
        assert!(events[0].get("campaign").is_none());
        assert!(u(&events[0], "span") >= FREE_SPAN_BASE);
        assert_eq!(u(&events[0], "parent"), 0);
    }

    #[test]
    fn profiling_captures_spans_agreeing_with_close_events() {
        let (r, _guard) = fresh();
        r.set_profiling(true);
        {
            let _cell = enter_cell(1, 2);
            let _a = span("stage.a");
        }
        {
            let _free = span("free.stage");
        }
        let recs = r.profile_records();
        assert_eq!(recs.len(), 3);
        let base = cell_span_base(2);
        assert_eq!(recs[0].kind, "stage.a");
        assert_eq!(recs[0].cell, Some(2));
        assert_eq!((recs[0].span, recs[0].parent), (base + 1, base));
        assert_eq!(recs[1].kind, "exp.cell");
        assert_eq!((recs[1].span, recs[1].parent), (base, 0));
        assert_eq!(recs[2].cell, None);
        assert_eq!(recs[2].parent, 0);
        // The captured durations are the emitted close events' dur_ns,
        // byte for byte — one clock read feeds both.
        let events = parsed_events(r);
        for (rec, ev) in recs.iter().zip(&events) {
            assert_eq!(u(ev, "dur_ns"), rec.dur_ns);
            assert_eq!(u(ev, "span"), rec.span);
        }
    }

    #[test]
    fn guards_are_inert_without_a_recorder() {
        // No install here: whatever recorder another test installed may be
        // live, so only check the no-recorder constructor path compiles
        // and drops cleanly.
        let guard = CellGuard {
            state: None,
            _not_send: PhantomData,
        };
        drop(guard);
        let guard = SpanGuard {
            state: None,
            _not_send: PhantomData,
        };
        drop(guard);
    }

    #[test]
    fn campaign_hash_is_stable() {
        assert_eq!(campaign_hash("abc"), campaign_hash("abc"));
        assert_ne!(campaign_hash("abc"), campaign_hash("abd"));
    }
}
