//! Online alert rules: declarative thresholds evaluated against a live
//! [`Recorder`] on a sampling tick.
//!
//! A [`Rule`] names a metric and a bound; an [`AlertSet`] owns a set of
//! rules plus their evaluation state. Each [`AlertSet::evaluate`] call
//! samples the recorder and flips rules between *ok* and *firing*;
//! every transition is appended to the event log as an `"alert"` event
//! (so `dynp-insight` sees the same history a live `/alerts` poll
//! does), and [`AlertSet::summary`] totals the firings for the
//! shutdown report.
//!
//! Three rule shapes cover the operational questions a long campaign
//! raises (rates use the recorder's own monotonic clock, so evaluation
//! frequency does not change what a rule means):
//!
//! * **counter rate** — e.g. "budget-exhaustion rate > 0.5/s";
//! * **gauge threshold** — last value or high-water mark above a bound,
//!   e.g. "open-list high-water > 100k";
//! * **histogram p99 bound** — e.g. "cell latency p99 > 60 s".

use crate::json::JsonValue;
use crate::recorder::Recorder;

/// What a [`Rule`] samples and compares.
#[derive(Clone, Debug, PartialEq)]
pub enum RuleKind {
    /// Fires while the named counter grows faster than `per_sec`
    /// (measured between consecutive evaluations; the first evaluation
    /// only primes the sample).
    CounterRate {
        /// Counter metric name, e.g. `milp.budget_exhausted`.
        counter: String,
        /// Rate bound in increments per second.
        per_sec: f64,
    },
    /// Fires while the named gauge is above `threshold`.
    GaugeAbove {
        /// Gauge metric name, e.g. `milp.open_nodes`.
        gauge: String,
        /// Exclusive bound on the sampled value.
        threshold: i64,
        /// Compare the high-water mark instead of the last value; a
        /// high-water rule never resolves by itself.
        high_water: bool,
    },
    /// Fires while the named histogram's p99 is above `threshold`
    /// (same unit as the histogram's samples — nanoseconds for span
    /// histograms).
    HistogramP99Above {
        /// Histogram metric name, e.g. `exp.cell`.
        histogram: String,
        /// Exclusive bound on the p99 sample value.
        threshold: u64,
    },
}

/// A named alert rule.
#[derive(Clone, Debug, PartialEq)]
pub struct Rule {
    /// Stable rule name: the key in `/alerts`, alert events, and the
    /// shutdown summary.
    pub name: String,
    /// The sampled condition.
    pub kind: RuleKind,
}

impl Rule {
    /// A counter-rate rule: fires while `counter` grows faster than
    /// `per_sec` increments per second.
    pub fn counter_rate(name: &str, counter: &str, per_sec: f64) -> Rule {
        Rule {
            name: name.to_string(),
            kind: RuleKind::CounterRate {
                counter: counter.to_string(),
                per_sec,
            },
        }
    }

    /// A gauge-threshold rule on the last written value.
    pub fn gauge_above(name: &str, gauge: &str, threshold: i64) -> Rule {
        Rule {
            name: name.to_string(),
            kind: RuleKind::GaugeAbove {
                gauge: gauge.to_string(),
                threshold,
                high_water: false,
            },
        }
    }

    /// A gauge-threshold rule on the high-water mark (never resolves
    /// once fired).
    pub fn high_water_above(name: &str, gauge: &str, threshold: i64) -> Rule {
        Rule {
            name: name.to_string(),
            kind: RuleKind::GaugeAbove {
                gauge: gauge.to_string(),
                threshold,
                high_water: true,
            },
        }
    }

    /// A histogram-p99 rule (nanoseconds for span histograms).
    pub fn p99_above(name: &str, histogram: &str, threshold: u64) -> Rule {
        Rule {
            name: name.to_string(),
            kind: RuleKind::HistogramP99Above {
                histogram: histogram.to_string(),
                threshold,
            },
        }
    }

    fn metric(&self) -> &str {
        match &self.kind {
            RuleKind::CounterRate { counter, .. } => counter,
            RuleKind::GaugeAbove { gauge, .. } => gauge,
            RuleKind::HistogramP99Above { histogram, .. } => histogram,
        }
    }

    fn threshold(&self) -> f64 {
        match &self.kind {
            RuleKind::CounterRate { per_sec, .. } => *per_sec,
            RuleKind::GaugeAbove { threshold, .. } => *threshold as f64,
            RuleKind::HistogramP99Above { threshold, .. } => *threshold as f64,
        }
    }
}

#[derive(Clone, Debug, Default)]
struct RuleState {
    firing: bool,
    /// ok → firing transitions observed.
    fired: u64,
    /// Last sampled value (rate, gauge value, or p99).
    value: Option<f64>,
    /// Previous `(elapsed_secs, counter)` sample for rate rules.
    prev_counter: Option<(f64, u64)>,
}

/// A rule set plus its evaluation state.
#[derive(Debug, Default)]
pub struct AlertSet {
    rules: Vec<(Rule, RuleState)>,
}

impl AlertSet {
    /// A fresh set; nothing is firing until the first
    /// [`AlertSet::evaluate`] call.
    pub fn new(rules: Vec<Rule>) -> AlertSet {
        AlertSet {
            rules: rules
                .into_iter()
                .map(|r| (r, RuleState::default()))
                .collect(),
        }
    }

    /// Number of rules.
    pub fn len(&self) -> usize {
        self.rules.len()
    }

    /// Whether the set has no rules (evaluation is then a no-op).
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }

    /// Rules currently firing.
    pub fn firing(&self) -> usize {
        self.rules.iter().filter(|(_, s)| s.firing).count()
    }

    /// Samples `recorder` and updates every rule, emitting one `alert`
    /// event per state transition. Returns how many rules *started*
    /// firing during this evaluation.
    pub fn evaluate(&mut self, recorder: &Recorder) -> usize {
        let now = recorder.elapsed_secs();
        let counters = recorder.counter_snapshots();
        let gauges = recorder.gauge_snapshots();
        let mut started = 0usize;
        for (rule, state) in &mut self.rules {
            let (value, breach) = match &rule.kind {
                RuleKind::CounterRate { counter, per_sec } => {
                    let current = counters
                        .iter()
                        .find(|(name, _)| *name == counter.as_str())
                        .map(|(_, v)| *v)
                        .unwrap_or(0);
                    let rate = state.prev_counter.and_then(|(t, v)| {
                        let dt = now - t;
                        (dt > 0.0).then(|| current.saturating_sub(v) as f64 / dt)
                    });
                    state.prev_counter = Some((now, current));
                    (rate, rate.is_some_and(|r| r > *per_sec))
                }
                RuleKind::GaugeAbove {
                    gauge,
                    threshold,
                    high_water,
                } => {
                    let sampled = gauges
                        .iter()
                        .find(|(name, ..)| *name == gauge.as_str())
                        .map(|(_, last, high)| if *high_water { *high } else { *last });
                    (
                        sampled.map(|v| v as f64),
                        sampled.is_some_and(|v| v > *threshold),
                    )
                }
                RuleKind::HistogramP99Above {
                    histogram,
                    threshold,
                } => {
                    let p99 = recorder
                        .histogram_snapshots()
                        .iter()
                        .find(|(name, _)| *name == histogram.as_str())
                        .and_then(|(_, snap)| snap.quantile(0.99));
                    (
                        p99.map(|v| v as f64),
                        p99.is_some_and(|v| v > *threshold),
                    )
                }
            };
            state.value = value;
            if breach != state.firing {
                state.firing = breach;
                if breach {
                    state.fired += 1;
                    started += 1;
                }
                recorder
                    .event("alert")
                    .kv("rule", rule.name.as_str())
                    .kv("metric", rule.metric())
                    .kv("state", if breach { "firing" } else { "resolved" })
                    .kv(
                        "value",
                        match value {
                            Some(v) => JsonValue::from(v),
                            None => JsonValue::Null,
                        },
                    )
                    .kv("threshold", rule.threshold())
                    .emit();
            }
        }
        started
    }

    /// Current state of every rule, for `GET /alerts`: name, metric,
    /// threshold, last sampled value, firing flag, and firing count.
    pub fn to_json(&self) -> JsonValue {
        let mut rules = JsonValue::array();
        for (rule, state) in &self.rules {
            rules.push(
                JsonValue::object()
                    .with("rule", rule.name.as_str())
                    .with("metric", rule.metric())
                    .with("threshold", rule.threshold())
                    .with(
                        "value",
                        match state.value {
                            Some(v) => JsonValue::from(v),
                            None => JsonValue::Null,
                        },
                    )
                    .with("firing", state.firing)
                    .with("fired", state.fired),
            );
        }
        JsonValue::object()
            .with("firing", self.firing())
            .with("rules", rules)
    }

    /// Shutdown totals: `rule → fired count`, plus how many rules were
    /// still firing at the end.
    pub fn summary(&self) -> JsonValue {
        let mut fired = JsonValue::object();
        for (rule, state) in &self.rules {
            fired.set(&rule.name, state.fired);
        }
        JsonValue::object()
            .with("rules", self.rules.len())
            .with("still_firing", self.firing())
            .with("fired", fired)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recorder::Sink;

    fn alert_events(r: &Recorder) -> Vec<String> {
        r.events()
            .into_iter()
            .filter(|l| l.contains("\"target\":\"alert\""))
            .collect()
    }

    #[test]
    fn gauge_rule_fires_and_resolves_with_transition_events() {
        let r = Recorder::new(Sink::memory());
        let mut set = AlertSet::new(vec![Rule::gauge_above("deep-queue", "q", 10)]);
        assert_eq!(set.evaluate(&r), 0, "unregistered gauge must not fire");
        r.gauge("q").set(25);
        assert_eq!(set.evaluate(&r), 1);
        assert_eq!(set.firing(), 1);
        // Still breached: no new transition, no new event.
        assert_eq!(set.evaluate(&r), 0);
        r.gauge("q").set(3);
        assert_eq!(set.evaluate(&r), 0);
        assert_eq!(set.firing(), 0);
        let events = alert_events(&r);
        assert_eq!(events.len(), 2, "one firing + one resolved: {events:?}");
        assert!(events[0].contains("\"state\":\"firing\""));
        assert!(events[0].contains("\"rule\":\"deep-queue\""));
        assert!(events[1].contains("\"state\":\"resolved\""));
        for line in &events {
            crate::json::validate(line).unwrap();
        }
    }

    #[test]
    fn high_water_rule_does_not_resolve() {
        let r = Recorder::new(Sink::memory());
        let mut set = AlertSet::new(vec![Rule::high_water_above("hw", "q", 10)]);
        r.gauge("q").set(25);
        r.gauge("q").set(1);
        set.evaluate(&r);
        set.evaluate(&r);
        assert_eq!(set.firing(), 1, "high-water stays breached");
    }

    #[test]
    fn counter_rate_needs_two_samples_and_tracks_growth() {
        let r = Recorder::new(Sink::memory());
        let mut set = AlertSet::new(vec![Rule::counter_rate("hot", "c", 0.0)]);
        r.counter("c").add(5);
        // First evaluation primes the sample; no rate yet.
        assert_eq!(set.evaluate(&r), 0);
        // Growth between samples at threshold 0/s must fire.
        r.counter("c").add(5);
        std::thread::sleep(std::time::Duration::from_millis(5));
        assert_eq!(set.evaluate(&r), 1);
        // No growth: rate 0 is not > 0, so it resolves.
        std::thread::sleep(std::time::Duration::from_millis(5));
        assert_eq!(set.evaluate(&r), 0);
        assert_eq!(set.firing(), 0);
    }

    #[test]
    fn p99_rule_samples_the_histogram() {
        let r = Recorder::new(Sink::memory());
        let mut set = AlertSet::new(vec![Rule::p99_above("slow", "lat", 1_000)]);
        r.histogram("lat").record(10);
        set.evaluate(&r);
        assert_eq!(set.firing(), 0);
        r.histogram("lat").record(1_000_000);
        set.evaluate(&r);
        assert_eq!(set.firing(), 1);
    }

    #[test]
    fn json_views_are_strict_and_complete() {
        let r = Recorder::new(Sink::memory());
        let mut set = AlertSet::new(vec![
            Rule::gauge_above("a", "g", 0),
            Rule::p99_above("b", "h", 7),
        ]);
        r.gauge("g").set(5);
        set.evaluate(&r);
        let view = set.to_json().to_json();
        crate::json::validate(&view).unwrap();
        assert!(view.contains("\"rule\":\"a\""));
        assert!(view.contains("\"firing\":true"));
        let summary = set.summary().to_json();
        crate::json::validate(&summary).unwrap();
        assert!(summary.contains("\"a\":1"));
        assert!(summary.contains("\"b\":0"));
    }
}
