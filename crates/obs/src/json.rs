//! Hand-rolled JSON: escaping, a small value builder for report files,
//! a strict serde-free parser, and a validator used by tests to check
//! that every emitted JSONL line is well-formed.
//!
//! The builder intentionally keeps object keys in insertion order so
//! result files diff cleanly across runs, and [`parse`] round-trips
//! exactly what the builder writes — the experiment campaign runner
//! relies on this to read its JSONL checkpoint records back.

use std::fmt::Write as _;

/// Appends `s` to `out` as a JSON string literal (with quotes).
pub fn escape_into(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// `s` as a JSON string literal.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    escape_into(&mut out, s);
    out
}

/// Appends a finite `f64` (JSON has no NaN/Inf; those become `null`).
pub fn number_into(out: &mut String, v: f64) {
    if v.is_finite() {
        // Shortest round-trip representation Rust offers.
        let _ = write!(out, "{v}");
        // `{}` prints integral floats without a dot; keep them valid JSON
        // numbers anyway (they are), nothing to fix.
    } else {
        out.push_str("null");
    }
}

/// A JSON document under construction. Object keys keep insertion order.
#[derive(Clone, Debug, PartialEq)]
pub enum JsonValue {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any finite number (non-finite serializes as `null`).
    Num(f64),
    /// A string.
    Str(String),
    /// An ordered array.
    Array(Vec<JsonValue>),
    /// An insertion-ordered object.
    Object(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// An empty object.
    pub fn object() -> JsonValue {
        JsonValue::Object(Vec::new())
    }

    /// An empty array.
    pub fn array() -> JsonValue {
        JsonValue::Array(Vec::new())
    }

    /// Inserts `key: value` (objects only; replaces an existing key).
    ///
    /// # Panics
    /// Panics when `self` is not an object.
    pub fn set(&mut self, key: &str, value: impl Into<JsonValue>) -> &mut JsonValue {
        let JsonValue::Object(entries) = self else {
            panic!("set() on a non-object JsonValue");
        };
        let value = value.into();
        if let Some(entry) = entries.iter_mut().find(|(k, _)| k == key) {
            entry.1 = value;
        } else {
            entries.push((key.to_string(), value));
        }
        self
    }

    /// Builder-style [`JsonValue::set`].
    pub fn with(mut self, key: &str, value: impl Into<JsonValue>) -> JsonValue {
        self.set(key, value);
        self
    }

    /// Appends to an array.
    ///
    /// # Panics
    /// Panics when `self` is not an array.
    pub fn push(&mut self, value: impl Into<JsonValue>) -> &mut JsonValue {
        let JsonValue::Array(items) = self else {
            panic!("push() on a non-array JsonValue");
        };
        items.push(value.into());
        self
    }

    /// The value under `key` (objects only; `None` otherwise or when the
    /// key is absent).
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Object(entries) => {
                entries.iter().find(|(k, _)| k == key).map(|(_, v)| v)
            }
            _ => None,
        }
    }

    /// The string payload, when this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, when this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Num(v) => Some(*v),
            _ => None,
        }
    }

    /// The numeric payload as a non-negative integer (rejects negatives,
    /// fractions, and anything beyond exact `f64` integer range).
    pub fn as_u64(&self) -> Option<u64> {
        let v = self.as_f64()?;
        (v >= 0.0 && v <= 2f64.powi(53) && v.fract() == 0.0).then_some(v as u64)
    }

    /// The boolean payload, when this is a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            JsonValue::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The items, when this is an array.
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The `(key, value)` entries in insertion order, when this is an
    /// object.
    pub fn as_object(&self) -> Option<&[(String, JsonValue)]> {
        match self {
            JsonValue::Object(entries) => Some(entries),
            _ => None,
        }
    }

    /// Serializes compactly (single line).
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        self.write_into(&mut out);
        out
    }

    /// Serializes with two-space indentation.
    pub fn to_json_pretty(&self) -> String {
        let mut out = String::new();
        self.write_pretty(&mut out, 0);
        out.push('\n');
        out
    }

    fn write_into(&self, out: &mut String) {
        match self {
            JsonValue::Null => out.push_str("null"),
            JsonValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            JsonValue::Num(v) => number_into(out, *v),
            JsonValue::Str(s) => escape_into(out, s),
            JsonValue::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write_into(out);
                }
                out.push(']');
            }
            JsonValue::Object(entries) => {
                out.push('{');
                for (i, (k, v)) in entries.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    escape_into(out, k);
                    out.push(':');
                    v.write_into(out);
                }
                out.push('}');
            }
        }
    }

    fn write_pretty(&self, out: &mut String, indent: usize) {
        let pad = "  ".repeat(indent + 1);
        match self {
            JsonValue::Array(items) if !items.is_empty() => {
                out.push_str("[\n");
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push_str(",\n");
                    }
                    out.push_str(&pad);
                    item.write_pretty(out, indent + 1);
                }
                out.push('\n');
                out.push_str(&"  ".repeat(indent));
                out.push(']');
            }
            JsonValue::Object(entries) if !entries.is_empty() => {
                out.push_str("{\n");
                for (i, (k, v)) in entries.iter().enumerate() {
                    if i > 0 {
                        out.push_str(",\n");
                    }
                    out.push_str(&pad);
                    escape_into(out, k);
                    out.push_str(": ");
                    v.write_pretty(out, indent + 1);
                }
                out.push('\n');
                out.push_str(&"  ".repeat(indent));
                out.push('}');
            }
            other => other.write_into(out),
        }
    }
}

impl From<bool> for JsonValue {
    fn from(v: bool) -> JsonValue {
        JsonValue::Bool(v)
    }
}
impl From<f64> for JsonValue {
    fn from(v: f64) -> JsonValue {
        JsonValue::Num(v)
    }
}
impl From<u64> for JsonValue {
    fn from(v: u64) -> JsonValue {
        JsonValue::Num(v as f64)
    }
}
impl From<u32> for JsonValue {
    fn from(v: u32) -> JsonValue {
        JsonValue::Num(v as f64)
    }
}
impl From<i64> for JsonValue {
    fn from(v: i64) -> JsonValue {
        JsonValue::Num(v as f64)
    }
}
impl From<usize> for JsonValue {
    fn from(v: usize) -> JsonValue {
        JsonValue::Num(v as f64)
    }
}
impl From<&str> for JsonValue {
    fn from(v: &str) -> JsonValue {
        JsonValue::Str(v.to_string())
    }
}
impl From<String> for JsonValue {
    fn from(v: String) -> JsonValue {
        JsonValue::Str(v)
    }
}
impl<T: Into<JsonValue>> From<Option<T>> for JsonValue {
    fn from(v: Option<T>) -> JsonValue {
        match v {
            Some(v) => v.into(),
            None => JsonValue::Null,
        }
    }
}
impl<T: Into<JsonValue>> From<Vec<T>> for JsonValue {
    fn from(v: Vec<T>) -> JsonValue {
        JsonValue::Array(v.into_iter().map(Into::into).collect())
    }
}

/// Parses `input` as exactly one well-formed JSON value (RFC 8259
/// grammar; numbers, strings with escapes, nesting). Errors carry the
/// byte offset of the first problem.
///
/// Duplicate object keys keep the *last* value (matching
/// [`JsonValue::set`] semantics), and `\uXXXX` escapes decode surrogate
/// pairs; an unpaired surrogate becomes U+FFFD rather than an error, so
/// any line the validator accepts also parses.
pub fn parse(input: &str) -> Result<JsonValue, String> {
    let bytes = input.as_bytes();
    let mut pos = 0usize;
    skip_ws(bytes, &mut pos);
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing data at byte {pos}"));
    }
    Ok(value)
}

/// Validates that `input` is exactly one well-formed JSON value.
/// Equivalent to [`parse`] with the value discarded.
pub fn validate(input: &str) -> Result<(), String> {
    parse(input).map(|_| ())
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    match bytes.get(*pos) {
        None => Err(format!("unexpected end of input at byte {pos}")),
        Some(b'{') => parse_object(bytes, pos),
        Some(b'[') => parse_array(bytes, pos),
        Some(b'"') => parse_string(bytes, pos).map(JsonValue::Str),
        Some(b't') => parse_literal(bytes, pos, b"true").map(|_| JsonValue::Bool(true)),
        Some(b'f') => parse_literal(bytes, pos, b"false").map(|_| JsonValue::Bool(false)),
        Some(b'n') => parse_literal(bytes, pos, b"null").map(|_| JsonValue::Null),
        Some(c) if *c == b'-' || c.is_ascii_digit() => parse_number(bytes, pos),
        Some(c) => Err(format!("unexpected byte {c:#x} at {pos}")),
    }
}

fn parse_literal(bytes: &[u8], pos: &mut usize, lit: &[u8]) -> Result<(), String> {
    if bytes[*pos..].starts_with(lit) {
        *pos += lit.len();
        Ok(())
    } else {
        Err(format!("bad literal at byte {pos}"))
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    *pos += 1; // consume '{'
    let mut object = JsonValue::object();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(object);
    }
    loop {
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b'"') {
            return Err(format!("expected object key at byte {pos}"));
        }
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b':') {
            return Err(format!("expected ':' at byte {pos}"));
        }
        *pos += 1;
        skip_ws(bytes, pos);
        let value = parse_value(bytes, pos)?;
        object.set(&key, value);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(object);
            }
            _ => return Err(format!("expected ',' or '}}' at byte {pos}")),
        }
    }
}

fn parse_array(bytes: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    *pos += 1; // consume '['
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(JsonValue::Array(items));
    }
    loop {
        skip_ws(bytes, pos);
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(JsonValue::Array(items));
            }
            _ => return Err(format!("expected ',' or ']' at byte {pos}")),
        }
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    *pos += 1; // consume '"'
    let mut out = String::new();
    let mut run_start = *pos; // unescaped byte run, copied in one go
    while let Some(&c) = bytes.get(*pos) {
        match c {
            b'"' => {
                out.push_str(str_run(bytes, run_start, *pos));
                *pos += 1;
                return Ok(out);
            }
            b'\\' => {
                out.push_str(str_run(bytes, run_start, *pos));
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'b') => out.push('\u{08}'),
                    Some(b'f') => out.push('\u{0C}'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let hi = parse_hex4(bytes, pos)?;
                        // High surrogate: try to pair with a following
                        // \uXXXX low surrogate.
                        if (0xD800..0xDC00).contains(&hi)
                            && bytes.get(*pos + 1) == Some(&b'\\')
                            && bytes.get(*pos + 2) == Some(&b'u')
                        {
                            let mut lookahead = *pos + 2;
                            let lo = parse_hex4(bytes, &mut lookahead)?;
                            if (0xDC00..0xE000).contains(&lo) {
                                *pos = lookahead;
                                let cp =
                                    0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                                out.push(
                                    char::from_u32(cp).unwrap_or(char::REPLACEMENT_CHARACTER),
                                );
                            } else {
                                out.push(char::REPLACEMENT_CHARACTER);
                            }
                        } else {
                            out.push(
                                char::from_u32(hi).unwrap_or(char::REPLACEMENT_CHARACTER),
                            );
                        }
                    }
                    _ => return Err(format!("bad escape at byte {pos}")),
                }
                *pos += 1;
                run_start = *pos;
            }
            c if c < 0x20 => return Err(format!("raw control byte {c:#x} in string at {pos}")),
            _ => *pos += 1,
        }
    }
    Err("unterminated string".to_string())
}

/// The validated-UTF-8 slice `bytes[from..to]` (input is a `&str`, and
/// runs only break at ASCII delimiters, so this cannot split a char).
fn str_run(bytes: &[u8], from: usize, to: usize) -> &str {
    std::str::from_utf8(&bytes[from..to]).expect("runs split only at ASCII bytes")
}

/// Parses the `XXXX` of a `\uXXXX` escape; `pos` points at the `u` on
/// entry and at the last hex digit on exit.
fn parse_hex4(bytes: &[u8], pos: &mut usize) -> Result<u32, String> {
    if bytes.len() < *pos + 5 || !bytes[*pos + 1..*pos + 5].iter().all(u8::is_ascii_hexdigit) {
        return Err(format!("bad \\u escape at byte {pos}"));
    }
    let hex = str_run(bytes, *pos + 1, *pos + 5);
    *pos += 4;
    u32::from_str_radix(hex, 16).map_err(|e| format!("bad \\u escape at byte {pos}: {e}"))
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    let int_digits = eat_digits(bytes, pos);
    if int_digits == 0 {
        return Err(format!("number without digits at byte {start}"));
    }
    // No leading zeros like 042.
    if int_digits > 1 && bytes[if bytes[start] == b'-' { start + 1 } else { start }] == b'0' {
        return Err(format!("leading zero in number at byte {start}"));
    }
    if bytes.get(*pos) == Some(&b'.') {
        *pos += 1;
        if eat_digits(bytes, pos) == 0 {
            return Err(format!("missing fraction digits at byte {pos}"));
        }
    }
    if matches!(bytes.get(*pos), Some(b'e' | b'E')) {
        *pos += 1;
        if matches!(bytes.get(*pos), Some(b'+' | b'-')) {
            *pos += 1;
        }
        if eat_digits(bytes, pos) == 0 {
            return Err(format!("missing exponent digits at byte {pos}"));
        }
    }
    let text = str_run(bytes, start, *pos);
    text.parse::<f64>()
        .map(JsonValue::Num)
        .map_err(|e| format!("unrepresentable number at byte {start}: {e}"))
}

fn eat_digits(bytes: &[u8], pos: &mut usize) -> usize {
    let start = *pos;
    while matches!(bytes.get(*pos), Some(c) if c.is_ascii_digit()) {
        *pos += 1;
    }
    *pos - start
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escaping_covers_specials() {
        assert_eq!(escape("plain"), "\"plain\"");
        assert_eq!(escape("a\"b\\c"), "\"a\\\"b\\\\c\"");
        assert_eq!(escape("line\nbreak\ttab"), "\"line\\nbreak\\ttab\"");
        assert_eq!(escape("\u{01}"), "\"\\u0001\"");
    }

    #[test]
    fn builder_serializes_ordered_objects() {
        let v = JsonValue::object()
            .with("b", 1u64)
            .with("a", "x")
            .with("list", vec![1u64, 2, 3])
            .with("none", JsonValue::Null)
            .with("flag", true);
        assert_eq!(
            v.to_json(),
            r#"{"b":1,"a":"x","list":[1,2,3],"none":null,"flag":true}"#
        );
        validate(&v.to_json()).unwrap();
        validate(&v.to_json_pretty()).unwrap();
    }

    #[test]
    fn set_replaces_existing_keys() {
        let mut v = JsonValue::object().with("k", 1u64);
        v.set("k", 2u64);
        assert_eq!(v.to_json(), r#"{"k":2}"#);
    }

    #[test]
    fn non_finite_numbers_become_null() {
        let v = JsonValue::array()
            .with_pushed(f64::NAN)
            .with_pushed(f64::INFINITY);
        assert_eq!(v.to_json(), "[null,null]");
        validate(&v.to_json()).unwrap();
    }

    impl JsonValue {
        fn with_pushed(mut self, v: impl Into<JsonValue>) -> JsonValue {
            self.push(v);
            self
        }
    }

    #[test]
    fn validator_accepts_valid_documents() {
        for ok in [
            "null",
            "true",
            "-12.5e+3",
            "0",
            "\"esc \\u00e9 \\n\"",
            "[]",
            "{}",
            "[1, [2, {\"k\": null}], \"s\"]",
            "{\"a\": {\"b\": [1.5, -2]}} ",
        ] {
            validate(ok).unwrap_or_else(|e| panic!("{ok:?} rejected: {e}"));
        }
    }

    #[test]
    fn parse_round_trips_builder_output() {
        let v = JsonValue::object()
            .with("b", 1u64)
            .with("a", "x\ny")
            .with("list", vec![1.5f64, -2.0, 3.0])
            .with("none", JsonValue::Null)
            .with("flag", true)
            .with("nested", JsonValue::object().with("k", 0.1f64));
        let parsed = parse(&v.to_json()).unwrap();
        assert_eq!(parsed, v);
        // Pretty output parses to the same value too.
        assert_eq!(parse(&v.to_json_pretty()).unwrap(), v);
        // And re-serializing the parse is byte-identical (key order kept,
        // shortest-round-trip numbers).
        assert_eq!(parsed.to_json(), v.to_json());
    }

    #[test]
    fn parse_decodes_escapes_and_surrogates() {
        assert_eq!(
            parse(r#""a\"b\\c\né""#).unwrap(),
            JsonValue::Str("a\"b\\c\né".to_string())
        );
        // Surrogate pair -> one astral char.
        assert_eq!(
            parse(r#""😀""#).unwrap(),
            JsonValue::Str("😀".to_string())
        );
        // Lone surrogate degrades to U+FFFD instead of erroring.
        assert_eq!(
            parse(r#""\ud83d!""#).unwrap(),
            JsonValue::Str("\u{FFFD}!".to_string())
        );
    }

    #[test]
    fn parse_keeps_last_duplicate_key() {
        let v = parse(r#"{"k": 1, "k": 2}"#).unwrap();
        assert_eq!(v.get("k").and_then(JsonValue::as_u64), Some(2));
    }

    #[test]
    fn accessors_narrow_types() {
        let v = parse(r#"{"n": 3, "f": 2.5, "s": "x", "b": false, "a": [1], "neg": -1}"#)
            .unwrap();
        assert_eq!(v.get("n").and_then(JsonValue::as_u64), Some(3));
        assert_eq!(v.get("f").and_then(JsonValue::as_f64), Some(2.5));
        assert_eq!(v.get("f").and_then(JsonValue::as_u64), None);
        assert_eq!(v.get("neg").and_then(JsonValue::as_u64), None);
        assert_eq!(v.get("s").and_then(JsonValue::as_str), Some("x"));
        assert_eq!(v.get("b").and_then(JsonValue::as_bool), Some(false));
        assert_eq!(v.get("a").and_then(JsonValue::as_array).map(<[_]>::len), Some(1));
        assert_eq!(v.get("missing"), None);
        assert_eq!(v.as_object().map(<[_]>::len), Some(6));
        assert!(JsonValue::Null.get("k").is_none());
    }

    #[test]
    fn validator_rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\" 1}",
            "{\"a\": 01}",
            "\"unterminated",
            "tru",
            "1 2",
            "{\"a\": 1,}",
            "[1] trailing",
            "\"bad \\x escape\"",
        ] {
            assert!(validate(bad).is_err(), "{bad:?} accepted");
        }
    }
}
