//! Hand-rolled JSON: escaping, a small value builder for report files,
//! and a strict serde-free validator used by tests to check that every
//! emitted JSONL line is well-formed.
//!
//! The builder intentionally keeps object keys in insertion order so
//! result files diff cleanly across runs.

use std::fmt::Write as _;

/// Appends `s` to `out` as a JSON string literal (with quotes).
pub fn escape_into(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// `s` as a JSON string literal.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    escape_into(&mut out, s);
    out
}

/// Appends a finite `f64` (JSON has no NaN/Inf; those become `null`).
pub fn number_into(out: &mut String, v: f64) {
    if v.is_finite() {
        // Shortest round-trip representation Rust offers.
        let _ = write!(out, "{v}");
        // `{}` prints integral floats without a dot; keep them valid JSON
        // numbers anyway (they are), nothing to fix.
    } else {
        out.push_str("null");
    }
}

/// A JSON document under construction. Object keys keep insertion order.
#[derive(Clone, Debug, PartialEq)]
pub enum JsonValue {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any finite number (non-finite serializes as `null`).
    Num(f64),
    /// A string.
    Str(String),
    /// An ordered array.
    Array(Vec<JsonValue>),
    /// An insertion-ordered object.
    Object(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// An empty object.
    pub fn object() -> JsonValue {
        JsonValue::Object(Vec::new())
    }

    /// An empty array.
    pub fn array() -> JsonValue {
        JsonValue::Array(Vec::new())
    }

    /// Inserts `key: value` (objects only; replaces an existing key).
    ///
    /// # Panics
    /// Panics when `self` is not an object.
    pub fn set(&mut self, key: &str, value: impl Into<JsonValue>) -> &mut JsonValue {
        let JsonValue::Object(entries) = self else {
            panic!("set() on a non-object JsonValue");
        };
        let value = value.into();
        if let Some(entry) = entries.iter_mut().find(|(k, _)| k == key) {
            entry.1 = value;
        } else {
            entries.push((key.to_string(), value));
        }
        self
    }

    /// Builder-style [`JsonValue::set`].
    pub fn with(mut self, key: &str, value: impl Into<JsonValue>) -> JsonValue {
        self.set(key, value);
        self
    }

    /// Appends to an array.
    ///
    /// # Panics
    /// Panics when `self` is not an array.
    pub fn push(&mut self, value: impl Into<JsonValue>) -> &mut JsonValue {
        let JsonValue::Array(items) = self else {
            panic!("push() on a non-array JsonValue");
        };
        items.push(value.into());
        self
    }

    /// Serializes compactly (single line).
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        self.write_into(&mut out);
        out
    }

    /// Serializes with two-space indentation.
    pub fn to_json_pretty(&self) -> String {
        let mut out = String::new();
        self.write_pretty(&mut out, 0);
        out.push('\n');
        out
    }

    fn write_into(&self, out: &mut String) {
        match self {
            JsonValue::Null => out.push_str("null"),
            JsonValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            JsonValue::Num(v) => number_into(out, *v),
            JsonValue::Str(s) => escape_into(out, s),
            JsonValue::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write_into(out);
                }
                out.push(']');
            }
            JsonValue::Object(entries) => {
                out.push('{');
                for (i, (k, v)) in entries.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    escape_into(out, k);
                    out.push(':');
                    v.write_into(out);
                }
                out.push('}');
            }
        }
    }

    fn write_pretty(&self, out: &mut String, indent: usize) {
        let pad = "  ".repeat(indent + 1);
        match self {
            JsonValue::Array(items) if !items.is_empty() => {
                out.push_str("[\n");
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push_str(",\n");
                    }
                    out.push_str(&pad);
                    item.write_pretty(out, indent + 1);
                }
                out.push('\n');
                out.push_str(&"  ".repeat(indent));
                out.push(']');
            }
            JsonValue::Object(entries) if !entries.is_empty() => {
                out.push_str("{\n");
                for (i, (k, v)) in entries.iter().enumerate() {
                    if i > 0 {
                        out.push_str(",\n");
                    }
                    out.push_str(&pad);
                    escape_into(out, k);
                    out.push_str(": ");
                    v.write_pretty(out, indent + 1);
                }
                out.push('\n');
                out.push_str(&"  ".repeat(indent));
                out.push('}');
            }
            other => other.write_into(out),
        }
    }
}

impl From<bool> for JsonValue {
    fn from(v: bool) -> JsonValue {
        JsonValue::Bool(v)
    }
}
impl From<f64> for JsonValue {
    fn from(v: f64) -> JsonValue {
        JsonValue::Num(v)
    }
}
impl From<u64> for JsonValue {
    fn from(v: u64) -> JsonValue {
        JsonValue::Num(v as f64)
    }
}
impl From<u32> for JsonValue {
    fn from(v: u32) -> JsonValue {
        JsonValue::Num(v as f64)
    }
}
impl From<i64> for JsonValue {
    fn from(v: i64) -> JsonValue {
        JsonValue::Num(v as f64)
    }
}
impl From<usize> for JsonValue {
    fn from(v: usize) -> JsonValue {
        JsonValue::Num(v as f64)
    }
}
impl From<&str> for JsonValue {
    fn from(v: &str) -> JsonValue {
        JsonValue::Str(v.to_string())
    }
}
impl From<String> for JsonValue {
    fn from(v: String) -> JsonValue {
        JsonValue::Str(v)
    }
}
impl<T: Into<JsonValue>> From<Option<T>> for JsonValue {
    fn from(v: Option<T>) -> JsonValue {
        match v {
            Some(v) => v.into(),
            None => JsonValue::Null,
        }
    }
}
impl<T: Into<JsonValue>> From<Vec<T>> for JsonValue {
    fn from(v: Vec<T>) -> JsonValue {
        JsonValue::Array(v.into_iter().map(Into::into).collect())
    }
}

/// Validates that `input` is exactly one well-formed JSON value
/// (RFC 8259 grammar; numbers, strings with escapes, nesting). Returns
/// the byte offset of the first error.
pub fn validate(input: &str) -> Result<(), String> {
    let bytes = input.as_bytes();
    let mut pos = 0usize;
    skip_ws(bytes, &mut pos);
    parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing data at byte {pos}"));
    }
    Ok(())
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<(), String> {
    match bytes.get(*pos) {
        None => Err(format!("unexpected end of input at byte {pos}")),
        Some(b'{') => parse_object(bytes, pos),
        Some(b'[') => parse_array(bytes, pos),
        Some(b'"') => parse_string(bytes, pos),
        Some(b't') => parse_literal(bytes, pos, b"true"),
        Some(b'f') => parse_literal(bytes, pos, b"false"),
        Some(b'n') => parse_literal(bytes, pos, b"null"),
        Some(c) if *c == b'-' || c.is_ascii_digit() => parse_number(bytes, pos),
        Some(c) => Err(format!("unexpected byte {c:#x} at {pos}")),
    }
}

fn parse_literal(bytes: &[u8], pos: &mut usize, lit: &[u8]) -> Result<(), String> {
    if bytes[*pos..].starts_with(lit) {
        *pos += lit.len();
        Ok(())
    } else {
        Err(format!("bad literal at byte {pos}"))
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize) -> Result<(), String> {
    *pos += 1; // consume '{'
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(());
    }
    loop {
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b'"') {
            return Err(format!("expected object key at byte {pos}"));
        }
        parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b':') {
            return Err(format!("expected ':' at byte {pos}"));
        }
        *pos += 1;
        skip_ws(bytes, pos);
        parse_value(bytes, pos)?;
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(());
            }
            _ => return Err(format!("expected ',' or '}}' at byte {pos}")),
        }
    }
}

fn parse_array(bytes: &[u8], pos: &mut usize) -> Result<(), String> {
    *pos += 1; // consume '['
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(());
    }
    loop {
        skip_ws(bytes, pos);
        parse_value(bytes, pos)?;
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(());
            }
            _ => return Err(format!("expected ',' or ']' at byte {pos}")),
        }
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<(), String> {
    *pos += 1; // consume '"'
    while let Some(&c) = bytes.get(*pos) {
        match c {
            b'"' => {
                *pos += 1;
                return Ok(());
            }
            b'\\' => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"' | b'\\' | b'/' | b'b' | b'f' | b'n' | b'r' | b't') => *pos += 1,
                    Some(b'u') => {
                        if bytes.len() < *pos + 5
                            || !bytes[*pos + 1..*pos + 5].iter().all(u8::is_ascii_hexdigit)
                        {
                            return Err(format!("bad \\u escape at byte {pos}"));
                        }
                        *pos += 5;
                    }
                    _ => return Err(format!("bad escape at byte {pos}")),
                }
            }
            c if c < 0x20 => return Err(format!("raw control byte {c:#x} in string at {pos}")),
            _ => *pos += 1,
        }
    }
    Err("unterminated string".to_string())
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<(), String> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    let int_digits = eat_digits(bytes, pos);
    if int_digits == 0 {
        return Err(format!("number without digits at byte {start}"));
    }
    // No leading zeros like 042.
    if int_digits > 1 && bytes[if bytes[start] == b'-' { start + 1 } else { start }] == b'0' {
        return Err(format!("leading zero in number at byte {start}"));
    }
    if bytes.get(*pos) == Some(&b'.') {
        *pos += 1;
        if eat_digits(bytes, pos) == 0 {
            return Err(format!("missing fraction digits at byte {pos}"));
        }
    }
    if matches!(bytes.get(*pos), Some(b'e' | b'E')) {
        *pos += 1;
        if matches!(bytes.get(*pos), Some(b'+' | b'-')) {
            *pos += 1;
        }
        if eat_digits(bytes, pos) == 0 {
            return Err(format!("missing exponent digits at byte {pos}"));
        }
    }
    Ok(())
}

fn eat_digits(bytes: &[u8], pos: &mut usize) -> usize {
    let start = *pos;
    while matches!(bytes.get(*pos), Some(c) if c.is_ascii_digit()) {
        *pos += 1;
    }
    *pos - start
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escaping_covers_specials() {
        assert_eq!(escape("plain"), "\"plain\"");
        assert_eq!(escape("a\"b\\c"), "\"a\\\"b\\\\c\"");
        assert_eq!(escape("line\nbreak\ttab"), "\"line\\nbreak\\ttab\"");
        assert_eq!(escape("\u{01}"), "\"\\u0001\"");
    }

    #[test]
    fn builder_serializes_ordered_objects() {
        let v = JsonValue::object()
            .with("b", 1u64)
            .with("a", "x")
            .with("list", vec![1u64, 2, 3])
            .with("none", JsonValue::Null)
            .with("flag", true);
        assert_eq!(
            v.to_json(),
            r#"{"b":1,"a":"x","list":[1,2,3],"none":null,"flag":true}"#
        );
        validate(&v.to_json()).unwrap();
        validate(&v.to_json_pretty()).unwrap();
    }

    #[test]
    fn set_replaces_existing_keys() {
        let mut v = JsonValue::object().with("k", 1u64);
        v.set("k", 2u64);
        assert_eq!(v.to_json(), r#"{"k":2}"#);
    }

    #[test]
    fn non_finite_numbers_become_null() {
        let v = JsonValue::array()
            .with_pushed(f64::NAN)
            .with_pushed(f64::INFINITY);
        assert_eq!(v.to_json(), "[null,null]");
        validate(&v.to_json()).unwrap();
    }

    impl JsonValue {
        fn with_pushed(mut self, v: impl Into<JsonValue>) -> JsonValue {
            self.push(v);
            self
        }
    }

    #[test]
    fn validator_accepts_valid_documents() {
        for ok in [
            "null",
            "true",
            "-12.5e+3",
            "0",
            "\"esc \\u00e9 \\n\"",
            "[]",
            "{}",
            "[1, [2, {\"k\": null}], \"s\"]",
            "{\"a\": {\"b\": [1.5, -2]}} ",
        ] {
            validate(ok).unwrap_or_else(|e| panic!("{ok:?} rejected: {e}"));
        }
    }

    #[test]
    fn validator_rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\" 1}",
            "{\"a\": 01}",
            "\"unterminated",
            "tru",
            "1 2",
            "{\"a\": 1,}",
            "[1] trailing",
            "\"bad \\x escape\"",
        ] {
            assert!(validate(bad).is_err(), "{bad:?} accepted");
        }
    }
}
