//! OpenMetrics / Prometheus text-format exposition of a [`Recorder`]'s
//! metrics, plus a strict validator used by tests and CI.
//!
//! [`render`] produces one self-contained snapshot suitable for writing
//! alongside a bench or campaign run (`<name>.metrics.txt`) or serving
//! from a `/metrics` endpoint:
//!
//! * every family is prefixed `dynp_` and the dotted metric names are
//!   sanitized (`milp.node` → `dynp_milp_node`);
//! * counters expose one `<family>_total` sample;
//! * gauges expose the last value plus a companion
//!   `<family>_highwater` gauge family;
//! * log2 histograms expose cumulative `<family>_bucket{le="…"}`
//!   samples (bucket *i* covers values up to `2^i − 1`, so those are
//!   the `le` bounds), a terminal `le="+Inf"` bucket equal to
//!   `<family>_count`, and `<family>_sum`;
//! * the exposition ends with the mandatory `# EOF` marker.
//!
//! [`validate`] re-parses an exposition and checks the structural rules
//! above (declared types, suffix discipline, cumulative buckets,
//! `+Inf == count`, terminal `# EOF`), so a malformed snapshot fails CI
//! rather than a scrape.

use crate::metrics::HistogramSnapshot;
use crate::recorder::Recorder;
use std::fmt::Write;

/// Sanitizes a dotted metric name into an OpenMetrics family name:
/// `milp.open_nodes` → `dynp_milp_open_nodes`.
pub fn family_name(metric: &str) -> String {
    let mut out = String::with_capacity(metric.len() + 5);
    out.push_str("dynp_");
    for c in metric.chars() {
        if c.is_ascii_alphanumeric() {
            out.push(c);
        } else {
            out.push('_');
        }
    }
    out
}

fn render_histogram(out: &mut String, family: &str, snap: &HistogramSnapshot) {
    let _ = writeln!(out, "# TYPE {family} histogram");
    // Highest bucket worth printing: everything above the last nonzero
    // bucket is empty, so the cumulative count is already total there.
    let top = snap
        .buckets
        .iter()
        .rposition(|&c| c != 0)
        .unwrap_or(0);
    let mut cumulative = 0u64;
    for (i, &count) in snap.buckets.iter().enumerate().take(top + 1) {
        cumulative += count;
        // Bucket i covers values ≤ 2^i − 1 (bucket 0 is exactly {0}).
        let le = if i == 0 { 0 } else { (1u64 << i) - 1 };
        let _ = writeln!(out, "{family}_bucket{{le=\"{le}\"}} {cumulative}");
    }
    let _ = writeln!(out, "{family}_bucket{{le=\"+Inf\"}} {}", snap.count);
    let _ = writeln!(out, "{family}_sum {}", snap.sum);
    let _ = writeln!(out, "{family}_count {}", snap.count);
}

/// Renders every metric registered on `recorder` as one OpenMetrics
/// text exposition, ending with `# EOF`.
pub fn render(recorder: &Recorder) -> String {
    let mut out = String::with_capacity(1024);
    for (name, value) in recorder.counter_snapshots() {
        let family = family_name(name);
        let _ = writeln!(out, "# TYPE {family} counter");
        let _ = writeln!(out, "{family}_total {value}");
    }
    for (name, last, high) in recorder.gauge_snapshots() {
        let family = family_name(name);
        let _ = writeln!(out, "# TYPE {family} gauge");
        let _ = writeln!(out, "{family} {last}");
        let _ = writeln!(out, "# TYPE {family}_highwater gauge");
        let _ = writeln!(out, "{family}_highwater {high}");
    }
    // Sink self-diagnostics: a scrape can see event loss (bounded ring)
    // or log rotation without waiting for offline analysis.
    let sink = recorder.sink_stats();
    if let Some(dropped) = sink.dropped {
        let _ = writeln!(out, "# TYPE dynp_obs_events_dropped gauge");
        let _ = writeln!(out, "dynp_obs_events_dropped {dropped}");
    }
    if let Some(rotations) = sink.rotations {
        let _ = writeln!(out, "# TYPE dynp_obs_sink_rotations gauge");
        let _ = writeln!(out, "dynp_obs_sink_rotations {rotations}");
    }
    for (name, snap) in recorder.histogram_snapshots() {
        render_histogram(&mut out, &family_name(name), &snap);
    }
    out.push_str("# EOF\n");
    out
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum FamilyType {
    Counter,
    Gauge,
    Histogram,
}

struct FamilyState {
    name: String,
    kind: FamilyType,
    samples: u32,
    last_bucket_cumulative: u64,
    bucket_count: u32,
    saw_inf: bool,
    inf_value: Option<u64>,
    count_value: Option<u64>,
}

impl FamilyState {
    fn close(&self) -> Result<(), String> {
        if self.samples == 0 {
            return Err(format!("family {} declared but has no samples", self.name));
        }
        if self.kind == FamilyType::Histogram {
            if !self.saw_inf {
                return Err(format!("histogram {} lacks an le=\"+Inf\" bucket", self.name));
            }
            match (self.inf_value, self.count_value) {
                (Some(inf), Some(count)) if inf != count => Err(format!(
                    "histogram {}: +Inf bucket {inf} != count {count}",
                    self.name
                )),
                (_, None) => Err(format!("histogram {} lacks a _count sample", self.name)),
                _ => Ok(()),
            }
        } else {
            Ok(())
        }
    }
}

fn parse_sample(line: &str) -> Result<(&str, Option<&str>, f64), String> {
    // `<name>[{le="bound"}] <value>` — the only label this exposition
    // emits is `le`.
    let (name_part, value_part) = line
        .rsplit_once(' ')
        .ok_or_else(|| format!("sample line without value: {line:?}"))?;
    let value: f64 = value_part
        .parse()
        .map_err(|_| format!("unparseable sample value in {line:?}"))?;
    // Rust's f64 parser accepts "NaN"/"inf"; neither is a value this
    // exposition ever renders, so reject rather than propagate.
    if !value.is_finite() {
        return Err(format!("non-finite sample value in {line:?}"));
    }
    if let Some((name, labels)) = name_part.split_once('{') {
        let labels = labels
            .strip_suffix('}')
            .ok_or_else(|| format!("unterminated label set in {line:?}"))?;
        let le = labels
            .strip_prefix("le=\"")
            .and_then(|rest| rest.strip_suffix('"'))
            .ok_or_else(|| format!("only le=\"…\" labels are allowed, got {labels:?}"))?;
        Ok((name, Some(le), value))
    } else {
        Ok((name_part, None, value))
    }
}

/// Validates an OpenMetrics exposition produced by [`render`]:
/// structure, type/suffix discipline, histogram cumulativity and
/// `+Inf == count`, and the terminal `# EOF`.
pub fn validate(exposition: &str) -> Result<(), String> {
    let mut current: Option<FamilyState> = None;
    let mut seen_eof = false;
    for line in exposition.lines() {
        if seen_eof {
            return Err("content after # EOF".into());
        }
        if line == "# EOF" {
            seen_eof = true;
            continue;
        }
        if let Some(decl) = line.strip_prefix("# TYPE ") {
            if let Some(f) = current.take() {
                f.close()?;
            }
            let (name, kind) = decl
                .split_once(' ')
                .ok_or_else(|| format!("malformed TYPE line: {line:?}"))?;
            let kind = match kind {
                "counter" => FamilyType::Counter,
                "gauge" => FamilyType::Gauge,
                "histogram" => FamilyType::Histogram,
                other => return Err(format!("unknown metric type {other:?}")),
            };
            if name.is_empty() || !name.chars().all(|c| c.is_ascii_alphanumeric() || c == '_') {
                return Err(format!("invalid family name {name:?}"));
            }
            current = Some(FamilyState {
                name: name.to_string(),
                kind,
                samples: 0,
                last_bucket_cumulative: 0,
                bucket_count: 0,
                saw_inf: false,
                inf_value: None,
                count_value: None,
            });
            continue;
        }
        if line.starts_with('#') {
            // Only TYPE comments are emitted by render().
            return Err(format!("unexpected comment line: {line:?}"));
        }
        let family = current
            .as_mut()
            .ok_or_else(|| format!("sample before any TYPE declaration: {line:?}"))?;
        let (name, le, value) = parse_sample(line)?;
        match family.kind {
            FamilyType::Counter => {
                if name != format!("{}_total", family.name) {
                    return Err(format!(
                        "counter {} sample must be {}_total, got {name}",
                        family.name, family.name
                    ));
                }
                if value < 0.0 {
                    return Err(format!("counter {name} is negative"));
                }
            }
            FamilyType::Gauge => {
                if name != family.name {
                    return Err(format!(
                        "gauge {} sample has wrong name {name}",
                        family.name
                    ));
                }
            }
            FamilyType::Histogram => {
                let suffix = name
                    .strip_prefix(family.name.as_str())
                    .ok_or_else(|| format!("sample {name} outside family {}", family.name))?;
                match suffix {
                    "_bucket" => {
                        let le = le.ok_or_else(|| {
                            format!("histogram bucket without le label: {line:?}")
                        })?;
                        let cumulative = value as u64;
                        if family.bucket_count > 0 && cumulative < family.last_bucket_cumulative {
                            return Err(format!(
                                "histogram {} buckets are not cumulative at le={le}",
                                family.name
                            ));
                        }
                        if family.saw_inf {
                            return Err(format!(
                                "histogram {} has buckets after le=\"+Inf\"",
                                family.name
                            ));
                        }
                        if le == "+Inf" {
                            family.saw_inf = true;
                            family.inf_value = Some(cumulative);
                        } else {
                            le.parse::<u64>().map_err(|_| {
                                format!("histogram {} has non-numeric le={le:?}", family.name)
                            })?;
                        }
                        family.last_bucket_cumulative = cumulative;
                        family.bucket_count += 1;
                    }
                    "_sum" => {}
                    "_count" => family.count_value = Some(value as u64),
                    other => {
                        return Err(format!(
                            "histogram {} has invalid suffix {other:?}",
                            family.name
                        ))
                    }
                }
            }
        }
        family.samples += 1;
    }
    if let Some(f) = current.take() {
        f.close()?;
    }
    if !seen_eof {
        return Err("missing terminal # EOF".into());
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recorder::Sink;

    #[test]
    fn render_produces_a_valid_exposition() {
        let r = Recorder::new(Sink::memory());
        r.counter("milp.nodes").add(42);
        r.gauge("des.queue_depth").set(9);
        r.gauge("des.queue_depth").set(4);
        r.histogram("milp.node").record(0);
        r.histogram("milp.node").record(5);
        r.histogram("milp.node").record(700);
        let text = render(&r);
        validate(&text).unwrap();
        assert!(text.contains("# TYPE dynp_milp_nodes counter\ndynp_milp_nodes_total 42\n"));
        assert!(text.contains("dynp_des_queue_depth 4\n"));
        assert!(text.contains("dynp_des_queue_depth_highwater 9\n"));
        assert!(text.contains("dynp_milp_node_bucket{le=\"0\"} 1\n"));
        assert!(text.contains("dynp_milp_node_bucket{le=\"+Inf\"} 3\n"));
        assert!(text.contains("dynp_milp_node_count 3\n"));
        assert!(text.ends_with("# EOF\n"));
    }

    #[test]
    fn empty_recorder_renders_just_eof() {
        let r = Recorder::new(Sink::memory());
        let text = render(&r);
        assert_eq!(text, "# EOF\n");
        validate(&text).unwrap();
    }

    #[test]
    fn bucket_bounds_follow_the_log2_layout() {
        let r = Recorder::new(Sink::memory());
        // 5 lands in bucket 3 ([4, 8)), whose inclusive bound is 7.
        r.histogram("lat").record(5);
        let text = render(&r);
        assert!(text.contains("dynp_lat_bucket{le=\"7\"} 1\n"), "{text}");
        validate(&text).unwrap();
    }

    #[test]
    fn validator_rejects_structural_violations() {
        for (bad, why) in [
            ("dynp_x_total 1\n# EOF\n", "sample before TYPE"),
            ("# TYPE dynp_x counter\ndynp_x 1\n# EOF\n", "counter without _total"),
            ("# TYPE dynp_x counter\ndynp_x_total 1\n", "missing EOF"),
            ("# TYPE dynp_x counter\n# EOF\n", "family with no samples"),
            ("# TYPE dynp_x gauge\ndynp_x 1\n# EOF\nmore\n", "content after EOF"),
            ("# TYPE dynp_x weird\ndynp_x 1\n# EOF\n", "unknown type"),
            (
                "# TYPE dynp_h histogram\ndynp_h_bucket{le=\"1\"} 2\ndynp_h_bucket{le=\"3\"} 1\ndynp_h_bucket{le=\"+Inf\"} 2\ndynp_h_sum 2\ndynp_h_count 2\n# EOF\n",
                "non-cumulative buckets",
            ),
            (
                "# TYPE dynp_h histogram\ndynp_h_bucket{le=\"+Inf\"} 3\ndynp_h_sum 2\ndynp_h_count 2\n# EOF\n",
                "+Inf != count",
            ),
            (
                "# TYPE dynp_h histogram\ndynp_h_sum 2\ndynp_h_count 2\n# EOF\n",
                "histogram without +Inf",
            ),
        ] {
            assert!(validate(bad).is_err(), "expected rejection: {why}");
        }
    }

    #[test]
    fn validator_rejects_non_finite_values() {
        // f64::parse happily accepts all of these spellings, so the
        // validator must catch them itself.
        for value in ["NaN", "nan", "inf", "-inf", "Infinity"] {
            let text = format!("# TYPE dynp_x gauge\ndynp_x {value}\n# EOF\n");
            let err = validate(&text).unwrap_err();
            assert!(err.contains("non-finite"), "{value}: {err}");
        }
        // Plain finite floats stay fine.
        validate("# TYPE dynp_x gauge\ndynp_x -1.5e3\n# EOF\n").unwrap();
    }

    #[test]
    fn validator_rejects_label_escaping_games() {
        for (labels, why) in [
            (r#"le="a\"b""#, "escaped quote inside le"),
            (r#"le="1",x="2""#, "second label"),
            (r#"foo="1""#, "non-le label"),
            (r#"le='1'"#, "single quotes"),
            (r#"le="1"#, "unterminated quote"),
        ] {
            let text = format!(
                "# TYPE dynp_h histogram\ndynp_h_bucket{{{labels}}} 1\ndynp_h_bucket{{le=\"+Inf\"}} 1\ndynp_h_sum 1\ndynp_h_count 1\n# EOF\n"
            );
            assert!(validate(&text).is_err(), "expected rejection: {why}");
        }
    }

    #[test]
    fn validator_rejects_empty_family_names() {
        assert!(validate("# TYPE  counter\n_total 1\n# EOF\n").is_err());
        assert!(validate("# TYPE bad-name counter\nbad-name_total 1\n# EOF\n").is_err());
    }

    #[test]
    fn ring_drop_and_rotation_gauges_are_exposed() {
        let ring = Recorder::new(Sink::ring(1));
        ring.event("a").emit();
        ring.event("b").emit();
        ring.event("c").emit();
        let text = render(&ring);
        validate(&text).unwrap();
        assert!(text.contains("# TYPE dynp_obs_events_dropped gauge\ndynp_obs_events_dropped 2\n"));
        assert!(!text.contains("dynp_obs_sink_rotations"));

        let dir = std::env::temp_dir().join("dynp_obs_expo_rotations_test");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let rot = Recorder::new(Sink::rotating(dir.join("ev.jsonl"), 64, 2).unwrap());
        for _ in 0..10 {
            rot.event("tick").kv("pad", "xxxxxxxxxxxxxxxx").emit();
        }
        let text = render(&rot);
        validate(&text).unwrap();
        assert!(text.contains("# TYPE dynp_obs_sink_rotations gauge"), "{text}");
        assert!(!text.contains("dynp_obs_events_dropped"));

        // Memory sinks expose neither — they cannot lose lines.
        let text = render(&Recorder::new(Sink::memory()));
        assert!(!text.contains("dynp_obs_"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn family_name_sanitizes() {
        assert_eq!(family_name("milp.open_nodes"), "dynp_milp_open_nodes");
        assert_eq!(family_name("a-b c"), "dynp_a_b_c");
    }
}
