//! The [`Recorder`]: named metric registries plus a structured JSONL
//! event sink, and the process-global install point.
//!
//! Instrumented code is written against the *optional* global recorder:
//!
//! ```
//! // Fetch handles once, outside the hot loop.
//! let nodes = dynp_obs::recorder().map(|r| r.counter("milp.nodes"));
//! for _ in 0..3 {
//!     if let Some(nodes) = &nodes {
//!         nodes.inc();
//!     }
//! }
//! ```
//!
//! When no recorder is installed the cost is a single relaxed atomic load
//! per handle fetch, and the hot loop pays one branch on an `Option` —
//! observability off means effectively free.

use std::collections::{HashMap, VecDeque};
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicPtr, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, RwLock};
use std::time::Instant;

use crate::json::JsonValue;
use crate::metrics::{Counter, Gauge, Histogram, HistogramSnapshot};
use crate::profile::SpanRec;

/// A bounded in-memory event buffer: keeps the most recent lines, counts
/// the ones it had to drop.
#[derive(Debug)]
pub struct RingBuffer {
    lines: VecDeque<String>,
    capacity: usize,
    dropped: u64,
}

/// A size-rotating file writer: when the active file would exceed
/// `max_bytes`, it is renamed to `<path>.1` (shifting `<path>.1` →
/// `<path>.2`, …, discarding `<path>.{max_rotated}`) and a fresh active
/// file is opened.
#[derive(Debug)]
pub struct RotatingWriter {
    path: PathBuf,
    max_bytes: u64,
    max_rotated: usize,
    written: u64,
    /// Rotations performed since this sink was created.
    rotations: u64,
    writer: std::io::BufWriter<std::fs::File>,
}

impl RotatingWriter {
    fn rotated_path(path: &Path, i: usize) -> PathBuf {
        let mut os = path.as_os_str().to_os_string();
        os.push(format!(".{i}"));
        PathBuf::from(os)
    }

    fn rotate(&mut self) {
        let _ = self.writer.flush();
        if self.max_rotated == 0 {
            // No history requested: truncate in place.
        } else {
            let _ = std::fs::remove_file(Self::rotated_path(&self.path, self.max_rotated));
            for i in (1..self.max_rotated).rev() {
                let _ = std::fs::rename(
                    Self::rotated_path(&self.path, i),
                    Self::rotated_path(&self.path, i + 1),
                );
            }
            let _ = std::fs::rename(&self.path, Self::rotated_path(&self.path, 1));
        }
        if let Ok(f) = std::fs::File::create(&self.path) {
            self.writer = std::io::BufWriter::new(f);
        }
        self.written = 0;
        self.rotations += 1;
    }

    fn write_line(&mut self, line: &str) {
        let len = line.len() as u64 + 1;
        if self.written > 0 && self.written + len > self.max_bytes {
            self.rotate();
        }
        if writeln!(self.writer, "{line}").is_ok() {
            self.written += len;
        }
    }
}

/// Where emitted events go.
#[derive(Debug)]
pub enum Sink {
    /// Discard events (metrics still work).
    Null,
    /// Keep each JSONL line in memory; read back with
    /// [`Recorder::events`].
    Memory(Mutex<Vec<String>>),
    /// Append each JSONL line to a file.
    File(Mutex<std::io::BufWriter<std::fs::File>>),
    /// Keep the most recent lines in a bounded buffer; older lines are
    /// dropped (and counted) rather than growing memory unboundedly.
    Ring(Mutex<RingBuffer>),
    /// Append to a file, rotating by size so multi-hour runs cannot grow
    /// one `.events.jsonl` unboundedly.
    Rotating(Mutex<RotatingWriter>),
}

impl Sink {
    /// An in-memory sink.
    pub fn memory() -> Sink {
        Sink::Memory(Mutex::new(Vec::new()))
    }

    /// A file sink, truncating `path`.
    pub fn file(path: impl AsRef<Path>) -> std::io::Result<Sink> {
        let f = std::fs::File::create(path)?;
        Ok(Sink::File(Mutex::new(std::io::BufWriter::new(f))))
    }

    /// A bounded ring sink keeping the most recent `capacity` lines.
    pub fn ring(capacity: usize) -> Sink {
        Sink::Ring(Mutex::new(RingBuffer {
            lines: VecDeque::with_capacity(capacity.min(4096)),
            capacity: capacity.max(1),
            dropped: 0,
        }))
    }

    /// A size-rotating file sink: the active file is truncated now and
    /// rotated to `<path>.1`, `<path>.2`, … whenever it would exceed
    /// `max_bytes`; at most `max_rotated` rotated files are kept (stale
    /// rotations from earlier runs are removed up front).
    pub fn rotating(
        path: impl AsRef<Path>,
        max_bytes: u64,
        max_rotated: usize,
    ) -> std::io::Result<Sink> {
        let path = path.as_ref().to_path_buf();
        let f = std::fs::File::create(&path)?;
        // Stale rotations from a previous (possibly larger) run would
        // otherwise be merged into this run's analysis.
        let mut stale = 1;
        while std::fs::remove_file(RotatingWriter::rotated_path(&path, stale)).is_ok() {
            stale += 1;
        }
        Ok(Sink::Rotating(Mutex::new(RotatingWriter {
            path,
            max_bytes: max_bytes.max(1),
            max_rotated,
            written: 0,
            rotations: 0,
            writer: std::io::BufWriter::new(f),
        })))
    }

    fn write_line(&self, line: &str) {
        match self {
            Sink::Null => {}
            Sink::Memory(buf) => buf.lock().unwrap().push(line.to_string()),
            Sink::File(w) => {
                let mut w = w.lock().unwrap();
                // Diagnostics must never take the process down; a full
                // disk just drops the event.
                let _ = writeln!(w, "{line}");
            }
            Sink::Ring(ring) => {
                let mut ring = ring.lock().unwrap();
                if ring.lines.len() == ring.capacity {
                    ring.lines.pop_front();
                    ring.dropped += 1;
                }
                ring.lines.push_back(line.to_string());
            }
            Sink::Rotating(w) => w.lock().unwrap().write_line(line),
        }
    }
}

/// Named metric registries plus an event sink.
///
/// Cheap to share: callers get `Arc` handles to individual metrics and
/// hold them across hot loops; the registry lock is only taken on first
/// lookup of each name.
#[derive(Debug)]
pub struct Recorder {
    counters: RwLock<HashMap<&'static str, Arc<Counter>>>,
    gauges: RwLock<HashMap<&'static str, Arc<Gauge>>>,
    histograms: RwLock<HashMap<&'static str, Arc<Histogram>>>,
    sink: Sink,
    epoch: Instant,
    /// Logical clock: each emitted event gets the next value as its
    /// `seq` field, establishing one process-wide total order that
    /// survives interleaving across worker threads and sink rotation.
    seq: AtomicU64,
    /// Gate for the span-profiling hook. Off by default: span guards
    /// then pay one relaxed load and nothing else.
    profiling: AtomicBool,
    /// Closed-span records captured while profiling is on; drained into
    /// `.folded` collapsed-stack profiles at shutdown.
    profile: Mutex<Vec<SpanRec>>,
    /// Capacity of the live-tail side ring (0 = disabled, the default).
    /// The watch server switches it on so `/events` can tail runs whose
    /// primary sink streams to a file.
    tail_capacity: AtomicUsize,
    /// The most recent event lines, kept alongside *any* sink while the
    /// tail is enabled.
    tail: Mutex<VecDeque<String>>,
}

impl Default for Recorder {
    fn default() -> Self {
        Recorder::new(Sink::Null)
    }
}

impl Recorder {
    /// A recorder emitting events into `sink`.
    pub fn new(sink: Sink) -> Recorder {
        Recorder {
            counters: RwLock::new(HashMap::new()),
            gauges: RwLock::new(HashMap::new()),
            histograms: RwLock::new(HashMap::new()),
            sink,
            epoch: Instant::now(),
            seq: AtomicU64::new(0),
            profiling: AtomicBool::new(false),
            profile: Mutex::new(Vec::new()),
            tail_capacity: AtomicUsize::new(0),
            tail: Mutex::new(VecDeque::new()),
        }
    }

    /// The counter named `name`, created on first use.
    pub fn counter(&self, name: &'static str) -> Arc<Counter> {
        lookup(&self.counters, name)
    }

    /// The gauge named `name`, created on first use.
    pub fn gauge(&self, name: &'static str) -> Arc<Gauge> {
        lookup(&self.gauges, name)
    }

    /// The histogram named `name`, created on first use.
    pub fn histogram(&self, name: &'static str) -> Arc<Histogram> {
        lookup(&self.histograms, name)
    }

    /// Seconds elapsed since this recorder was created; the `ts` field
    /// of every event.
    pub fn elapsed_secs(&self) -> f64 {
        self.epoch.elapsed().as_secs_f64()
    }

    /// Starts a structured event for `target` (e.g. `"milp.incumbent"`).
    ///
    /// Besides `ts` and `target`, every event automatically carries a
    /// `seq` logical-clock value and — when a trace context is active on
    /// this thread (see [`crate::context`]) — the correlation fields
    /// `campaign`/`cell` (inside a campaign cell) and `span`/`parent`.
    pub fn event(&self, target: &str) -> EventBuilder<'_> {
        let mut line = String::with_capacity(128);
        line.push_str("{\"ts\":");
        crate::json::number_into(&mut line, self.elapsed_secs());
        line.push_str(",\"target\":");
        crate::json::escape_into(&mut line, target);
        line.push_str(",\"seq\":");
        let seq = self.seq.fetch_add(1, Ordering::Relaxed);
        line.push_str(&seq.to_string());
        if let Some(ctx) = crate::context::current() {
            if ctx.in_cell {
                line.push_str(",\"campaign\":\"");
                use std::fmt::Write as _;
                let _ = write!(line, "{:016x}", ctx.campaign);
                line.push_str("\",\"cell\":");
                line.push_str(&ctx.cell.to_string());
            }
            line.push_str(",\"span\":");
            line.push_str(&ctx.span.to_string());
            line.push_str(",\"parent\":");
            line.push_str(&ctx.parent.to_string());
        }
        EventBuilder {
            recorder: self,
            line,
        }
    }

    /// All event lines captured so far (memory and ring sinks only;
    /// empty for null and file sinks).
    pub fn events(&self) -> Vec<String> {
        match &self.sink {
            Sink::Memory(buf) => buf.lock().unwrap().clone(),
            Sink::Ring(ring) => ring.lock().unwrap().lines.iter().cloned().collect(),
            _ => Vec::new(),
        }
    }

    /// How many lines a bounded ring sink has discarded (0 for every
    /// other sink — they never drop for capacity).
    pub fn events_dropped(&self) -> u64 {
        match &self.sink {
            Sink::Ring(ring) => ring.lock().unwrap().dropped,
            _ => 0,
        }
    }

    /// Buffered event lines whose logical clock is at least `since`.
    /// Served from the sink's own buffer for memory and ring sinks;
    /// file-backed (and null) sinks fall back to the live-tail side
    /// ring, which is empty unless [`Recorder::set_event_tail`] was
    /// called. This is the `GET /events?since=<seq>` tail: a poller
    /// passes one past the highest `seq` it has seen and receives only
    /// what is new — lines that rotated out of a bounded buffer between
    /// polls are simply gone, visible as a gap in the `seq`s.
    pub fn events_since(&self, since: u64) -> Vec<String> {
        let keep = |line: &&String| line_seq(line).is_some_and(|seq| seq >= since);
        match &self.sink {
            Sink::Memory(buf) => buf.lock().unwrap().iter().filter(keep).cloned().collect(),
            Sink::Ring(ring) => ring
                .lock()
                .unwrap()
                .lines
                .iter()
                .filter(keep)
                .cloned()
                .collect(),
            _ => self.tail.lock().unwrap().iter().filter(keep).cloned().collect(),
        }
    }

    /// Keeps the most recent `capacity` event lines in an in-memory
    /// side ring regardless of the primary sink, so [`Recorder::events_since`]
    /// works even when events stream to a file. The watch server turns
    /// this on; capacity 0 (the default) disables the tail, and
    /// emission then pays one relaxed atomic load for it. Shrinking
    /// discards the oldest lines immediately.
    pub fn set_event_tail(&self, capacity: usize) {
        self.tail_capacity.store(capacity, Ordering::Relaxed);
        let mut tail = self.tail.lock().unwrap();
        while tail.len() > capacity {
            tail.pop_front();
        }
    }

    /// The next `seq` value the logical clock will hand out (equals the
    /// number of events emitted so far).
    pub fn next_seq(&self) -> u64 {
        self.seq.load(Ordering::Relaxed)
    }

    /// Turns the span-profiling hook on or off. While on, every closed
    /// trace-context span (see [`crate::context`]) is captured as a
    /// [`SpanRec`] for collapsed-stack export; while off (the default)
    /// the hook costs one relaxed atomic load per span close.
    pub fn set_profiling(&self, on: bool) {
        self.profiling.store(on, Ordering::Relaxed);
    }

    /// Whether the span-profiling hook is on.
    pub fn profiling_enabled(&self) -> bool {
        self.profiling.load(Ordering::Relaxed)
    }

    /// Captures one closed span, if profiling is on.
    pub fn record_profile(&self, rec: SpanRec) {
        if self.profiling_enabled() {
            self.profile.lock().unwrap().push(rec);
        }
    }

    /// A copy of every span captured by the profiling hook so far.
    pub fn profile_records(&self) -> Vec<SpanRec> {
        self.profile.lock().unwrap().clone()
    }

    /// Diagnostics of the event sink itself: its kind plus, where the
    /// sink can lose or rotate data, how much it has (`dropped` for
    /// bounded rings, `rotations` for size-rotating files). Exposed as
    /// gauges by [`crate::expo::render`].
    pub fn sink_stats(&self) -> SinkStats {
        match &self.sink {
            Sink::Null => SinkStats {
                kind: "null",
                dropped: None,
                rotations: None,
            },
            Sink::Memory(_) => SinkStats {
                kind: "memory",
                dropped: None,
                rotations: None,
            },
            Sink::File(_) => SinkStats {
                kind: "file",
                dropped: None,
                rotations: None,
            },
            Sink::Ring(ring) => SinkStats {
                kind: "ring",
                dropped: Some(ring.lock().unwrap().dropped),
                rotations: None,
            },
            Sink::Rotating(w) => SinkStats {
                kind: "rotating",
                dropped: None,
                rotations: Some(w.lock().unwrap().rotations),
            },
        }
    }

    /// Flushes buffered file/rotating sinks to disk (no-op otherwise).
    pub fn flush(&self) {
        match &self.sink {
            Sink::File(w) => {
                let _ = w.lock().unwrap().flush();
            }
            Sink::Rotating(w) => {
                let _ = w.lock().unwrap().writer.flush();
            }
            _ => {}
        }
    }

    /// All counters as `(name, value)` pairs, sorted by name.
    pub fn counter_snapshots(&self) -> Vec<(&'static str, u64)> {
        let mut v: Vec<_> = self
            .counters
            .read()
            .unwrap()
            .iter()
            .map(|(name, c)| (*name, c.get()))
            .collect();
        v.sort_unstable_by_key(|(name, _)| *name);
        v
    }

    /// All gauges as `(name, last, high_water)` triples, sorted by name.
    pub fn gauge_snapshots(&self) -> Vec<(&'static str, i64, i64)> {
        let mut v: Vec<_> = self
            .gauges
            .read()
            .unwrap()
            .iter()
            .map(|(name, g)| (*name, g.get(), g.high_water()))
            .collect();
        v.sort_unstable_by_key(|(name, ..)| *name);
        v
    }

    /// All histograms as `(name, snapshot)` pairs, sorted by name.
    pub fn histogram_snapshots(&self) -> Vec<(&'static str, HistogramSnapshot)> {
        let mut v: Vec<_> = self
            .histograms
            .read()
            .unwrap()
            .iter()
            .map(|(name, h)| (*name, h.snapshot()))
            .collect();
        v.sort_unstable_by_key(|(name, _)| *name);
        v
    }

    /// Every registered metric as one JSON object, for embedding in
    /// result files: counters and gauges as numbers, histograms as the
    /// object produced by
    /// [`HistogramSnapshot::to_json`](crate::metrics::HistogramSnapshot::to_json).
    pub fn metrics_json(&self) -> JsonValue {
        let mut counters_json = JsonValue::object();
        for (name, v) in self.counter_snapshots() {
            counters_json.set(name, v);
        }
        let mut gauges_json = JsonValue::object();
        for (name, last, high) in self.gauge_snapshots() {
            gauges_json.set(
                name,
                JsonValue::object()
                    .with("last", last)
                    .with("high_water", high),
            );
        }
        let mut histograms_json = JsonValue::object();
        for (name, snap) in self.histogram_snapshots() {
            histograms_json.set(name, snap.to_json());
        }
        JsonValue::object()
            .with("counters", counters_json)
            .with("gauges", gauges_json)
            .with("histograms", histograms_json)
    }
}

/// Event-sink self-diagnostics; see [`Recorder::sink_stats`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SinkStats {
    /// Sink variant name (`"null"`, `"memory"`, `"file"`, `"ring"`,
    /// `"rotating"`).
    pub kind: &'static str,
    /// Lines a bounded ring discarded (`None` for other sinks).
    pub dropped: Option<u64>,
    /// Rotations a size-rotating file sink performed (`None` for other
    /// sinks).
    pub rotations: Option<u64>,
}

/// Extracts the `seq` field from a stored event line without a full
/// JSON parse — every line the recorder writes carries
/// `,"seq":<digits>` exactly once, right after the envelope fields.
fn line_seq(line: &str) -> Option<u64> {
    let at = line.find("\"seq\":")? + "\"seq\":".len();
    let rest = &line[at..];
    let end = rest
        .find(|c: char| !c.is_ascii_digit())
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

fn lookup<M: Default>(registry: &RwLock<HashMap<&'static str, Arc<M>>>, name: &'static str) -> Arc<M> {
    if let Some(found) = registry.read().unwrap().get(name) {
        return Arc::clone(found);
    }
    Arc::clone(registry.write().unwrap().entry(name).or_default())
}

/// Builds one JSONL event line; [`EventBuilder::emit`] writes it.
#[derive(Debug)]
pub struct EventBuilder<'a> {
    recorder: &'a Recorder,
    line: String,
}

impl EventBuilder<'_> {
    /// Appends a `key: value` pair.
    pub fn kv(mut self, key: &str, value: impl Into<JsonValue>) -> Self {
        self.line.push(',');
        crate::json::escape_into(&mut self.line, key);
        self.line.push(':');
        let value: JsonValue = value.into();
        self.line.push_str(&value.to_json());
        self
    }

    /// Finishes the line and writes it to the sink (and, when enabled,
    /// the recorder's live-tail ring).
    pub fn emit(mut self) {
        self.line.push('}');
        self.recorder.sink.write_line(&self.line);
        let cap = self.recorder.tail_capacity.load(Ordering::Relaxed);
        if cap > 0 {
            let mut tail = self.recorder.tail.lock().unwrap();
            if tail.len() >= cap {
                tail.pop_front();
            }
            tail.push_back(self.line);
        }
    }
}

/// An RAII timer: created by [`Span::enter`], records its lifetime in
/// nanoseconds into the named histogram on drop. When no recorder is
/// installed the span is inert and never reads the clock.
#[derive(Debug)]
#[must_use = "a Span measures until dropped; binding it to _ drops immediately"]
pub struct Span {
    state: Option<(Arc<Histogram>, Instant)>,
}

impl Span {
    /// Starts timing against the global recorder's histogram `name`.
    pub fn enter(name: &'static str) -> Span {
        match recorder() {
            Some(r) => Span::enter_with(r, name),
            None => Span { state: None },
        }
    }

    /// Starts timing against `recorder`'s histogram `name`.
    pub fn enter_with(recorder: &Recorder, name: &'static str) -> Span {
        Span {
            state: Some((recorder.histogram(name), Instant::now())),
        }
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some((histogram, started)) = self.state.take() {
            histogram.record_duration(started.elapsed());
        }
    }
}

static GLOBAL: AtomicPtr<Recorder> = AtomicPtr::new(std::ptr::null_mut());

/// Installs `recorder` as the process-global recorder, returning a
/// `'static` reference to it. Replaces any previous recorder; both are
/// intentionally leaked so handles held by running threads stay valid.
pub fn install(recorder: Recorder) -> &'static Recorder {
    let leaked: &'static Recorder = Box::leak(Box::new(recorder));
    GLOBAL.store(leaked as *const Recorder as *mut Recorder, Ordering::Release);
    leaked
}

/// The installed global recorder, if any. One relaxed-ish atomic load —
/// cheap enough to call at subsystem entry points (not per iteration;
/// fetch metric handles once and reuse them).
pub fn recorder() -> Option<&'static Recorder> {
    let ptr = GLOBAL.load(Ordering::Acquire);
    // SAFETY: the pointer is either null or a Box::leak'd Recorder that
    // is never freed.
    unsafe { ptr.as_ref() }
}

/// A panic-safe finalizer for the global recorder's event sink.
///
/// The global recorder is intentionally leaked, so its buffered sinks
/// are never flushed by `Drop`. Hold one of these for the duration of a
/// campaign or bench run: it flushes the global recorder when dropped —
/// including during unwinding — so a run killed by a panic still leaves
/// a complete event log behind (pairing with checkpoint resume, which
/// needs the log to reflect everything the checkpoint recorded).
#[derive(Debug, Default)]
#[must_use = "the guard flushes on drop; binding it to _ drops immediately"]
pub struct FlushGuard {
    _priv: (),
}

/// Creates a [`FlushGuard`] flushing the global recorder on drop.
pub fn flush_on_drop() -> FlushGuard {
    FlushGuard { _priv: () }
}

impl Drop for FlushGuard {
    fn drop(&mut self) {
        if let Some(r) = recorder() {
            r.flush();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_returns_shared_handles() {
        let r = Recorder::default();
        let a = r.counter("x");
        let b = r.counter("x");
        a.inc();
        b.add(2);
        assert_eq!(r.counter("x").get(), 3);
        assert_eq!(r.counter("y").get(), 0);
    }

    #[test]
    fn events_are_valid_jsonl() {
        let r = Recorder::new(Sink::memory());
        r.event("test.event")
            .kv("policy", "SJF")
            .kv("n", 3u64)
            .kv("ratio", 0.5)
            .kv("note", "quote \" and \\ back")
            .emit();
        let lines = r.events();
        assert_eq!(lines.len(), 1);
        crate::json::validate(&lines[0]).unwrap();
        assert!(lines[0].contains("\"target\":\"test.event\""));
        assert!(lines[0].contains("\"policy\":\"SJF\""));
        assert!(lines[0].starts_with("{\"ts\":"));
    }

    #[test]
    fn file_sink_appends_lines() {
        let path = std::env::temp_dir().join("dynp_obs_sink_test.jsonl");
        let r = Recorder::new(Sink::file(&path).unwrap());
        r.event("a").kv("k", 1u64).emit();
        r.event("b").emit();
        r.flush();
        let content = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<_> = content.lines().collect();
        assert_eq!(lines.len(), 2);
        for line in lines {
            crate::json::validate(line).unwrap();
        }
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn span_records_into_histogram() {
        let r = Recorder::default();
        {
            let _span = Span::enter_with(&r, "unit.span");
        }
        assert_eq!(r.histogram("unit.span").snapshot().count, 1);
    }

    #[test]
    fn inert_span_without_recorder_is_fine() {
        let _span = Span { state: None };
    }

    #[test]
    fn seq_is_a_dense_total_order() {
        let r = Recorder::new(Sink::memory());
        r.event("a").emit();
        r.event("b").emit();
        r.event("c").emit();
        let seqs: Vec<u64> = r
            .events()
            .iter()
            .map(|l| {
                let v = crate::json::parse(l).unwrap();
                v.get("seq").and_then(crate::JsonValue::as_u64).unwrap()
            })
            .collect();
        assert_eq!(seqs, vec![0, 1, 2]);
    }

    #[test]
    fn ring_sink_bounds_memory_and_counts_drops() {
        let r = Recorder::new(Sink::ring(3));
        for i in 0..5u64 {
            r.event("tick").kv("i", i).emit();
        }
        let lines = r.events();
        assert_eq!(lines.len(), 3);
        assert_eq!(r.events_dropped(), 2);
        // The survivors are the most recent events.
        assert!(lines[0].contains("\"i\":2"));
        assert!(lines[2].contains("\"i\":4"));
    }

    #[test]
    fn rotating_sink_rotates_by_size_and_keeps_every_line() {
        let dir = std::env::temp_dir().join("dynp_obs_rotate_test");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("ev.events.jsonl");
        // Plant a stale rotation that a fresh sink must clean up.
        std::fs::write(RotatingWriter::rotated_path(&path, 1), "stale\n").unwrap();
        let r = Recorder::new(Sink::rotating(&path, 256, 8).unwrap());
        let total = 20u64;
        for i in 0..total {
            r.event("tick").kv("i", i).kv("pad", "xxxxxxxxxxxxxxxx").emit();
        }
        r.flush();
        let mut lines = Vec::new();
        let mut files = vec![path.clone()];
        let mut i = 1;
        loop {
            let p = RotatingWriter::rotated_path(&path, i);
            if !p.exists() {
                break;
            }
            files.push(p);
            i += 1;
        }
        assert!(files.len() > 1, "expected at least one rotation");
        for f in &files {
            for line in std::fs::read_to_string(f).unwrap().lines() {
                crate::json::validate(line).unwrap();
                assert!(std::fs::metadata(f).unwrap().len() <= 256 + 2);
                lines.push(line.to_string());
            }
        }
        assert_eq!(lines.len() as u64, total, "rotation must not lose lines");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn rotating_sink_with_no_history_truncates_in_place() {
        let dir = std::env::temp_dir().join("dynp_obs_rotate_trunc_test");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("ev.events.jsonl");
        let r = Recorder::new(Sink::rotating(&path, 128, 0).unwrap());
        for _ in 0..50 {
            r.event("tick").kv("pad", "xxxxxxxxxxxxxxxx").emit();
        }
        r.flush();
        assert!(std::fs::metadata(&path).unwrap().len() <= 130);
        assert!(!RotatingWriter::rotated_path(&path, 1).exists());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn flush_guard_is_harmless_and_infallible() {
        // With or without a global recorder the guard must drop quietly;
        // exercising the global path is left to integration tests since
        // the recorder is process-wide.
        let guard = flush_on_drop();
        drop(guard);
    }

    #[test]
    fn events_since_tails_by_logical_clock() {
        let r = Recorder::new(Sink::memory());
        for i in 0..5u64 {
            r.event("tick").kv("i", i).emit();
        }
        assert_eq!(r.next_seq(), 5);
        let tail = r.events_since(3);
        assert_eq!(tail.len(), 2);
        assert!(tail[0].contains("\"seq\":3"));
        assert!(tail[1].contains("\"seq\":4"));
        assert!(r.events_since(5).is_empty());
        assert_eq!(r.events_since(0).len(), 5);
        // Ring sinks tail the surviving window.
        let ring = Recorder::new(Sink::ring(2));
        for _ in 0..4 {
            ring.event("tick").emit();
        }
        assert_eq!(ring.events_since(0).len(), 2);
        assert_eq!(ring.events_since(3).len(), 1);
    }

    #[test]
    fn event_tail_serves_file_backed_sinks() {
        // A null sink buffers nothing, so the tail is the only source.
        let r = Recorder::new(Sink::Null);
        r.event("a").emit();
        assert!(r.events_since(0).is_empty(), "tail is off by default");
        r.set_event_tail(2);
        r.event("b").emit();
        r.event("c").emit();
        r.event("d").emit();
        let lines = r.events_since(0);
        assert_eq!(lines.len(), 2, "tail is bounded");
        assert!(lines[0].contains("\"target\":\"c\""));
        assert!(lines[1].contains("\"target\":\"d\""));
        assert_eq!(r.events_since(3).len(), 1, "since filters by seq");
        // Shrinking to zero disables and empties the tail.
        r.set_event_tail(0);
        r.event("e").emit();
        assert!(r.events_since(0).is_empty());
    }

    #[test]
    fn profiling_is_gated_and_captures_records() {
        let r = Recorder::new(Sink::memory());
        let rec = crate::profile::SpanRec {
            cell: Some(1),
            span: 7,
            parent: 0,
            kind: "k".into(),
            dur_ns: 9,
        };
        r.record_profile(rec.clone());
        assert!(r.profile_records().is_empty(), "off by default");
        r.set_profiling(true);
        assert!(r.profiling_enabled());
        r.record_profile(rec.clone());
        assert_eq!(r.profile_records(), vec![rec]);
    }

    #[test]
    fn sink_stats_expose_drops_and_rotations() {
        let ring = Recorder::new(Sink::ring(1));
        ring.event("a").emit();
        ring.event("b").emit();
        let stats = ring.sink_stats();
        assert_eq!(stats.kind, "ring");
        assert_eq!(stats.dropped, Some(1));
        assert_eq!(stats.rotations, None);

        let dir = std::env::temp_dir().join("dynp_obs_sinkstats_test");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let rot = Recorder::new(Sink::rotating(dir.join("ev.jsonl"), 64, 2).unwrap());
        for _ in 0..10 {
            rot.event("tick").kv("pad", "xxxxxxxxxxxxxxxx").emit();
        }
        let stats = rot.sink_stats();
        assert_eq!(stats.kind, "rotating");
        assert!(stats.rotations.unwrap() > 0);
        assert_eq!(Recorder::new(Sink::Null).sink_stats().kind, "null");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn metrics_json_is_valid_and_sorted() {
        let r = Recorder::default();
        r.counter("b.count").add(2);
        r.counter("a.count").inc();
        r.gauge("q.depth").set(7);
        r.histogram("lat").record(100);
        let json = r.metrics_json().to_json();
        crate::json::validate(&json).unwrap();
        assert!(json.find("a.count").unwrap() < json.find("b.count").unwrap());
    }
}
