//! The [`Recorder`]: named metric registries plus a structured JSONL
//! event sink, and the process-global install point.
//!
//! Instrumented code is written against the *optional* global recorder:
//!
//! ```
//! // Fetch handles once, outside the hot loop.
//! let nodes = dynp_obs::recorder().map(|r| r.counter("milp.nodes"));
//! for _ in 0..3 {
//!     if let Some(nodes) = &nodes {
//!         nodes.inc();
//!     }
//! }
//! ```
//!
//! When no recorder is installed the cost is a single relaxed atomic load
//! per handle fetch, and the hot loop pays one branch on an `Option` —
//! observability off means effectively free.

use std::collections::HashMap;
use std::io::Write;
use std::path::Path;
use std::sync::atomic::{AtomicPtr, Ordering};
use std::sync::{Arc, Mutex, RwLock};
use std::time::Instant;

use crate::json::JsonValue;
use crate::metrics::{Counter, Gauge, Histogram};

/// Where emitted events go.
#[derive(Debug)]
pub enum Sink {
    /// Discard events (metrics still work).
    Null,
    /// Keep each JSONL line in memory; read back with
    /// [`Recorder::events`].
    Memory(Mutex<Vec<String>>),
    /// Append each JSONL line to a file.
    File(Mutex<std::io::BufWriter<std::fs::File>>),
}

impl Sink {
    /// An in-memory sink.
    pub fn memory() -> Sink {
        Sink::Memory(Mutex::new(Vec::new()))
    }

    /// A file sink, truncating `path`.
    pub fn file(path: impl AsRef<Path>) -> std::io::Result<Sink> {
        let f = std::fs::File::create(path)?;
        Ok(Sink::File(Mutex::new(std::io::BufWriter::new(f))))
    }

    fn write_line(&self, line: &str) {
        match self {
            Sink::Null => {}
            Sink::Memory(buf) => buf.lock().unwrap().push(line.to_string()),
            Sink::File(w) => {
                let mut w = w.lock().unwrap();
                // Diagnostics must never take the process down; a full
                // disk just drops the event.
                let _ = writeln!(w, "{line}");
            }
        }
    }
}

/// Named metric registries plus an event sink.
///
/// Cheap to share: callers get `Arc` handles to individual metrics and
/// hold them across hot loops; the registry lock is only taken on first
/// lookup of each name.
#[derive(Debug)]
pub struct Recorder {
    counters: RwLock<HashMap<&'static str, Arc<Counter>>>,
    gauges: RwLock<HashMap<&'static str, Arc<Gauge>>>,
    histograms: RwLock<HashMap<&'static str, Arc<Histogram>>>,
    sink: Sink,
    epoch: Instant,
}

impl Default for Recorder {
    fn default() -> Self {
        Recorder::new(Sink::Null)
    }
}

impl Recorder {
    /// A recorder emitting events into `sink`.
    pub fn new(sink: Sink) -> Recorder {
        Recorder {
            counters: RwLock::new(HashMap::new()),
            gauges: RwLock::new(HashMap::new()),
            histograms: RwLock::new(HashMap::new()),
            sink,
            epoch: Instant::now(),
        }
    }

    /// The counter named `name`, created on first use.
    pub fn counter(&self, name: &'static str) -> Arc<Counter> {
        lookup(&self.counters, name)
    }

    /// The gauge named `name`, created on first use.
    pub fn gauge(&self, name: &'static str) -> Arc<Gauge> {
        lookup(&self.gauges, name)
    }

    /// The histogram named `name`, created on first use.
    pub fn histogram(&self, name: &'static str) -> Arc<Histogram> {
        lookup(&self.histograms, name)
    }

    /// Seconds elapsed since this recorder was created; the `ts` field
    /// of every event.
    pub fn elapsed_secs(&self) -> f64 {
        self.epoch.elapsed().as_secs_f64()
    }

    /// Starts a structured event for `target` (e.g. `"milp.incumbent"`).
    pub fn event(&self, target: &str) -> EventBuilder<'_> {
        let mut line = String::with_capacity(96);
        line.push_str("{\"ts\":");
        crate::json::number_into(&mut line, self.elapsed_secs());
        line.push_str(",\"target\":");
        crate::json::escape_into(&mut line, target);
        EventBuilder {
            recorder: self,
            line,
        }
    }

    /// All event lines captured so far (memory sinks only; empty for
    /// null and file sinks).
    pub fn events(&self) -> Vec<String> {
        match &self.sink {
            Sink::Memory(buf) => buf.lock().unwrap().clone(),
            _ => Vec::new(),
        }
    }

    /// Flushes a file sink (no-op otherwise).
    pub fn flush(&self) {
        if let Sink::File(w) = &self.sink {
            let _ = w.lock().unwrap().flush();
        }
    }

    /// Every registered metric as one JSON object, for embedding in
    /// result files: counters and gauges as numbers, histograms as the
    /// object produced by
    /// [`HistogramSnapshot::to_json`](crate::metrics::HistogramSnapshot::to_json).
    pub fn metrics_json(&self) -> JsonValue {
        let mut counters: Vec<_> = self
            .counters
            .read()
            .unwrap()
            .iter()
            .map(|(name, c)| (*name, c.get()))
            .collect();
        counters.sort_unstable_by_key(|(name, _)| *name);
        let mut gauges: Vec<_> = self
            .gauges
            .read()
            .unwrap()
            .iter()
            .map(|(name, g)| (*name, g.get(), g.high_water()))
            .collect();
        gauges.sort_unstable_by_key(|(name, ..)| *name);
        let mut histograms: Vec<_> = self
            .histograms
            .read()
            .unwrap()
            .iter()
            .map(|(name, h)| (*name, h.snapshot()))
            .collect();
        histograms.sort_unstable_by_key(|(name, _)| *name);

        let mut counters_json = JsonValue::object();
        for (name, v) in counters {
            counters_json.set(name, v);
        }
        let mut gauges_json = JsonValue::object();
        for (name, last, high) in gauges {
            gauges_json.set(
                name,
                JsonValue::object()
                    .with("last", last)
                    .with("high_water", high),
            );
        }
        let mut histograms_json = JsonValue::object();
        for (name, snap) in histograms {
            histograms_json.set(name, snap.to_json());
        }
        JsonValue::object()
            .with("counters", counters_json)
            .with("gauges", gauges_json)
            .with("histograms", histograms_json)
    }
}

fn lookup<M: Default>(registry: &RwLock<HashMap<&'static str, Arc<M>>>, name: &'static str) -> Arc<M> {
    if let Some(found) = registry.read().unwrap().get(name) {
        return Arc::clone(found);
    }
    Arc::clone(registry.write().unwrap().entry(name).or_default())
}

/// Builds one JSONL event line; [`EventBuilder::emit`] writes it.
#[derive(Debug)]
pub struct EventBuilder<'a> {
    recorder: &'a Recorder,
    line: String,
}

impl EventBuilder<'_> {
    /// Appends a `key: value` pair.
    pub fn kv(mut self, key: &str, value: impl Into<JsonValue>) -> Self {
        self.line.push(',');
        crate::json::escape_into(&mut self.line, key);
        self.line.push(':');
        let value: JsonValue = value.into();
        self.line.push_str(&value.to_json());
        self
    }

    /// Finishes the line and writes it to the sink.
    pub fn emit(mut self) {
        self.line.push('}');
        self.recorder.sink.write_line(&self.line);
    }
}

/// An RAII timer: created by [`Span::enter`], records its lifetime in
/// nanoseconds into the named histogram on drop. When no recorder is
/// installed the span is inert and never reads the clock.
#[derive(Debug)]
#[must_use = "a Span measures until dropped; binding it to _ drops immediately"]
pub struct Span {
    state: Option<(Arc<Histogram>, Instant)>,
}

impl Span {
    /// Starts timing against the global recorder's histogram `name`.
    pub fn enter(name: &'static str) -> Span {
        match recorder() {
            Some(r) => Span::enter_with(r, name),
            None => Span { state: None },
        }
    }

    /// Starts timing against `recorder`'s histogram `name`.
    pub fn enter_with(recorder: &Recorder, name: &'static str) -> Span {
        Span {
            state: Some((recorder.histogram(name), Instant::now())),
        }
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some((histogram, started)) = self.state.take() {
            histogram.record_duration(started.elapsed());
        }
    }
}

static GLOBAL: AtomicPtr<Recorder> = AtomicPtr::new(std::ptr::null_mut());

/// Installs `recorder` as the process-global recorder, returning a
/// `'static` reference to it. Replaces any previous recorder; both are
/// intentionally leaked so handles held by running threads stay valid.
pub fn install(recorder: Recorder) -> &'static Recorder {
    let leaked: &'static Recorder = Box::leak(Box::new(recorder));
    GLOBAL.store(leaked as *const Recorder as *mut Recorder, Ordering::Release);
    leaked
}

/// The installed global recorder, if any. One relaxed-ish atomic load —
/// cheap enough to call at subsystem entry points (not per iteration;
/// fetch metric handles once and reuse them).
pub fn recorder() -> Option<&'static Recorder> {
    let ptr = GLOBAL.load(Ordering::Acquire);
    // SAFETY: the pointer is either null or a Box::leak'd Recorder that
    // is never freed.
    unsafe { ptr.as_ref() }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_returns_shared_handles() {
        let r = Recorder::default();
        let a = r.counter("x");
        let b = r.counter("x");
        a.inc();
        b.add(2);
        assert_eq!(r.counter("x").get(), 3);
        assert_eq!(r.counter("y").get(), 0);
    }

    #[test]
    fn events_are_valid_jsonl() {
        let r = Recorder::new(Sink::memory());
        r.event("test.event")
            .kv("policy", "SJF")
            .kv("n", 3u64)
            .kv("ratio", 0.5)
            .kv("note", "quote \" and \\ back")
            .emit();
        let lines = r.events();
        assert_eq!(lines.len(), 1);
        crate::json::validate(&lines[0]).unwrap();
        assert!(lines[0].contains("\"target\":\"test.event\""));
        assert!(lines[0].contains("\"policy\":\"SJF\""));
        assert!(lines[0].starts_with("{\"ts\":"));
    }

    #[test]
    fn file_sink_appends_lines() {
        let path = std::env::temp_dir().join("dynp_obs_sink_test.jsonl");
        let r = Recorder::new(Sink::file(&path).unwrap());
        r.event("a").kv("k", 1u64).emit();
        r.event("b").emit();
        r.flush();
        let content = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<_> = content.lines().collect();
        assert_eq!(lines.len(), 2);
        for line in lines {
            crate::json::validate(line).unwrap();
        }
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn span_records_into_histogram() {
        let r = Recorder::default();
        {
            let _span = Span::enter_with(&r, "unit.span");
        }
        assert_eq!(r.histogram("unit.span").snapshot().count, 1);
    }

    #[test]
    fn inert_span_without_recorder_is_fine() {
        let _span = Span { state: None };
    }

    #[test]
    fn metrics_json_is_valid_and_sorted() {
        let r = Recorder::default();
        r.counter("b.count").add(2);
        r.counter("a.count").inc();
        r.gauge("q.depth").set(7);
        r.histogram("lat").record(100);
        let json = r.metrics_json().to_json();
        crate::json::validate(&json).unwrap();
        assert!(json.find("a.count").unwrap() < json.find("b.count").unwrap());
    }
}
