//! Property tests for the observability primitives: histogram merge
//! arithmetic, bucket monotonicity, and JSONL event well-formedness.

use dynp_obs::{bucket_index, bucket_lower_bound, json, Histogram, Recorder, Sink, BUCKETS};
use proptest::prelude::*;

proptest! {
    /// merge(a, b) carries exactly the union of the samples: per-bucket
    /// counts, totals, sums, and extremes all add up.
    #[test]
    fn merge_counts_are_the_sum_of_parts(
        xs in prop::collection::vec(0u64..1_000_000_000, 0..64),
        ys in prop::collection::vec(0u64..1_000_000_000, 0..64),
    ) {
        let a = Histogram::new();
        let b = Histogram::new();
        for &x in &xs { a.record(x); }
        for &y in &ys { b.record(y); }
        let sa = a.snapshot();
        let sb = b.snapshot();
        a.merge(&b);
        let merged = a.snapshot();
        prop_assert_eq!(merged.count, sa.count + sb.count);
        prop_assert_eq!(merged.sum, sa.sum + sb.sum);
        for i in 0..BUCKETS {
            prop_assert_eq!(merged.buckets[i], sa.buckets[i] + sb.buckets[i]);
        }
        prop_assert_eq!(merged.min, sa.min.min(sb.min));
        prop_assert_eq!(merged.max, sa.max.max(sb.max));
        // Totals remain consistent with the buckets.
        prop_assert_eq!(merged.buckets.iter().sum::<u64>(), merged.count);
    }

    /// The bucket index is monotone in the value, and every value lands
    /// in the bucket whose range contains it.
    #[test]
    fn bucket_index_is_monotone_and_consistent(a in 0u64..=u64::MAX, b in 0u64..=u64::MAX) {
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(bucket_index(lo) <= bucket_index(hi));
        for v in [lo, hi] {
            let i = bucket_index(v);
            prop_assert!(i < BUCKETS);
            prop_assert!(bucket_lower_bound(i) <= v);
            if i + 1 < BUCKETS {
                prop_assert!(v < bucket_lower_bound(i + 1));
            }
        }
    }

    /// Recorded samples always respect the snapshot invariants:
    /// count/min/max/mean agree with the raw sample set. Values are kept
    /// below u64::MAX / 128 so the running sum cannot wrap.
    #[test]
    fn snapshot_reflects_samples(xs in prop::collection::vec(0u64..u64::MAX / 128, 1..128)) {
        let h = Histogram::new();
        for &x in &xs { h.record(x); }
        let s = h.snapshot();
        prop_assert_eq!(s.count, xs.len() as u64);
        prop_assert_eq!(s.min, *xs.iter().min().unwrap());
        prop_assert_eq!(s.max, *xs.iter().max().unwrap());
        let mean = s.mean().unwrap();
        prop_assert!(mean >= s.min as f64 && mean <= s.max as f64);
        let q = s.quantile(0.5).unwrap();
        prop_assert!(q >= s.min && q <= s.max);
    }

    /// Every emitted event line is one self-contained, valid JSON object,
    /// whatever the target, keys, and string values contain (quotes,
    /// backslashes, control characters, non-ASCII).
    #[test]
    fn events_are_valid_json_per_line(
        target_codes in prop::collection::vec(0u32..0xD7FF, 0..12),
        key_codes in prop::collection::vec(0u32..0xD7FF, 0..8),
        value_codes in prop::collection::vec(0u32..0xD7FF, 0..24),
        number in -1.0e12f64..1.0e12,
        flag_bit in 0u32..2,
    ) {
        let flag = flag_bit == 1;
        let decode = |codes: &[u32]| -> String {
            codes.iter().filter_map(|&c| char::from_u32(c)).collect()
        };
        let target = decode(&target_codes);
        let key = decode(&key_codes);
        let value = decode(&value_codes);
        let r = Recorder::new(Sink::memory());
        r.event(&target)
            .kv(&key, value.as_str())
            .kv("n", number)
            .kv("flag", flag)
            .emit();
        let lines = r.events();
        prop_assert_eq!(lines.len(), 1);
        prop_assert!(json::validate(&lines[0]).is_ok(), "invalid: {}", &lines[0]);
        prop_assert!(!lines[0].contains('\n'));
    }
}
