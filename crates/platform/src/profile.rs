//! Step-function resource availability over time.
//!
//! A [`ResourceProfile`] answers "how many resources are free from time `t`
//! on?" and supports carving reservations out of the future — the core
//! operation of a planning-based scheduler. Constraint (4) of the paper's
//! integer program ("the machine consists of `M_t` resources in total …
//! reduced according to the machine history") is exactly a capacity lookup
//! against this structure.
//!
//! Representation: a sorted list of `(time, free)` breakpoints; the value at
//! a breakpoint holds until the next breakpoint, and the last value extends
//! to infinity. Adjacent breakpoints with equal values are coalesced, so the
//! list length is bounded by the number of distinct reservation edges.

/// Time-varying count of free resources, as a right-open step function.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ResourceProfile {
    /// Total resources of the machine; `free` can never exceed this.
    capacity: u32,
    /// Breakpoints `(time, free)`, strictly increasing in time, first entry
    /// at time 0. Never empty.
    steps: Vec<(u64, u32)>,
}

impl ResourceProfile {
    /// A fully free machine of `capacity` resources.
    pub fn new(capacity: u32) -> Self {
        ResourceProfile {
            capacity,
            steps: vec![(0, capacity)],
        }
    }

    /// Total machine capacity.
    pub fn capacity(&self) -> u32 {
        self.capacity
    }

    /// The breakpoints of the step function (time, free-from-then-on).
    pub fn steps(&self) -> &[(u64, u32)] {
        &self.steps
    }

    /// Index of the segment containing time `t`.
    fn segment_index(&self, t: u64) -> usize {
        // partition_point returns the first index with step.0 > t; the
        // segment containing t is the one before it.
        self.steps.partition_point(|&(time, _)| time <= t) - 1
    }

    /// Free resources at time `t`.
    pub fn free_at(&self, t: u64) -> u32 {
        self.steps[self.segment_index(t)].1
    }

    /// Minimum free resources over `[start, end)`. An empty interval is
    /// unconstrained, i.e. returns the capacity.
    pub fn min_free(&self, start: u64, end: u64) -> u32 {
        if start >= end {
            return self.capacity;
        }
        let mut min = u32::MAX;
        let first = self.segment_index(start);
        for &(time, free) in &self.steps[first..] {
            if time >= end {
                break;
            }
            min = min.min(free);
        }
        min
    }

    /// Whether a job of `width` resources fits in `[start, start+duration)`.
    pub fn fits(&self, start: u64, duration: u64, width: u32) -> bool {
        width <= self.min_free(start, start.saturating_add(duration))
    }

    /// Earliest start `t >= earliest` such that `width` resources are free
    /// throughout `[t, t+duration)`, or `None` if `width` exceeds the
    /// machine capacity. Zero-duration jobs fit anywhere `width` is free at
    /// a single instant.
    pub fn earliest_fit(&self, earliest: u64, duration: u64, width: u32) -> Option<u64> {
        self.earliest_fit_probed(earliest, duration, width).0
    }

    /// [`Self::earliest_fit`] plus the number of segment probes the scan
    /// performed — the planner's `planner.fit_probes` counter feeds on
    /// this, turning "how much scanning did placement cost" into a
    /// first-class observable.
    ///
    /// The scan is a *skip-scan*: both the candidate segment `i` and the
    /// window check `j` only ever move forward, and a blocking segment
    /// causes the scan to jump past the entire contiguous blocking run in
    /// one pass instead of restarting with a fresh binary search per
    /// segment (the previous implementation paid `O(log S)` per blocked
    /// segment; on deep queues nearly every segment ahead of a placement
    /// is blocked, which made full-schedule planning quadratic with a
    /// log factor on top). Each call is `O(S)` worst case in the number
    /// of segments, with exactly one `O(log S)` search at entry.
    pub fn earliest_fit_probed(&self, earliest: u64, duration: u64, width: u32) -> (Option<u64>, u64) {
        if width > self.capacity {
            return (None, 0);
        }
        if width == 0 {
            return (Some(earliest), 0);
        }
        let need = duration.max(1);
        let mut probes = 1u64;
        let mut i = self.segment_index(earliest);
        // Candidate start: `earliest` itself inside segment `i`, later the
        // left edge of whichever segment the scan advances to.
        let mut t = earliest;
        loop {
            // Skip the entire blocking run in one forward pass.
            while self.steps[i].1 < width {
                i += 1;
                probes += 1;
                match self.steps.get(i) {
                    Some(&(time, _)) => t = time,
                    // The profile stays too full forever; with
                    // width <= capacity this means it never returns to
                    // enough free capacity.
                    None => return (None, probes),
                }
            }
            // Segment `i` has room at `t`; verify the rest of the window
            // [t, t+need) without revisiting anything before `i`.
            let end = t.saturating_add(need);
            let mut j = i + 1;
            loop {
                match self.steps.get(j) {
                    Some(&(time, free)) if time < end => {
                        probes += 1;
                        if free < width {
                            // Blocked mid-window: the next candidate lies
                            // past this blocking run; resume the outer
                            // skip loop right here.
                            i = j;
                            t = time;
                            break;
                        }
                        j += 1;
                    }
                    // Window clear to its end (or the profile's tail).
                    _ => return (Some(t), probes),
                }
            }
        }
    }

    /// Reference implementation of [`Self::earliest_fit`] predating the
    /// skip-scan: restart-at-next-segment with a fresh binary search per
    /// restart. Kept as the differential oracle for the equivalence
    /// proptests below — the two scanners must agree on every profile.
    #[cfg(test)]
    pub(crate) fn earliest_fit_naive(&self, earliest: u64, duration: u64, width: u32) -> Option<u64> {
        if width > self.capacity {
            return None;
        }
        if width == 0 {
            return Some(earliest);
        }
        let mut t = earliest;
        'outer: loop {
            let end = t.saturating_add(duration.max(1));
            let first = self.segment_index(t);
            for (i, &(time, free)) in self.steps[first..].iter().enumerate() {
                if time >= end {
                    break;
                }
                if free < width {
                    let seg = first + i;
                    match self.steps.get(seg + 1) {
                        Some(&(next_time, _)) => {
                            t = next_time;
                            continue 'outer;
                        }
                        None => return None,
                    }
                }
            }
            return Some(t);
        }
    }

    /// Collapses every breakpoint at or before `t` into the leading
    /// segment, so scans anchored at `t` (or later) start at index 0
    /// without a prefix search. Queries strictly before `t` are
    /// **invalidated** — the planner calls this once on its private
    /// working copy with `t = now`, where nothing may start earlier
    /// anyway; fit and allocation results for times `>= t` are unchanged.
    pub fn compress_before(&mut self, t: u64) {
        let idx = self.segment_index(t);
        if idx == 0 {
            return;
        }
        let free = self.steps[idx].1;
        self.steps.drain(1..=idx);
        self.steps[0].1 = free;
        self.coalesce();
    }

    /// Removes `width` resources over `[start, end)`.
    ///
    /// # Panics
    /// Panics if the interval is empty or the reservation would drive any
    /// segment negative — callers must check with [`Self::fits`] first; a
    /// violation is a scheduler bug, not a recoverable condition.
    pub fn allocate(&mut self, start: u64, end: u64, width: u32) {
        assert!(start < end, "allocate: empty interval [{start}, {end})");
        if width == 0 {
            return;
        }
        let lo = self.split_at(start);
        let hi = self.split_at(end);
        // Only the segments in [start, end) — indices [lo, hi) — change,
        // and they all shift by the same amount, so inequality between
        // interior neighbours is preserved. Coalescing can therefore only
        // be needed at the two boundaries; everything outside the range is
        // untouched. This keeps a planning pass's per-job cost bounded by
        // the allocated span instead of the whole profile.
        for step in &mut self.steps[lo..hi] {
            assert!(
                step.1 >= width,
                "allocate: overcommit at t={} (free {}, need {})",
                step.0,
                step.1,
                width
            );
            step.1 -= width;
        }
        // Drop the later breakpoint of an equal pair, highest index first
        // so the removal does not shift the other boundary.
        if self.steps[hi].1 == self.steps[hi - 1].1 {
            self.steps.remove(hi);
        }
        if lo > 0 && self.steps[lo].1 == self.steps[lo - 1].1 {
            self.steps.remove(lo);
        }
    }

    /// Adds `width` resources back over `[start, end)`, clamped at capacity.
    /// Used when building profiles from release events rather than
    /// reservations.
    pub fn release(&mut self, start: u64, end: u64, width: u32) {
        assert!(start < end, "release: empty interval [{start}, {end})");
        if width == 0 {
            return;
        }
        self.split_at(start);
        self.split_at(end);
        for step in &mut self.steps {
            if step.0 >= start && step.0 < end {
                step.1 = (step.1 + width).min(self.capacity);
            }
        }
        self.coalesce();
    }

    /// Ensures a breakpoint exists at time `t`; returns its index.
    fn split_at(&mut self, t: u64) -> usize {
        let idx = self.segment_index(t);
        if self.steps[idx].0 == t {
            idx
        } else {
            let free = self.steps[idx].1;
            self.steps.insert(idx + 1, (t, free));
            idx + 1
        }
    }

    /// Merges adjacent breakpoints with equal free counts.
    fn coalesce(&mut self) {
        self.steps.dedup_by(|next, prev| next.1 == prev.1);
    }

    /// First time `>= from` at which the whole machine is free again —
    /// an upper bound on when any schedule tail can start fresh.
    pub fn all_free_from(&self, from: u64) -> u64 {
        for &(time, free) in self.steps.iter().rev() {
            if free < self.capacity {
                // The machine is fully free only after the last constrained
                // segment; find the following breakpoint.
                let idx = self.steps.iter().position(|&s| s.0 == time).unwrap();
                return match self.steps.get(idx + 1) {
                    Some(&(next, _)) => next.max(from),
                    None => u64::MAX, // constrained forever
                };
            }
        }
        from
    }

    /// Checks internal invariants; used by debug assertions and tests.
    pub fn check_invariants(&self) -> Result<(), String> {
        if self.steps.is_empty() {
            return Err("profile has no steps".into());
        }
        if self.steps[0].0 != 0 {
            return Err(format!("first step at {} != 0", self.steps[0].0));
        }
        for w in self.steps.windows(2) {
            if w[0].0 >= w[1].0 {
                return Err(format!("non-increasing times {} -> {}", w[0].0, w[1].0));
            }
            if w[0].1 == w[1].1 {
                return Err(format!("uncoalesced equal steps at {}", w[1].0));
            }
        }
        if self.steps.iter().any(|&(_, f)| f > self.capacity) {
            return Err("free exceeds capacity".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn fresh_profile_is_fully_free() {
        let p = ResourceProfile::new(8);
        assert_eq!(p.free_at(0), 8);
        assert_eq!(p.free_at(u64::MAX - 1), 8);
        assert_eq!(p.min_free(0, 1_000_000), 8);
        p.check_invariants().unwrap();
    }

    #[test]
    fn allocate_reduces_free_in_window_only() {
        let mut p = ResourceProfile::new(8);
        p.allocate(10, 20, 3);
        assert_eq!(p.free_at(9), 8);
        assert_eq!(p.free_at(10), 5);
        assert_eq!(p.free_at(19), 5);
        assert_eq!(p.free_at(20), 8);
        p.check_invariants().unwrap();
    }

    #[test]
    fn overlapping_allocations_stack() {
        let mut p = ResourceProfile::new(8);
        p.allocate(0, 100, 2);
        p.allocate(50, 150, 4);
        assert_eq!(p.free_at(0), 6);
        assert_eq!(p.free_at(50), 2);
        assert_eq!(p.free_at(100), 4);
        assert_eq!(p.free_at(150), 8);
        assert_eq!(p.min_free(0, 200), 2);
        p.check_invariants().unwrap();
    }

    #[test]
    #[should_panic(expected = "overcommit")]
    fn allocate_panics_on_overcommit() {
        let mut p = ResourceProfile::new(4);
        p.allocate(0, 10, 3);
        p.allocate(5, 15, 2);
    }

    #[test]
    fn release_restores_capacity() {
        let mut p = ResourceProfile::new(8);
        p.allocate(0, 100, 5);
        p.release(20, 60, 5);
        assert_eq!(p.free_at(10), 3);
        assert_eq!(p.free_at(30), 8);
        assert_eq!(p.free_at(70), 3);
        p.check_invariants().unwrap();
    }

    #[test]
    fn release_clamps_at_capacity() {
        let mut p = ResourceProfile::new(8);
        p.release(0, 10, 100);
        assert_eq!(p.free_at(5), 8);
        p.check_invariants().unwrap();
    }

    #[test]
    fn earliest_fit_on_empty_machine_is_immediate() {
        let p = ResourceProfile::new(8);
        assert_eq!(p.earliest_fit(42, 100, 8), Some(42));
    }

    #[test]
    fn earliest_fit_waits_for_release() {
        let mut p = ResourceProfile::new(8);
        p.allocate(0, 100, 6);
        // width 4 doesn't fit before t=100
        assert_eq!(p.earliest_fit(0, 10, 4), Some(100));
        // width 2 fits right away
        assert_eq!(p.earliest_fit(0, 10, 2), Some(0));
    }

    #[test]
    fn earliest_fit_finds_hole_between_reservations() {
        let mut p = ResourceProfile::new(8);
        p.allocate(0, 50, 6); // free 2 in [0,50)
        p.allocate(80, 200, 6); // free 2 in [80,200)
                                // width 4, duration 30 fits only in the hole [50, 80).
        assert_eq!(p.earliest_fit(0, 30, 4), Some(50));
        // duration 40 does not fit in the hole; must wait until 200.
        assert_eq!(p.earliest_fit(0, 40, 4), Some(200));
    }

    #[test]
    fn earliest_fit_respects_earliest_bound() {
        let p = ResourceProfile::new(8);
        assert_eq!(p.earliest_fit(1000, 10, 1), Some(1000));
    }

    #[test]
    fn earliest_fit_too_wide_is_none() {
        let p = ResourceProfile::new(8);
        assert_eq!(p.earliest_fit(0, 10, 9), None);
    }

    #[test]
    fn earliest_fit_zero_duration_checks_instant() {
        let mut p = ResourceProfile::new(8);
        p.allocate(0, 100, 8);
        // duration 0 is treated as one second of occupancy.
        assert_eq!(p.earliest_fit(0, 0, 1), Some(100));
    }

    #[test]
    fn min_free_empty_interval_is_capacity() {
        let mut p = ResourceProfile::new(8);
        p.allocate(0, 10, 8);
        assert_eq!(p.min_free(5, 5), 8);
    }

    #[test]
    fn adjacent_equal_segments_coalesce() {
        let mut p = ResourceProfile::new(8);
        p.allocate(0, 10, 3);
        p.allocate(10, 20, 3);
        // [0,20) at 5 free should be a single segment.
        assert_eq!(p.steps().len(), 2);
        p.check_invariants().unwrap();
    }

    #[test]
    fn all_free_from_finds_tail() {
        let mut p = ResourceProfile::new(8);
        p.allocate(10, 90, 1);
        assert_eq!(p.all_free_from(0), 90);
        assert_eq!(p.all_free_from(200), 200);
        let q = ResourceProfile::new(8);
        assert_eq!(q.all_free_from(5), 5);
    }

    #[test]
    fn capacity_zero_profile_never_fits() {
        let p = ResourceProfile::new(0);
        assert_eq!(p.earliest_fit(0, 10, 1), None);
        assert_eq!(p.earliest_fit(0, 10, 0), Some(0));
    }

    #[test]
    fn zero_width_fits_anywhere_even_on_full_machine() {
        let mut p = ResourceProfile::new(8);
        p.allocate(0, 1_000, 8);
        assert_eq!(p.earliest_fit(0, 50, 0), Some(0));
        assert_eq!(p.earliest_fit(123, 50, 0), Some(123));
        assert_eq!(p.earliest_fit_probed(0, 50, 0), (Some(0), 0));
    }

    #[test]
    fn blocked_forever_tail_is_none() {
        // The *last* segment blocks and extends to infinity: the scan must
        // terminate with None instead of walking off the end. Such a
        // profile cannot be built with allocate (which always restores
        // capacity after the reservation), so construct it directly.
        let p = ResourceProfile {
            capacity: 8,
            steps: vec![(0, 8), (50, 2)],
        };
        p.check_invariants().unwrap();
        assert_eq!(p.earliest_fit(0, 100, 4), None);
        assert_eq!(p.earliest_fit(60, 1, 4), None);
        assert_eq!(p.earliest_fit_naive(0, 100, 4), None);
        // A narrow job still fits in the eternal tail.
        assert_eq!(p.earliest_fit(0, 100, 2), Some(0));
        assert_eq!(p.earliest_fit(60, 1000, 2), Some(60));
        // And a wide job fits only in the unconstrained head window.
        assert_eq!(p.earliest_fit(0, 50, 4), Some(0));
    }

    #[test]
    fn skip_scan_jumps_blocking_runs_with_bounded_probes() {
        // 100 consecutive blocking segments of alternating fullness; the
        // skip-scan must pass the whole run with one probe per segment.
        let mut p = ResourceProfile::new(8);
        for k in 0..100u64 {
            let width = if k % 2 == 0 { 7 } else { 6 };
            p.allocate(k * 10, (k + 1) * 10, width);
        }
        let (start, probes) = p.earliest_fit_probed(0, 5, 4);
        assert_eq!(start, Some(1000));
        // One probe per visited segment plus the entry probe — far below
        // what per-segment restarts with binary searches would cost.
        assert!(probes <= p.steps().len() as u64 + 1, "probes = {probes}");
    }

    #[test]
    fn compress_before_preserves_future_queries() {
        let mut p = ResourceProfile::new(16);
        p.allocate(0, 40, 3);
        p.allocate(10, 70, 5);
        p.allocate(65, 90, 2);
        let reference = p.clone();
        p.compress_before(50);
        p.check_invariants().unwrap();
        assert!(p.steps().len() <= reference.steps().len());
        for t in 50..120 {
            assert_eq!(p.free_at(t), reference.free_at(t), "free_at({t})");
        }
        for dur in [1u64, 5, 30] {
            for width in [1u32, 4, 9, 16] {
                assert_eq!(
                    p.earliest_fit(50, dur, width),
                    reference.earliest_fit(50, dur, width),
                    "fit from 50, dur {dur}, width {width}"
                );
            }
        }
    }

    #[test]
    fn compress_before_zero_or_first_segment_is_noop() {
        let mut p = ResourceProfile::new(8);
        p.allocate(100, 200, 4);
        let reference = p.clone();
        p.compress_before(0);
        assert_eq!(p, reference);
        p.compress_before(99);
        assert_eq!(p, reference);
    }

    /// Random profile construction shared by the proptests: a machine of
    /// `cap` resources with `allocs` reservations stacked wherever they fit.
    fn random_profile(cap: u32, allocs: &[(u64, u64, u32)]) -> ResourceProfile {
        let mut p = ResourceProfile::new(cap);
        for &(start, len, width) in allocs {
            let len = len.max(1);
            if let Some(t) = p.earliest_fit(start, len, width) {
                p.allocate(t, t.saturating_add(len), width);
            }
        }
        p.check_invariants().unwrap();
        p
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(128))]

        #[test]
        fn fit_never_overlaps_a_blocked_segment(
            cap in 1u32..=32,
            allocs in prop::collection::vec((0u64..500, 1u64..80, 1u32..=16), 0..12),
            earliest in 0u64..300,
            duration in 1u64..100,
            width in 1u32..=32,
        ) {
            let p = random_profile(cap, &allocs);
            prop_assume!(width <= cap);
            if let Some(t) = p.earliest_fit(earliest, duration, width) {
                prop_assert!(t >= earliest);
                prop_assert!(
                    p.min_free(t, t.saturating_add(duration.max(1))) >= width,
                    "start {t} overlaps a segment with free < {width}"
                );
            }
        }

        #[test]
        fn fit_is_minimal(
            cap in 1u32..=32,
            allocs in prop::collection::vec((0u64..500, 1u64..80, 1u32..=16), 0..12),
            earliest in 0u64..300,
            duration in 1u64..100,
            width in 1u32..=32,
        ) {
            let p = random_profile(cap, &allocs);
            prop_assume!(width <= cap);
            if let Some(t) = p.earliest_fit(earliest, duration, width) {
                // No feasible start exists strictly before t: it suffices to
                // check segment left edges in [earliest, t) plus `earliest`
                // itself, since feasibility within a segment is monotone.
                let need = duration.max(1);
                let feasible =
                    |s: u64| p.min_free(s, s.saturating_add(need)) >= width;
                prop_assert!(t == earliest || !feasible(earliest),
                    "earlier start {earliest} feasible but fit returned {t}");
                for &(time, _) in p.steps() {
                    if time > earliest && time < t {
                        prop_assert!(!feasible(time),
                            "earlier start {time} feasible but fit returned {t}");
                    }
                }
            }
        }

        #[test]
        fn skip_scan_equals_naive_scan(
            cap in 1u32..=32,
            allocs in prop::collection::vec((0u64..500, 1u64..80, 1u32..=16), 0..12),
            earliest in 0u64..600,
            duration in 0u64..100,
            width in 0u32..=40,
        ) {
            let p = random_profile(cap, &allocs);
            prop_assert_eq!(
                p.earliest_fit(earliest, duration, width),
                p.earliest_fit_naive(earliest, duration, width)
            );
        }

        #[test]
        fn compress_before_is_transparent_for_future_fits(
            cap in 1u32..=32,
            allocs in prop::collection::vec((0u64..500, 1u64..80, 1u32..=16), 0..12),
            cut in 0u64..400,
            duration in 1u64..100,
            width in 1u32..=32,
        ) {
            let p = random_profile(cap, &allocs);
            let mut q = p.clone();
            q.compress_before(cut);
            q.check_invariants().map_err(TestCaseError::Fail)?;
            prop_assert_eq!(
                q.earliest_fit(cut, duration, width),
                p.earliest_fit(cut, duration, width)
            );
        }
    }
}
