//! Step-function resource availability over time.
//!
//! A [`ResourceProfile`] answers "how many resources are free from time `t`
//! on?" and supports carving reservations out of the future — the core
//! operation of a planning-based scheduler. Constraint (4) of the paper's
//! integer program ("the machine consists of `M_t` resources in total …
//! reduced according to the machine history") is exactly a capacity lookup
//! against this structure.
//!
//! Representation: a sorted list of `(time, free)` breakpoints; the value at
//! a breakpoint holds until the next breakpoint, and the last value extends
//! to infinity. Adjacent breakpoints with equal values are coalesced, so the
//! list length is bounded by the number of distinct reservation edges.

/// Time-varying count of free resources, as a right-open step function.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ResourceProfile {
    /// Total resources of the machine; `free` can never exceed this.
    capacity: u32,
    /// Breakpoints `(time, free)`, strictly increasing in time, first entry
    /// at time 0. Never empty.
    steps: Vec<(u64, u32)>,
}

impl ResourceProfile {
    /// A fully free machine of `capacity` resources.
    pub fn new(capacity: u32) -> Self {
        ResourceProfile {
            capacity,
            steps: vec![(0, capacity)],
        }
    }

    /// Total machine capacity.
    pub fn capacity(&self) -> u32 {
        self.capacity
    }

    /// The breakpoints of the step function (time, free-from-then-on).
    pub fn steps(&self) -> &[(u64, u32)] {
        &self.steps
    }

    /// Index of the segment containing time `t`.
    fn segment_index(&self, t: u64) -> usize {
        // partition_point returns the first index with step.0 > t; the
        // segment containing t is the one before it.
        self.steps.partition_point(|&(time, _)| time <= t) - 1
    }

    /// Free resources at time `t`.
    pub fn free_at(&self, t: u64) -> u32 {
        self.steps[self.segment_index(t)].1
    }

    /// Minimum free resources over `[start, end)`. An empty interval is
    /// unconstrained, i.e. returns the capacity.
    pub fn min_free(&self, start: u64, end: u64) -> u32 {
        if start >= end {
            return self.capacity;
        }
        let mut min = u32::MAX;
        let first = self.segment_index(start);
        for &(time, free) in &self.steps[first..] {
            if time >= end {
                break;
            }
            min = min.min(free);
        }
        min
    }

    /// Whether a job of `width` resources fits in `[start, start+duration)`.
    pub fn fits(&self, start: u64, duration: u64, width: u32) -> bool {
        width <= self.min_free(start, start.saturating_add(duration))
    }

    /// Earliest start `t >= earliest` such that `width` resources are free
    /// throughout `[t, t+duration)`, or `None` if `width` exceeds the
    /// machine capacity. Zero-duration jobs fit anywhere `width` is free at
    /// a single instant.
    pub fn earliest_fit(&self, earliest: u64, duration: u64, width: u32) -> Option<u64> {
        if width > self.capacity {
            return None;
        }
        if width == 0 {
            return Some(earliest);
        }
        let mut t = earliest;
        'outer: loop {
            let end = t.saturating_add(duration.max(1));
            let first = self.segment_index(t);
            for (i, &(time, free)) in self.steps[first..].iter().enumerate() {
                if time >= end {
                    break;
                }
                if free < width {
                    // Blocked: restart after the blocking segment ends.
                    let seg = first + i;
                    match self.steps.get(seg + 1) {
                        Some(&(next_time, _)) => {
                            t = next_time;
                            continue 'outer;
                        }
                        // The last segment blocks and lasts forever; since
                        // width <= capacity this only happens if the profile
                        // never returns to enough capacity.
                        None => return None,
                    }
                }
            }
            return Some(t);
        }
    }

    /// Removes `width` resources over `[start, end)`.
    ///
    /// # Panics
    /// Panics if the interval is empty or the reservation would drive any
    /// segment negative — callers must check with [`Self::fits`] first; a
    /// violation is a scheduler bug, not a recoverable condition.
    pub fn allocate(&mut self, start: u64, end: u64, width: u32) {
        assert!(start < end, "allocate: empty interval [{start}, {end})");
        if width == 0 {
            return;
        }
        self.split_at(start);
        self.split_at(end);
        for step in &mut self.steps {
            if step.0 >= start && step.0 < end {
                assert!(
                    step.1 >= width,
                    "allocate: overcommit at t={} (free {}, need {})",
                    step.0,
                    step.1,
                    width
                );
                step.1 -= width;
            }
        }
        self.coalesce();
    }

    /// Adds `width` resources back over `[start, end)`, clamped at capacity.
    /// Used when building profiles from release events rather than
    /// reservations.
    pub fn release(&mut self, start: u64, end: u64, width: u32) {
        assert!(start < end, "release: empty interval [{start}, {end})");
        if width == 0 {
            return;
        }
        self.split_at(start);
        self.split_at(end);
        for step in &mut self.steps {
            if step.0 >= start && step.0 < end {
                step.1 = (step.1 + width).min(self.capacity);
            }
        }
        self.coalesce();
    }

    /// Ensures a breakpoint exists at time `t`.
    fn split_at(&mut self, t: u64) {
        let idx = self.segment_index(t);
        if self.steps[idx].0 != t {
            let free = self.steps[idx].1;
            self.steps.insert(idx + 1, (t, free));
        }
    }

    /// Merges adjacent breakpoints with equal free counts.
    fn coalesce(&mut self) {
        self.steps.dedup_by(|next, prev| next.1 == prev.1);
    }

    /// First time `>= from` at which the whole machine is free again —
    /// an upper bound on when any schedule tail can start fresh.
    pub fn all_free_from(&self, from: u64) -> u64 {
        for &(time, free) in self.steps.iter().rev() {
            if free < self.capacity {
                // The machine is fully free only after the last constrained
                // segment; find the following breakpoint.
                let idx = self.steps.iter().position(|&s| s.0 == time).unwrap();
                return match self.steps.get(idx + 1) {
                    Some(&(next, _)) => next.max(from),
                    None => u64::MAX, // constrained forever
                };
            }
        }
        from
    }

    /// Checks internal invariants; used by debug assertions and tests.
    pub fn check_invariants(&self) -> Result<(), String> {
        if self.steps.is_empty() {
            return Err("profile has no steps".into());
        }
        if self.steps[0].0 != 0 {
            return Err(format!("first step at {} != 0", self.steps[0].0));
        }
        for w in self.steps.windows(2) {
            if w[0].0 >= w[1].0 {
                return Err(format!("non-increasing times {} -> {}", w[0].0, w[1].0));
            }
            if w[0].1 == w[1].1 {
                return Err(format!("uncoalesced equal steps at {}", w[1].0));
            }
        }
        if self.steps.iter().any(|&(_, f)| f > self.capacity) {
            return Err("free exceeds capacity".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_profile_is_fully_free() {
        let p = ResourceProfile::new(8);
        assert_eq!(p.free_at(0), 8);
        assert_eq!(p.free_at(u64::MAX - 1), 8);
        assert_eq!(p.min_free(0, 1_000_000), 8);
        p.check_invariants().unwrap();
    }

    #[test]
    fn allocate_reduces_free_in_window_only() {
        let mut p = ResourceProfile::new(8);
        p.allocate(10, 20, 3);
        assert_eq!(p.free_at(9), 8);
        assert_eq!(p.free_at(10), 5);
        assert_eq!(p.free_at(19), 5);
        assert_eq!(p.free_at(20), 8);
        p.check_invariants().unwrap();
    }

    #[test]
    fn overlapping_allocations_stack() {
        let mut p = ResourceProfile::new(8);
        p.allocate(0, 100, 2);
        p.allocate(50, 150, 4);
        assert_eq!(p.free_at(0), 6);
        assert_eq!(p.free_at(50), 2);
        assert_eq!(p.free_at(100), 4);
        assert_eq!(p.free_at(150), 8);
        assert_eq!(p.min_free(0, 200), 2);
        p.check_invariants().unwrap();
    }

    #[test]
    #[should_panic(expected = "overcommit")]
    fn allocate_panics_on_overcommit() {
        let mut p = ResourceProfile::new(4);
        p.allocate(0, 10, 3);
        p.allocate(5, 15, 2);
    }

    #[test]
    fn release_restores_capacity() {
        let mut p = ResourceProfile::new(8);
        p.allocate(0, 100, 5);
        p.release(20, 60, 5);
        assert_eq!(p.free_at(10), 3);
        assert_eq!(p.free_at(30), 8);
        assert_eq!(p.free_at(70), 3);
        p.check_invariants().unwrap();
    }

    #[test]
    fn release_clamps_at_capacity() {
        let mut p = ResourceProfile::new(8);
        p.release(0, 10, 100);
        assert_eq!(p.free_at(5), 8);
        p.check_invariants().unwrap();
    }

    #[test]
    fn earliest_fit_on_empty_machine_is_immediate() {
        let p = ResourceProfile::new(8);
        assert_eq!(p.earliest_fit(42, 100, 8), Some(42));
    }

    #[test]
    fn earliest_fit_waits_for_release() {
        let mut p = ResourceProfile::new(8);
        p.allocate(0, 100, 6);
        // width 4 doesn't fit before t=100
        assert_eq!(p.earliest_fit(0, 10, 4), Some(100));
        // width 2 fits right away
        assert_eq!(p.earliest_fit(0, 10, 2), Some(0));
    }

    #[test]
    fn earliest_fit_finds_hole_between_reservations() {
        let mut p = ResourceProfile::new(8);
        p.allocate(0, 50, 6); // free 2 in [0,50)
        p.allocate(80, 200, 6); // free 2 in [80,200)
                                // width 4, duration 30 fits only in the hole [50, 80).
        assert_eq!(p.earliest_fit(0, 30, 4), Some(50));
        // duration 40 does not fit in the hole; must wait until 200.
        assert_eq!(p.earliest_fit(0, 40, 4), Some(200));
    }

    #[test]
    fn earliest_fit_respects_earliest_bound() {
        let p = ResourceProfile::new(8);
        assert_eq!(p.earliest_fit(1000, 10, 1), Some(1000));
    }

    #[test]
    fn earliest_fit_too_wide_is_none() {
        let p = ResourceProfile::new(8);
        assert_eq!(p.earliest_fit(0, 10, 9), None);
    }

    #[test]
    fn earliest_fit_zero_duration_checks_instant() {
        let mut p = ResourceProfile::new(8);
        p.allocate(0, 100, 8);
        // duration 0 is treated as one second of occupancy.
        assert_eq!(p.earliest_fit(0, 0, 1), Some(100));
    }

    #[test]
    fn min_free_empty_interval_is_capacity() {
        let mut p = ResourceProfile::new(8);
        p.allocate(0, 10, 8);
        assert_eq!(p.min_free(5, 5), 8);
    }

    #[test]
    fn adjacent_equal_segments_coalesce() {
        let mut p = ResourceProfile::new(8);
        p.allocate(0, 10, 3);
        p.allocate(10, 20, 3);
        // [0,20) at 5 free should be a single segment.
        assert_eq!(p.steps().len(), 2);
        p.check_invariants().unwrap();
    }

    #[test]
    fn all_free_from_finds_tail() {
        let mut p = ResourceProfile::new(8);
        p.allocate(10, 90, 1);
        assert_eq!(p.all_free_from(0), 90);
        assert_eq!(p.all_free_from(200), 200);
        let q = ResourceProfile::new(8);
        assert_eq!(q.all_free_from(5), 5);
    }

    #[test]
    fn capacity_zero_profile_never_fits() {
        let p = ResourceProfile::new(0);
        assert_eq!(p.earliest_fit(0, 10, 1), None);
        assert_eq!(p.earliest_fit(0, 10, 0), Some(0));
    }
}
