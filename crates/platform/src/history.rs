//! The machine history of §3.1 / Figure 1: when do running jobs release
//! their resources?
//!
//! Quoting the paper: *"The history of resource usage is a list of tuples. A
//! tuple consists of a time stamp and the number of resources that are free
//! from that time on. … The number of free resources are increasing
//! monotonously as only already running jobs are considered. And if more
//! than one job ends at the same time, a single time stamp is sufficient.
//! Note, the estimated duration of already running jobs has to be used for
//! generating the time stamps."*
//!
//! A [`MachineHistory`] is therefore a compact, monotone list of
//! [`HistoryPoint`]s starting at "now". It converts into a
//! [`ResourceProfile`] for the planner and
//! provides the per-slot capacities `M_t` for the integer program.

use crate::profile::ResourceProfile;

/// One `(time stamp, free resources)` tuple of the machine history.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct HistoryPoint {
    /// Absolute time in seconds at which `free` resources become available.
    pub time: u64,
    /// Number of free resources from `time` on (until the next point).
    pub free: u32,
}

/// Monotone machine history: free resources over time, considering only
/// already-running jobs.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MachineHistory {
    capacity: u32,
    /// Points with strictly increasing `time` and strictly increasing
    /// `free`; the first point is at the observation time ("now") and the
    /// last has `free == capacity`.
    points: Vec<HistoryPoint>,
}

impl MachineHistory {
    /// Builds the history of a machine with `capacity` resources observed at
    /// time `now`, given the running jobs as `(width, estimated_end)` pairs.
    ///
    /// Estimated ends at or before `now` are treated as releasing at
    /// `now + 1`: the job *should* have ended but is still occupying
    /// resources, and a planning system keeps its reservation one step
    /// ahead. Jobs wider than remaining capacity are a caller bug.
    pub fn build(capacity: u32, now: u64, running: &[(u32, u64)]) -> MachineHistory {
        let mut releases: Vec<(u64, u32)> = running
            .iter()
            .map(|&(width, est_end)| (est_end.max(now + 1), width))
            .collect();
        releases.sort_unstable();
        let busy: u64 = running.iter().map(|&(w, _)| w as u64).sum();
        assert!(
            busy <= capacity as u64,
            "running jobs occupy {busy} > capacity {capacity}"
        );
        let mut points = vec![HistoryPoint {
            time: now,
            free: capacity - busy as u32,
        }];
        let mut free = capacity - busy as u32;
        let mut i = 0;
        while i < releases.len() {
            let t = releases[i].0;
            let mut released = 0u32;
            // Coalesce all jobs ending at the same time stamp.
            while i < releases.len() && releases[i].0 == t {
                released += releases[i].1;
                i += 1;
            }
            free += released;
            points.push(HistoryPoint { time: t, free });
        }
        MachineHistory { capacity, points }
    }

    /// An empty history: machine fully free from `now` on.
    pub fn empty(capacity: u32, now: u64) -> MachineHistory {
        MachineHistory::build(capacity, now, &[])
    }

    /// Total machine capacity.
    pub fn capacity(&self) -> u32 {
        self.capacity
    }

    /// Observation time ("now"): the time stamp of the first point.
    pub fn now(&self) -> u64 {
        self.points[0].time
    }

    /// The history tuples, in increasing time and free order.
    pub fn points(&self) -> &[HistoryPoint] {
        &self.points
    }

    /// Free resources at absolute time `t >= now()`.
    pub fn free_at(&self, t: u64) -> u32 {
        debug_assert!(t >= self.now(), "query before observation time");
        let idx = self.points.partition_point(|p| p.time <= t);
        if idx == 0 {
            self.points[0].free
        } else {
            self.points[idx - 1].free
        }
    }

    /// Time at which the last running job releases its resources (equals
    /// `now()` when nothing is running).
    pub fn drained_at(&self) -> u64 {
        self.points.last().unwrap().time
    }

    /// Converts to a [`ResourceProfile`] over absolute time: full capacity
    /// before `now()` is irrelevant to planners (they never place jobs in
    /// the past), so the profile simply carves out the busy intervals.
    pub fn to_profile(&self) -> ResourceProfile {
        let mut profile = ResourceProfile::new(self.capacity);
        for w in self.points.windows(2) {
            let busy = self.capacity - w[0].free;
            if busy > 0 {
                profile.allocate(w[0].time, w[1].time, busy);
            }
        }
        // The interval from the last release onward is fully free; the
        // interval before `now` is never consulted. But the segment at the
        // last point may still be busy if free < capacity (never happens by
        // construction; the final point always reaches capacity).
        debug_assert_eq!(self.points.last().unwrap().free, self.capacity);
        profile
    }

    /// Checks the paper's invariants: strictly increasing time stamps,
    /// strictly increasing free counts, final point at full capacity.
    pub fn check_invariants(&self) -> Result<(), String> {
        if self.points.is_empty() {
            return Err("history has no points".into());
        }
        for w in self.points.windows(2) {
            if w[0].time >= w[1].time {
                return Err(format!(
                    "time stamps not strictly increasing: {} -> {}",
                    w[0].time, w[1].time
                ));
            }
            if w[0].free >= w[1].free {
                return Err(format!(
                    "free counts not strictly increasing: {} -> {}",
                    w[0].free, w[1].free
                ));
            }
        }
        let last = self.points.last().unwrap();
        if last.free != self.capacity {
            return Err(format!(
                "final free {} != capacity {}",
                last.free, self.capacity
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_history_is_single_full_point() {
        let h = MachineHistory::empty(16, 100);
        assert_eq!(h.points().len(), 1);
        assert_eq!(h.free_at(100), 16);
        assert_eq!(h.drained_at(), 100);
        h.check_invariants().unwrap();
    }

    #[test]
    fn history_matches_figure_1_shape() {
        // Three running jobs: widths 4, 2, 6 ending at 50, 80, 80.
        let h = MachineHistory::build(16, 10, &[(4, 50), (2, 80), (6, 80)]);
        assert_eq!(
            h.points(),
            &[
                HistoryPoint { time: 10, free: 4 },
                HistoryPoint { time: 50, free: 8 },
                HistoryPoint { time: 80, free: 16 },
            ]
        );
        h.check_invariants().unwrap();
    }

    #[test]
    fn simultaneous_ends_share_a_time_stamp() {
        let h = MachineHistory::build(8, 0, &[(2, 30), (3, 30)]);
        assert_eq!(h.points().len(), 2);
        assert_eq!(h.free_at(0), 3);
        assert_eq!(h.free_at(30), 8);
    }

    #[test]
    fn overdue_jobs_release_just_after_now() {
        // A job whose estimate already passed still holds resources.
        let h = MachineHistory::build(8, 100, &[(5, 90)]);
        assert_eq!(h.free_at(100), 3);
        assert_eq!(h.free_at(101), 8);
        h.check_invariants().unwrap();
    }

    #[test]
    #[should_panic(expected = "occupy")]
    fn overcommitted_running_set_panics() {
        MachineHistory::build(4, 0, &[(3, 10), (3, 20)]);
    }

    #[test]
    fn free_at_steps_through_releases() {
        let h = MachineHistory::build(10, 0, &[(4, 100), (3, 200)]);
        assert_eq!(h.free_at(0), 3);
        assert_eq!(h.free_at(99), 3);
        assert_eq!(h.free_at(100), 7);
        assert_eq!(h.free_at(199), 7);
        assert_eq!(h.free_at(200), 10);
        assert_eq!(h.free_at(10_000), 10);
    }

    #[test]
    fn to_profile_reproduces_history() {
        let h = MachineHistory::build(10, 5, &[(4, 100), (3, 200)]);
        let p = h.to_profile();
        assert_eq!(p.free_at(5), 3);
        assert_eq!(p.free_at(150), 7);
        assert_eq!(p.free_at(200), 10);
        p.check_invariants().unwrap();
    }

    #[test]
    fn profile_from_empty_history_is_free() {
        let p = MachineHistory::empty(10, 5).to_profile();
        assert_eq!(p.free_at(5), 10);
    }

    #[test]
    fn drained_at_is_last_release() {
        let h = MachineHistory::build(10, 0, &[(1, 500), (1, 90)]);
        assert_eq!(h.drained_at(), 500);
    }
}
