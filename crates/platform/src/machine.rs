//! The live cluster: tracks which jobs are running *now* and renders the
//! machine history the planner and the integer program consume.
//!
//! During simulation the [`Machine`] is the single source of truth for
//! resource occupancy. Jobs start (allocating `width` resources), run for
//! their *actual* duration, and release on completion; the machine history
//! is always derived from their *estimated* ends (§3.1), because that is all
//! a real RMS knows.

use std::fmt;

use crate::history::MachineHistory;
use dynp_trace::{Job, JobId};

/// A machine-state transition that cannot be applied.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MachineError {
    /// [`Machine::complete`] was called for a job that is not running —
    /// a double completion, or a completion for a job never started.
    NotRunning(JobId),
}

impl fmt::Display for MachineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MachineError::NotRunning(id) => {
                write!(f, "completing {id:?} which is not running")
            }
        }
    }
}

impl std::error::Error for MachineError {}

/// A job currently occupying resources.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RunningJob {
    /// Job id.
    pub id: JobId,
    /// Resources occupied.
    pub width: u32,
    /// Absolute start time.
    pub start: u64,
    /// Estimated end = start + estimated duration (what the planner sees).
    pub estimated_end: u64,
    /// Actual end = start + effective duration (when the completion event
    /// really fires).
    pub actual_end: u64,
}

/// A cluster of identical resources with a running-job set.
#[derive(Clone, Debug)]
pub struct Machine {
    capacity: u32,
    free: u32,
    running: Vec<RunningJob>,
}

impl Machine {
    /// A fully idle machine with `capacity` resources.
    pub fn new(capacity: u32) -> Machine {
        Machine {
            capacity,
            free: capacity,
            running: Vec::new(),
        }
    }

    /// Total resources.
    pub fn capacity(&self) -> u32 {
        self.capacity
    }

    /// Resources free right now.
    pub fn free(&self) -> u32 {
        self.free
    }

    /// Resources busy right now.
    pub fn busy(&self) -> u32 {
        self.capacity - self.free
    }

    /// Jobs currently running.
    pub fn running(&self) -> &[RunningJob] {
        &self.running
    }

    /// Whether a job of `width` can start immediately.
    pub fn can_start(&self, width: u32) -> bool {
        width <= self.free
    }

    /// Starts `job` at time `now`, returning its completion time.
    ///
    /// # Panics
    /// Panics if the job does not fit — the scheduler must only dispatch
    /// jobs it has planned onto free resources.
    pub fn start(&mut self, job: &Job, now: u64) -> u64 {
        assert!(
            self.can_start(job.width),
            "machine overcommit: starting {:?} (width {}) with {} free",
            job.id,
            job.width,
            self.free
        );
        self.free -= job.width;
        let actual_end = now + job.effective_duration();
        self.running.push(RunningJob {
            id: job.id,
            width: job.width,
            start: now,
            estimated_end: now + job.estimated_duration,
            actual_end,
        });
        actual_end
    }

    /// Completes the running job `id`, releasing its resources. Returns the
    /// released record, or [`MachineError::NotRunning`] if no such job is
    /// running (a double completion must not corrupt the free count, let
    /// alone abort a simulation).
    pub fn complete(&mut self, id: JobId) -> Result<RunningJob, MachineError> {
        let idx = self
            .running
            .iter()
            .position(|r| r.id == id)
            .ok_or(MachineError::NotRunning(id))?;
        let record = self.running.swap_remove(idx);
        self.free += record.width;
        Ok(record)
    }

    /// Renders the machine history at time `now` from the running set's
    /// **estimated** ends, as §3.1 prescribes.
    pub fn history(&self, now: u64) -> MachineHistory {
        let running: Vec<(u32, u64)> = self
            .running
            .iter()
            .map(|r| (r.width, r.estimated_end))
            .collect();
        MachineHistory::build(self.capacity, now, &running)
    }

    /// Utilization right now, in `[0, 1]`.
    pub fn utilization(&self) -> f64 {
        if self.capacity == 0 {
            0.0
        } else {
            self.busy() as f64 / self.capacity as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dynp_trace::Job;

    #[test]
    fn start_and_complete_roundtrip() {
        let mut m = Machine::new(10);
        let j = Job::exact(1, 0, 4, 100);
        let end = m.start(&j, 50);
        assert_eq!(end, 150);
        assert_eq!(m.free(), 6);
        assert_eq!(m.busy(), 4);
        let rec = m.complete(JobId(1)).unwrap();
        assert_eq!(rec.width, 4);
        assert_eq!(m.free(), 10);
        assert!(m.running().is_empty());
    }

    #[test]
    fn actual_end_uses_effective_duration() {
        let mut m = Machine::new(10);
        // Estimate 100 but actually runs 60.
        let j = Job::new(1, 0, 2, 100, 60);
        let end = m.start(&j, 0);
        assert_eq!(end, 60);
        // The history still uses the estimate.
        let h = m.history(10);
        assert_eq!(h.free_at(10), 8);
        assert_eq!(h.free_at(100), 10);
    }

    #[test]
    fn overrunning_job_is_capped_at_estimate() {
        let mut m = Machine::new(10);
        let j = Job::new(1, 0, 2, 100, 150);
        assert_eq!(m.start(&j, 0), 100);
    }

    #[test]
    #[should_panic(expected = "overcommit")]
    fn start_panics_when_too_wide() {
        let mut m = Machine::new(4);
        m.start(&Job::exact(1, 0, 3, 10), 0);
        m.start(&Job::exact(2, 0, 2, 10), 0);
    }

    #[test]
    fn complete_unknown_job_is_a_typed_error() {
        let mut m = Machine::new(4);
        assert_eq!(m.complete(JobId(7)), Err(MachineError::NotRunning(JobId(7))));
    }

    #[test]
    fn double_completion_leaves_state_intact() {
        let mut m = Machine::new(4);
        m.start(&Job::exact(1, 0, 3, 10), 0);
        assert!(m.complete(JobId(1)).is_ok());
        // The second completion is refused and the free count does not
        // drift past capacity.
        assert_eq!(m.complete(JobId(1)), Err(MachineError::NotRunning(JobId(1))));
        assert_eq!(m.free(), 4);
    }

    #[test]
    fn can_start_checks_current_free() {
        let mut m = Machine::new(4);
        assert!(m.can_start(4));
        m.start(&Job::exact(1, 0, 3, 10), 0);
        assert!(m.can_start(1));
        assert!(!m.can_start(2));
    }

    #[test]
    fn history_of_idle_machine_is_trivial() {
        let m = Machine::new(16);
        let h = m.history(42);
        assert_eq!(h.points().len(), 1);
        assert_eq!(h.free_at(42), 16);
    }

    #[test]
    fn utilization_tracks_busy_fraction() {
        let mut m = Machine::new(10);
        assert_eq!(m.utilization(), 0.0);
        m.start(&Job::exact(1, 0, 5, 10), 0);
        assert!((m.utilization() - 0.5).abs() < 1e-12);
        assert_eq!(Machine::new(0).utilization(), 0.0);
    }
}
