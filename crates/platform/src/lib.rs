//! Machine substrate: the cluster model, the time-varying availability
//! profile, and the *machine history* of §3.1 / Figure 1 of the paper.
//!
//! The paper's planning-based RMS (CCS) plans present **and future**
//! resource usage. Two closely related structures support that:
//!
//! * [`profile::ResourceProfile`] — a step function "free resources over
//!   time" that the planner carves job reservations out of, and
//! * [`history::MachineHistory`] — the monotone list of `(time stamp, free
//!   resources)` tuples describing when currently *running* jobs release
//!   their resources (Figure 1). A history is just the profile restricted to
//!   already-running jobs, using their **estimated** completion times.
//!
//! [`machine::Machine`] tracks the running set during simulation and renders
//! the current history on demand.

pub mod history;
pub mod machine;
pub mod profile;

pub use history::{HistoryPoint, MachineHistory};
pub use machine::{Machine, MachineError, RunningJob};
pub use profile::ResourceProfile;
