//! The policy-selection interface the RMS simulator drives.
//!
//! At every (re-)planning point the simulator asks its selector which
//! policy to plan with. A [`FixedPolicy`] never changes — the baseline the
//! paper's context experiments compare against — while [`SelfTuning`]
//! performs a full self-tuning step.

use crate::tuner::SelfTuning;
use dynp_sched::{PlanError, Policy, SchedulingProblem};

/// Chooses the scheduling policy for a quasi-off-line snapshot.
pub trait PolicySelector {
    /// Returns the policy to plan this snapshot with. Implementations may
    /// mutate internal state (e.g. perform a self-tuning step).
    ///
    /// Fails with [`PlanError`] when the snapshot contains a job the
    /// selector cannot plan (the self-tuning step plans every policy, so
    /// an unplannable job surfaces here); the RMS declines that job and
    /// selects again.
    fn select(&mut self, problem: &SchedulingProblem) -> Result<Policy, PlanError>;

    /// Human-readable label for result tables.
    fn label(&self) -> String;
}

/// A selector that always answers with the same policy.
#[derive(Clone, Copy, Debug)]
pub struct FixedPolicy(pub Policy);

impl PolicySelector for FixedPolicy {
    fn select(&mut self, _problem: &SchedulingProblem) -> Result<Policy, PlanError> {
        Ok(self.0)
    }

    fn label(&self) -> String {
        self.0.name().to_string()
    }
}

impl PolicySelector for SelfTuning {
    fn select(&mut self, problem: &SchedulingProblem) -> Result<Policy, PlanError> {
        Ok(self.step(problem)?.chosen)
    }

    fn label(&self) -> String {
        format!("dynP({})", self.metric())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dynp_sched::Metric;
    use dynp_trace::Job;

    #[test]
    fn fixed_policy_never_switches() {
        let mut sel = FixedPolicy(Policy::Ljf);
        let p = SchedulingProblem::on_empty_machine(0, 4, vec![Job::exact(0, 0, 1, 10)]);
        assert_eq!(sel.select(&p), Ok(Policy::Ljf));
        assert_eq!(sel.select(&p), Ok(Policy::Ljf));
        assert_eq!(sel.label(), "LJF");
    }

    #[test]
    fn self_tuning_selector_tracks_tuner_state() {
        let mut sel = SelfTuning::paper_config(Metric::SldwA);
        let p = SchedulingProblem::on_empty_machine(
            0,
            4,
            vec![
                Job::exact(0, 0, 4, 10_000),
                Job::exact(1, 0, 4, 100),
                Job::exact(2, 0, 4, 100),
            ],
        );
        assert_eq!(sel.select(&p), Ok(Policy::Sjf));
        assert_eq!(sel.active(), Policy::Sjf);
        assert_eq!(sel.label(), "dynP(SLDwA)");
    }

    #[test]
    fn self_tuning_selector_surfaces_plan_errors() {
        let mut sel = SelfTuning::paper_config(Metric::SldwA);
        let p = SchedulingProblem::on_empty_machine(0, 4, vec![Job::exact(0, 0, 9, 10)]);
        assert!(sel.select(&p).is_err());
    }
}
