//! The self-tuning **dynP** scheduler — the paper's primary contribution.
//!
//! dynP ("dynamic policy") switches the active scheduling policy of a
//! planning-based RMS at run time. In each *self-tuning step* (§2) the
//! scheduler:
//!
//! 1. computes a **full schedule** for every available policy (FCFS, SJF,
//!    LJF in CCS),
//! 2. evaluates each schedule with a **performance metric** so every
//!    policy's quality collapses to a single number,
//! 3. feeds those numbers to a **decider** that picks the policy to switch
//!    to.
//!
//! The crate provides:
//! * [`decider`] — the paper's *simple* decider (three if-then-else
//!   constructs) and the *advanced* decider that fixes its four wrong
//!   decisions by considering the incumbent policy,
//! * [`tuner`] — [`SelfTuning`], the dynP scheduler state machine
//!   executing self-tuning steps,
//! * [`selector`] — the [`PolicySelector`] abstraction the simulator
//!   drives, with [`FixedPolicy`] as the non-switching baseline,
//! * [`stats`] — switch counts and per-policy residency for the ablation
//!   experiments.

pub mod decider;
pub mod selector;
pub mod stats;
pub mod tuner;

pub use decider::Decider;
pub use selector::{FixedPolicy, PolicySelector};
pub use stats::TuningStats;
pub use tuner::{SelfTuning, TuningOutcome};
