//! Switch statistics of a dynP run: how often the scheduler switched and
//! how long each policy stayed active.
//!
//! Reference \[14\] analyses dynP by how the deciders behave over a trace; the
//! `decider_ablation` experiment (DESIGN.md §3) reports these numbers, so
//! they are collected here as part of the tuner.

use dynp_sched::Policy;
use std::collections::HashMap;

/// One recorded policy transition.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Transition {
    /// Simulation time of the self-tuning step.
    pub time: u64,
    /// Policy before the step.
    pub from: Policy,
    /// Policy after the step.
    pub to: Policy,
}

/// Accumulated statistics over all self-tuning steps of a run.
#[derive(Clone, Debug, Default)]
pub struct TuningStats {
    steps: usize,
    transitions: Vec<Transition>,
    /// Residency: seconds each policy has been the active one, attributed
    /// between consecutive steps.
    residency: HashMap<Policy, u64>,
    last_step: Option<(u64, Policy)>,
}

impl TuningStats {
    /// Fresh, empty statistics.
    pub fn new() -> TuningStats {
        TuningStats::default()
    }

    /// Records one self-tuning step at `time` that moved `from` → `to`
    /// (equal when no switch happened).
    pub fn record(&mut self, time: u64, from: Policy, to: Policy) {
        self.steps += 1;
        if let Some((prev_time, prev_policy)) = self.last_step {
            // The previously chosen policy was active from the previous
            // step until now.
            *self.residency.entry(prev_policy).or_insert(0) += time.saturating_sub(prev_time);
        }
        if from != to {
            self.transitions.push(Transition { time, from, to });
        }
        self.last_step = Some((time, to));
    }

    /// Number of self-tuning steps executed.
    pub fn steps(&self) -> usize {
        self.steps
    }

    /// Number of actual policy switches.
    pub fn switches(&self) -> usize {
        self.transitions.len()
    }

    /// All recorded transitions in time order.
    pub fn transitions(&self) -> &[Transition] {
        &self.transitions
    }

    /// Seconds each policy was active (between first and last step).
    pub fn residency(&self) -> &HashMap<Policy, u64> {
        &self.residency
    }

    /// Fraction of steps that switched the policy.
    pub fn switch_rate(&self) -> f64 {
        if self.steps == 0 {
            0.0
        } else {
            self.transitions.len() as f64 / self.steps as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use Policy::{Fcfs, Ljf, Sjf};

    #[test]
    fn counts_steps_and_switches() {
        let mut s = TuningStats::new();
        s.record(0, Fcfs, Fcfs);
        s.record(10, Fcfs, Sjf);
        s.record(20, Sjf, Sjf);
        s.record(30, Sjf, Ljf);
        assert_eq!(s.steps(), 4);
        assert_eq!(s.switches(), 2);
        assert!((s.switch_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn transitions_record_endpoints() {
        let mut s = TuningStats::new();
        s.record(10, Fcfs, Sjf);
        assert_eq!(
            s.transitions(),
            &[Transition {
                time: 10,
                from: Fcfs,
                to: Sjf
            }]
        );
    }

    #[test]
    fn residency_attributes_time_between_steps() {
        let mut s = TuningStats::new();
        s.record(0, Fcfs, Sjf); // SJF active from 0
        s.record(100, Sjf, Ljf); // SJF held 100s; LJF active from 100
        s.record(150, Ljf, Ljf); // LJF held 50s
        assert_eq!(s.residency()[&Sjf], 100);
        assert_eq!(s.residency()[&Ljf], 50);
        assert!(!s.residency().contains_key(&Fcfs));
    }

    #[test]
    fn empty_stats_are_zero() {
        let s = TuningStats::new();
        assert_eq!(s.steps(), 0);
        assert_eq!(s.switches(), 0);
        assert_eq!(s.switch_rate(), 0.0);
        assert!(s.residency().is_empty());
    }
}
