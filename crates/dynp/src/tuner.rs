//! The self-tuning step: evaluate every policy's full schedule, decide,
//! switch.
//!
//! "The self-tuning dynP scheduler computes full schedules for each
//! available policy … These schedules are evaluated by means of a
//! performance metrics. Thereby, the performance of each policy is
//! expressed by a single value. These values are compared and a decider
//! mechanism chooses the best policy." (§2)

use crate::decider::Decider;
use crate::stats::TuningStats;
use dynp_sched::{plan_with_profile, Metric, PlanError, Policy, Schedule, SchedulingProblem};
use rayon::prelude::*;

/// Static span name for one policy's planning pass, so each policy gets
/// its own latency histogram ([`dynp_obs::Span`] requires `&'static str`).
fn plan_span_name(policy: Policy) -> &'static str {
    match policy {
        Policy::Fcfs => "planner.plan.fcfs",
        Policy::Sjf => "planner.plan.sjf",
        Policy::Ljf => "planner.plan.ljf",
        Policy::Saf => "planner.plan.saf",
        Policy::Laf => "planner.plan.laf",
    }
}

/// Result of one self-tuning step.
#[derive(Clone, Debug)]
pub struct TuningOutcome {
    /// The policy active before the step.
    pub previous: Policy,
    /// The policy chosen by the decider.
    pub chosen: Policy,
    /// Whether the step switched policies.
    pub switched: bool,
    /// Per-policy metric values, in enumeration order.
    pub evaluations: Vec<(Policy, f64)>,
    /// The full schedule planned under the chosen policy — the RMS installs
    /// exactly this plan, so callers never need to re-plan.
    pub schedule: Schedule,
}

/// The self-tuning dynP scheduler state.
#[derive(Clone, Debug)]
pub struct SelfTuning {
    policies: Vec<Policy>,
    metric: Metric,
    decider: Decider,
    active: Policy,
    stats: TuningStats,
}

impl SelfTuning {
    /// dynP over an explicit policy set. The first policy is the initial
    /// active one.
    ///
    /// # Panics
    /// Panics on an empty policy set.
    pub fn new(policies: Vec<Policy>, metric: Metric, decider: Decider) -> SelfTuning {
        assert!(!policies.is_empty(), "dynP needs at least one policy");
        let active = policies[0];
        SelfTuning {
            policies,
            metric,
            decider,
            active,
            stats: TuningStats::new(),
        }
    }

    /// The paper's configuration: FCFS/SJF/LJF, deciding by the given
    /// metric with the advanced decider.
    pub fn paper_config(metric: Metric) -> SelfTuning {
        SelfTuning::new(Policy::PAPER_SET.to_vec(), metric, Decider::Advanced)
    }

    /// Currently active policy.
    pub fn active(&self) -> Policy {
        self.active
    }

    /// Metric used for schedule evaluation.
    pub fn metric(&self) -> Metric {
        self.metric
    }

    /// The policy enumeration this instance tunes over.
    pub fn policies(&self) -> &[Policy] {
        &self.policies
    }

    /// Accumulated switch statistics.
    pub fn stats(&self) -> &TuningStats {
        &self.stats
    }

    /// Executes one self-tuning step on a quasi-off-line snapshot: plans a
    /// full schedule per policy, evaluates, decides, switches, and returns
    /// the chosen policy's schedule.
    ///
    /// An empty snapshot (no waiting jobs) performs no evaluation and keeps
    /// the active policy, mirroring a real RMS where there is nothing to
    /// re-order.
    ///
    /// An unplannable job in the snapshot (wider than the machine) surfaces
    /// as `Err(PlanError)` naming the job, with the tuner's state — active
    /// policy and statistics — untouched, so the caller can decline that
    /// job and step again. (This mirrors the earlier `admit()` fix: a
    /// malformed job is the *job's* defect, not grounds to kill the whole
    /// simulation cell.)
    pub fn step(&mut self, problem: &SchedulingProblem) -> Result<TuningOutcome, PlanError> {
        // Per-decision latency: the whole plan-evaluate-decide cycle runs
        // on every submission/completion, so this histogram is the
        // scheduler-overhead side of the paper's comparison. Traced: one
        // span close event per decision, correlated to the campaign cell.
        let _step_span = dynp_obs::span("dynp.step");
        let previous = self.active;
        if problem.is_empty() {
            return Ok(TuningOutcome {
                previous,
                chosen: previous,
                switched: false,
                evaluations: Vec::new(),
                schedule: Schedule::new(),
            });
        }
        // Build the availability profile once; every policy plans against
        // a clone of it. The per-policy passes are independent, so they
        // run in parallel — the vendored rayon preserves input order,
        // keeping the decider's enumeration-order tie-breaking (and hence
        // the chosen schedule) bit-identical to the serial planner.
        let profile = problem.availability_profile();
        let metric = self.metric;
        let planned: Vec<Result<(Policy, f64, Schedule), PlanError>> = self
            .policies
            .par_iter()
            .map(|&policy| {
                let _plan_span = dynp_obs::Span::enter(plan_span_name(policy));
                let schedule = plan_with_profile(problem, policy, &profile)?;
                let value = metric.eval(problem, &schedule);
                Ok((policy, value, schedule))
            })
            .collect();
        let mut evaluations = Vec::with_capacity(planned.len());
        let mut schedules = Vec::with_capacity(planned.len());
        for result in planned {
            let (policy, value, schedule) = result?;
            evaluations.push((policy, value));
            schedules.push(schedule);
        }
        let chosen = self.decider.decide(self.metric, &evaluations, previous);
        let idx = self
            .policies
            .iter()
            .position(|&p| p == chosen)
            .expect("decider returned an evaluated policy");
        let schedule = schedules.swap_remove(idx);
        let switched = chosen != previous;
        self.active = chosen;
        self.stats.record(problem.now, previous, chosen);
        if let Some(r) = dynp_obs::recorder() {
            // One event per decision, carrying every policy's metric
            // estimate (the paper's three SLD values under FCFS/SJF/LJF).
            let mut estimates = dynp_obs::JsonValue::object();
            for (policy, value) in &evaluations {
                estimates.set(&format!("{policy:?}"), *value);
            }
            r.event("dynp.decision")
                .kv("sim_time", problem.now)
                .kv("jobs", problem.len())
                .kv("metric", format!("{:?}", self.metric))
                .kv("estimates", estimates)
                .kv("previous", format!("{previous:?}"))
                .kv("chosen", format!("{chosen:?}"))
                .kv("switched", switched)
                .emit();
        }
        Ok(TuningOutcome {
            previous,
            chosen,
            switched,
            evaluations,
            schedule,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dynp_trace::Job;

    /// Snapshot where SJF clearly wins on SLDwA: one long and several short
    /// jobs competing for the same resources.
    fn sjf_friendly() -> SchedulingProblem {
        SchedulingProblem::on_empty_machine(
            0,
            4,
            vec![
                Job::exact(0, 0, 4, 10_000),
                Job::exact(1, 0, 4, 100),
                Job::exact(2, 0, 4, 100),
                Job::exact(3, 0, 4, 100),
            ],
        )
    }

    /// Snapshot where all policies coincide: a single job.
    fn trivial() -> SchedulingProblem {
        SchedulingProblem::on_empty_machine(0, 4, vec![Job::exact(0, 0, 2, 100)])
    }

    #[test]
    fn switches_to_sjf_when_it_wins() {
        let mut dynp = SelfTuning::paper_config(Metric::SldwA);
        assert_eq!(dynp.active(), Policy::Fcfs);
        let out = dynp.step(&sjf_friendly()).unwrap();
        assert_eq!(out.chosen, Policy::Sjf);
        assert!(out.switched);
        assert_eq!(dynp.active(), Policy::Sjf);
        // SJF's value must be the minimum of the evaluations.
        let sjf_val = out
            .evaluations
            .iter()
            .find(|(p, _)| *p == Policy::Sjf)
            .unwrap()
            .1;
        for &(_, v) in &out.evaluations {
            assert!(sjf_val <= v);
        }
    }

    #[test]
    fn advanced_decider_stays_on_ties() {
        let mut dynp =
            SelfTuning::new(Policy::PAPER_SET.to_vec(), Metric::SldwA, Decider::Advanced);
        // Move to SJF first.
        dynp.step(&sjf_friendly()).unwrap();
        assert_eq!(dynp.active(), Policy::Sjf);
        // On a trivial snapshot every policy ties; advanced stays with SJF.
        let out = dynp.step(&trivial()).unwrap();
        assert_eq!(out.chosen, Policy::Sjf);
        assert!(!out.switched);
    }

    #[test]
    fn simple_decider_flips_back_to_fcfs_on_ties() {
        let mut dynp = SelfTuning::new(Policy::PAPER_SET.to_vec(), Metric::SldwA, Decider::Simple);
        dynp.step(&sjf_friendly()).unwrap();
        assert_eq!(dynp.active(), Policy::Sjf);
        let out = dynp.step(&trivial()).unwrap();
        // The documented wrong decision: simple favours FCFS.
        assert_eq!(out.chosen, Policy::Fcfs);
        assert!(out.switched);
    }

    #[test]
    fn returned_schedule_is_the_chosen_policys_plan() {
        let mut dynp = SelfTuning::paper_config(Metric::SldwA);
        let problem = sjf_friendly();
        let out = dynp.step(&problem).unwrap();
        let expected = dynp_sched::plan(&problem, out.chosen).unwrap();
        assert_eq!(out.schedule, expected);
        out.schedule.validate(&problem).unwrap();
    }

    #[test]
    fn empty_snapshot_keeps_policy_and_plans_nothing() {
        let mut dynp = SelfTuning::paper_config(Metric::SldwA);
        let out = dynp
            .step(&SchedulingProblem::on_empty_machine(0, 4, vec![]))
            .unwrap();
        assert!(!out.switched);
        assert!(out.schedule.is_empty());
        assert!(out.evaluations.is_empty());
    }

    #[test]
    fn stats_count_steps_and_switches() {
        let mut dynp = SelfTuning::paper_config(Metric::SldwA);
        dynp.step(&sjf_friendly()).unwrap(); // FCFS -> SJF
        dynp.step(&trivial()).unwrap(); // stays (advanced)
        let s = dynp.stats();
        assert_eq!(s.steps(), 2);
        assert_eq!(s.switches(), 1);
    }

    #[test]
    #[should_panic(expected = "at least one policy")]
    fn empty_policy_set_panics() {
        SelfTuning::new(vec![], Metric::SldwA, Decider::Simple);
    }

    /// A job wider than the machine inside the snapshot must surface as
    /// a typed error naming the job — not a panic — and leave the tuner
    /// exactly where it was, so the caller can decline the job and step
    /// again.
    #[test]
    fn unplannable_job_declines_without_mutating_state() {
        let mut dynp = SelfTuning::paper_config(Metric::SldwA);
        dynp.step(&sjf_friendly()).unwrap(); // FCFS -> SJF
        let steps_before = dynp.stats().steps();
        let bad = SchedulingProblem::on_empty_machine(
            100,
            4,
            vec![Job::exact(10, 100, 2, 50), Job::exact(11, 100, 9, 50)],
        );
        let err = dynp.step(&bad).unwrap_err();
        assert_eq!(
            err,
            PlanError::JobTooWide {
                id: dynp_trace::JobId(11),
                width: 9,
                capacity: 4
            }
        );
        assert_eq!(dynp.active(), Policy::Sjf, "active policy untouched");
        assert_eq!(dynp.stats().steps(), steps_before, "stats untouched");
        // After declining the offending job the tuner works again.
        let ok = SchedulingProblem::on_empty_machine(100, 4, vec![Job::exact(10, 100, 2, 50)]);
        dynp.step(&ok).unwrap();
    }

    #[test]
    fn extension_policies_participate_when_configured() {
        let mut dynp = SelfTuning::new(
            vec![Policy::Fcfs, Policy::Saf, Policy::Laf],
            Metric::ArtwW,
            Decider::Advanced,
        );
        let out = dynp.step(&sjf_friendly()).unwrap();
        assert_eq!(out.evaluations.len(), 3);
    }
}
