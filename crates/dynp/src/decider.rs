//! Decider mechanisms: choosing the next policy from per-policy metric
//! values.
//!
//! The paper discusses two deciders (§2):
//!
//! * The **simple decider** "basically consists of three if-then-else
//!   constructs. It chooses that policy which generates the minimum value."
//!   Ties are broken by the enumeration order FCFS → SJF → LJF, which is
//!   what makes it favour FCFS.
//! * "A detailed analysis of the simple decider showed, that in four cases
//!   even a wrong decision is made … FCFS is favored in three and SJF in
//!   one case, although staying with the old policy is the correct decision
//!   with these cases. This is implemented in the **advanced decider**."
//!
//! Generalized over an arbitrary policy list, the advanced decider keeps
//! the incumbent whenever the incumbent is among the best; the simple
//! decider ignores the incumbent entirely. A **sticky** decider (extension,
//! for ablations) additionally requires the challenger to win by a relative
//! margin before switching, damping oscillation.

use dynp_sched::{Metric, Policy};

/// A policy-switch decision mechanism.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Decider {
    /// Paper's simple decider: argmin in enumeration order, incumbent
    /// ignored.
    Simple,
    /// Paper's advanced decider: keep the incumbent on ties with the best.
    Advanced,
    /// Extension: switch only if the challenger improves on the incumbent
    /// by more than `margin` (relative, e.g. `0.05` = 5 %).
    Sticky {
        /// Required relative improvement before switching away.
        margin: f64,
    },
}

impl Decider {
    /// Chooses the next policy.
    ///
    /// `evaluations` holds `(policy, metric value)` pairs in the scheduler's
    /// enumeration order (CCS: FCFS, SJF, LJF); `incumbent` is the currently
    /// active policy; `metric` defines which direction is better.
    ///
    /// # Panics
    /// Panics if `evaluations` is empty — a self-tuning step without
    /// policies is a configuration error.
    pub fn decide(
        &self,
        metric: Metric,
        evaluations: &[(Policy, f64)],
        incumbent: Policy,
    ) -> Policy {
        assert!(!evaluations.is_empty(), "no policies to decide among");
        // The best value; first occurrence in enumeration order.
        let mut best = evaluations[0];
        for &(policy, value) in &evaluations[1..] {
            if metric.better(value, best.1) {
                best = (policy, value);
            }
        }
        match self {
            Decider::Simple => best.0,
            Decider::Advanced => {
                // Keep the incumbent if it ties with the best.
                match evaluations
                    .iter()
                    .find(|(p, _)| *p == incumbent)
                    .map(|&(_, v)| v)
                {
                    Some(inc_value) if !metric.better(best.1, inc_value) => incumbent,
                    _ => best.0,
                }
            }
            Decider::Sticky { margin } => {
                let Some(inc_value) = evaluations
                    .iter()
                    .find(|(p, _)| *p == incumbent)
                    .map(|&(_, v)| v)
                else {
                    return best.0;
                };
                if !metric.better(best.1, inc_value) {
                    return incumbent;
                }
                // Relative improvement of the challenger over the
                // incumbent — in both directions the denominator is the
                // *incumbent's* value, since the margin is "how much
                // better than what we have". (Dividing by the challenger
                // instead would tighten the threshold as the challenger
                // improves: a higher-is-better challenger at
                // inc*(1+margin) would compute margin/(1+margin) < margin
                // and never trip the switch exactly at the margin.)
                let improvement = if inc_value == 0.0 {
                    // A zero incumbent beaten by a strictly better
                    // challenger is an unbounded relative improvement.
                    f64::INFINITY
                } else if metric.lower_is_better() {
                    (inc_value - best.1) / inc_value
                } else {
                    (best.1 - inc_value) / inc_value
                };
                if improvement > *margin {
                    best.0
                } else {
                    incumbent
                }
            }
        }
    }

    /// Short name for experiment tables.
    pub fn name(&self) -> &'static str {
        match self {
            Decider::Simple => "simple",
            Decider::Advanced => "advanced",
            Decider::Sticky { .. } => "sticky",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use Policy::{Fcfs, Ljf, Sjf};

    const M: Metric = Metric::SldwA; // lower is better

    fn evals(f: f64, s: f64, l: f64) -> Vec<(Policy, f64)> {
        vec![(Fcfs, f), (Sjf, s), (Ljf, l)]
    }

    #[test]
    fn simple_picks_strict_minimum() {
        assert_eq!(Decider::Simple.decide(M, &evals(3.0, 1.0, 2.0), Fcfs), Sjf);
        assert_eq!(Decider::Simple.decide(M, &evals(1.0, 2.0, 3.0), Ljf), Fcfs);
        assert_eq!(Decider::Simple.decide(M, &evals(3.0, 2.0, 1.0), Fcfs), Ljf);
    }

    #[test]
    fn simple_favours_enumeration_order_on_ties() {
        // The three FCFS-favouring wrong cases of [14]:
        assert_eq!(Decider::Simple.decide(M, &evals(1.0, 1.0, 2.0), Sjf), Fcfs);
        assert_eq!(Decider::Simple.decide(M, &evals(1.0, 2.0, 1.0), Ljf), Fcfs);
        assert_eq!(Decider::Simple.decide(M, &evals(1.0, 1.0, 1.0), Ljf), Fcfs);
        // … and the SJF-favouring one:
        assert_eq!(Decider::Simple.decide(M, &evals(2.0, 1.0, 1.0), Ljf), Sjf);
    }

    #[test]
    fn advanced_fixes_the_four_wrong_cases() {
        // Staying with the incumbent is correct in all four tie cases.
        assert_eq!(Decider::Advanced.decide(M, &evals(1.0, 1.0, 2.0), Sjf), Sjf);
        assert_eq!(Decider::Advanced.decide(M, &evals(1.0, 2.0, 1.0), Ljf), Ljf);
        assert_eq!(Decider::Advanced.decide(M, &evals(1.0, 1.0, 1.0), Ljf), Ljf);
        assert_eq!(Decider::Advanced.decide(M, &evals(2.0, 1.0, 1.0), Ljf), Ljf);
    }

    #[test]
    fn advanced_still_switches_on_strict_improvement() {
        assert_eq!(
            Decider::Advanced.decide(M, &evals(2.0, 1.0, 3.0), Fcfs),
            Sjf
        );
        assert_eq!(
            Decider::Advanced.decide(M, &evals(0.5, 1.0, 3.0), Ljf),
            Fcfs
        );
    }

    #[test]
    fn advanced_without_incumbent_in_set_falls_back_to_best() {
        // Incumbent SAF isn't part of the evaluated set.
        assert_eq!(
            Decider::Advanced.decide(M, &evals(2.0, 1.0, 3.0), Policy::Saf),
            Sjf
        );
    }

    #[test]
    fn sticky_requires_margin() {
        let d = Decider::Sticky { margin: 0.10 };
        // 5% better than incumbent: stay.
        assert_eq!(d.decide(M, &evals(1.0, 0.95, 2.0), Fcfs), Fcfs);
        // 20% better: switch.
        assert_eq!(d.decide(M, &evals(1.0, 0.80, 2.0), Fcfs), Sjf);
        // Ties: stay.
        assert_eq!(d.decide(M, &evals(1.0, 1.0, 1.0), Sjf), Sjf);
    }

    #[test]
    fn sticky_zero_margin_equals_advanced() {
        let sticky = Decider::Sticky { margin: 0.0 };
        for evals_case in [
            evals(1.0, 1.0, 2.0),
            evals(2.0, 1.0, 3.0),
            evals(1.0, 2.0, 1.0),
            evals(3.0, 2.0, 1.0),
        ] {
            for incumbent in [Fcfs, Sjf, Ljf] {
                assert_eq!(
                    sticky.decide(M, &evals_case, incumbent),
                    Decider::Advanced.decide(M, &evals_case, incumbent),
                    "case {evals_case:?} incumbent {incumbent:?}"
                );
            }
        }
    }

    #[test]
    fn sticky_margin_is_relative_to_incumbent_higher_is_better() {
        // Regression: the higher-is-better branch used to divide by the
        // *challenger* ((best - inc) / best), so a challenger 11% above
        // the incumbent scored only 0.11/1.11 ≈ 9.9% and a 10% margin
        // wrongly kept the incumbent.
        let m = Metric::Utilization;
        let d = Decider::Sticky { margin: 0.10 };
        // Challenger 11% better than the incumbent: must switch.
        assert_eq!(d.decide(m, &evals(1.0, 1.11, 0.5), Fcfs), Sjf);
        // Challenger only 9% better: must stay.
        assert_eq!(d.decide(m, &evals(1.0, 1.09, 0.5), Fcfs), Fcfs);
        // Exactly at the margin: strict inequality keeps the incumbent
        // (binary-exact values so the comparison is exact).
        let exact = Decider::Sticky { margin: 0.25 };
        assert_eq!(exact.decide(m, &evals(1.0, 1.25, 0.5), Fcfs), Fcfs);
    }

    #[test]
    fn sticky_margin_is_symmetric_across_directions() {
        // A 25% relative improvement must trip a 20% margin under both a
        // lower-is-better and a higher-is-better metric.
        let d = Decider::Sticky { margin: 0.20 };
        assert_eq!(d.decide(M, &evals(1.0, 0.75, 2.0), Fcfs), Sjf);
        assert_eq!(
            d.decide(Metric::Utilization, &evals(1.0, 1.25, 0.5), Fcfs),
            Sjf
        );
        // …and a 15% improvement must not, in either direction.
        assert_eq!(d.decide(M, &evals(1.0, 0.85, 2.0), Fcfs), Fcfs);
        assert_eq!(
            d.decide(Metric::Utilization, &evals(1.0, 1.15, 0.5), Fcfs),
            Fcfs
        );
    }

    #[test]
    fn sticky_zero_incumbent_switches_to_strictly_better_challenger() {
        // Utilization 0 (degenerate) beaten by any positive challenger is
        // an unbounded relative improvement.
        let d = Decider::Sticky { margin: 0.5 };
        assert_eq!(
            d.decide(Metric::Utilization, &evals(0.0, 0.3, 0.1), Fcfs),
            Sjf
        );
    }

    #[test]
    fn higher_is_better_metrics_invert_comparison() {
        let m = Metric::Utilization;
        assert_eq!(Decider::Simple.decide(m, &evals(0.2, 0.9, 0.5), Fcfs), Sjf);
        assert_eq!(Decider::Advanced.decide(m, &evals(0.9, 0.9, 0.5), Sjf), Sjf);
    }

    #[test]
    #[should_panic(expected = "no policies")]
    fn empty_evaluations_panics() {
        Decider::Simple.decide(M, &[], Fcfs);
    }

    #[test]
    fn names_are_stable() {
        assert_eq!(Decider::Simple.name(), "simple");
        assert_eq!(Decider::Advanced.name(), "advanced");
        assert_eq!(Decider::Sticky { margin: 0.1 }.name(), "sticky");
    }
}
