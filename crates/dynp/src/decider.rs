//! Decider mechanisms: choosing the next policy from per-policy metric
//! values.
//!
//! The paper discusses two deciders (§2):
//!
//! * The **simple decider** "basically consists of three if-then-else
//!   constructs. It chooses that policy which generates the minimum value."
//!   Ties are broken by the enumeration order FCFS → SJF → LJF, which is
//!   what makes it favour FCFS.
//! * "A detailed analysis of the simple decider showed, that in four cases
//!   even a wrong decision is made … FCFS is favored in three and SJF in
//!   one case, although staying with the old policy is the correct decision
//!   with these cases. This is implemented in the **advanced decider**."
//!
//! Generalized over an arbitrary policy list, the advanced decider keeps
//! the incumbent whenever the incumbent is among the best; the simple
//! decider ignores the incumbent entirely. A **sticky** decider (extension,
//! for ablations) additionally requires the challenger to win by a relative
//! margin before switching, damping oscillation.

use dynp_sched::{Metric, Policy};

/// A policy-switch decision mechanism.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Decider {
    /// Paper's simple decider: argmin in enumeration order, incumbent
    /// ignored.
    Simple,
    /// Paper's advanced decider: keep the incumbent on ties with the best.
    Advanced,
    /// Extension: switch only if the challenger improves on the incumbent
    /// by more than `margin` (relative, e.g. `0.05` = 5 %).
    Sticky {
        /// Required relative improvement before switching away.
        margin: f64,
    },
}

impl Decider {
    /// Chooses the next policy.
    ///
    /// `evaluations` holds `(policy, metric value)` pairs in the scheduler's
    /// enumeration order (CCS: FCFS, SJF, LJF); `incumbent` is the currently
    /// active policy; `metric` defines which direction is better.
    ///
    /// # Panics
    /// Panics if `evaluations` is empty — a self-tuning step without
    /// policies is a configuration error.
    pub fn decide(
        &self,
        metric: Metric,
        evaluations: &[(Policy, f64)],
        incumbent: Policy,
    ) -> Policy {
        assert!(!evaluations.is_empty(), "no policies to decide among");
        // The best value; first occurrence in enumeration order.
        let mut best = evaluations[0];
        for &(policy, value) in &evaluations[1..] {
            if metric.better(value, best.1) {
                best = (policy, value);
            }
        }
        match self {
            Decider::Simple => best.0,
            Decider::Advanced => {
                // Keep the incumbent if it ties with the best.
                match evaluations
                    .iter()
                    .find(|(p, _)| *p == incumbent)
                    .map(|&(_, v)| v)
                {
                    Some(inc_value) if !metric.better(best.1, inc_value) => incumbent,
                    _ => best.0,
                }
            }
            Decider::Sticky { margin } => {
                let Some(inc_value) = evaluations
                    .iter()
                    .find(|(p, _)| *p == incumbent)
                    .map(|&(_, v)| v)
                else {
                    return best.0;
                };
                if !metric.better(best.1, inc_value) {
                    return incumbent;
                }
                // Relative improvement of the challenger over the incumbent.
                let improvement = if metric.lower_is_better() {
                    if inc_value == 0.0 {
                        0.0
                    } else {
                        (inc_value - best.1) / inc_value
                    }
                } else if best.1 == 0.0 {
                    0.0
                } else {
                    (best.1 - inc_value) / best.1
                };
                if improvement > *margin {
                    best.0
                } else {
                    incumbent
                }
            }
        }
    }

    /// Short name for experiment tables.
    pub fn name(&self) -> &'static str {
        match self {
            Decider::Simple => "simple",
            Decider::Advanced => "advanced",
            Decider::Sticky { .. } => "sticky",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use Policy::{Fcfs, Ljf, Sjf};

    const M: Metric = Metric::SldwA; // lower is better

    fn evals(f: f64, s: f64, l: f64) -> Vec<(Policy, f64)> {
        vec![(Fcfs, f), (Sjf, s), (Ljf, l)]
    }

    #[test]
    fn simple_picks_strict_minimum() {
        assert_eq!(Decider::Simple.decide(M, &evals(3.0, 1.0, 2.0), Fcfs), Sjf);
        assert_eq!(Decider::Simple.decide(M, &evals(1.0, 2.0, 3.0), Ljf), Fcfs);
        assert_eq!(Decider::Simple.decide(M, &evals(3.0, 2.0, 1.0), Fcfs), Ljf);
    }

    #[test]
    fn simple_favours_enumeration_order_on_ties() {
        // The three FCFS-favouring wrong cases of [14]:
        assert_eq!(Decider::Simple.decide(M, &evals(1.0, 1.0, 2.0), Sjf), Fcfs);
        assert_eq!(Decider::Simple.decide(M, &evals(1.0, 2.0, 1.0), Ljf), Fcfs);
        assert_eq!(Decider::Simple.decide(M, &evals(1.0, 1.0, 1.0), Ljf), Fcfs);
        // … and the SJF-favouring one:
        assert_eq!(Decider::Simple.decide(M, &evals(2.0, 1.0, 1.0), Ljf), Sjf);
    }

    #[test]
    fn advanced_fixes_the_four_wrong_cases() {
        // Staying with the incumbent is correct in all four tie cases.
        assert_eq!(Decider::Advanced.decide(M, &evals(1.0, 1.0, 2.0), Sjf), Sjf);
        assert_eq!(Decider::Advanced.decide(M, &evals(1.0, 2.0, 1.0), Ljf), Ljf);
        assert_eq!(Decider::Advanced.decide(M, &evals(1.0, 1.0, 1.0), Ljf), Ljf);
        assert_eq!(Decider::Advanced.decide(M, &evals(2.0, 1.0, 1.0), Ljf), Ljf);
    }

    #[test]
    fn advanced_still_switches_on_strict_improvement() {
        assert_eq!(
            Decider::Advanced.decide(M, &evals(2.0, 1.0, 3.0), Fcfs),
            Sjf
        );
        assert_eq!(
            Decider::Advanced.decide(M, &evals(0.5, 1.0, 3.0), Ljf),
            Fcfs
        );
    }

    #[test]
    fn advanced_without_incumbent_in_set_falls_back_to_best() {
        // Incumbent SAF isn't part of the evaluated set.
        assert_eq!(
            Decider::Advanced.decide(M, &evals(2.0, 1.0, 3.0), Policy::Saf),
            Sjf
        );
    }

    #[test]
    fn sticky_requires_margin() {
        let d = Decider::Sticky { margin: 0.10 };
        // 5% better than incumbent: stay.
        assert_eq!(d.decide(M, &evals(1.0, 0.95, 2.0), Fcfs), Fcfs);
        // 20% better: switch.
        assert_eq!(d.decide(M, &evals(1.0, 0.80, 2.0), Fcfs), Sjf);
        // Ties: stay.
        assert_eq!(d.decide(M, &evals(1.0, 1.0, 1.0), Sjf), Sjf);
    }

    #[test]
    fn sticky_zero_margin_equals_advanced() {
        let sticky = Decider::Sticky { margin: 0.0 };
        for evals_case in [
            evals(1.0, 1.0, 2.0),
            evals(2.0, 1.0, 3.0),
            evals(1.0, 2.0, 1.0),
            evals(3.0, 2.0, 1.0),
        ] {
            for incumbent in [Fcfs, Sjf, Ljf] {
                assert_eq!(
                    sticky.decide(M, &evals_case, incumbent),
                    Decider::Advanced.decide(M, &evals_case, incumbent),
                    "case {evals_case:?} incumbent {incumbent:?}"
                );
            }
        }
    }

    #[test]
    fn higher_is_better_metrics_invert_comparison() {
        let m = Metric::Utilization;
        assert_eq!(Decider::Simple.decide(m, &evals(0.2, 0.9, 0.5), Fcfs), Sjf);
        assert_eq!(Decider::Advanced.decide(m, &evals(0.9, 0.9, 0.5), Sjf), Sjf);
    }

    #[test]
    #[should_panic(expected = "no policies")]
    fn empty_evaluations_panics() {
        Decider::Simple.decide(M, &[], Fcfs);
    }

    #[test]
    fn names_are_stable() {
        assert_eq!(Decider::Simple.name(), "simple");
        assert_eq!(Decider::Advanced.name(), "advanced");
        assert_eq!(Decider::Sticky { margin: 0.1 }.name(), "sticky");
    }
}
