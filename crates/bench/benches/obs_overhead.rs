//! Overhead of the `dynp-obs` instrumentation primitives.
//!
//! Two regimes matter:
//!
//! 1. **No recorder installed** — the state every library user is in unless
//!    they opt into observability. Instrumented code paths must cost
//!    essentially nothing: `recorder()` is a single atomic load returning
//!    `None`, and a `Span` with no recorder holds no timer.
//! 2. **Null-sink recorder installed** — metrics are recorded into atomics
//!    but events go nowhere. This bounds the cost paid inside the solver's
//!    per-node hot loop when observability is on.
//!
//! The disabled group MUST run before `install` (the recorder is process
//! global and cannot be uninstalled); `criterion_main!` runs groups in
//! declaration order, which preserves that.
//!
//! Usage: `cargo bench -p dynp-bench --bench obs_overhead`

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use dynp_obs::{
    cancelled, enter_cell, install, install_cancel, recorder, span, CancelToken, Recorder, Sink,
    Span,
};
use std::time::Duration;

/// A stand-in for one DES dispatch step: enough arithmetic that the loop
/// body is not optimised away, cheap enough that instrumentation overhead
/// would be visible.
fn simulated_dispatch(state: &mut u64) {
    *state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
}

fn bench_disabled(c: &mut Criterion) {
    assert!(
        recorder().is_none(),
        "disabled-path benches must run before any recorder is installed"
    );
    let mut group = c.benchmark_group("obs_disabled");
    group.sample_size(200);

    group.bench_function("recorder_fetch", |b| {
        b.iter(|| black_box(recorder().is_none()))
    });

    group.bench_function("span_enter_drop", |b| {
        b.iter(|| {
            let _span = Span::enter(black_box("bench.span"));
        })
    });

    // A traced span with no recorder is inert: no timer, no context push.
    group.bench_function("traced_span_enter_drop", |b| {
        b.iter(|| {
            let _span = span(black_box("bench.traced"));
        })
    });

    // The shape used in des::run_to_completion: fetch handles once, then
    // run the hot loop consulting the (absent) handles each iteration.
    group.bench_function("dispatch_loop_instrumented", |b| {
        b.iter(|| {
            let obs = recorder();
            let counter = obs.map(|r| r.counter("bench.events"));
            let mut state = 0u64;
            for _ in 0..1024 {
                simulated_dispatch(&mut state);
                if let Some(c) = &counter {
                    c.inc();
                }
            }
            black_box(state)
        })
    });

    group.bench_function("dispatch_loop_bare", |b| {
        b.iter(|| {
            let mut state = 0u64;
            for _ in 0..1024 {
                simulated_dispatch(&mut state);
            }
            black_box(state)
        })
    });

    group.finish();
}

/// Cost of the cooperative cancellation poll that sits inside the DES
/// event loop, the B&B node loop, and the simplex iteration loop. The
/// common case — no token installed — must be one thread-local read;
/// with a token installed the poll adds an atomic flag load, plus a
/// monotonic-clock read per poll for deadline tokens until the deadline
/// latches. This group pins the "within noise on hot paths" acceptance
/// claim for the per-cell deadline feature.
///
/// Runs before `install` so `cancelled()` is measured in the same
/// recorder-free regime the disabled group establishes (the poll itself
/// never touches the recorder either way).
fn bench_cancel(c: &mut Criterion) {
    let mut group = c.benchmark_group("obs_cancel");
    group.sample_size(200);

    group.bench_function("cancelled_no_token", |b| {
        b.iter(|| black_box(cancelled()))
    });

    group.bench_function("cancelled_flag_token", |b| {
        let token = CancelToken::new();
        let _guard = install_cancel(&token);
        b.iter(|| black_box(cancelled()))
    });

    group.bench_function("cancelled_deadline_token", |b| {
        // A one-hour deadline: every poll takes the pre-latch path that
        // reads the clock, the worst case a live campaign cell pays.
        let token = CancelToken::with_deadline(Duration::from_secs(3600));
        let _guard = install_cancel(&token);
        b.iter(|| black_box(cancelled()))
    });

    // The DES dispatch loop shape with the cancel poll in place,
    // comparable against `obs_disabled/dispatch_loop_bare`.
    group.bench_function("dispatch_loop_with_cancel_poll", |b| {
        let token = CancelToken::with_deadline(Duration::from_secs(3600));
        let _guard = install_cancel(&token);
        b.iter(|| {
            let mut state = 0u64;
            for _ in 0..1024 {
                simulated_dispatch(&mut state);
                if cancelled() {
                    break;
                }
            }
            black_box(state)
        })
    });

    group.finish();
}

fn bench_null_recorder(c: &mut Criterion) {
    let r = install(Recorder::new(Sink::Null));
    let counter = r.counter("bench.counter");
    let histogram = r.histogram("bench.histogram");

    let mut group = c.benchmark_group("obs_null_recorder");
    group.sample_size(200);

    group.bench_function("counter_inc", |b| b.iter(|| counter.inc()));

    group.bench_function("histogram_record", |b| {
        let mut v = 0u64;
        b.iter(|| {
            v = v.wrapping_add(997);
            histogram.record(black_box(v));
        })
    });

    group.bench_function("span_enter_drop", |b| {
        b.iter(|| {
            let _span = Span::enter(black_box("bench.span"));
        })
    });

    group.bench_function("event_emit_null_sink", |b| {
        b.iter(|| {
            r.event("bench.event")
                .kv("case", black_box(7u64))
                .kv("label", "null")
                .emit()
        })
    });

    group.finish();
}

/// Cost of trace-context propagation on top of the null recorder: the
/// same span/event operations as `obs_null_recorder`, but inside a
/// campaign-cell frame so every close event carries (campaign, cell,
/// span, parent) and every child span id comes from the cell counter.
fn bench_context(c: &mut Criterion) {
    let r = recorder().expect("installed by the previous group");
    let mut group = c.benchmark_group("obs_context");
    group.sample_size(200);

    group.bench_function("traced_span_free", |b| {
        b.iter(|| {
            let _span = span(black_box("bench.traced"));
        })
    });

    group.bench_function("traced_span_in_cell", |b| {
        let _cell = enter_cell(0xbe9c, 3);
        b.iter(|| {
            let _span = span(black_box("bench.traced"));
        })
    });

    group.bench_function("event_emit_in_cell", |b| {
        let _cell = enter_cell(0xbe9c, 4);
        b.iter(|| {
            r.event("bench.event")
                .kv("case", black_box(7u64))
                .kv("label", "ctx")
                .emit()
        })
    });

    group.finish();
}

/// Cost the live-telemetry layer (`dynp-watch`) adds when it is NOT
/// started — the default for every run without `--watch`. The watch
/// server samples the recorder from its own threads and owns no metric
/// state, so the only instrumented-path addition is the span-profiling
/// hook's one relaxed flag load at span close. This group measures the
/// exact span shapes of `obs_context` again with the profiling flag
/// explicitly confirmed off; the numbers must be statistically
/// indistinguishable from that group's. (The profiling-ON cost is
/// measured with a bounded op count in the `obs_insight` bin and
/// recorded in `BENCH_watch.json`; an open-ended criterion loop would
/// grow the profile buffer without limit.)
fn bench_watch_disabled(c: &mut Criterion) {
    let r = recorder().expect("installed by a previous group");
    assert!(
        !r.profiling_enabled(),
        "watch-disabled benches require the profiling hook to be off"
    );
    let mut group = c.benchmark_group("obs_watch_disabled");
    group.sample_size(200);

    group.bench_function("traced_span_free", |b| {
        b.iter(|| {
            let _span = span(black_box("bench.traced"));
        })
    });

    group.bench_function("traced_span_in_cell", |b| {
        let _cell = enter_cell(0xbe9c, 5);
        b.iter(|| {
            let _span = span(black_box("bench.traced"));
        })
    });

    group.bench_function("event_emit_in_cell", |b| {
        let _cell = enter_cell(0xbe9c, 6);
        b.iter(|| {
            r.event("bench.event")
                .kv("case", black_box(7u64))
                .kv("label", "nw")
                .emit()
        })
    });

    group.finish();
}

/// Event throughput of the bounded sinks: the in-memory ring buffer and
/// the size-rotating file writer (the default for experiment runs).
fn bench_sinks(c: &mut Criterion) {
    let mut group = c.benchmark_group("obs_sinks");
    group.sample_size(100);

    let ring = Recorder::new(Sink::ring(4096));
    group.bench_function("event_emit_ring", |b| {
        b.iter(|| {
            ring.event("bench.event")
                .kv("case", black_box(7u64))
                .kv("label", "ring")
                .emit()
        })
    });

    let dir = std::env::temp_dir().join(format!("dynp_obs_overhead_{}", std::process::id()));
    let _ = std::fs::create_dir_all(&dir);
    let rotating = Recorder::new(
        Sink::rotating(dir.join("bench.events.jsonl"), 1024 * 1024, 2)
            .expect("temp dir is writable"),
    );
    group.bench_function("event_emit_rotating", |b| {
        b.iter(|| {
            rotating
                .event("bench.event")
                .kv("case", black_box(7u64))
                .kv("label", "rot")
                .emit()
        })
    });
    rotating.flush();
    let _ = std::fs::remove_dir_all(&dir);

    group.finish();
}

criterion_group!(disabled, bench_disabled);
criterion_group!(cancel, bench_cancel);
criterion_group!(null_recorder, bench_null_recorder);
criterion_group!(context, bench_context);
criterion_group!(watch_disabled, bench_watch_disabled);
criterion_group!(sinks, bench_sinks);
criterion_main!(disabled, cancel, null_recorder, context, watch_disabled, sinks);
