//! Overhead of the `dynp-obs` instrumentation primitives.
//!
//! Two regimes matter:
//!
//! 1. **No recorder installed** — the state every library user is in unless
//!    they opt into observability. Instrumented code paths must cost
//!    essentially nothing: `recorder()` is a single atomic load returning
//!    `None`, and a `Span` with no recorder holds no timer.
//! 2. **Null-sink recorder installed** — metrics are recorded into atomics
//!    but events go nowhere. This bounds the cost paid inside the solver's
//!    per-node hot loop when observability is on.
//!
//! The disabled group MUST run before `install` (the recorder is process
//! global and cannot be uninstalled); `criterion_main!` runs groups in
//! declaration order, which preserves that.
//!
//! Usage: `cargo bench -p dynp-bench --bench obs_overhead`

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use dynp_obs::{recorder, install, Recorder, Sink, Span};

/// A stand-in for one DES dispatch step: enough arithmetic that the loop
/// body is not optimised away, cheap enough that instrumentation overhead
/// would be visible.
fn simulated_dispatch(state: &mut u64) {
    *state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
}

fn bench_disabled(c: &mut Criterion) {
    assert!(
        recorder().is_none(),
        "disabled-path benches must run before any recorder is installed"
    );
    let mut group = c.benchmark_group("obs_disabled");
    group.sample_size(200);

    group.bench_function("recorder_fetch", |b| {
        b.iter(|| black_box(recorder().is_none()))
    });

    group.bench_function("span_enter_drop", |b| {
        b.iter(|| {
            let _span = Span::enter(black_box("bench.span"));
        })
    });

    // The shape used in des::run_to_completion: fetch handles once, then
    // run the hot loop consulting the (absent) handles each iteration.
    group.bench_function("dispatch_loop_instrumented", |b| {
        b.iter(|| {
            let obs = recorder();
            let counter = obs.map(|r| r.counter("bench.events"));
            let mut state = 0u64;
            for _ in 0..1024 {
                simulated_dispatch(&mut state);
                if let Some(c) = &counter {
                    c.inc();
                }
            }
            black_box(state)
        })
    });

    group.bench_function("dispatch_loop_bare", |b| {
        b.iter(|| {
            let mut state = 0u64;
            for _ in 0..1024 {
                simulated_dispatch(&mut state);
            }
            black_box(state)
        })
    });

    group.finish();
}

fn bench_null_recorder(c: &mut Criterion) {
    let r = install(Recorder::new(Sink::Null));
    let counter = r.counter("bench.counter");
    let histogram = r.histogram("bench.histogram");

    let mut group = c.benchmark_group("obs_null_recorder");
    group.sample_size(200);

    group.bench_function("counter_inc", |b| b.iter(|| counter.inc()));

    group.bench_function("histogram_record", |b| {
        let mut v = 0u64;
        b.iter(|| {
            v = v.wrapping_add(997);
            histogram.record(black_box(v));
        })
    });

    group.bench_function("span_enter_drop", |b| {
        b.iter(|| {
            let _span = Span::enter(black_box("bench.span"));
        })
    });

    group.bench_function("event_emit_null_sink", |b| {
        b.iter(|| {
            r.event("bench.event")
                .kv("case", black_box(7u64))
                .kv("label", "null")
                .emit()
        })
    });

    group.finish();
}

criterion_group!(disabled, bench_disabled);
criterion_group!(null_recorder, bench_null_recorder);
criterion_main!(disabled, null_recorder);
