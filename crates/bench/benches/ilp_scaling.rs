//! Benchmarks the exact solver's cost growth with instance size — the
//! paper's core negative result: exact solving is orders of magnitude
//! slower than the policies and grows unpredictably, which is why
//! CPLEX-style scheduling "is obviously not practicable for a real
//! implementation" (§5).
//!
//! Compare against `policy_time`: the same snapshots plan in microseconds
//! to milliseconds under FCFS/SJF/LJF.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dynp_milp::{solve_snapshot, BranchLimits, SolveConfig};
use dynp_sched::SchedulingProblem;
use dynp_trace::{CtcModel, WorkloadModel};
use std::hint::black_box;

/// A contended snapshot of `n` waiting jobs on a 32-node machine.
fn snapshot(n: usize, seed: u64) -> SchedulingProblem {
    let model = CtcModel {
        nodes: 32,
        max_runtime: 4 * 3600,
        ..CtcModel::default()
    };
    let trace = model.generate(n, seed);
    let jobs = trace
        .jobs
        .iter()
        .map(|j| dynp_trace::Job { submit: 0, ..*j })
        .collect();
    SchedulingProblem::on_empty_machine(0, 32, jobs)
}

fn config() -> SolveConfig {
    SolveConfig {
        scale_override: Some(300),
        limits: BranchLimits {
            max_nodes: 2_000,
            ..BranchLimits::default()
        },
        ..SolveConfig::default()
    }
}

fn bench_exact_by_jobs(c: &mut Criterion) {
    let mut group = c.benchmark_group("exact_solve_by_jobs");
    group.sample_size(10);
    for n in [4usize, 6, 8, 10] {
        let problem = snapshot(n, 7);
        let cfg = config();
        group.bench_with_input(BenchmarkId::from_parameter(n), &problem, |b, p| {
            b.iter(|| black_box(solve_snapshot(p, &cfg)))
        });
    }
    group.finish();
}

fn bench_exact_by_scale(c: &mut Criterion) {
    let mut group = c.benchmark_group("exact_solve_by_time_scale");
    group.sample_size(10);
    let problem = snapshot(8, 11);
    for scale_min in [2u64, 5, 10, 30] {
        let cfg = SolveConfig {
            scale_override: Some(scale_min * 60),
            ..config()
        };
        group.bench_with_input(BenchmarkId::from_parameter(scale_min), &problem, |b, p| {
            b.iter(|| black_box(solve_snapshot(p, &cfg)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_exact_by_jobs, bench_exact_by_scale);
criterion_main!(benches);
