//! Benchmarks the paper's §3 claim: "With the basic policies of the
//! self-tuning dynP scheduler, the time of scheduling is less than 10
//! milliseconds for an average number of 25 waiting jobs."
//!
//! Measures full-schedule planning (policy ordering + profile placement)
//! for 25 waiting jobs on a 430-node machine, per policy, plus the
//! complete self-tuning step (all three policies + decide).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dynp_core::SelfTuning;
use dynp_platform::MachineHistory;
use dynp_sched::{plan, Metric, Policy, SchedulingProblem};
use dynp_trace::{CtcModel, WorkloadModel};
use std::hint::black_box;

/// A realistic 25-job snapshot on a 430-node machine with a running set.
fn snapshot(n_waiting: usize) -> SchedulingProblem {
    let trace = CtcModel::default().generate(n_waiting + 10, 99);
    let now = 1_000_000u64;
    // 10 running jobs occupying part of the machine.
    let running: Vec<(u32, u64)> = trace.jobs[..10]
        .iter()
        .enumerate()
        .map(|(k, j)| (j.width.min(30), now + 600 + 300 * k as u64))
        .collect();
    let history = MachineHistory::build(430, now, &running);
    let jobs = trace.jobs[10..]
        .iter()
        .map(|j| dynp_trace::Job {
            submit: now.saturating_sub(j.submit % 3600),
            ..*j
        })
        .collect();
    SchedulingProblem::new(now, history, jobs)
}

fn bench_policies(c: &mut Criterion) {
    let problem = snapshot(25);
    let mut group = c.benchmark_group("plan_25_jobs_430_nodes");
    for policy in Policy::PAPER_SET {
        group.bench_with_input(
            BenchmarkId::from_parameter(policy.name()),
            &policy,
            |b, &p| b.iter(|| black_box(plan(&problem, p))),
        );
    }
    group.finish();
}

fn bench_queue_lengths(c: &mut Criterion) {
    let mut group = c.benchmark_group("plan_fcfs_by_queue_length");
    for n in [5usize, 25, 100, 400] {
        let problem = snapshot(n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &problem, |b, p| {
            b.iter(|| black_box(plan(p, Policy::Fcfs)))
        });
    }
    group.finish();
}

fn bench_self_tuning_step(c: &mut Criterion) {
    let problem = snapshot(25);
    c.bench_function("self_tuning_step_25_jobs", |b| {
        b.iter(|| {
            let mut dynp = SelfTuning::paper_config(Metric::SldwA);
            black_box(dynp.step(&problem))
        })
    });
}

criterion_group!(
    benches,
    bench_policies,
    bench_queue_lengths,
    bench_self_tuning_step
);
criterion_main!(benches);
