//! Benchmarks the paper's §3 claim: "With the basic policies of the
//! self-tuning dynP scheduler, the time of scheduling is less than 10
//! milliseconds for an average number of 25 waiting jobs."
//!
//! Measures full-schedule planning (policy ordering + profile placement)
//! for 25 waiting jobs on a 430-node machine, per policy, plus the
//! complete self-tuning step (all three policies + decide).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dynp_bench::{busy_snapshot, CTC_NODES};
use dynp_core::SelfTuning;
use dynp_sched::{plan, Metric, Policy, SchedulingProblem};
use std::hint::black_box;

/// A realistic 25-job snapshot on a 430-node machine with a running set.
fn snapshot(n_waiting: usize) -> SchedulingProblem {
    busy_snapshot(n_waiting, CTC_NODES, 99)
}

fn bench_policies(c: &mut Criterion) {
    let problem = snapshot(25);
    let mut group = c.benchmark_group("plan_25_jobs_430_nodes");
    for policy in Policy::PAPER_SET {
        group.bench_with_input(
            BenchmarkId::from_parameter(policy.name()),
            &policy,
            |b, &p| b.iter(|| black_box(plan(&problem, p).unwrap())),
        );
    }
    group.finish();
}

fn bench_queue_lengths(c: &mut Criterion) {
    let mut group = c.benchmark_group("plan_fcfs_by_queue_length");
    for n in [5usize, 25, 100, 400] {
        let problem = snapshot(n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &problem, |b, p| {
            b.iter(|| black_box(plan(p, Policy::Fcfs).unwrap()))
        });
    }
    group.finish();
}

fn bench_self_tuning_step(c: &mut Criterion) {
    let problem = snapshot(25);
    c.bench_function("self_tuning_step_25_jobs", |b| {
        b.iter(|| {
            let mut dynp = SelfTuning::paper_config(Metric::SldwA);
            black_box(dynp.step(&problem))
        })
    });
}

criterion_group!(
    benches,
    bench_policies,
    bench_queue_lengths,
    bench_self_tuning_step
);
criterion_main!(benches);
