//! Microbenchmarks of the simulation substrates: the event queue, the
//! resource profile, and end-to-end trace replay throughput. These bound
//! how large a workload the harness can replay, independent of the exact
//! solver.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dynp_core::FixedPolicy;
use dynp_des::EventQueue;
use dynp_platform::ResourceProfile;
use dynp_sched::Policy;
use dynp_sim::{simulate, SimConfig};
use dynp_trace::{CtcModel, WorkloadModel};
use std::hint::black_box;

fn bench_event_queue(c: &mut Criterion) {
    c.bench_function("event_queue_push_pop_10k", |b| {
        b.iter(|| {
            let mut q = EventQueue::new();
            for i in 0..10_000u64 {
                // Scatter times to exercise heap reordering.
                q.schedule((i * 2_654_435_761) % 1_000_000, i);
            }
            let mut sum = 0u64;
            while let Some((_, v)) = q.pop() {
                sum = sum.wrapping_add(v);
            }
            black_box(sum)
        })
    });
}

fn bench_profile(c: &mut Criterion) {
    let mut group = c.benchmark_group("resource_profile_earliest_fit");
    for n_resv in [10usize, 100, 1000] {
        group.bench_with_input(BenchmarkId::from_parameter(n_resv), &n_resv, |b, &n| {
            // A profile with n staggered reservations.
            let mut profile = ResourceProfile::new(430);
            for i in 0..n as u64 {
                profile.allocate(i * 50, i * 50 + 400, 2 + (i % 64) as u32);
            }
            b.iter(|| black_box(profile.earliest_fit(0, 3600, 64)))
        });
    }
    group.finish();
}

fn bench_replay(c: &mut Criterion) {
    let mut group = c.benchmark_group("trace_replay_fcfs");
    group.sample_size(10);
    for n in [200usize, 1000] {
        let trace = CtcModel::default().generate(n, 3);
        group.bench_with_input(BenchmarkId::from_parameter(n), &trace, |b, t| {
            b.iter(|| {
                black_box(simulate(
                    &t.jobs,
                    FixedPolicy(Policy::Fcfs),
                    SimConfig::new(t.machine_size),
                ))
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_event_queue, bench_profile, bench_replay);
criterion_main!(benches);
