//! Criterion coverage for the planner hot path: complete self-tuning
//! steps at paper-scale and deep queue depths, plus the skip-scan
//! `earliest_fit` on a profile with a long run of blocking segments —
//! the shape the scan was redesigned for.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dynp_bench::{busy_snapshot, CTC_NODES};
use dynp_core::SelfTuning;
use dynp_platform::ResourceProfile;
use dynp_sched::Metric;
use std::hint::black_box;

fn bench_step_by_depth(c: &mut Criterion) {
    let mut group = c.benchmark_group("self_tuning_step_by_depth");
    group.sample_size(10);
    for depth in [100usize, 1000] {
        let problem = busy_snapshot(depth, CTC_NODES, 99);
        group.bench_with_input(BenchmarkId::from_parameter(depth), &problem, |b, p| {
            b.iter(|| {
                let mut dynp = SelfTuning::paper_config(Metric::SldwA);
                black_box(dynp.step(p))
            })
        });
    }
    group.finish();
}

fn bench_earliest_fit_blocking_run(c: &mut Criterion) {
    // 2000 back-to-back allocations of alternating width, leaving free
    // counts that alternate between 0 and 1: the segments cannot
    // coalesce, and every one blocks a half-machine job, so each fit
    // call must traverse the entire run.
    let mut profile = ResourceProfile::new(CTC_NODES);
    for k in 0..2000u64 {
        profile.allocate(k * 10, k * 10 + 10, CTC_NODES - (k % 2) as u32);
    }
    assert!(profile.steps().len() > 2000);
    c.bench_function("earliest_fit_2000_blocking_segments", |b| {
        b.iter(|| black_box(profile.earliest_fit(0, 600, CTC_NODES / 2)))
    });
}

criterion_group!(benches, bench_step_by_depth, bench_earliest_fit_blocking_run);
criterion_main!(benches);
