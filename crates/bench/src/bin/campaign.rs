//! Campaign benchmark: the paper's §4 weekly-shard sweep as one command,
//! plus a parallel-speedup measurement over the `workers` knob.
//!
//! Generates a multi-week synthetic CTC trace, runs the full
//! `shard × selector × over-estimation` campaign once per worker count
//! (each in its own checkpoint directory so every run computes all cells),
//! verifies the runs agree byte-for-byte, and validates the final report
//! with the strict JSON parser. Writes
//! `results/campaign.{txt,json,events.jsonl}` plus the campaign's own
//! `results/campaign-run/` report files, and `BENCH_campaign.json` at the
//! repo root.
//!
//! Usage: `cargo run --release -p dynp-bench --bin campaign \
//!   [n_jobs] [n_shards] [workers_csv] [selectors_csv] [--watch <addr>]`

use dynp_bench::{cli_args_and_watch, start_watch, Report};
use dynp_exp::{run_campaign, CampaignConfig, ExactConfig, SelectorSpec};
use dynp_obs::JsonValue;
use dynp_trace::{CtcModel, Job, WorkloadModel, WEEK_SECONDS};
use std::time::Instant;

/// Scales a CTC-like model so ~`n_jobs` jobs nominally cover `n_shards`
/// weeks. Bursts and the diurnal cycle compress the effective span, so
/// about half the nominal weekly windows end up non-empty — the campaign
/// skips empty windows and reports the shards that carry jobs.
fn weekly_trace(n_jobs: usize, n_shards: usize) -> Vec<Job> {
    let span = n_shards as u64 * WEEK_SECONDS;
    let model = CtcModel {
        nodes: 64,
        mean_interarrival: (span / n_jobs.max(1) as u64).max(1) as f64,
        ..CtcModel::default()
    };
    model.generate(n_jobs, 2004).jobs
}

fn main() {
    let (args, watch_addr) = cli_args_and_watch();
    let mut args = args.into_iter();
    let n_jobs: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(1_200);
    let n_shards: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(12);
    let workers: Vec<usize> = args
        .next()
        .unwrap_or_else(|| "1,2,4".into())
        .split(',')
        .filter_map(|w| w.trim().parse().ok())
        .collect();
    let selectors: Vec<SelectorSpec> = match args.next() {
        Some(csv) => csv
            .split(',')
            .map(|s| SelectorSpec::parse(s).expect("valid selector name"))
            .collect(),
        None => SelectorSpec::paper_set(),
    };

    let mut report = Report::new("campaign");
    let _watch = start_watch(watch_addr.as_deref());
    let jobs = weekly_trace(n_jobs, n_shards);

    report.line(format!(
        "campaign bench: {} jobs over ~{} weekly shards, {} selector(s), workers {:?}",
        jobs.len(),
        n_shards,
        selectors.len(),
        workers
    ));
    report.set(
        "params",
        JsonValue::object()
            .with("n_jobs", jobs.len())
            .with("n_shards", n_shards)
            .with(
                "selectors",
                JsonValue::Array(
                    selectors
                        .iter()
                        .map(|s| JsonValue::from(s.label()))
                        .collect(),
                ),
            )
            .with(
                "workers",
                JsonValue::Array(workers.iter().map(|&w| JsonValue::from(w)).collect()),
            ),
    );
    report.blank();
    report.line(format!(
        "{:>8} {:>8} {:>10} {:>10} {:>9}",
        "workers", "cells", "time [s]", "cells/s", "speedup"
    ));

    let config_for = |workers: usize, dir: String| {
        CampaignConfig::new("campaign-run", 64)
            .with_selectors(selectors.clone())
            .with_factors(vec![1.0, 3.0])
            .with_exact(Some(
                ExactConfig::new()
                    .with_job_range(3, 10)
                    .with_max_snapshots(1)
                    .with_node_budget(400)
                    .with_lp_iteration_budget(20_000),
            ))
            .with_workers(workers)
            .with_output_dir(dir)
            .with_shard_seconds(WEEK_SECONDS)
    };

    let mut baseline: Option<f64> = None;
    let mut reference_report: Option<String> = None;
    let mut rows = JsonValue::array();
    for &w in &workers {
        // Each worker count gets a fresh checkpoint dir, so every run
        // computes all cells (no resume shortcut inflating the speedup).
        let dir = format!("results/campaign-run-w{w}");
        let _ = std::fs::remove_dir_all(&dir);
        let started = Instant::now();
        let outcome = run_campaign(&jobs, &config_for(w, dir)).expect("campaign runs");
        let elapsed = started.elapsed().as_secs_f64();
        assert_eq!(outcome.cells_computed, outcome.cells_total, "nothing may resume");

        // The report must not depend on the worker count.
        let rendered = outcome.report.to_json();
        dynp_obs::validate_json(&rendered).expect("report is strict JSON");
        match &reference_report {
            None => reference_report = Some(rendered),
            Some(reference) => assert_eq!(
                reference, &rendered,
                "worker count changed the report bytes"
            ),
        }

        let speedup = match baseline {
            None => {
                baseline = Some(elapsed);
                1.0
            }
            Some(t1) => t1 / elapsed,
        };
        report.line(format!(
            "{:>8} {:>8} {:>10.2} {:>10.2} {:>8.2}x",
            w,
            outcome.cells_total,
            elapsed,
            outcome.cells_total as f64 / elapsed.max(1e-9),
            speedup
        ));
        rows.push(
            JsonValue::object()
                .with("workers", w)
                .with("cells", outcome.cells_total)
                .with("seconds", elapsed)
                .with("speedup", speedup),
        );
    }
    report.set("sweep", rows.clone());
    for &w in &workers {
        // Scratch checkpoints only existed to defeat resume during timing.
        let _ = std::fs::remove_dir_all(format!("results/campaign-run-w{w}"));
    }

    // Keep one canonical campaign output directory for artifact upload
    // and validate its files end to end.
    let final_dir = "results/campaign-run";
    let _ = std::fs::remove_dir_all(final_dir);
    let last_workers = workers.last().copied().unwrap_or(1);
    let outcome =
        run_campaign(&jobs, &config_for(last_workers, final_dir.into())).expect("campaign runs");
    let report_text = std::fs::read_to_string(&outcome.report_json_path).expect("report exists");
    dynp_obs::validate_json(&report_text).expect("written report is strict JSON");
    report.blank();
    report.line(format!(
        "final campaign: {} cells -> {} (fingerprint {})",
        outcome.cells_total,
        outcome.report_json_path.display(),
        outcome.fingerprint
    ));
    report.set("fingerprint", outcome.fingerprint.as_str());
    report.set("report_cells", outcome.cells_total);

    // Repo-root summary for the driver, mirroring the other BENCH files.
    let bench = JsonValue::object()
        .with("bench", "campaign")
        .with("n_jobs", jobs.len())
        .with("cells", outcome.cells_total)
        .with("sweep", rows);
    std::fs::write("BENCH_campaign.json", bench.to_json_pretty()).expect("write BENCH_campaign");
    report.finish().expect("write report");
}
