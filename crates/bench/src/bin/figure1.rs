//! Reproduces **Figure 1** of the paper: an example machine history — the
//! monotone list of `(time stamp, free resources)` tuples induced by the
//! running jobs' estimated ends — rendered as the tuple list and an ASCII
//! step plot. Writes `results/figure1.{txt,json,events.jsonl}`.
//!
//! Usage: `cargo run -p dynp-bench --bin figure1 [--watch <addr>]`

use dynp_bench::{cli_args_and_watch, start_watch, Report};
use dynp_obs::JsonValue;
use dynp_platform::{Machine, MachineHistory};
use dynp_trace::Job;

fn main() {
    let (_args, watch_addr) = cli_args_and_watch();
    let mut report = Report::new("figure1");
    let _watch = start_watch(watch_addr.as_deref());

    // A machine of 16 resources observed at t = 100 s with four running
    // jobs, mirroring the shape of the paper's illustration.
    let mut machine = Machine::new(16);
    machine.start(&Job::exact(1, 0, 5, 200), 20); // ends (est.) at 220
    machine.start(&Job::exact(2, 0, 3, 400), 60); // ends at 460
    machine.start(&Job::exact(3, 0, 4, 400), 60); // ends at 460
    machine.start(&Job::exact(4, 0, 2, 700), 90); // ends at 790
    let history: MachineHistory = machine.history(100);
    history.check_invariants().expect("valid history");

    report.line(format!(
        "Figure 1 — example machine history (capacity {})",
        history.capacity()
    ));
    report.blank();
    report.line("  time [s]   free resources");
    let mut points = JsonValue::array();
    for p in history.points() {
        report.line(format!("  {:>8}   {:>3}", p.time, p.free));
        points.push(
            JsonValue::object()
                .with("time", p.time)
                .with("free", p.free),
        );
    }
    report.set("capacity", history.capacity());
    report.set("now", history.now());
    report.set("drained_at", history.drained_at());
    report.set("points", points);
    report.blank();

    // ASCII step plot: one column per time bucket, height = free count.
    let t0 = history.now();
    let t1 = history.drained_at() + 50;
    let width = 64usize;
    let cap = history.capacity();
    report.line("  free");
    for level in (1..=cap).rev() {
        let mut line = String::with_capacity(width + 8);
        line.push_str(&format!("  {level:>4} |"));
        for col in 0..width {
            let t = t0 + (t1 - t0) * col as u64 / width as u64;
            line.push(if history.free_at(t) >= level {
                '#'
            } else {
                ' '
            });
        }
        report.line(line);
    }
    report.line(format!("       +{}", "-".repeat(width)));
    report.line(format!("        t={t0} .. t={t1} (seconds)"));
    report.blank();
    report.line(
        "Free resources increase monotonically: only running jobs are considered,\n\
         and simultaneous estimated ends share a single time stamp (paper §3.1).",
    );
    report.finish().expect("writing results/");
}
