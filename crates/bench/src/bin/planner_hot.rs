//! Planner hot-path benchmark: the pre-overhaul planner (per-policy
//! profile rebuild, binary-search-restart `earliest_fit`, serial policy
//! loop) against the current one (shared profile, `compress_before`,
//! skip-scan fit, parallel per-policy planning), measured as complete
//! `SelfTuning::step` calls at several queue depths.
//!
//! The baseline below is a faithful transcription of the pre-overhaul
//! code path — the same one `tests/planner_differential.rs` proves
//! bit-identical to the current planner — so the ratio is a real
//! apples-to-apples speedup, not a strawman. Before timing, the run
//! re-asserts schedule equality at every depth.
//!
//! Writes `results/planner_hot.{txt,json,events.jsonl}` plus the
//! repo-root `BENCH_planner.json` summary (shape documented in
//! DESIGN.md), self-validating both JSON documents with the
//! `dynp_obs::json` parser.
//!
//! Usage: `cargo run --release -p dynp-bench --bin planner_hot \
//!             [depths_csv=100,1000,5000] [iters=3] [--watch <addr>]`

use dynp_bench::{busy_snapshot, cli_args_and_watch, start_watch, Report, CTC_NODES};
use dynp_core::{Decider, SelfTuning};
use dynp_obs::JsonValue;
use dynp_platform::ResourceProfile;
use dynp_sched::{Metric, Policy, Schedule, ScheduleEntry, SchedulingProblem};
use std::time::Instant;

/// Pre-overhaul `ResourceProfile::earliest_fit`: restart at the next
/// segment after any blocking one, re-running the entry binary search.
fn earliest_fit_reference(
    profile: &ResourceProfile,
    earliest: u64,
    duration: u64,
    width: u32,
) -> Option<u64> {
    if width > profile.capacity() {
        return None;
    }
    if width == 0 {
        return Some(earliest);
    }
    let steps = profile.steps();
    let mut t = earliest;
    'outer: loop {
        let end = t.saturating_add(duration.max(1));
        let first = steps.partition_point(|&(time, _)| time <= t) - 1;
        for (i, &(time, free)) in steps[first..].iter().enumerate() {
            if time >= end {
                break;
            }
            if free < width {
                let seg = first + i;
                match steps.get(seg + 1) {
                    Some(&(next_time, _)) => {
                        t = next_time;
                        continue 'outer;
                    }
                    None => return None,
                }
            }
        }
        return Some(t);
    }
}

/// Pre-overhaul `plan`: profile rebuilt from the snapshot per call.
fn plan_reference(problem: &SchedulingProblem, policy: Policy) -> Schedule {
    let mut profile = problem.availability_profile();
    let mut schedule = Schedule::new();
    for job in policy.order(&problem.jobs) {
        let duration = job.estimated_duration.max(1);
        let start = earliest_fit_reference(&profile, problem.now, duration, job.width)
            .expect("job fits the machine");
        profile.allocate(start, start + duration, job.width);
        schedule.push(ScheduleEntry {
            id: job.id,
            start,
            end: start + duration,
            width: job.width,
        });
    }
    schedule
}

/// Pre-overhaul self-tuning step: serial plan-evaluate loop over the
/// paper's policy set, then the same advanced decider.
fn step_reference(problem: &SchedulingProblem, metric: Metric) -> (Policy, Schedule) {
    let mut evaluations = Vec::new();
    let mut schedules = Vec::new();
    for policy in Policy::PAPER_SET {
        let schedule = plan_reference(problem, policy);
        evaluations.push((policy, metric.eval(problem, &schedule)));
        schedules.push(schedule);
    }
    let chosen = Decider::Advanced.decide(metric, &evaluations, Policy::PAPER_SET[0]);
    let idx = evaluations
        .iter()
        .position(|&(p, _)| p == chosen)
        .expect("decider returned an evaluated policy");
    (chosen, schedules.swap_remove(idx))
}

/// Minimum wall-clock over `iters` runs of `f`, in milliseconds.
fn time_ms(iters: usize, mut f: impl FnMut()) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..iters.max(1) {
        let start = Instant::now();
        f();
        best = best.min(start.elapsed().as_secs_f64() * 1e3);
    }
    best
}

fn validate_or_die(what: &str, json: &str) {
    if let Err(e) = dynp_obs::json::validate(json) {
        eprintln!("{what}: invalid JSON produced: {e}");
        std::process::exit(1);
    }
}

fn main() {
    let (args, watch_addr) = cli_args_and_watch();
    let mut args = args.into_iter();
    let depths: Vec<usize> = args
        .next()
        .unwrap_or_else(|| "100,1000,5000".into())
        .split(',')
        .map(|d| d.trim().parse().expect("depth list: comma-separated usize"))
        .collect();
    let iters: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(3);
    let metric = Metric::SldwA;
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());

    let mut report = Report::new("planner_hot");
    let _watch = start_watch(watch_addr.as_deref());
    report.line(format!(
        "Planner hot path: full SelfTuning::step, pre-overhaul vs current \
         ({CTC_NODES}-node machine, {cores} core(s), min of {iters} runs)"
    ));
    report.line(format!(
        "{:>7} {:>14} {:>14} {:>9}",
        "depth", "baseline (ms)", "optimized (ms)", "speedup"
    ));

    let mut rows = JsonValue::array();
    let mut speedup_at_1k: Option<f64> = None;
    for &depth in &depths {
        let problem = busy_snapshot(depth, CTC_NODES, 1729 + depth as u64);

        // Correctness first: the two paths must agree bit-for-bit.
        let (ref_chosen, ref_schedule) = step_reference(&problem, metric);
        let out = SelfTuning::paper_config(metric)
            .step(&problem)
            .expect("busy_snapshot jobs all fit the machine");
        assert_eq!(out.chosen, ref_chosen, "depth {depth}: chosen policy differs");
        assert_eq!(
            out.schedule, ref_schedule,
            "depth {depth}: schedules differ between baseline and optimized"
        );

        let baseline_ms = time_ms(iters, || {
            std::hint::black_box(step_reference(&problem, metric));
        });
        let optimized_ms = time_ms(iters, || {
            let _ = std::hint::black_box(SelfTuning::paper_config(metric).step(&problem));
        });
        let speedup = baseline_ms / optimized_ms;
        if speedup_at_1k.is_none() && depth >= 1000 {
            speedup_at_1k = Some(speedup);
        }
        report.line(format!(
            "{depth:>7} {baseline_ms:>14.3} {optimized_ms:>14.3} {speedup:>8.2}x"
        ));
        rows.push(
            JsonValue::object()
                .with("depth", depth)
                .with("baseline_step_ms", baseline_ms)
                .with("optimized_step_ms", optimized_ms)
                .with("speedup", speedup),
        );
    }

    report.blank();
    match speedup_at_1k {
        Some(s) => report.line(format!(
            "acceptance: speedup at first depth >= 1000 is {s:.2}x (floor: 3.00x)"
        )),
        None => report.line("acceptance: no depth >= 1000 in this run (smoke mode)"),
    }

    let summary = JsonValue::object()
        .with("bench", "planner_hot")
        .with("machine", JsonValue::object().with("cores", cores))
        .with("nodes", CTC_NODES)
        .with("iters", iters)
        .with("depths", rows.clone())
        .with(
            "acceptance",
            JsonValue::object()
                .with("min_speedup_at_1k", 3.0)
                .with("measured", speedup_at_1k),
        );
    let summary_json = summary.to_json_pretty();
    validate_or_die("BENCH_planner.json", &summary_json);
    std::fs::write("BENCH_planner.json", &summary_json).expect("writing BENCH_planner.json");
    eprintln!("wrote BENCH_planner.json");

    report.set("machine_cores", cores);
    report.set("iters", iters);
    report.set("rows", rows);
    report.set("speedup_at_1k", speedup_at_1k);
    report.finish().expect("writing results/");
    let written =
        std::fs::read_to_string("results/planner_hot.json").expect("reading back results JSON");
    validate_or_die("results/planner_hot.json", &written);
}
