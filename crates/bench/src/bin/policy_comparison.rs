//! Context experiment (DESIGN.md §3): fixed FCFS / SJF / LJF versus the
//! self-tuning dynP scheduler on a full CTC-like trace — the comparison
//! that motivates dynP in the first place (§1–§2 of the paper).
//!
//! Prints actual-time metrics per scheduler: average response time, ARTwW,
//! average wait, SLDwA, utilization, plus dynP's switching behaviour.
//! Writes `results/policy_comparison.{txt,json,events.jsonl}`.
//!
//! Usage: `cargo run --release -p dynp-bench --bin policy_comparison [n_jobs] [seed] [--watch <addr>]`

use dynp_bench::{cli_args_and_watch, ctc_trace, fixed_run, selector_run, start_watch, Report};
use dynp_core::{Decider, SelfTuning};
use dynp_obs::JsonValue;
use dynp_sched::{Metric, Policy};
use dynp_sim::{simulate_queue, QueueDiscipline, SimSummary};

fn summary_json(label: &str, s: &SimSummary) -> JsonValue {
    JsonValue::object()
        .with("label", label)
        .with("avg_response", s.avg_response)
        .with("artww", s.artww)
        .with("avg_wait", s.avg_wait)
        .with("sldwa", s.sldwa)
        .with("utilization", s.utilization)
}

fn main() {
    let (args, watch_addr) = cli_args_and_watch();
    let mut args = args.into_iter();
    let n_jobs: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(2000);
    let seed: u64 = args.next().and_then(|a| a.parse().ok()).unwrap_or(2004);

    let mut report = Report::new("policy_comparison");
    let _watch = start_watch(watch_addr.as_deref());

    eprintln!("generating CTC-like trace: {n_jobs} jobs, seed {seed} ...");
    let trace = ctc_trace(n_jobs, seed);
    report.set(
        "params",
        JsonValue::object()
            .with("n_jobs", n_jobs)
            .with("seed", seed)
            .with("machine_size", trace.machine_size),
    );

    let mut schedulers = JsonValue::array();

    report.blank();
    report.line(format!(
        "Policy comparison on a CTC-like trace ({} jobs, {} nodes)",
        n_jobs, trace.machine_size
    ));
    report.line(format!(
        "{:<16} {:>10} {:>10} {:>10} {:>8} {:>7} {:>9}",
        "scheduler", "avg resp", "ARTwW", "avg wait", "SLDwA", "util", "switches"
    ));

    for policy in Policy::PAPER_SET {
        let run = fixed_run(&trace.jobs, trace.machine_size, policy);
        let s = &run.summary;
        report.line(format!(
            "{:<16} {:>9.0}s {:>9.0}s {:>9.0}s {:>8.2} {:>6.1}% {:>9}",
            run.label,
            s.avg_response,
            s.artww,
            s.avg_wait,
            s.sldwa,
            s.utilization * 100.0,
            "-"
        ));
        schedulers.push(summary_json(&run.label, s).with("kind", "fixed"));
    }

    // Queue-based architectures for contrast (paper §1/[4]: queuing vs
    // planning; planning-based FCFS backfills implicitly, a plain queue
    // does not).
    for (label, discipline) in [
        ("queue-FCFS", QueueDiscipline::Plain),
        ("queue-EASY", QueueDiscipline::EasyBackfill),
    ] {
        let (records, backfills) =
            simulate_queue(&trace.jobs, trace.machine_size, Policy::Fcfs, discipline);
        let s = SimSummary::compute(&records, trace.machine_size);
        report.line(format!(
            "{:<16} {:>9.0}s {:>9.0}s {:>9.0}s {:>8.2} {:>6.1}% {:>9}",
            label,
            s.avg_response,
            s.artww,
            s.avg_wait,
            s.sldwa,
            s.utilization * 100.0,
            format!("bf:{backfills}")
        ));
        schedulers.push(
            summary_json(label, &s)
                .with("kind", "queue")
                .with("backfills", backfills),
        );
    }

    for (label, decider) in [
        ("dynP(simple)", Decider::Simple),
        ("dynP(advanced)", Decider::Advanced),
    ] {
        let tuner = SelfTuning::new(Policy::PAPER_SET.to_vec(), Metric::SldwA, decider);
        let run = selector_run(&trace.jobs, trace.machine_size, tuner);
        let s = &run.summary;
        let switches = run.selector.stats().switches();
        report.line(format!(
            "{:<16} {:>9.0}s {:>9.0}s {:>9.0}s {:>8.2} {:>6.1}% {:>9}",
            label,
            s.avg_response,
            s.artww,
            s.avg_wait,
            s.sldwa,
            s.utilization * 100.0,
            switches
        ));
        schedulers.push(
            summary_json(label, s)
                .with("kind", "dynp")
                .with("switches", switches),
        );
    }
    report.set("schedulers", schedulers);

    report.blank();
    report.line(
        "expectation (paper §1-§2): no single fixed policy dominates; dynP tracks\n\
         the best policy as job characteristics change, so its response-time and\n\
         slowdown metrics should be at or better than the best fixed policy.",
    );
    report.finish().expect("writing results/");
}
