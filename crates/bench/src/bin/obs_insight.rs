//! Telemetry-pipeline overhead and throughput: what trace-context
//! propagation and the bounded event sinks cost at emission time, and
//! how fast `dynp-insight` merges and analyzes the resulting logs.
//!
//! Three measurements:
//!
//! 1. **Span overhead** — traced span enter/drop with no recorder
//!    (the library-user default), with a null-sink recorder, and inside
//!    a campaign-cell frame (full context propagation).
//! 2. **Sink throughput** — events/second into the null, ring, and
//!    size-rotating sinks.
//! 3. **Analyzer throughput** — a synthetic sharded log of `n_events`
//!    context-carrying events merged by logical clock and analyzed,
//!    in events/second.
//!
//! Writes `results/obs_insight.{txt,json,events.jsonl}` plus the
//! repo-root `BENCH_insight.json` and `BENCH_watch.json` summaries,
//! self-validated with the strict JSON parser.
//!
//! Usage: `cargo run --release -p dynp-bench --bin obs_insight \
//!             [n_events=200000] [iters=3] [--watch <addr>]`

use dynp_bench::{cli_args_and_watch, start_watch, Report};
use dynp_insight::{analyze_groups, merge_lines, Options};
use dynp_obs::JsonValue;
use std::time::Instant;

/// Minimum wall-clock over `iters` runs of `f`, in seconds.
fn time_secs(iters: usize, mut f: impl FnMut()) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..iters.max(1) {
        let start = Instant::now();
        f();
        best = best.min(start.elapsed().as_secs_f64());
    }
    best
}

/// Per-op cost in nanoseconds of `f` repeated `n` times.
fn per_op_ns(iters: usize, n: usize, mut f: impl FnMut()) -> f64 {
    time_secs(iters, || {
        for _ in 0..n {
            f();
        }
    }) * 1e9
        / n as f64
}

fn emit_event(r: &dynp_obs::Recorder) {
    r.event("bench.event")
        .kv("case", std::hint::black_box(7u64))
        .kv("label", "x")
        .emit();
}

/// A synthetic campaign-shaped log: `cells` cells, each with a root
/// span, a replay child, and `events_per_cell` decision events.
fn synthetic_log(n_events: usize) -> Vec<String> {
    let fp = "bench-fingerprint";
    let camp = format!("{:016x}", dynp_obs::campaign_hash(fp));
    let mut lines = Vec::with_capacity(n_events + 1);
    let mut seq = 0u64;
    lines.push(format!(
        "{{\"ts\":0.0,\"target\":\"exp.campaign_start\",\"seq\":{seq},\"name\":\"bench\",\"fingerprint\":\"{fp}\",\"cells\":64,\"shards\":8}}"
    ));
    seq += 1;
    let mut cell = 0u64;
    while (seq as usize) < n_events {
        let base = (cell % 64 + 1) << 32;
        lines.push(format!(
            "{{\"ts\":1.0,\"target\":\"dynp.decision\",\"seq\":{seq},\"campaign\":\"{camp}\",\"cell\":{c},\"span\":{child},\"parent\":{base},\"switched\":{sw}}}",
            c = cell % 64,
            child = base + 1,
            sw = cell.is_multiple_of(3),
        ));
        seq += 1;
        if (seq as usize) < n_events {
            lines.push(format!(
                "{{\"ts\":2.0,\"target\":\"span\",\"seq\":{seq},\"campaign\":\"{camp}\",\"cell\":{c},\"span\":{child},\"parent\":{base},\"kind\":\"sim.run\",\"dur_ns\":{dur}}}",
                c = cell % 64,
                child = base + 1,
                dur = 1000 + seq,
            ));
            seq += 1;
        }
        if (seq as usize) < n_events {
            lines.push(format!(
                "{{\"ts\":3.0,\"target\":\"span\",\"seq\":{seq},\"campaign\":\"{camp}\",\"cell\":{c},\"span\":{base},\"parent\":0,\"kind\":\"exp.cell\",\"dur_ns\":{dur}}}",
                c = cell % 64,
                dur = 5000 + seq,
            ));
            seq += 1;
        }
        cell += 1;
    }
    lines
}

fn validate_or_die(what: &str, json: &str) {
    if let Err(e) = dynp_obs::json::validate(json) {
        eprintln!("{what}: invalid JSON produced: {e}");
        std::process::exit(1);
    }
}

fn main() {
    let (args, watch_addr) = cli_args_and_watch();
    let mut args = args.into_iter();
    let n_events: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(200_000);
    let iters: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(3);
    let ops = 100_000usize;

    // Disabled-path costs must be measured before any recorder exists
    // (the global recorder cannot be uninstalled).
    assert!(dynp_obs::recorder().is_none(), "run obs_insight in a fresh process");
    let span_disabled_ns = per_op_ns(iters, ops, || {
        let _s = dynp_obs::span(std::hint::black_box("bench.traced"));
    });

    let installed = dynp_obs::install(dynp_obs::Recorder::new(dynp_obs::Sink::Null));
    let span_null_ns = per_op_ns(iters, ops, || {
        let _s = dynp_obs::span(std::hint::black_box("bench.traced"));
    });
    let cell = dynp_obs::enter_cell(0xbe9c, 0);
    let span_in_cell_ns = per_op_ns(iters, ops, || {
        let _s = dynp_obs::span(std::hint::black_box("bench.traced"));
    });
    let event_in_cell_ns = per_op_ns(iters, ops, || emit_event(installed));

    // Watch-layer span cost. With profiling off (the default when no
    // watch server is started) span close pays one relaxed flag load on
    // top of the plain traced span; with profiling on it also clones the
    // kind and pushes a SpanRec into the profile buffer.
    let span_watch_off_ns = per_op_ns(iters, ops, || {
        let _s = dynp_obs::span(std::hint::black_box("bench.traced"));
    });
    installed.set_profiling(true);
    let span_profiled_ns = per_op_ns(iters, ops, || {
        let _s = dynp_obs::span(std::hint::black_box("bench.traced"));
    });
    installed.set_profiling(false);
    drop(cell);
    let event_free_ns = per_op_ns(iters, ops, || emit_event(installed));

    // Sink throughput on local (non-global) recorders.
    let ring = dynp_obs::Recorder::new(dynp_obs::Sink::ring(4096));
    let ring_ns = per_op_ns(iters, ops, || emit_event(&ring));
    let dir = std::env::temp_dir().join(format!("dynp_obs_insight_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let rotating = dynp_obs::Recorder::new(
        dynp_obs::Sink::rotating(dir.join("bench.events.jsonl"), 1024 * 1024, 2)
            .expect("temp dir is writable"),
    );
    let rotating_ns = per_op_ns(iters, ops, || emit_event(&rotating));
    rotating.flush();
    let _ = std::fs::remove_dir_all(&dir);

    // Analyzer throughput over a synthetic sharded log.
    let lines = synthetic_log(n_events);
    let opts = Options::default();
    let mut report_json = JsonValue::Null;
    let analyze_secs = time_secs(iters, || {
        let merged = merge_lines("bench.events.jsonl", lines.iter().map(String::as_str));
        report_json = analyze_groups(&[merged], &opts);
    });
    let analyze_events_per_sec = lines.len() as f64 / analyze_secs;
    let cells_seen = report_json
        .get("logical")
        .and_then(|l| l.get("groups"))
        .and_then(JsonValue::as_array)
        .and_then(<[JsonValue]>::first)
        .and_then(|g| g.get("runs"))
        .and_then(JsonValue::as_array)
        .and_then(<[JsonValue]>::first)
        .and_then(|r| r.get("cells_seen"))
        .and_then(JsonValue::as_u64)
        .unwrap_or(0);
    assert_eq!(cells_seen, 64, "synthetic log must cover all 64 cells");

    // Report (installs its own rotating recorder — after all timing).
    let mut report = Report::new("obs_insight");
    let _watch = start_watch(watch_addr.as_deref());
    report.line(format!(
        "Telemetry pipeline overhead (min of {iters} runs, {ops} ops each)"
    ));
    report.blank();
    report.line(format!("{:<34} {:>10}", "operation", "ns/op"));
    let rows = [
        ("traced_span_no_recorder", span_disabled_ns),
        ("traced_span_null_recorder", span_null_ns),
        ("traced_span_in_cell", span_in_cell_ns),
        ("traced_span_watch_off", span_watch_off_ns),
        ("traced_span_profiling_on", span_profiled_ns),
        ("event_emit_null_free", event_free_ns),
        ("event_emit_null_in_cell", event_in_cell_ns),
        ("event_emit_ring", ring_ns),
        ("event_emit_rotating", rotating_ns),
    ];
    let mut rows_json = JsonValue::array();
    for (name, ns) in rows {
        report.line(format!("{name:<34} {ns:>10.1}"));
        rows_json.push(JsonValue::object().with("op", name).with("ns_per_op", ns));
    }
    report.blank();
    report.line(format!(
        "analyzer: {n} events merged+analyzed in {s:.3} s ({rate:.0} events/s)",
        n = lines.len(),
        s = analyze_secs,
        rate = analyze_events_per_sec,
    ));

    let summary = JsonValue::object()
        .with("bench", "obs_insight")
        .with("iters", iters)
        .with("ops_per_measurement", ops)
        .with("emission", rows_json.clone())
        .with(
            "analyzer",
            JsonValue::object()
                .with("events", lines.len())
                .with("analyze_secs", analyze_secs)
                .with("events_per_sec", analyze_events_per_sec),
        );
    let summary_json = summary.to_json_pretty();
    validate_or_die("BENCH_insight.json", &summary_json);
    std::fs::write("BENCH_insight.json", &summary_json).expect("writing BENCH_insight.json");
    eprintln!("wrote BENCH_insight.json");

    // Watch overhead summary: the live telemetry layer must cost nothing
    // when not started (watch_off vs. in_cell is noise), and profiling is
    // the only per-span cost it can switch on.
    let watch_summary = JsonValue::object()
        .with("bench", "watch_overhead")
        .with("iters", iters)
        .with("ops_per_measurement", ops)
        .with(
            "span_ns",
            JsonValue::object()
                .with("no_recorder", span_disabled_ns)
                .with("null_recorder", span_null_ns)
                .with("in_cell", span_in_cell_ns)
                .with("in_cell_watch_off", span_watch_off_ns)
                .with("in_cell_profiling_on", span_profiled_ns),
        )
        .with(
            "watch_off_overhead_ns",
            span_watch_off_ns - span_in_cell_ns,
        );
    let watch_json = watch_summary.to_json_pretty();
    validate_or_die("BENCH_watch.json", &watch_json);
    std::fs::write("BENCH_watch.json", &watch_json).expect("writing BENCH_watch.json");
    eprintln!("wrote BENCH_watch.json");

    report.set("emission", rows_json);
    report.set("analyze_secs", analyze_secs);
    report.set("analyze_events_per_sec", analyze_events_per_sec);
    report.finish().expect("writing results/");
    let written =
        std::fs::read_to_string("results/obs_insight.json").expect("reading back results JSON");
    validate_or_die("results/obs_insight.json", &written);
}
