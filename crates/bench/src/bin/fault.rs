//! Fault drill: runs a campaign under a deterministic [`FaultPlan`] and
//! proves the failure model end to end — panic isolation, per-cell
//! deadlines, bounded retries, checkpoint I/O faults, degraded-cell
//! resume, and (with `--watch`) the `campaign-degraded-cells` alert —
//! then measures the deadline machinery's overhead on clean campaigns.
//!
//! Writes `results/fault.{txt,json,events.jsonl}`, the drill campaign's
//! own `results/fault-run/` files, and `BENCH_fault.json` at the repo
//! root. Exits non-zero if any drill assertion fails; the overhead
//! numbers are informative (pinned by the `obs_cancel` criterion group,
//! not gated here).
//!
//! Usage: `cargo run --release -p dynp-bench --bin fault [--watch <addr>]`

use dynp_bench::{cli_args_and_watch, start_watch, Report};
use dynp_exp::{
    checkpoint, run_campaign, CampaignConfig, ExactConfig, FaultKind, FaultPlan, SelectorSpec,
};
use dynp_obs::JsonValue;
use dynp_trace::{CtcModel, Job, WorkloadModel, WEEK_SECONDS};
use std::io::{Read as _, Write as _};
use std::time::{Duration, Instant};

fn drill_trace() -> Vec<Job> {
    // ~2 weekly shards on a 64-node machine; with two selectors that is
    // at least the 4 cells the fault plan targets.
    let model = CtcModel {
        nodes: 64,
        mean_interarrival: 4_000.0,
        ..CtcModel::default()
    };
    model.generate(300, 2004).jobs
}

fn drill_config(dir: &str) -> CampaignConfig {
    CampaignConfig::new("fault-drill", 64)
        .with_shard_seconds(WEEK_SECONDS / 2)
        .with_selectors(vec![SelectorSpec::Fixed(dynp_sched::Policy::Fcfs), SelectorSpec::dynp()])
        .with_factors(vec![1.0])
        .with_exact(None)
        .with_cell_deadline(Duration::from_secs(2))
        .with_retries(1)
        .with_faults(
            FaultPlan::none()
                // Cell 0 panics on every attempt: stays crashed.
                .inject(0, FaultKind::Panic, u32::MAX)
                // Cell 1 sleeps 10 minutes: the 2 s deadline times it out.
                .inject(1, FaultKind::Delay(Duration::from_secs(600)), u32::MAX)
                // Cell 2 computes fine but its checkpoint append is eaten.
                .inject(2, FaultKind::CheckpointIo, u32::MAX)
                // Cell 3 panics once and heals on the retry.
                .inject(3, FaultKind::Panic, 1),
        )
        .with_output_dir(dir)
}

/// One campaign used for the overhead measurement: clean (no faults),
/// with exact solves so the cancel polls in the B&B node loop, the
/// simplex iteration loop, and the DES event loop are all on the
/// measured path.
fn overhead_config(dir: String, deadline: Option<Duration>) -> CampaignConfig {
    let mut config = CampaignConfig::new("fault-overhead", 64)
        .with_shard_seconds(WEEK_SECONDS / 2)
        .with_selectors(vec![SelectorSpec::Fixed(dynp_sched::Policy::Fcfs), SelectorSpec::dynp()])
        .with_factors(vec![1.0, 3.0])
        .with_exact(Some(
            ExactConfig::new()
                .with_job_range(3, 10)
                .with_max_snapshots(1)
                .with_node_budget(400)
                .with_lp_iteration_budget(20_000),
        ))
        .with_output_dir(dir);
    if let Some(d) = deadline {
        config = config.with_cell_deadline(d);
    }
    config
}

/// Minimal HTTP GET against our own watch server; returns the body.
fn http_get(addr: std::net::SocketAddr, path: &str) -> String {
    let mut stream = std::net::TcpStream::connect(addr).expect("watch server accepts");
    write!(stream, "GET {path} HTTP/1.1\r\nHost: fault\r\nConnection: close\r\n\r\n")
        .expect("request writes");
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("response reads");
    match response.find("\r\n\r\n") {
        Some(at) => response[at + 4..].to_string(),
        None => response,
    }
}

/// Polls `/alerts` until `rule` has fired (the alert tick is async).
fn wait_for_alert(addr: std::net::SocketAddr, rule: &str) -> bool {
    for _ in 0..40 {
        let body = http_get(addr, "/alerts");
        if let Ok(alerts) = dynp_obs::parse_json(&body) {
            let fired = alerts
                .get("rules")
                .and_then(JsonValue::as_array)
                .into_iter()
                .flatten()
                .any(|r| {
                    r.get("rule").and_then(JsonValue::as_str) == Some(rule)
                        && r.get("fired").and_then(JsonValue::as_u64).unwrap_or(0) > 0
                });
            if fired {
                return true;
            }
        }
        std::thread::sleep(Duration::from_millis(250));
    }
    false
}

fn main() {
    let (_args, watch_addr) = cli_args_and_watch();
    let mut report = Report::new("fault");
    let watch = start_watch(watch_addr.as_deref());
    let jobs = drill_trace();

    // --- The drill: a campaign that must survive its fault plan. ---
    let dir = "results/fault-run";
    let _ = std::fs::remove_dir_all(dir);
    let first = run_campaign(&jobs, &drill_config(dir)).expect("faulted campaign exits ok");
    assert!(first.cells_total >= 4, "need >= 4 cells, got {}", first.cells_total);
    assert_eq!(first.cells_crashed, 1, "exactly the persistent panic stays crashed");
    assert_eq!(first.cells_timed_out, 1, "exactly the delayed cell times out");

    let loaded = checkpoint::load(&first.checkpoint_path, &first.fingerprint).expect("checkpoint loads");
    let field = |cell: usize, key: &str| loaded.cells[&cell].get(key).cloned();
    assert_eq!(
        field(0, "status").and_then(|s| s.as_str().map(String::from)),
        Some("crashed".into())
    );
    assert_eq!(field(0, "attempts").and_then(|a| a.as_u64()), Some(2));
    assert_eq!(
        field(1, "status").and_then(|s| s.as_str().map(String::from)),
        Some("timed_out".into())
    );
    assert!(!loaded.cells.contains_key(&2), "io-faulted cell must have no record");
    assert_eq!(field(3, "status").and_then(|s| s.as_str().map(String::from)), Some("ok".into()));
    assert_eq!(field(3, "attempts").and_then(|a| a.as_u64()), Some(2), "healed on retry");

    // The report carries the census and stays strict JSON.
    let report_bytes = std::fs::read(&first.report_json_path).expect("report exists");
    dynp_obs::validate_json(std::str::from_utf8(&report_bytes).unwrap())
        .expect("degraded report is strict JSON");
    let failures = first.report.get("failures").expect("failure census present");
    assert_eq!(failures.get("crashed").and_then(JsonValue::as_u64), Some(1));
    assert_eq!(failures.get("timed_out").and_then(JsonValue::as_u64), Some(1));

    // Degraded records resume: everything except the io-faulted cell is
    // trusted, and the report reproduces byte for byte.
    let second = run_campaign(&jobs, &drill_config(dir)).expect("resume runs");
    assert_eq!(second.cells_resumed, second.cells_total - 1, "only the io-faulted cell recomputes");
    assert_eq!(second.cells_computed, 1);
    assert_eq!(
        std::fs::read(&second.report_json_path).expect("report exists"),
        report_bytes,
        "degraded resume must be byte-identical"
    );

    // CI greps this exact marker.
    eprintln!(
        "fault: census crashed={} timed_out={} resumed={} recomputed={}",
        second.cells_crashed, second.cells_timed_out, second.cells_resumed, second.cells_computed
    );
    report.line(format!(
        "drill: {} cells, {} crashed, {} timed out, resume recomputed {}",
        first.cells_total, first.cells_crashed, first.cells_timed_out, second.cells_computed
    ));
    report.set(
        "drill",
        JsonValue::object()
            .with("cells", first.cells_total)
            .with("crashed", first.cells_crashed)
            .with("timed_out", first.cells_timed_out)
            .with("resumed", second.cells_resumed)
            .with("recomputed_on_resume", second.cells_computed)
            .with("fingerprint", first.fingerprint.as_str()),
    );

    // --- With --watch: our own /alerts must show the degraded rule. ---
    let mut alert_fired = JsonValue::Null;
    if let Some(addr) = watch.local_addr() {
        let fired = wait_for_alert(addr, "campaign-degraded-cells");
        assert!(fired, "campaign-degraded-cells must fire for a degraded sweep");
        eprintln!("fault: alert campaign-degraded-cells fired");
        report.line("alert: campaign-degraded-cells fired on /alerts");
        alert_fired = JsonValue::from(true);
    }
    report.set("alert_fired", alert_fired);

    // --- Deadline overhead: same clean campaign, no deadline vs a huge
    // one. Every cell finishes long before the hour, so the delta is
    // purely the cancel polls + per-attempt token install. ---
    let overhead_jobs = drill_trace();
    let mut seconds = [0.0f64; 2];
    for (slot, deadline) in [(0, None), (1, Some(Duration::from_secs(3600)))] {
        let dir = format!("results/fault-overhead-{slot}");
        let _ = std::fs::remove_dir_all(&dir);
        let started = Instant::now();
        let outcome =
            run_campaign(&overhead_jobs, &overhead_config(dir.clone(), deadline)).expect("clean run");
        seconds[slot] = started.elapsed().as_secs_f64();
        assert_eq!(outcome.cells_crashed + outcome.cells_timed_out, 0, "clean run degraded");
        let _ = std::fs::remove_dir_all(&dir);
    }
    let overhead_percent = (seconds[1] / seconds[0].max(1e-9) - 1.0) * 100.0;
    report.blank();
    report.line(format!(
        "deadline overhead: {:.3} s without vs {:.3} s with a 1 h deadline ({overhead_percent:+.2}%)",
        seconds[0], seconds[1]
    ));
    report.set(
        "deadline_overhead",
        JsonValue::object()
            .with("no_deadline_seconds", seconds[0])
            .with("deadline_seconds", seconds[1])
            .with("overhead_percent", overhead_percent),
    );

    let bench = JsonValue::object()
        .with("bench", "fault")
        .with("cells", first.cells_total)
        .with("crashed", first.cells_crashed)
        .with("timed_out", first.cells_timed_out)
        .with("recomputed_on_resume", second.cells_computed)
        .with("deadline_overhead_percent", overhead_percent);
    std::fs::write("BENCH_fault.json", bench.to_json_pretty()).expect("write BENCH_fault");
    report.finish().expect("write report");
}
