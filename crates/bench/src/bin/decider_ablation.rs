//! Ablation A (DESIGN.md §3): simple vs. advanced vs. sticky deciders.
//!
//! Reference \[14\] showed the simple decider takes a *wrong* decision in four tie
//! cases (flipping back to FCFS/SJF although staying is correct); the
//! advanced decider fixes them. This experiment quantifies the effect on a
//! CTC-like trace: switch counts, per-policy residency, and the resulting
//! actual-time metrics.
//!
//! Usage: `cargo run --release -p dynp-bench --bin decider_ablation [n_jobs] [seeds...]`

use dynp_bench::{ctc_trace, selector_run};
use dynp_core::{Decider, SelfTuning};
use dynp_sched::{Metric, Policy};

fn main() {
    let mut args = std::env::args().skip(1);
    let n_jobs: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(1500);
    let seeds: Vec<u64> = {
        let rest: Vec<u64> = args.filter_map(|a| a.parse().ok()).collect();
        if rest.is_empty() {
            vec![2004, 7, 42]
        } else {
            rest
        }
    };

    let deciders = [
        ("simple", Decider::Simple),
        ("advanced", Decider::Advanced),
        ("sticky(5%)", Decider::Sticky { margin: 0.05 }),
        ("sticky(20%)", Decider::Sticky { margin: 0.20 }),
    ];

    println!("\nDecider ablation on CTC-like traces ({n_jobs} jobs per seed)");
    println!(
        "{:<12} {:>6} {:>9} {:>11} {:>8} {:>8} {:>22}",
        "decider", "seed", "switches", "switch rate", "SLDwA", "ARTwW", "residency F/S/L [%]"
    );

    for &seed in &seeds {
        let trace = ctc_trace(n_jobs, seed);
        for (label, decider) in deciders {
            let tuner = SelfTuning::new(Policy::PAPER_SET.to_vec(), Metric::SldwA, decider);
            let run = selector_run(&trace.jobs, trace.machine_size, tuner);
            let stats = run.selector.stats();
            let total_res: u64 = stats.residency().values().sum::<u64>().max(1);
            let pct = |p: Policy| {
                100.0 * stats.residency().get(&p).copied().unwrap_or(0) as f64 / total_res as f64
            };
            println!(
                "{:<12} {:>6} {:>9} {:>10.1}% {:>8.2} {:>7.0}s {:>7.0}/{:.0}/{:.0}",
                label,
                seed,
                stats.switches(),
                stats.switch_rate() * 100.0,
                run.summary.sldwa,
                run.summary.artww,
                pct(Policy::Fcfs),
                pct(Policy::Sjf),
                pct(Policy::Ljf),
            );
        }
        println!();
    }
    println!(
        "expectation ([14] / paper §2): the advanced decider switches less than the\n\
         simple one (it never flips back on ties) without hurting the metrics;\n\
         larger sticky margins damp switching further."
    );
}
