//! Ablation A (DESIGN.md §3): simple vs. advanced vs. sticky deciders.
//!
//! Reference \[14\] showed the simple decider takes a *wrong* decision in four tie
//! cases (flipping back to FCFS/SJF although staying is correct); the
//! advanced decider fixes them. This experiment quantifies the effect on a
//! CTC-like trace: switch counts, per-policy residency, and the resulting
//! actual-time metrics. Writes `results/decider_ablation.{txt,json,events.jsonl}`.
//!
//! Usage: `cargo run --release -p dynp-bench --bin decider_ablation [n_jobs] [seeds...] [--watch <addr>]`

use dynp_bench::{cli_args_and_watch, ctc_trace, selector_run, start_watch, Report};
use dynp_core::{Decider, SelfTuning};
use dynp_obs::JsonValue;
use dynp_sched::{Metric, Policy};

fn main() {
    let (args, watch_addr) = cli_args_and_watch();
    let mut args = args.into_iter();
    let n_jobs: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(1500);
    let seeds: Vec<u64> = {
        let rest: Vec<u64> = args.filter_map(|a| a.parse().ok()).collect();
        if rest.is_empty() {
            vec![2004, 7, 42]
        } else {
            rest
        }
    };

    let mut report = Report::new("decider_ablation");
    let _watch = start_watch(watch_addr.as_deref());
    report.set(
        "params",
        JsonValue::object()
            .with("n_jobs", n_jobs)
            .with("seeds", seeds.clone()),
    );

    let deciders = [
        ("simple", Decider::Simple),
        ("advanced", Decider::Advanced),
        ("sticky(5%)", Decider::Sticky { margin: 0.05 }),
        ("sticky(20%)", Decider::Sticky { margin: 0.20 }),
    ];

    report.blank();
    report.line(format!(
        "Decider ablation on CTC-like traces ({n_jobs} jobs per seed)"
    ));
    report.line(format!(
        "{:<12} {:>6} {:>9} {:>11} {:>8} {:>8} {:>22}",
        "decider", "seed", "switches", "switch rate", "SLDwA", "ARTwW", "residency F/S/L [%]"
    ));

    let mut rows_json = JsonValue::array();
    for &seed in &seeds {
        let trace = ctc_trace(n_jobs, seed);
        for (label, decider) in deciders {
            let tuner = SelfTuning::new(Policy::PAPER_SET.to_vec(), Metric::SldwA, decider);
            let run = selector_run(&trace.jobs, trace.machine_size, tuner);
            let stats = run.selector.stats();
            let total_res: u64 = stats.residency().values().sum::<u64>().max(1);
            let pct = |p: Policy| {
                100.0 * stats.residency().get(&p).copied().unwrap_or(0) as f64 / total_res as f64
            };
            report.line(format!(
                "{:<12} {:>6} {:>9} {:>10.1}% {:>8.2} {:>7.0}s {:>7.0}/{:.0}/{:.0}",
                label,
                seed,
                stats.switches(),
                stats.switch_rate() * 100.0,
                run.summary.sldwa,
                run.summary.artww,
                pct(Policy::Fcfs),
                pct(Policy::Sjf),
                pct(Policy::Ljf),
            ));
            rows_json.push(
                JsonValue::object()
                    .with("decider", label)
                    .with("seed", seed)
                    .with("switches", stats.switches())
                    .with("switch_rate", stats.switch_rate())
                    .with("sldwa", run.summary.sldwa)
                    .with("artww", run.summary.artww)
                    .with(
                        "residency_percent",
                        JsonValue::object()
                            .with("fcfs", pct(Policy::Fcfs))
                            .with("sjf", pct(Policy::Sjf))
                            .with("ljf", pct(Policy::Ljf)),
                    ),
            );
        }
        report.blank();
    }
    report.set("rows", rows_json);
    report.line(
        "expectation ([14] / paper §2): the advanced decider switches less than the\n\
         simple one (it never flips back on ties) without hurting the metrics;\n\
         larger sticky margins damp switching further.",
    );
    report.finish().expect("writing results/");
}
