//! Ablation B (DESIGN.md §3): effect of the time-scaling granularity and
//! of the §3.2 compaction on exact-schedule quality and solve effort.
//!
//! For a fixed set of snapshots, sweeps the slot width over
//! {1, 2, 5, 10, 30} minutes, with and without compaction, and reports
//! model size, quality vs. the best policy, and solve time. This
//! quantifies the paper's observation that coarse scaling can make the
//! "optimal" schedule *worse* than a policy schedule (negative loss rows
//! in Table 1) and that compaction recovers most of the grid slack.
//! Writes `results/scaling_sweep.{txt,json,events.jsonl}`.
//!
//! Usage: `cargo run --release -p dynp-bench --bin scaling_sweep [n_jobs] [seed] [--watch <addr>]`

use dynp_bench::{
    cli_args_and_watch, dynp_run_with_snapshots, small_trace, solve_snapshots, spread_sample,
    start_watch, Report,
};
use dynp_milp::{BranchLimits, SolveConfig};
use dynp_obs::JsonValue;
use dynp_sim::SnapshotFilter;
use std::time::Duration;

fn main() {
    let (args, watch_addr) = cli_args_and_watch();
    let mut args = args.into_iter();
    let n_jobs: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(400);
    let seed: u64 = args.next().and_then(|a| a.parse().ok()).unwrap_or(2004);

    let mut report = Report::new("scaling_sweep");
    let _watch = start_watch(watch_addr.as_deref());

    eprintln!("generating trace and collecting snapshots ...");
    let trace = small_trace(n_jobs, seed, 64);
    let run = dynp_run_with_snapshots(
        &trace.jobs,
        trace.machine_size,
        SnapshotFilter {
            min_jobs: 5,
            max_jobs: 14,
            ..SnapshotFilter::default()
        },
    );
    let sample = spread_sample(&run.snapshots, 6);
    eprintln!("{} snapshots sampled", sample.len());
    report.set(
        "params",
        JsonValue::object()
            .with("n_jobs", n_jobs)
            .with("seed", seed)
            .with("machine_size", trace.machine_size)
            .with("snapshots", sample.len()),
    );

    report.blank();
    report.line(format!(
        "Time-scaling sweep (metric: SLDwA, {} snapshots averaged)",
        sample.len()
    ));
    report.line(format!(
        "{:>7} {:>10} {:>9} {:>9} {:>11} {:>11}",
        "scale", "compacted", "avg vars", "avg loss", "avg nodes", "avg time"
    ));
    let mut rows_json = JsonValue::array();
    for scale_minutes in [1u64, 2, 5, 10, 30] {
        for compacted in [true, false] {
            let config = SolveConfig {
                scale_override: Some(scale_minutes * 60),
                skip_compaction: !compacted,
                limits: BranchLimits {
                    max_nodes: 5_000,
                    time_limit: Some(Duration::from_secs(30)),
                    ..BranchLimits::default()
                },
                ..SolveConfig::default()
            };
            let runs = solve_snapshots(&sample, &config);
            let solved: Vec<_> = runs.iter().filter(|r| r.quality.is_some()).collect();
            let ns = solved.len().max(1) as f64;
            let avg_vars =
                runs.iter().map(|r| r.num_variables as f64).sum::<f64>() / runs.len() as f64;
            let avg_loss = solved
                .iter()
                .filter_map(|r| r.perf_loss_percent)
                .sum::<f64>()
                / ns;
            let avg_nodes = runs.iter().map(|r| r.nodes as f64).sum::<f64>() / runs.len() as f64;
            let avg_time =
                runs.iter().map(|r| r.solve_time.as_secs_f64()).sum::<f64>() / runs.len() as f64;
            report.line(format!(
                "{:>5}min {:>10} {:>9.0} {:>+8.2}% {:>11.0} {:>10.3}s",
                scale_minutes,
                if compacted { "yes" } else { "no" },
                avg_vars,
                avg_loss,
                avg_nodes,
                avg_time
            ));
            rows_json.push(
                JsonValue::object()
                    .with("scale_minutes", scale_minutes)
                    .with("compacted", compacted)
                    .with("avg_vars", avg_vars)
                    .with("avg_loss_percent", avg_loss)
                    .with("avg_nodes", avg_nodes)
                    .with("avg_solve_seconds", avg_time)
                    .with("solved", solved.len()),
            );
        }
    }
    report.set("rows", rows_json);
    report.blank();
    report.line(
        "expectations: finer scales -> larger models, longer solves, higher quality\n\
         (more positive loss); compaction always helps, most at coarse scales.",
    );
    report.finish().expect("writing results/");
}
