//! Reproduces **Table 1** of the paper: exemplary exact-solver runs on
//! quasi-off-line snapshots taken at job submissions of a CTC-like trace,
//! compared against the best basic policy of the self-tuning dynP
//! scheduler.
//!
//! Per row: snapshot size (jobs, max makespan, accumulated runtime), the
//! Eq. 6 time scale, the model size, the Eq. 7 quality and performance
//! loss of the best policy vs the exact schedule, and the solve effort.
//! The final row is the averages row, as in the paper. Writes
//! `results/table1.{txt,json,events.jsonl}`; the JSON carries the full
//! per-row data including each solve's incumbent/gap trajectory.
//!
//! Usage: `cargo run --release -p dynp-bench --bin table1 [n_jobs] [seed] [--watch <addr>]`
//!
//! The paper's qualitative expectations (see EXPERIMENTS.md):
//! * average performance loss in the ~1 % range (paper: 0.7 %),
//! * occasional negative loss rows (time-scaling artifacts),
//! * exact solve effort orders of magnitude above the policies' < 10 ms,
//!   and unpredictable between similar-sized instances.

use dynp_bench::{
    cli_args_and_watch, ctc_trace, dynp_run_with_snapshots, exact_run_json, solve_snapshots,
    spread_sample, start_watch, Report, Table1Averages, TABLE1_HEADER,
};
use dynp_milp::{BranchLimits, SolveConfig};
use dynp_obs::JsonValue;
use dynp_sim::SnapshotFilter;
use std::time::Duration;

fn main() {
    let (args, watch_addr) = cli_args_and_watch();
    let mut args = args.into_iter();
    let n_jobs: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(1200);
    let seed: u64 = args.next().and_then(|a| a.parse().ok()).unwrap_or(2004);
    let rows: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(12);

    let mut report = Report::new("table1");
    let _watch = start_watch(watch_addr.as_deref());

    eprintln!("generating CTC-like trace: {n_jobs} jobs, seed {seed} ...");
    let trace = ctc_trace(n_jobs, seed);

    eprintln!("replaying under self-tuning dynP, collecting snapshots ...");
    let run = dynp_run_with_snapshots(
        &trace.jobs,
        trace.machine_size,
        SnapshotFilter {
            // The paper's average instance has ~22 jobs; very small
            // snapshots are trivial and very large ones explode the ILP.
            min_jobs: 5,
            max_jobs: 18,
            ..SnapshotFilter::default()
        },
    );
    eprintln!(
        "simulation done: {} jobs completed, {} snapshots collected, {} policy switches",
        run.records.len(),
        run.snapshots.len(),
        run.selector.stats().switches()
    );
    report.set(
        "params",
        JsonValue::object()
            .with("n_jobs", n_jobs)
            .with("seed", seed)
            .with("rows", rows)
            .with("machine_size", trace.machine_size)
            .with("snapshots_collected", run.snapshots.len())
            .with("policy_switches", run.selector.stats().switches()),
    );

    let sample = spread_sample(&run.snapshots, rows);
    eprintln!("solving {} snapshots exactly (parallel) ...", sample.len());
    let config = SolveConfig {
        // Eq. 6 with the per-entry constant re-measured for *this* solver:
        // the paper calibrated x = 0.1 kB for CPLEX's data structures; our
        // revised simplex keeps a dense m x m basis inverse, so the
        // per-entry footprint is ~64x larger, which Eq. 6 turns into a
        // correspondingly coarser (but still minutes-range) time scale.
        memory_bytes: dynp_milp::PAPER_MEMORY_BYTES / 64.0,
        limits: BranchLimits {
            max_nodes: 20_000,
            time_limit: Some(Duration::from_secs(60)),
            ..BranchLimits::default()
        },
        ..SolveConfig::default()
    };
    let solved = solve_snapshots(&sample, &config);

    report.blank();
    report.line("Table 1 — exact problem sizes, quality, and compute time");
    report.line("(metric: SLDwA; baseline: best of FCFS/SJF/LJF at each snapshot)");
    report.line(format!("{TABLE1_HEADER}  status"));
    let mut rows_json = JsonValue::array();
    for r in &solved {
        report.line(format!("{}  {:?}", r.table_row(), r.status));
        rows_json.push(exact_run_json(r));
    }
    report.set("rows", rows_json);
    let avg = Table1Averages::compute(&solved);
    report.set("averages", avg.to_json());
    report.blank();
    report.line(format!(
        "averages over {} runs ({} solved):",
        avg.runs, avg.solved
    ));
    report.line(format!(
        "  jobs {:.1}   makespan {:.0} s   acc.runtime {:.0} s   scale {:.1} min",
        avg.avg_jobs,
        avg.avg_makespan,
        avg.avg_acc_runtime,
        avg.avg_time_scale / 60.0
    ));
    report.line(format!(
        "  quality {:.3}   perf. loss {:+.2}%   solve time {:.2} s",
        avg.avg_quality, avg.avg_loss_percent, avg.avg_solve_seconds
    ));
    // The paper's §3 "power" comparison: quality per compute second.
    let powers: Vec<(f64, f64)> = solved
        .iter()
        .filter_map(|r| Some((r.policy_power()?, r.exact_power()?)))
        .collect();
    if !powers.is_empty() {
        let avg_policy: f64 = powers.iter().map(|p| p.0).sum::<f64>() / powers.len() as f64;
        let avg_exact: f64 = powers.iter().map(|p| p.1).sum::<f64>() / powers.len() as f64;
        report.blank();
        report.line(format!(
            "scheduler power (quality per compute second, paper §3):\n  \
             policies {avg_policy:.0} /s   exact solver {avg_exact:.3} /s   ratio {:.0}x",
            avg_policy / avg_exact.max(1e-12)
        ));
        report.set(
            "power",
            JsonValue::object()
                .with("avg_policy_per_sec", avg_policy)
                .with("avg_exact_per_sec", avg_exact)
                .with("ratio", avg_policy / avg_exact.max(1e-12)),
        );
    }
    report.blank();
    report.line(
        "paper reference: avg ~22 jobs, ~2-day makespan, 5-min scale, 0.7% loss, hours of CPLEX time",
    );
    report.finish().expect("writing results/");
}
