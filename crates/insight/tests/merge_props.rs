//! Property tests for the logical-clock merge: however a recorder's
//! event stream is physically split across worker shards and however
//! those shards interleave, merging recovers one total order with no
//! lost or duplicated seq, and the analyzer's report is byte-identical.

use dynp_insight::{analyze_groups, merge_lines, Options};
use proptest::prelude::*;

const SHARDS: usize = 6;

/// A synthetic event line for `seq`, shaped like the recorder's output
/// (ts first, then target and seq, then optional trace context).
fn line(seq: u64, sel: u8) -> String {
    match sel % 4 {
        0 => format!("{{\"ts\":0.5,\"target\":\"exp.campaign_start\",\"seq\":{seq},\"fingerprint\":\"f\"}}"),
        1 => {
            let cell = u64::from(sel) % 3;
            let base = (cell + 1) << 32;
            format!(
                "{{\"ts\":1.5,\"target\":\"span\",\"seq\":{seq},\"campaign\":\"00000000000000aa\",\"cell\":{cell},\"span\":{span},\"parent\":{base},\"kind\":\"sim.run\",\"dur_ns\":{dur}}}",
                span = base + 1 + seq % 4,
                dur = 100 + seq,
            )
        }
        2 => format!("{{\"ts\":2.5,\"target\":\"dynp.decision\",\"seq\":{seq},\"from\":\"fcfs\",\"to\":\"sjf\"}}"),
        _ => format!("{{\"ts\":3.5,\"target\":\"misc\",\"seq\":{seq}}}"),
    }
}

proptest! {
    /// Partitioning the stream into up to six shards (each shard's
    /// internal order scrambled) and merging recovers exactly the
    /// original total order: every seq exactly once, no holes, no
    /// rejects — identical to merging the unsharded stream.
    #[test]
    fn sharded_merge_recovers_the_total_order(
        assignment in prop::collection::vec(0usize..SHARDS, 0..200),
        sels in prop::collection::vec(0u8..8, 0..200),
    ) {
        let n = assignment.len();
        let lines: Vec<String> = (0..n)
            .map(|i| line(i as u64, sels.get(i).copied().unwrap_or(0)))
            .collect();

        let mut shards: Vec<Vec<&str>> = vec![Vec::new(); SHARDS];
        for (i, &shard) in assignment.iter().enumerate() {
            shards[shard].push(lines[i].as_str());
        }
        // Worker interleaving: reverse every other shard's write order.
        for (i, shard) in shards.iter_mut().enumerate() {
            if i % 2 == 1 {
                shard.reverse();
            }
        }

        let from_shards = merge_lines("g", shards.iter().flatten().copied());
        let from_single = merge_lines("g", lines.iter().map(String::as_str));

        let seqs: Vec<u64> = from_shards.events.iter().map(|e| e.seq).collect();
        prop_assert_eq!(&seqs, &(0..n as u64).collect::<Vec<_>>());
        prop_assert_eq!(from_shards.rejected, 0);
        prop_assert_eq!(from_shards.duplicate_seqs, 0);
        prop_assert_eq!(from_shards.conflicting_seqs, 0);
        prop_assert_eq!(from_shards.missing_seqs, 0);

        // The merged streams are identical event for event.
        prop_assert_eq!(from_shards.events.len(), from_single.events.len());
        for (a, b) in from_shards.events.iter().zip(&from_single.events) {
            prop_assert_eq!(a.seq, b.seq);
            prop_assert_eq!(&a.target, &b.target);
        }

        // And the analyzer cannot tell the difference: full-mode reports
        // (timing included — built from dur_ns, not arrival order) are
        // byte-identical.
        let opts = Options::default();
        let report_sharded = analyze_groups(&[from_shards], &opts).to_json();
        let report_single = analyze_groups(&[from_single], &opts).to_json();
        prop_assert_eq!(report_sharded, report_single);
    }

    /// Duplicated shard content never duplicates events: replaying one
    /// shard's lines again merges to the same stream, with the extras
    /// accounted as `duplicate_seqs`.
    #[test]
    fn replayed_shards_deduplicate(
        assignment in prop::collection::vec(0usize..SHARDS, 1..100),
        replayed in 0usize..SHARDS,
    ) {
        let n = assignment.len();
        let lines: Vec<String> = (0..n).map(|i| line(i as u64, i as u8)).collect();
        let mut shards: Vec<Vec<&str>> = vec![Vec::new(); SHARDS];
        for (i, &shard) in assignment.iter().enumerate() {
            shards[shard].push(lines[i].as_str());
        }
        let replay = shards[replayed].clone();
        let merged = merge_lines("g", shards.iter().flatten().copied().chain(replay.iter().copied()));
        let seqs: Vec<u64> = merged.events.iter().map(|e| e.seq).collect();
        prop_assert_eq!(&seqs, &(0..n as u64).collect::<Vec<_>>());
        prop_assert_eq!(merged.duplicate_seqs, replay.len());
        prop_assert_eq!(merged.conflicting_seqs, 0);
        prop_assert_eq!(merged.missing_seqs, 0);
    }
}
