//! `dynp-insight` — offline analyzer CLI for dynp-rs event logs.
//!
//! ```text
//! dynp-insight analyze <path>... [--logical] [--text] [--top N] [--out FILE]
//! dynp-insight diff <baseline.json> <candidate.json>
//! dynp-insight fold <path> [--out FILE] [--diff BASELINE.folded]
//! dynp-insight check-metrics <snapshot.metrics.txt>
//! ```
//!
//! `analyze` ingests a results directory (or individual event logs,
//! rotations included), merges by logical clock, and prints the report
//! JSON. `--logical` restricts it to the worker-count-independent
//! section (the golden-file mode CI diffs); `--text` prints the human
//! summary instead. `diff` exits nonzero when the logical sections
//! differ; timing shifts are printed as notes only. `fold` rebuilds
//! the collapsed-stack profile from the span events (the offline twin
//! of a live `.folded` file); with `--diff` it prints per-stack self
//! time deltas against a baseline instead. `check-metrics` validates
//! an OpenMetrics snapshot with the strict parser.

use dynp_insight::{
    analyze_groups, diff_reports, discover, merge_group, profile_path, render_text, Options,
};
use dynp_obs::JsonValue;
use std::path::PathBuf;
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  dynp-insight analyze <path>... [--logical] [--text] [--top N] [--out FILE]\n  dynp-insight diff <baseline.json> <candidate.json>\n  dynp-insight fold <path> [--out FILE] [--diff BASELINE.folded]\n  dynp-insight check-metrics <snapshot.metrics.txt>"
    );
    ExitCode::from(2)
}

fn fail(msg: &str) -> ExitCode {
    eprintln!("dynp-insight: {msg}");
    ExitCode::FAILURE
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("analyze") => analyze_cmd(&args[1..]),
        Some("diff") => diff_cmd(&args[1..]),
        Some("fold") => fold_cmd(&args[1..]),
        Some("check-metrics") => check_metrics_cmd(&args[1..]),
        _ => usage(),
    }
}

fn analyze_cmd(args: &[String]) -> ExitCode {
    let mut opts = Options::default();
    let mut text = false;
    let mut out: Option<PathBuf> = None;
    let mut paths: Vec<PathBuf> = Vec::new();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--logical" => opts.logical_only = true,
            "--text" => text = true,
            "--top" => match it.next().and_then(|v| v.parse().ok()) {
                Some(n) => opts.top_k = n,
                None => return usage(),
            },
            "--out" => match it.next() {
                Some(p) => out = Some(PathBuf::from(p)),
                None => return usage(),
            },
            other if other.starts_with("--") => return usage(),
            other => paths.push(PathBuf::from(other)),
        }
    }
    if paths.is_empty() {
        return usage();
    }
    let mut merged = Vec::new();
    for path in &paths {
        let groups = match discover(path) {
            Ok(g) => g,
            Err(e) => return fail(&format!("cannot read {}: {e}", path.display())),
        };
        if groups.is_empty() {
            return fail(&format!("no *.events.jsonl under {}", path.display()));
        }
        for g in &groups {
            match merge_group(g) {
                Ok(m) => merged.push(m),
                Err(e) => return fail(&format!("cannot merge {}: {e}", g.name)),
            }
        }
    }
    let report = analyze_groups(&merged, &opts);
    let rendered = if text {
        render_text(&report)
    } else {
        report.to_json_pretty() + "\n"
    };
    match out {
        Some(path) => {
            if let Err(e) = std::fs::write(&path, rendered) {
                return fail(&format!("cannot write {}: {e}", path.display()));
            }
            eprintln!("wrote {}", path.display());
        }
        None => print!("{rendered}"),
    }
    ExitCode::SUCCESS
}

fn read_report(path: &str) -> Result<JsonValue, String> {
    let content =
        std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    dynp_obs::parse_json(&content).map_err(|e| format!("{path} is not a valid report: {e}"))
}

fn diff_cmd(args: &[String]) -> ExitCode {
    let [baseline, candidate] = args else {
        return usage();
    };
    let (a, b) = match (read_report(baseline), read_report(candidate)) {
        (Ok(a), Ok(b)) => (a, b),
        (Err(e), _) | (_, Err(e)) => return fail(&e),
    };
    let outcome = diff_reports(&a, &b);
    for note in &outcome.timing_notes {
        println!("note: {note}");
    }
    if outcome.logical_equal {
        println!("logical sections identical");
        ExitCode::SUCCESS
    } else {
        for d in &outcome.logical_diffs {
            println!("diff: {d}");
        }
        eprintln!(
            "dynp-insight: {} logical difference(s) between {baseline} and {candidate}",
            outcome.logical_diffs.len()
        );
        ExitCode::FAILURE
    }
}

fn fold_cmd(args: &[String]) -> ExitCode {
    let mut out: Option<PathBuf> = None;
    let mut baseline: Option<PathBuf> = None;
    let mut paths: Vec<PathBuf> = Vec::new();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--out" => match it.next() {
                Some(p) => out = Some(PathBuf::from(p)),
                None => return usage(),
            },
            "--diff" => match it.next() {
                Some(p) => baseline = Some(PathBuf::from(p)),
                None => return usage(),
            },
            other if other.starts_with("--") => return usage(),
            other => paths.push(PathBuf::from(other)),
        }
    }
    let [path] = paths.as_slice() else {
        return usage();
    };
    let profile = match profile_path(path) {
        Ok(p) => p,
        Err(e) => return fail(&format!("cannot profile {}: {e}", path.display())),
    };
    let rendered = match baseline {
        None => dynp_obs::render_folded(&profile),
        Some(base_path) => {
            let text = match std::fs::read_to_string(&base_path) {
                Ok(t) => t,
                Err(e) => return fail(&format!("cannot read {}: {e}", base_path.display())),
            };
            let base = match dynp_obs::profile::parse_folded(&text) {
                Ok(b) => b,
                Err(e) => return fail(&format!("{}: {e}", base_path.display())),
            };
            render_folded_diff(&base, &profile.stacks)
        }
    };
    match out {
        Some(path) => {
            if let Err(e) = std::fs::write(&path, rendered) {
                return fail(&format!("cannot write {}: {e}", path.display()));
            }
            eprintln!("wrote {}", path.display());
        }
        None => print!("{rendered}"),
    }
    ExitCode::SUCCESS
}

/// One `stack baseline candidate delta` line per stack present on
/// either side, sorted by stack — a regression-friendly self-time diff.
fn render_folded_diff(
    base: &std::collections::BTreeMap<String, u64>,
    cand: &std::collections::BTreeMap<String, u64>,
) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let stacks: std::collections::BTreeSet<&String> = base.keys().chain(cand.keys()).collect();
    for stack in stacks {
        let b = base.get(stack).copied().unwrap_or(0);
        let c = cand.get(stack).copied().unwrap_or(0);
        let _ = writeln!(out, "{stack} {b} {c} {:+}", c as i128 - b as i128);
    }
    out
}

fn check_metrics_cmd(args: &[String]) -> ExitCode {
    let [path] = args else {
        return usage();
    };
    let content = match std::fs::read_to_string(path) {
        Ok(c) => c,
        Err(e) => return fail(&format!("cannot read {path}: {e}")),
    };
    match dynp_obs::expo::validate(&content) {
        Ok(()) => {
            println!("{path}: valid OpenMetrics exposition");
            ExitCode::SUCCESS
        }
        Err(e) => fail(&format!("{path}: invalid OpenMetrics: {e}")),
    }
}
