//! One parsed JSONL event record, as written by `dynp_obs`'s sinks.

use dynp_obs::{parse_json, JsonValue};

/// A single event line: the envelope fields every record carries
/// (`seq`, `target`) plus the optional trace-context correlation fields,
/// with the full parsed object kept for payload access.
#[derive(Clone, Debug)]
pub struct Event {
    /// Logical-clock value; the merge key. Unique per log group.
    pub seq: u64,
    /// Event target, e.g. `milp.exit` or `span`.
    pub target: String,
    /// Campaign identity (16 hex digits) when emitted inside a cell.
    pub campaign: Option<String>,
    /// Cell index when emitted inside a cell.
    pub cell: Option<u64>,
    /// Span id when a trace context was active.
    pub span: Option<u64>,
    /// Parent span id when a trace context was active (0 = root).
    pub parent: Option<u64>,
    /// The full parsed object, for payload fields (`kind`, `dur_ns`,
    /// `status`, …).
    pub body: JsonValue,
}

impl Event {
    /// Unsigned-integer payload field.
    pub fn u(&self, key: &str) -> Option<u64> {
        self.body.get(key).and_then(JsonValue::as_u64)
    }

    /// Float payload field.
    pub fn f(&self, key: &str) -> Option<f64> {
        self.body.get(key).and_then(JsonValue::as_f64)
    }

    /// String payload field.
    pub fn s(&self, key: &str) -> Option<&str> {
        self.body.get(key).and_then(JsonValue::as_str)
    }
}

/// Parses one JSONL line into an [`Event`].
///
/// Rejects lines that are not strict JSON objects or that predate the
/// `seq` logical clock — the analyzer needs a total order, so legacy
/// logs without `seq` are counted as rejected rather than guessed at.
pub fn parse_line(line: &str) -> Result<Event, String> {
    let body = parse_json(line).map_err(|e| format!("invalid JSON: {e}"))?;
    let seq = body
        .get("seq")
        .and_then(JsonValue::as_u64)
        .ok_or_else(|| "missing seq (pre-insight event schema)".to_string())?;
    let target = body
        .get("target")
        .and_then(JsonValue::as_str)
        .ok_or_else(|| "missing target".to_string())?
        .to_string();
    let campaign = body
        .get("campaign")
        .and_then(JsonValue::as_str)
        .map(str::to_string);
    let cell = body.get("cell").and_then(JsonValue::as_u64);
    let span = body.get("span").and_then(JsonValue::as_u64);
    let parent = body.get("parent").and_then(JsonValue::as_u64);
    if campaign.is_some() != cell.is_some() {
        return Err("campaign and cell must appear together".to_string());
    }
    if (campaign.is_some() || parent.is_some()) && span.is_none() {
        return Err("context fields present without a span id".to_string());
    }
    Ok(Event {
        seq,
        target,
        campaign,
        cell,
        span,
        parent,
        body,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_full_context_line() {
        let e = parse_line(
            r#"{"ts":0.5,"target":"span","seq":9,"campaign":"00deadbeef000000","cell":3,"span":17179869184,"parent":0,"kind":"exp.cell","dur_ns":123}"#,
        )
        .unwrap();
        assert_eq!(e.seq, 9);
        assert_eq!(e.target, "span");
        assert_eq!(e.cell, Some(3));
        assert_eq!(e.span, Some(4u64 << 32));
        assert_eq!(e.s("kind"), Some("exp.cell"));
        assert_eq!(e.u("dur_ns"), Some(123));
    }

    #[test]
    fn rejects_seqless_and_invalid_lines() {
        assert!(parse_line(r#"{"ts":1,"target":"x"}"#).is_err());
        assert!(parse_line("not json").is_err());
        assert!(parse_line(r#"{"ts":1,"target":"x","seq":1,"campaign":"ab"}"#).is_err());
        assert!(parse_line(r#"{"ts":1,"target":"x","seq":1,"parent":2}"#).is_err());
    }
}
