//! Regression diffing of two insight reports.
//!
//! The `logical` sections are compared for strict structural equality —
//! they are deterministic for a given campaign config and trace, so any
//! difference is a real behavioral change (different cells, different
//! solver effort, different span structure) and fails the diff. The
//! `timing` sections are compared loosely: large latency shifts are
//! reported as informational notes but never fail, because wall-clock
//! varies run to run.

use dynp_obs::JsonValue;

/// Outcome of comparing two reports.
#[derive(Debug, Default)]
pub struct DiffOutcome {
    /// True when the logical sections are structurally identical.
    pub logical_equal: bool,
    /// Paths (dotted) where the logical sections differ.
    pub logical_diffs: Vec<String>,
    /// Informational notes on large timing shifts.
    pub timing_notes: Vec<String>,
}

const MAX_DIFFS: usize = 50;

fn describe(v: &JsonValue) -> String {
    let mut s = v.to_json();
    if s.len() > 60 {
        s.truncate(57);
        s.push_str("...");
    }
    s
}

fn walk(path: &str, a: &JsonValue, b: &JsonValue, out: &mut Vec<String>) {
    if out.len() >= MAX_DIFFS {
        return;
    }
    match (a, b) {
        (JsonValue::Object(ea), JsonValue::Object(eb)) => {
            for (k, va) in ea {
                match eb.iter().find(|(kb, _)| kb == k) {
                    Some((_, vb)) => walk(&format!("{path}.{k}"), va, vb, out),
                    None => out.push(format!("{path}.{k}: removed (was {})", describe(va))),
                }
            }
            for (k, vb) in eb {
                if !ea.iter().any(|(ka, _)| ka == k) {
                    out.push(format!("{path}.{k}: added ({})", describe(vb)));
                }
            }
        }
        (JsonValue::Array(ia), JsonValue::Array(ib)) => {
            if ia.len() != ib.len() {
                out.push(format!("{path}: length {} -> {}", ia.len(), ib.len()));
            }
            for (i, (va, vb)) in ia.iter().zip(ib).enumerate() {
                walk(&format!("{path}[{i}]"), va, vb, out);
            }
        }
        _ if a == b => {}
        _ => out.push(format!("{path}: {} -> {}", describe(a), describe(b))),
    }
}

/// Ratio past which a timing shift is worth a note.
const TIMING_NOTE_RATIO: f64 = 2.0;

fn timing_notes(a: &JsonValue, b: &JsonValue, out: &mut Vec<String>) {
    let (Some(ka), Some(kb)) = (
        a.get("span_kinds").and_then(JsonValue::as_object),
        b.get("span_kinds").and_then(JsonValue::as_object),
    ) else {
        return;
    };
    for (kind, stats_a) in ka {
        let Some((_, stats_b)) = kb.iter().find(|(k, _)| k == kind) else {
            out.push(format!("timing: span kind {kind} disappeared"));
            continue;
        };
        for metric in ["p50_ns", "p99_ns"] {
            let va = stats_a.get(metric).and_then(JsonValue::as_f64);
            let vb = stats_b.get(metric).and_then(JsonValue::as_f64);
            if let (Some(va), Some(vb)) = (va, vb) {
                if va > 0.0 && vb > 0.0 {
                    let ratio = vb / va;
                    if !(1.0 / TIMING_NOTE_RATIO..=TIMING_NOTE_RATIO).contains(&ratio) {
                        out.push(format!(
                            "timing: {kind} {metric} {va:.0} -> {vb:.0} ({ratio:.2}x)"
                        ));
                    }
                }
            }
        }
    }
}

/// Compares report `a` (baseline) against `b` (candidate).
pub fn diff_reports(a: &JsonValue, b: &JsonValue) -> DiffOutcome {
    let mut outcome = DiffOutcome::default();
    let null = JsonValue::Null;
    let la = a.get("logical").unwrap_or(&null);
    let lb = b.get("logical").unwrap_or(&null);
    walk("logical", la, lb, &mut outcome.logical_diffs);
    outcome.logical_equal = outcome.logical_diffs.is_empty();
    if let (Some(ta), Some(tb)) = (a.get("timing"), b.get("timing")) {
        timing_notes(ta, tb, &mut outcome.timing_notes);
    }
    outcome
}

#[cfg(test)]
mod tests {
    use super::*;
    use dynp_obs::parse_json;

    #[test]
    fn identical_logical_sections_pass() {
        let a = parse_json(r#"{"logical":{"x":1,"list":[1,2]},"timing":{"span_kinds":{}}}"#).unwrap();
        let outcome = diff_reports(&a, &a);
        assert!(outcome.logical_equal);
        assert!(outcome.logical_diffs.is_empty());
    }

    #[test]
    fn logical_changes_are_reported_with_paths() {
        let a = parse_json(r#"{"logical":{"x":1,"gone":true,"list":[1,2]}}"#).unwrap();
        let b = parse_json(r#"{"logical":{"x":2,"list":[1],"new":"v"}}"#).unwrap();
        let outcome = diff_reports(&a, &b);
        assert!(!outcome.logical_equal);
        let joined = outcome.logical_diffs.join("\n");
        assert!(joined.contains("logical.x: 1 -> 2"), "{joined}");
        assert!(joined.contains("logical.gone: removed"), "{joined}");
        assert!(joined.contains("logical.list: length 2 -> 1"), "{joined}");
        assert!(joined.contains("logical.new: added"), "{joined}");
    }

    #[test]
    fn timing_shifts_are_notes_not_failures() {
        let a = parse_json(
            r#"{"logical":{},"timing":{"span_kinds":{"sim.run":{"p50_ns":1000.0,"p99_ns":2000.0}}}}"#,
        )
        .unwrap();
        let b = parse_json(
            r#"{"logical":{},"timing":{"span_kinds":{"sim.run":{"p50_ns":9000.0,"p99_ns":2100.0}}}}"#,
        )
        .unwrap();
        let outcome = diff_reports(&a, &b);
        assert!(outcome.logical_equal);
        assert_eq!(outcome.timing_notes.len(), 1);
        assert!(outcome.timing_notes[0].contains("p50_ns"));
    }
}
