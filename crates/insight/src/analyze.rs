//! The offline analyzer: turns merged event streams into a structured
//! insight report.
//!
//! The report has two top-level sections with different determinism
//! guarantees:
//!
//! * **`logical`** — derived only from deterministic quantities (cell
//!   payloads, span ids, solver node/iteration counts, statuses). For a
//!   given campaign config and trace it is **byte-identical regardless
//!   of worker count**, machine, or load, which is what makes it
//!   golden-file-diffable in CI.
//! * **`timing`** — wall-clock derived: latency percentiles per span
//!   kind, slowest cells, the critical path of the slowest cell, and
//!   the parent/child duration reconciliation. Informative, never
//!   gated on byte equality.
//!
//! Within a group, events are partitioned into *runs* at each
//! `exp.campaign_start` marker (a bench binary may run several
//! campaigns through one recorder); cells are keyed per run, so
//! repeated deterministic span ids across runs never collide.

use crate::merge::MergedGroup;
use dynp_obs::{Histogram, JsonValue, Profile, SpanRec};
use std::collections::BTreeMap;

/// Analyzer knobs.
#[derive(Clone, Debug)]
pub struct Options {
    /// Entries kept in top-k lists (slowest cells, biggest solves).
    pub top_k: usize,
    /// Emit only the `logical` section (byte-comparable across runs).
    pub logical_only: bool,
}

impl Default for Options {
    fn default() -> Self {
        Options {
            top_k: 5,
            logical_only: false,
        }
    }
}

/// One span close record inside a cell.
#[derive(Clone, Debug)]
struct SpanClose {
    kind: String,
    parent: u64,
    dur_ns: u64,
}

#[derive(Default)]
struct CellAgg {
    events: u64,
    spans: BTreeMap<u64, SpanClose>,
}

impl CellAgg {
    /// The cell's root span close (`parent == 0`), if the cell finished.
    fn root(&self) -> Option<(u64, &SpanClose)> {
        self.spans
            .iter()
            .find(|(_, s)| s.parent == 0)
            .map(|(id, s)| (*id, s))
    }
}

struct MilpExit {
    cell: Option<u64>,
    span: u64,
    nodes: u64,
    lp_iterations: u64,
    status: String,
    objective: Option<f64>,
    bound: Option<f64>,
    gap: Option<f64>,
}

/// Totals for the parent ≥ Σ children duration invariant.
#[derive(Default, Clone, Copy)]
pub struct Reconciliation {
    /// Spans that had at least one child.
    pub parents_checked: u64,
    /// Parents whose direct children's durations sum past their own.
    pub violations: u64,
}

fn opt_f64(v: Option<f64>) -> JsonValue {
    match v {
        Some(x) => JsonValue::from(x),
        None => JsonValue::Null,
    }
}

/// Analyzes merged groups into the report JSON. `hist_sink`, when
/// given, receives every span duration keyed by kind (shared across
/// groups) — used internally and exposed for tests.
pub fn analyze_groups(groups: &[MergedGroup], opts: &Options) -> JsonValue {
    let mut span_hists: BTreeMap<String, Histogram> = BTreeMap::new();
    let mut recon = Reconciliation::default();
    // Full-stream profile (cell + free spans), merged per run: the same
    // fold that produces live `.folded` files, so the timing section's
    // self times agree with them by construction.
    let mut profile = Profile::default();
    let mut logical_groups = JsonValue::Array(Vec::new());
    let mut timing_groups = JsonValue::Array(Vec::new());

    for group in groups {
        let (logical, timing) =
            analyze_group(group, opts, &mut span_hists, &mut recon, &mut profile);
        if let JsonValue::Array(items) = &mut logical_groups {
            items.push(logical);
        }
        if let JsonValue::Array(items) = &mut timing_groups {
            items.push(timing);
        }
    }

    let mut report = JsonValue::object()
        .with("schema", "dynp-insight/v1")
        .with("mode", if opts.logical_only { "logical" } else { "full" })
        .with("logical", JsonValue::object().with("groups", logical_groups));
    if !opts.logical_only {
        let mut kinds = JsonValue::object();
        for (kind, hist) in &span_hists {
            let snap = hist.snapshot();
            // Self time comes from the tree fold, not the histogram:
            // duration minus direct children, summed over the kind.
            let self_ns = profile
                .kinds
                .get(kind.as_str())
                .map(|stat| stat.self_ns)
                .unwrap_or(0);
            kinds.set(
                kind,
                JsonValue::object()
                    .with("count", snap.count)
                    .with("min_ns", snap.min)
                    .with("mean_ns", opt_f64(snap.mean()))
                    .with("p50_ns", opt_f64(snap.quantile(0.50).map(|v| v as f64)))
                    .with("p90_ns", opt_f64(snap.quantile(0.90).map(|v| v as f64)))
                    .with("p99_ns", opt_f64(snap.quantile(0.99).map(|v| v as f64)))
                    .with("max_ns", snap.max)
                    .with("sum_ns", snap.sum)
                    .with("self_ns", self_ns),
            );
        }
        report = report.with(
            "timing",
            JsonValue::object()
                .with("span_kinds", kinds)
                .with(
                    "reconciliation",
                    JsonValue::object()
                        .with("parents_checked", recon.parents_checked)
                        .with("violations", recon.violations),
                )
                .with("groups", timing_groups),
        );
    }
    report
}

/// Partitions a group's events into runs at each `exp.campaign_start`
/// marker. Run 0 is the (possibly empty, then dropped) prelude before
/// the first marker.
fn partition_runs(group: &MergedGroup) -> Vec<Vec<&crate::event::Event>> {
    let mut runs: Vec<Vec<&crate::event::Event>> = vec![Vec::new()];
    for ev in &group.events {
        if ev.target == "exp.campaign_start" {
            runs.push(Vec::new());
        }
        runs.last_mut().expect("never empty").push(ev);
    }
    if runs.first().is_some_and(Vec::is_empty) {
        runs.remove(0);
    }
    runs
}

/// Rebuilds [`SpanRec`]s from one run's `span` close events — the
/// offline twin of the recorder's live profiling hook. Both cell and
/// free spans are kept; span ids are only meaningful within one run,
/// which is why callers fold per run and [`Profile::merge`] the results.
fn run_span_records(events: &[&crate::event::Event]) -> Vec<SpanRec> {
    events
        .iter()
        .filter(|ev| ev.target == "span")
        .filter_map(|ev| {
            ev.span.map(|span| SpanRec {
                cell: ev.cell,
                span,
                parent: ev.parent.unwrap_or(0),
                kind: ev.s("kind").unwrap_or("?").to_string(),
                dur_ns: ev.u("dur_ns").unwrap_or(0),
            })
        })
        .collect()
}

fn analyze_group(
    group: &MergedGroup,
    opts: &Options,
    span_hists: &mut BTreeMap<String, Histogram>,
    recon: &mut Reconciliation,
    profile: &mut Profile,
) -> (JsonValue, JsonValue) {
    let runs = partition_runs(group);

    let mut logical_runs = JsonValue::Array(Vec::new());
    let mut timing_runs = JsonValue::Array(Vec::new());
    for (index, events) in runs.iter().enumerate() {
        let (logical, timing) = analyze_run(index, events, opts, span_hists, recon, profile);
        if let JsonValue::Array(items) = &mut logical_runs {
            items.push(logical);
        }
        if let JsonValue::Array(items) = &mut timing_runs {
            items.push(timing);
        }
    }

    let logical = JsonValue::object()
        .with("name", group.name.as_str())
        .with("lines", group.lines)
        .with("rejected", group.rejected)
        .with("duplicate_seqs", group.duplicate_seqs)
        .with("conflicting_seqs", group.conflicting_seqs)
        .with("missing_seqs", group.missing_seqs)
        .with("runs", logical_runs);
    let timing = JsonValue::object()
        .with("name", group.name.as_str())
        .with(
            "files",
            JsonValue::Array(
                group
                    .files
                    .iter()
                    .map(|f| JsonValue::from(f.display().to_string()))
                    .collect(),
            ),
        )
        .with("runs", timing_runs);
    (logical, timing)
}

fn analyze_run(
    index: usize,
    events: &[&crate::event::Event],
    opts: &Options,
    span_hists: &mut BTreeMap<String, Histogram>,
    recon: &mut Reconciliation,
    profile: &mut Profile,
) -> (JsonValue, JsonValue) {
    let start = events.first().filter(|e| e.target == "exp.campaign_start");
    let fingerprint = start.and_then(|e| e.s("fingerprint")).map(str::to_string);
    // The campaign id events carry is the FNV hash of the fingerprint;
    // recompute it so we can verify every cell event belongs here.
    let expected_campaign = fingerprint
        .as_deref()
        .map(|fp| format!("{:016x}", dynp_obs::campaign_hash(fp)));

    let mut cells: BTreeMap<u64, CellAgg> = BTreeMap::new();
    let mut span_kinds: BTreeMap<String, u64> = BTreeMap::new();
    let mut events_in_cells = 0u64;
    let mut span_closes = 0u64;
    let mut campaign_mismatches = 0u64;
    let mut milp_exits: Vec<MilpExit> = Vec::new();
    let mut dynp_decisions = 0u64;
    let mut dynp_switches = 0u64;
    // Failure census: the fault-tolerance events the campaign runner
    // emits. Crashes, timeouts, and retry decisions are deterministic
    // for a given config + fault plan, so the census is logical.
    let mut cell_crashed = 0u64;
    let mut cell_timeout = 0u64;
    let mut cell_retry = 0u64;
    let mut checkpoint_write_failed = 0u64;
    // Online alert census: transitions by rule, split by direction. The
    // rates and p99s that drive alerts are wall-clock quantities, so the
    // census lives in the timing section (a watched run and an identical
    // unwatched run must still produce byte-identical logical sections).
    let mut alert_firing: BTreeMap<String, u64> = BTreeMap::new();
    let mut alert_resolved = 0u64;
    let mut alert_summaries = 0u64;

    for ev in events {
        if let Some(cell) = ev.cell {
            events_in_cells += 1;
            let agg = cells.entry(cell).or_default();
            agg.events += 1;
            if let (Some(expected), Some(seen)) = (&expected_campaign, &ev.campaign) {
                if expected != seen {
                    campaign_mismatches += 1;
                }
            }
        }
        match ev.target.as_str() {
            "span" => {
                span_closes += 1;
                let kind = ev.s("kind").unwrap_or("?").to_string();
                let dur_ns = ev.u("dur_ns").unwrap_or(0);
                *span_kinds.entry(kind.clone()).or_insert(0) += 1;
                span_hists.entry(kind.clone()).or_default().record(dur_ns);
                if let (Some(cell), Some(span)) = (ev.cell, ev.span) {
                    cells.entry(cell).or_default().spans.insert(
                        span,
                        SpanClose {
                            kind,
                            parent: ev.parent.unwrap_or(0),
                            dur_ns,
                        },
                    );
                }
            }
            "milp.exit" => milp_exits.push(MilpExit {
                cell: ev.cell,
                span: ev.span.unwrap_or(0),
                nodes: ev.u("nodes").unwrap_or(0),
                lp_iterations: ev.u("lp_iterations").unwrap_or(0),
                status: ev.s("status").unwrap_or("?").to_string(),
                objective: ev.f("objective"),
                bound: ev.f("bound"),
                gap: ev.f("gap"),
            }),
            "dynp.decision" => {
                dynp_decisions += 1;
                if ev.body.get("switched").and_then(JsonValue::as_bool) == Some(true) {
                    dynp_switches += 1;
                }
            }
            "exp.cell_crashed" => cell_crashed += 1,
            "exp.cell_timeout" => cell_timeout += 1,
            "exp.cell_retry" => cell_retry += 1,
            "exp.checkpoint_write_failed" => checkpoint_write_failed += 1,
            "alert" => {
                let rule = ev.s("rule").unwrap_or("?").to_string();
                if ev.s("state") == Some("firing") {
                    *alert_firing.entry(rule).or_insert(0) += 1;
                } else {
                    alert_resolved += 1;
                }
            }
            "alert.summary" => alert_summaries += 1,
            _ => {}
        }
    }

    let span_records = run_span_records(events);
    // Structure: every non-root span must hang off a span of its cell.
    // Both invariants are checked by the same fold that builds live
    // `.folded` profiles; restricted to cell spans here so the logical
    // `orphan_spans` count never depends on what ran outside cells.
    let cell_profile = dynp_obs::profile_spans(
        &span_records
            .iter()
            .filter(|rec| rec.cell.is_some())
            .cloned()
            .collect::<Vec<_>>(),
    );
    let orphan_spans = cell_profile.orphans;
    recon.parents_checked += cell_profile.parents_checked;
    recon.violations += cell_profile.violations;
    // The full fold (cell + free spans) feeds the timing self times.
    profile.merge(&dynp_obs::profile_spans(&span_records));

    // The "CPLEX still running" census: Feasible means the budget ran
    // out with an incumbent in hand; Infeasible/Unknown mean not even
    // an incumbent.
    let mut by_status: BTreeMap<String, u64> = BTreeMap::new();
    let (mut nodes_total, mut lp_total) = (0u64, 0u64);
    for exit in &milp_exits {
        *by_status.entry(exit.status.clone()).or_insert(0) += 1;
        nodes_total += exit.nodes;
        lp_total += exit.lp_iterations;
    }
    let optimal = by_status.get("Optimal").copied().unwrap_or(0);
    let budget_hit = by_status.get("Feasible").copied().unwrap_or(0);
    let no_incumbent = milp_exits.len() as u64 - optimal - budget_hit;
    // Top-k biggest solves by explored nodes — deterministic effort, so
    // this ranking is part of the logical section; ties break on
    // (cell, span) for stability.
    let mut ranked: Vec<&MilpExit> = milp_exits.iter().collect();
    ranked.sort_by(|a, b| {
        b.nodes
            .cmp(&a.nodes)
            .then(a.cell.cmp(&b.cell))
            .then(a.span.cmp(&b.span))
    });
    let top_by_nodes = JsonValue::Array(
        ranked
            .iter()
            .take(opts.top_k)
            .map(|e| {
                JsonValue::object()
                    .with(
                        "cell",
                        match e.cell {
                            Some(c) => JsonValue::from(c),
                            None => JsonValue::Null,
                        },
                    )
                    .with("nodes", e.nodes)
                    .with("lp_iterations", e.lp_iterations)
                    .with("status", e.status.as_str())
                    .with("objective", opt_f64(e.objective))
                    .with("bound", opt_f64(e.bound))
                    .with("gap", opt_f64(e.gap))
            })
            .collect(),
    );

    let mut kinds_json = JsonValue::object();
    for (kind, count) in &span_kinds {
        kinds_json.set(kind, *count);
    }

    let mut logical = JsonValue::object().with("run", index);
    if let Some(s) = start {
        logical = logical
            .with("name", s.s("name").unwrap_or("?"))
            .with("fingerprint", fingerprint.as_deref().unwrap_or("?"))
            .with("shards", s.u("shards").unwrap_or(0))
            .with("cells_declared", s.u("cells").unwrap_or(0));
    }
    logical = logical
        .with("events", events.len())
        .with("events_in_cells", events_in_cells)
        .with("span_closes", span_closes)
        .with("cells_seen", cells.len())
        .with("span_kinds", kinds_json)
        .with(
            "structure",
            JsonValue::object()
                .with("orphan_spans", orphan_spans)
                .with("campaign_mismatches", campaign_mismatches),
        )
        .with(
            "milp",
            JsonValue::object()
                .with("solves", milp_exits.len())
                .with("optimal", optimal)
                .with("budget_hit", budget_hit)
                .with("no_incumbent", no_incumbent)
                .with("nodes", nodes_total)
                .with("lp_iterations", lp_total)
                .with("top_by_nodes", top_by_nodes),
        )
        .with(
            "dynp",
            JsonValue::object()
                .with("decisions", dynp_decisions)
                .with("switches", dynp_switches),
        )
        .with(
            "faults",
            JsonValue::object()
                .with("cell_crashed", cell_crashed)
                .with("cell_timeout", cell_timeout)
                .with("cell_retry", cell_retry)
                .with("checkpoint_write_failed", checkpoint_write_failed),
        );

    // Timing: slowest cells by their root span, then the critical path
    // of the slowest — at each level descend into the child that took
    // longest, which names the stage bounding wall-clock.
    let mut by_dur: Vec<(u64, u64)> = cells
        .iter()
        .filter_map(|(id, agg)| agg.root().map(|(_, root)| (*id, root.dur_ns)))
        .collect();
    by_dur.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    let slowest_cells = JsonValue::Array(
        by_dur
            .iter()
            .take(opts.top_k)
            .map(|(cell, dur)| JsonValue::object().with("cell", *cell).with("dur_ns", *dur))
            .collect(),
    );
    let critical_path = match by_dur.first() {
        Some((cell, _)) => critical_path_json(*cell, &cells[cell]),
        None => JsonValue::Array(Vec::new()),
    };
    let mut by_rule = JsonValue::object();
    for (rule, count) in &alert_firing {
        by_rule.set(rule, *count);
    }
    let timing = JsonValue::object()
        .with("run", index)
        .with("slowest_cells", slowest_cells)
        .with("critical_path", critical_path)
        .with(
            "alerts",
            JsonValue::object()
                .with("firing", alert_firing.values().sum::<u64>())
                .with("resolved", alert_resolved)
                .with("summaries", alert_summaries)
                .with("by_rule", by_rule),
        );
    (logical, timing)
}

/// Walks from the cell's root span down its heaviest child at each
/// level.
fn critical_path_json(cell: u64, agg: &CellAgg) -> JsonValue {
    let mut children: BTreeMap<u64, Vec<u64>> = BTreeMap::new();
    for (id, close) in &agg.spans {
        if close.parent != 0 {
            children.entry(close.parent).or_default().push(*id);
        }
    }
    let mut path = Vec::new();
    let mut cursor = agg.root().map(|(id, _)| id);
    while let Some(id) = cursor {
        let close = &agg.spans[&id];
        path.push(
            JsonValue::object()
                .with("cell", cell)
                .with("span", id)
                .with("kind", close.kind.as_str())
                .with("dur_ns", close.dur_ns),
        );
        cursor = children.get(&id).and_then(|kids| {
            kids.iter()
                .copied()
                .max_by_key(|kid| (agg.spans[kid].dur_ns, u64::MAX - kid))
        });
    }
    JsonValue::Array(path)
}

/// Convenience: discover, merge, and analyze everything under `path`
/// (a results directory, one log file, or a rotated base file).
pub fn analyze_path(path: &std::path::Path, opts: &Options) -> std::io::Result<JsonValue> {
    Ok(analyze_groups(&merged_groups(path)?, opts))
}

/// Discovers and merges every log group under `path`.
fn merged_groups(path: &std::path::Path) -> std::io::Result<Vec<MergedGroup>> {
    let groups = crate::merge::discover(path)?;
    let mut merged = Vec::with_capacity(groups.len());
    for g in &groups {
        merged.push(crate::merge::merge_group(g)?);
    }
    Ok(merged)
}

/// Rebuilds the collapsed-stack profile of merged event streams: the
/// offline equivalent of a live `.folded` file, folding each run's span
/// trees and merging them (per-run folds keep deterministic cell span
/// ids from colliding across runs).
pub fn profile_groups(groups: &[MergedGroup]) -> Profile {
    let mut profile = Profile::default();
    for group in groups {
        for events in partition_runs(group) {
            profile.merge(&dynp_obs::profile_spans(&run_span_records(&events)));
        }
    }
    profile
}

/// [`profile_groups`] over everything discovered under `path` (the
/// `fold` subcommand).
pub fn profile_path(path: &std::path::Path) -> std::io::Result<Profile> {
    Ok(profile_groups(&merged_groups(path)?))
}

/// A short human-readable summary of a report (the `--text` view).
pub fn render_text(report: &JsonValue) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(out, "dynp-insight report");
    let empty: [JsonValue; 0] = [];
    let groups = report
        .get("logical")
        .and_then(|l| l.get("groups"))
        .and_then(JsonValue::as_array)
        .unwrap_or(&empty);
    for group in groups {
        let name = group.get("name").and_then(JsonValue::as_str).unwrap_or("?");
        let _ = writeln!(out, "\ngroup {name}");
        for key in ["lines", "rejected", "missing_seqs"] {
            let v = group.get(key).and_then(JsonValue::as_u64).unwrap_or(0);
            let _ = writeln!(out, "  {key:<14} {v}");
        }
        for run in group
            .get("runs")
            .and_then(JsonValue::as_array)
            .unwrap_or(&empty)
        {
            let idx = run.get("run").and_then(JsonValue::as_u64).unwrap_or(0);
            let name = run.get("name").and_then(JsonValue::as_str).unwrap_or("-");
            let cells = run.get("cells_seen").and_then(JsonValue::as_u64).unwrap_or(0);
            let _ = writeln!(out, "  run {idx} ({name}): {cells} cells");
            if let Some(milp) = run.get("milp") {
                let solves = milp.get("solves").and_then(JsonValue::as_u64).unwrap_or(0);
                let optimal = milp.get("optimal").and_then(JsonValue::as_u64).unwrap_or(0);
                let hit = milp.get("budget_hit").and_then(JsonValue::as_u64).unwrap_or(0);
                let nodes = milp.get("nodes").and_then(JsonValue::as_u64).unwrap_or(0);
                let _ = writeln!(
                    out,
                    "    exact: {solves} solves, {optimal} optimal, {hit} budget-hit (\"CPLEX still running\"), {nodes} nodes"
                );
            }
            if let Some(dynp) = run.get("dynp") {
                let dec = dynp.get("decisions").and_then(JsonValue::as_u64).unwrap_or(0);
                let sw = dynp.get("switches").and_then(JsonValue::as_u64).unwrap_or(0);
                let _ = writeln!(out, "    dynP: {dec} decisions, {sw} switches");
            }
            if let Some(faults) = run.get("faults") {
                let g = |k: &str| faults.get(k).and_then(JsonValue::as_u64).unwrap_or(0);
                let (crashed, timeout) = (g("cell_crashed"), g("cell_timeout"));
                let (retries, ckpt) = (g("cell_retry"), g("checkpoint_write_failed"));
                if crashed + timeout + retries + ckpt > 0 {
                    let _ = writeln!(
                        out,
                        "    faults: {crashed} crashed, {timeout} timed out, {retries} retries, {ckpt} checkpoint write failures"
                    );
                }
            }
        }
    }
    if let Some(timing) = report.get("timing") {
        let _ = writeln!(out, "\nspan kind latencies (ns)");
        let _ = writeln!(
            out,
            "  {:<22} {:>8} {:>12} {:>12} {:>12}",
            "kind", "count", "p50", "p99", "max"
        );
        if let Some(kinds) = timing.get("span_kinds").and_then(JsonValue::as_object) {
            for (kind, stats) in kinds {
                let g = |k: &str| {
                    stats
                        .get(k)
                        .and_then(JsonValue::as_f64)
                        .map(|v| format!("{v:.0}"))
                        .unwrap_or_else(|| "-".into())
                };
                let count = stats.get("count").and_then(JsonValue::as_u64).unwrap_or(0);
                let _ = writeln!(
                    out,
                    "  {kind:<22} {count:>8} {:>12} {:>12} {:>12}",
                    g("p50_ns"),
                    g("p99_ns"),
                    g("max_ns"),
                );
            }
        }
        for group in timing.get("groups").and_then(JsonValue::as_array).unwrap_or(&empty) {
            for run in group
                .get("runs")
                .and_then(JsonValue::as_array)
                .unwrap_or(&empty)
            {
                let path = run
                    .get("critical_path")
                    .and_then(JsonValue::as_array)
                    .unwrap_or(&empty);
                if path.is_empty() {
                    continue;
                }
                let idx = run.get("run").and_then(JsonValue::as_u64).unwrap_or(0);
                let _ = writeln!(out, "\ncritical path (run {idx}, slowest cell)");
                for hop in path {
                    let kind = hop.get("kind").and_then(JsonValue::as_str).unwrap_or("?");
                    let cell = hop.get("cell").and_then(JsonValue::as_u64).unwrap_or(0);
                    let dur = hop.get("dur_ns").and_then(JsonValue::as_f64).unwrap_or(0.0);
                    let _ = writeln!(out, "  cell {cell} {kind:<20} {:.3} ms", dur / 1e6);
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::merge::merge_lines;

    /// A miniature two-cell campaign log written by hand: campaign
    /// start, each cell with replay + exact spans, one milp exit each.
    fn mini_log() -> Vec<String> {
        let fp = "abc123";
        let camp = format!("{:016x}", dynp_obs::campaign_hash(fp));
        let mut seq = 0u64;
        let mut n = |line: String| {
            let out = line.replace("SEQ", &seq.to_string());
            seq += 1;
            out
        };
        let cell = |c: u64, span_off: u64| (c + 1) * (1u64 << 32) + span_off;
        vec![
            n(format!(
                r#"{{"ts":0.0,"target":"exp.campaign_start","seq":SEQ,"name":"mini","fingerprint":"{fp}","shards":1,"cells":2,"resumable":0,"workers":1}}"#
            )),
            // cell 0: replay span (child 1 of root), exact with milp exit.
            n(format!(
                r#"{{"ts":0.1,"target":"span","seq":SEQ,"campaign":"{camp}","cell":0,"span":{},"parent":{},"kind":"exp.replay","dur_ns":4000}}"#,
                cell(0, 1),
                cell(0, 0)
            )),
            n(format!(
                r#"{{"ts":0.2,"target":"milp.exit","seq":SEQ,"campaign":"{camp}","cell":0,"span":{},"parent":{},"status":"Optimal","nodes":120,"lp_iterations":900,"objective":4.5,"bound":4.5,"gap":0.0,"wall_secs":0.01}}"#,
                cell(0, 2),
                cell(0, 0)
            )),
            n(format!(
                r#"{{"ts":0.3,"target":"span","seq":SEQ,"campaign":"{camp}","cell":0,"span":{},"parent":{},"kind":"exp.exact","dur_ns":5000}}"#,
                cell(0, 2),
                cell(0, 0)
            )),
            n(format!(
                r#"{{"ts":0.4,"target":"span","seq":SEQ,"campaign":"{camp}","cell":0,"span":{},"parent":0,"kind":"exp.cell","dur_ns":10000}}"#,
                cell(0, 0)
            )),
            // cell 1: budget-hit solve, slower cell overall.
            n(format!(
                r#"{{"ts":0.5,"target":"span","seq":SEQ,"campaign":"{camp}","cell":1,"span":{},"parent":{},"kind":"exp.replay","dur_ns":9000}}"#,
                cell(1, 1),
                cell(1, 0)
            )),
            n(format!(
                r#"{{"ts":0.6,"target":"milp.exit","seq":SEQ,"campaign":"{camp}","cell":1,"span":{},"parent":{},"status":"Feasible","nodes":300,"lp_iterations":2500,"objective":7.5,"bound":6.0,"gap":0.25,"wall_secs":0.05}}"#,
                cell(1, 2),
                cell(1, 0)
            )),
            n(format!(
                r#"{{"ts":0.7,"target":"span","seq":SEQ,"campaign":"{camp}","cell":1,"span":{},"parent":{},"kind":"exp.exact","dur_ns":6000}}"#,
                cell(1, 2),
                cell(1, 0)
            )),
            n(format!(
                r#"{{"ts":0.8,"target":"span","seq":SEQ,"campaign":"{camp}","cell":1,"span":{},"parent":0,"kind":"exp.cell","dur_ns":16000}}"#,
                cell(1, 0)
            )),
        ]
    }

    #[test]
    fn mini_campaign_analyzes_end_to_end() {
        let lines = mini_log();
        let merged = merge_lines("mini.events.jsonl", lines.iter().map(String::as_str));
        assert_eq!(merged.rejected, 0);
        let report = analyze_groups(&[merged], &Options::default());
        let run = report
            .get("logical")
            .and_then(|l| l.get("groups"))
            .and_then(JsonValue::as_array)
            .and_then(|g| g[0].get("runs"))
            .and_then(JsonValue::as_array)
            .map(|r| r[0].clone())
            .unwrap();
        assert_eq!(run.get("cells_seen").and_then(JsonValue::as_u64), Some(2));
        assert_eq!(run.get("cells_declared").and_then(JsonValue::as_u64), Some(2));
        let milp = run.get("milp").unwrap();
        assert_eq!(milp.get("solves").and_then(JsonValue::as_u64), Some(2));
        assert_eq!(milp.get("optimal").and_then(JsonValue::as_u64), Some(1));
        assert_eq!(milp.get("budget_hit").and_then(JsonValue::as_u64), Some(1));
        assert_eq!(milp.get("nodes").and_then(JsonValue::as_u64), Some(420));
        // Biggest solve first (by nodes).
        let top = milp.get("top_by_nodes").and_then(JsonValue::as_array).unwrap();
        assert_eq!(top[0].get("nodes").and_then(JsonValue::as_u64), Some(300));
        assert_eq!(top[0].get("cell").and_then(JsonValue::as_u64), Some(1));
        // Structure is clean.
        let structure = run.get("structure").unwrap();
        assert_eq!(structure.get("orphan_spans").and_then(JsonValue::as_u64), Some(0));
        assert_eq!(
            structure.get("campaign_mismatches").and_then(JsonValue::as_u64),
            Some(0)
        );
        // Reconciliation: both cells checked, no violations (4000+5000
        // <= 10000, 9000+6000 <= 16000).
        let recon = report
            .get("timing")
            .and_then(|t| t.get("reconciliation"))
            .unwrap();
        assert_eq!(recon.get("parents_checked").and_then(JsonValue::as_u64), Some(2));
        assert_eq!(recon.get("violations").and_then(JsonValue::as_u64), Some(0));
        // Critical path of the slowest cell (cell 1): root, then the
        // replay child (9000 > 6000).
        let timing_run = report
            .get("timing")
            .and_then(|t| t.get("groups"))
            .and_then(JsonValue::as_array)
            .and_then(|g| g[0].get("runs"))
            .and_then(JsonValue::as_array)
            .map(|r| r[0].clone())
            .unwrap();
        let path = timing_run
            .get("critical_path")
            .and_then(JsonValue::as_array)
            .unwrap();
        assert_eq!(path.len(), 2);
        assert_eq!(path[0].get("kind").and_then(JsonValue::as_str), Some("exp.cell"));
        assert_eq!(path[1].get("kind").and_then(JsonValue::as_str), Some("exp.replay"));
        // Text rendering mentions the census.
        let text = render_text(&report);
        assert!(text.contains("CPLEX still running"));
    }

    #[test]
    fn violation_and_orphan_detection_fires() {
        // One cell whose child spans overrun the root and reference a
        // missing parent.
        let camp = format!("{:016x}", dynp_obs::campaign_hash("fp"));
        let base = 1u64 << 32;
        let lines = [
            r#"{"ts":0.0,"target":"exp.campaign_start","seq":0,"name":"bad","fingerprint":"fp","shards":1,"cells":1}"#
                .to_string(),
            format!(
                r#"{{"ts":0.1,"target":"span","seq":1,"campaign":"{camp}","cell":0,"span":{},"parent":{base},"kind":"a","dur_ns":900}}"#,
                base + 1
            ),
            format!(
                r#"{{"ts":0.2,"target":"span","seq":2,"campaign":"{camp}","cell":0,"span":{},"parent":{base},"kind":"b","dur_ns":200}}"#,
                base + 2
            ),
            format!(
                r#"{{"ts":0.3,"target":"span","seq":3,"campaign":"{camp}","cell":0,"span":{},"parent":{},"kind":"orphan","dur_ns":5}}"#,
                base + 3,
                base + 99
            ),
            format!(
                r#"{{"ts":0.4,"target":"span","seq":4,"campaign":"{camp}","cell":0,"span":{base},"parent":0,"kind":"exp.cell","dur_ns":1000}}"#
            ),
        ];
        let merged = merge_lines("bad.events.jsonl", lines.iter().map(String::as_str));
        let report = analyze_groups(&[merged], &Options::default());
        let recon = report
            .get("timing")
            .and_then(|t| t.get("reconciliation"))
            .unwrap();
        assert_eq!(recon.get("violations").and_then(JsonValue::as_u64), Some(1));
        let structure = report
            .get("logical")
            .and_then(|l| l.get("groups"))
            .and_then(JsonValue::as_array)
            .and_then(|g| g[0].get("runs"))
            .and_then(JsonValue::as_array)
            .and_then(|r| r[0].get("structure").cloned())
            .unwrap();
        assert_eq!(structure.get("orphan_spans").and_then(JsonValue::as_u64), Some(1));
    }

    #[test]
    fn fault_events_feed_the_failure_census() {
        // Fault events are emitted inside the cell's trace context, so
        // the cell index rides in the envelope like any other cell event.
        let camp = format!("{:016x}", dynp_obs::campaign_hash("fp"));
        let base = |c: u64| (c + 1) << 32;
        let lines = [
            r#"{"ts":0.0,"target":"exp.campaign_start","seq":0,"name":"faulty","fingerprint":"fp","shards":2,"cells":4}"#
                .to_string(),
            format!(
                r#"{{"ts":0.1,"target":"exp.cell_retry","seq":1,"campaign":"{camp}","cell":0,"span":{},"parent":0,"attempt":1,"max_attempts":2}}"#,
                base(0)
            ),
            format!(
                r#"{{"ts":0.2,"target":"exp.cell_crashed","seq":2,"campaign":"{camp}","cell":0,"span":{},"parent":0,"attempt":2,"panic":"boom","at":"campaign.rs"}}"#,
                base(0)
            ),
            format!(
                r#"{{"ts":0.3,"target":"exp.cell_timeout","seq":3,"campaign":"{camp}","cell":1,"span":{},"parent":0,"attempt":1}}"#,
                base(1)
            ),
            format!(
                r#"{{"ts":0.4,"target":"exp.checkpoint_write_failed","seq":4,"campaign":"{camp}","cell":2,"span":{},"parent":0,"cell":2,"error":"injected checkpoint i/o fault"}}"#,
                base(2)
            ),
        ];
        let merged = merge_lines("faulty.events.jsonl", lines.iter().map(String::as_str));
        assert_eq!(merged.rejected, 0);
        let report = analyze_groups(&[merged], &Options::default());
        let run = report
            .get("logical")
            .and_then(|l| l.get("groups"))
            .and_then(JsonValue::as_array)
            .and_then(|g| g[0].get("runs"))
            .and_then(JsonValue::as_array)
            .map(|r| r[0].clone())
            .unwrap();
        let faults = run.get("faults").unwrap();
        assert_eq!(faults.get("cell_crashed").and_then(JsonValue::as_u64), Some(1));
        assert_eq!(faults.get("cell_timeout").and_then(JsonValue::as_u64), Some(1));
        assert_eq!(faults.get("cell_retry").and_then(JsonValue::as_u64), Some(1));
        assert_eq!(
            faults.get("checkpoint_write_failed").and_then(JsonValue::as_u64),
            Some(1)
        );
        let text = render_text(&report);
        assert!(text.contains("faults: 1 crashed, 1 timed out, 1 retries, 1 checkpoint write failures"));
        // A clean run keeps its faults line silent.
        let clean = merge_lines("mini.events.jsonl", mini_log().iter().map(String::as_str));
        let clean_text = render_text(&analyze_groups(&[clean], &Options::default()));
        assert!(!clean_text.contains("faults:"));
    }

    #[test]
    fn logical_mode_omits_timing() {
        let lines = mini_log();
        let merged = merge_lines("mini.events.jsonl", lines.iter().map(String::as_str));
        let report = analyze_groups(
            &[merged],
            &Options {
                logical_only: true,
                ..Options::default()
            },
        );
        assert!(report.get("timing").is_none());
        assert_eq!(report.get("mode").and_then(JsonValue::as_str), Some("logical"));
    }

    #[test]
    fn shard_partitioning_does_not_change_the_report() {
        // The same event set split across k per-worker files must merge
        // to the identical report, timing included (all inputs equal).
        let lines = mini_log();
        let whole = merge_lines("g.events.jsonl", lines.iter().map(String::as_str));
        let report_whole = analyze_groups(&[whole], &Options::default()).to_json();
        for k in [2, 3] {
            let mut shards: Vec<Vec<&str>> = vec![Vec::new(); k];
            for (i, line) in lines.iter().enumerate() {
                shards[i % k].push(line);
            }
            let interleaved: Vec<&str> = shards.into_iter().flatten().collect();
            let merged = merge_lines("g.events.jsonl", interleaved);
            let report = analyze_groups(&[merged], &Options::default()).to_json();
            assert_eq!(report, report_whole, "k={k} partition changed the report");
        }
    }
}
