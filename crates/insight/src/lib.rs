//! # dynp-insight — offline campaign telemetry analyzer
//!
//! Second-generation observability for dynp-rs: where `dynp-obs`
//! *records* (metrics, spans, JSONL events with trace context), this
//! crate *answers questions* after the fact, from the files alone:
//!
//! * [`merge`] — discovers `*.events.jsonl` logs (including size-rotated
//!   siblings) and merges each group into one totally-ordered stream by
//!   the `seq` logical clock, independent of how worker threads
//!   interleaved their writes.
//! * [`analyze`] — rebuilds the per-cell span tree from the
//!   `(campaign, cell, span, parent)` context fields and reports: span
//!   kind latency percentiles (log2 histograms), per-campaign critical
//!   paths, the "CPLEX still running" budget-exhaustion census, top-k
//!   costliest exact solves with incumbent-gap context, and structural
//!   invariants (orphan spans, parent ≥ Σ children reconciliation).
//!   The report's `logical` section is byte-identical regardless of
//!   worker count.
//! * [`diff`] — regression-compares two reports: logical differences
//!   fail, timing shifts are notes.
//! * [`analyze::profile_groups`] — rebuilds the collapsed-stack profile
//!   (per-kind self times, `flamegraph.pl`-compatible folded stacks)
//!   from the same span events, using the same `dynp_obs::profile` fold
//!   as live `.folded` files, so online and offline profiles agree.
//!
//! The `dynp-insight` binary wraps these as `analyze`, `diff`, `fold`
//! (collapsed stacks, with `--diff` against a baseline `.folded`), and
//! `check-metrics` (OpenMetrics validation) subcommands.
//!
//! Like `dynp-obs`, this crate is std-only: its only dependency is
//! `dynp-obs` itself (for the JSON and histogram machinery), which CI
//! enforces with a `cargo tree` gate.

pub mod analyze;
pub mod diff;
pub mod event;
pub mod merge;

pub use analyze::{
    analyze_groups, analyze_path, profile_groups, profile_path, render_text, Options,
};
pub use diff::{diff_reports, DiffOutcome};
pub use event::{parse_line, Event};
pub use merge::{discover, group_for, merge_group, merge_lines, LogGroup, MergedGroup};
