//! Discovering event logs on disk and merging them into one
//! totally-ordered stream per log group.
//!
//! A *log group* is one logical event stream: a base `<name>.events.jsonl`
//! plus the size-rotated siblings `<name>.events.jsonl.1`, `.2`, …
//! written by `dynp_obs::Sink::rotating`. Lines inside a group share one
//! `seq` logical-clock domain (one recorder), so the group merges by
//! sorting on `seq` — the result is independent of how the lines were
//! physically interleaved across worker threads or split across rotated
//! files. Distinct groups (separate recorder installs, e.g. two bench
//! runs into one directory) have independent `seq` domains and are kept
//! separate.

use crate::event::{parse_line, Event};
use std::path::{Path, PathBuf};

/// One logical stream on disk: base file plus rotations, oldest first.
#[derive(Clone, Debug)]
pub struct LogGroup {
    /// Group display name (the base file name).
    pub name: String,
    /// Member files in read order (oldest rotation → base).
    pub files: Vec<PathBuf>,
}

/// A merged, seq-ordered stream plus merge diagnostics.
#[derive(Clone, Debug, Default)]
pub struct MergedGroup {
    /// Group display name (stable across machines: file name only).
    pub name: String,
    /// Files that were read, in read order.
    pub files: Vec<PathBuf>,
    /// Events sorted by `seq`, duplicates removed.
    pub events: Vec<Event>,
    /// Raw lines seen (incl. rejects and duplicates).
    pub lines: usize,
    /// Lines that failed to parse (bad JSON, missing seq, torn tails).
    pub rejected: usize,
    /// Byte-identical lines sharing a `seq` (e.g. a file copied into its
    /// own rotation set); deduplicated.
    pub duplicate_seqs: usize,
    /// Differing lines sharing a `seq` — a real anomaly; first wins.
    pub conflicting_seqs: usize,
    /// Holes in the seq domain (ring-dropped or rotation-discarded
    /// events): `max − min + 1 − kept`.
    pub missing_seqs: u64,
}

fn rotated_path(base: &Path, i: usize) -> PathBuf {
    let mut os = base.as_os_str().to_os_string();
    os.push(format!(".{i}"));
    PathBuf::from(os)
}

/// Expands one base log file into its group (rotations oldest-first).
pub fn group_for(base: &Path) -> LogGroup {
    let mut rotations = Vec::new();
    let mut i = 1;
    loop {
        let p = rotated_path(base, i);
        if !p.exists() {
            break;
        }
        rotations.push(p);
        i += 1;
    }
    // Highest rotation index = oldest lines; read those first so the
    // stable sort keeps any equal-seq anomaly in write order.
    rotations.reverse();
    rotations.push(base.to_path_buf());
    LogGroup {
        name: base
            .file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_else(|| base.display().to_string()),
        files: rotations,
    }
}

/// Finds every log group under `path`: a directory is scanned for
/// `*.events.jsonl` bases (sorted by name); a file is its own base.
pub fn discover(path: &Path) -> std::io::Result<Vec<LogGroup>> {
    if path.is_dir() {
        let mut bases: Vec<PathBuf> = std::fs::read_dir(path)?
            .filter_map(|e| e.ok())
            .map(|e| e.path())
            .filter(|p| {
                p.is_file()
                    && p.file_name()
                        .is_some_and(|n| n.to_string_lossy().ends_with(".events.jsonl"))
            })
            .collect();
        bases.sort();
        Ok(bases.iter().map(|b| group_for(b)).collect())
    } else {
        Ok(vec![group_for(path)])
    }
}

/// Merges raw lines into one seq-ordered stream (the pure core shared
/// by file merging and the property tests).
pub fn merge_lines<'a>(name: &str, lines: impl IntoIterator<Item = &'a str>) -> MergedGroup {
    let mut out = MergedGroup {
        name: name.to_string(),
        ..MergedGroup::default()
    };
    let mut parsed: Vec<(Event, &'a str)> = Vec::new();
    for line in lines {
        if line.is_empty() {
            continue;
        }
        out.lines += 1;
        match parse_line(line) {
            Ok(ev) => parsed.push((ev, line)),
            Err(_) => out.rejected += 1,
        }
    }
    parsed.sort_by_key(|(ev, _)| ev.seq);
    let mut events: Vec<Event> = Vec::with_capacity(parsed.len());
    let mut last: Option<(u64, &str)> = None;
    for (ev, raw) in parsed {
        match last {
            Some((seq, prev_raw)) if seq == ev.seq => {
                if prev_raw == raw {
                    out.duplicate_seqs += 1;
                } else {
                    out.conflicting_seqs += 1;
                }
                continue;
            }
            _ => {}
        }
        last = Some((ev.seq, raw));
        events.push(ev);
    }
    if let (Some(first), Some(end)) = (events.first(), events.last()) {
        out.missing_seqs = (end.seq - first.seq + 1) - events.len() as u64;
    }
    out.events = events;
    out
}

/// Reads and merges all files of a group.
pub fn merge_group(group: &LogGroup) -> std::io::Result<MergedGroup> {
    let mut contents = Vec::with_capacity(group.files.len());
    for f in &group.files {
        contents.push(std::fs::read_to_string(f)?);
    }
    let mut merged = merge_lines(&group.name, contents.iter().flat_map(|c| c.lines()));
    merged.files = group.files.clone();
    Ok(merged)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line(seq: u64, target: &str) -> String {
        format!("{{\"ts\":0.1,\"target\":\"{target}\",\"seq\":{seq}}}")
    }

    #[test]
    fn merge_orders_by_seq_across_shards() {
        let a = [line(3, "c"), line(0, "a")];
        let b = [line(2, "b"), line(1, "x")];
        let merged = merge_lines(
            "t",
            a.iter().map(String::as_str).chain(b.iter().map(String::as_str)),
        );
        let seqs: Vec<u64> = merged.events.iter().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![0, 1, 2, 3]);
        assert_eq!(merged.missing_seqs, 0);
        assert_eq!(merged.rejected, 0);
    }

    #[test]
    fn merge_counts_holes_duplicates_and_conflicts() {
        let l0 = line(0, "a");
        let l5 = line(5, "b");
        let l5_conflict = line(5, "different");
        let lines = [l0.as_str(), l5.as_str(), l5.as_str(), l5_conflict.as_str(), "garbage"];
        let merged = merge_lines("t", lines);
        assert_eq!(merged.events.len(), 2);
        assert_eq!(merged.duplicate_seqs, 1);
        assert_eq!(merged.conflicting_seqs, 1);
        assert_eq!(merged.rejected, 1);
        assert_eq!(merged.missing_seqs, 4); // 1..=4 absent
        // First-wins on conflict.
        assert_eq!(merged.events[1].target, "b");
    }

    #[test]
    fn discover_groups_rotations_oldest_first() {
        let dir = std::env::temp_dir().join(format!("dynp_insight_discover_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let base = dir.join("run.events.jsonl");
        std::fs::write(&base, line(4, "new") + "\n").unwrap();
        std::fs::write(rotated_path(&base, 1), line(2, "mid") + "\n").unwrap();
        std::fs::write(rotated_path(&base, 2), line(0, "old") + "\n").unwrap();
        std::fs::write(dir.join("other.events.jsonl"), line(0, "o") + "\n").unwrap();
        std::fs::write(dir.join("report.json"), "{}").unwrap();
        let groups = discover(&dir).unwrap();
        assert_eq!(groups.len(), 2);
        assert_eq!(groups[0].name, "other.events.jsonl");
        assert_eq!(groups[1].name, "run.events.jsonl");
        assert_eq!(groups[1].files.len(), 3);
        assert!(groups[1].files[0].to_string_lossy().ends_with(".2"));
        let merged = merge_group(&groups[1]).unwrap();
        let targets: Vec<&str> = merged.events.iter().map(|e| e.target.as_str()).collect();
        assert_eq!(targets, vec!["old", "mid", "new"]);
        assert_eq!(merged.missing_seqs, 2);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
