//! End-to-end checks of the observability layer: instrumented subsystems
//! must produce the promised metrics, gap trajectories, and JSONL events
//! when a recorder is installed.
//!
//! The recorder is process-global, so every test takes `OBS_LOCK` and
//! installs a fresh recorder; the previously installed one is leaked by
//! design (handles held elsewhere stay valid).

use dynp_rs::obs::{self, json, Recorder, Sink};
use dynp_rs::prelude::*;
use std::sync::{Mutex, MutexGuard};

static OBS_LOCK: Mutex<()> = Mutex::new(());

/// Installs a fresh in-memory recorder, holding the lock for the test's
/// duration so concurrent tests cannot swap it out.
fn fresh_recorder() -> (&'static Recorder, MutexGuard<'static, ()>) {
    let guard = OBS_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let recorder = obs::install(Recorder::new(Sink::memory()));
    (recorder, guard)
}

fn snapshot() -> SchedulingProblem {
    SchedulingProblem::on_empty_machine(
        0,
        4,
        vec![
            Job::exact(0, 0, 4, 3600),
            Job::exact(1, 0, 2, 600),
            Job::exact(2, 0, 2, 600),
            Job::exact(3, 0, 1, 1200),
        ],
    )
}

#[test]
fn exact_solve_populates_trajectory_histograms_and_events() {
    let (recorder, _guard) = fresh_recorder();
    let config = SolveConfig {
        scale_override: Some(60),
        ..SolveConfig::default()
    };
    let run = solve_snapshot(&snapshot(), &config).expect("snapshot has waiting jobs");

    // The solve found something, so the gap trajectory is non-empty and
    // closes at the solution-level gap.
    assert!(run.comparison().is_ok());
    assert!(!run.trajectory.is_empty(), "gap trajectory is empty");
    let last = run.trajectory.last().unwrap();
    assert_eq!(last.nodes, run.nodes);
    assert!((last.gap().unwrap() - run.gap.unwrap()).abs() < 1e-12);

    // Node and simplex-iteration metrics were recorded.
    assert!(recorder.counter("milp.nodes").get() > 0, "no nodes counted");
    let lp = recorder.histogram("milp.lp_iterations").snapshot();
    assert!(lp.count > 0, "no LP solves recorded");
    let node_time = recorder.histogram("milp.node").snapshot();
    assert_eq!(
        node_time.count,
        recorder.counter("milp.nodes").get(),
        "one span sample per node"
    );
    assert!(recorder.gauge("milp.open_nodes").high_water() > 0);

    // Incumbent and exit events exist and every line is valid JSON.
    let events = recorder.events();
    assert!(!events.is_empty());
    for line in &events {
        json::validate(line).unwrap_or_else(|e| panic!("invalid JSONL {line:?}: {e}"));
    }
    assert!(events.iter().any(|l| l.contains("\"target\":\"milp.incumbent\"")));
    assert!(events.iter().any(|l| l.contains("\"target\":\"milp.exit\"")));
}

#[test]
fn dynp_replay_emits_one_event_per_policy_decision() {
    let (recorder, _guard) = fresh_recorder();
    let model = CtcModel {
        nodes: 64,
        mean_interarrival: 120.0,
        ..CtcModel::default()
    };
    let trace = model.generate(120, 11);
    let run = simulate(
        &trace.jobs,
        SelfTuning::paper_config(Metric::SldwA),
        SimConfig::new(trace.machine_size),
    );

    // Every submission is a selection point; each non-trivial one must
    // have produced exactly one dynp.decision event carrying the per-
    // policy estimates and the chosen policy.
    let events = recorder.events();
    let decisions: Vec<&String> = events
        .iter()
        .filter(|l| l.contains("\"target\":\"dynp.decision\""))
        .collect();
    assert!(!decisions.is_empty(), "no policy-decision events");
    assert!(decisions.len() <= run.policy_log.len());
    for line in &decisions {
        json::validate(line).unwrap_or_else(|e| panic!("invalid JSONL {line:?}: {e}"));
        assert!(line.contains("\"estimates\""), "missing estimates: {line}");
        assert!(line.contains("\"chosen\""), "missing chosen policy: {line}");
    }

    // Per-decision latency: one dynp.step span sample per tuning step.
    let step_latency = recorder.histogram("dynp.step").snapshot();
    assert_eq!(step_latency.count as usize, run.selector.stats().steps());
    assert!(step_latency.mean().unwrap() > 0.0);

    // The DES kernel counted dispatched events and tracked queue depth.
    assert!(
        recorder.counter("des.events").get() >= run.records.len() as u64,
        "fewer DES events than completed jobs"
    );
    assert!(recorder.gauge("des.queue_depth").high_water() > 0);

    // The run-level span and completion event exist.
    assert_eq!(recorder.histogram("sim.run").snapshot().count, 1);
    assert!(events.iter().any(|l| l.contains("\"target\":\"sim.complete\"")));
}

#[test]
fn uninstrumented_paths_stay_silent_on_a_fresh_recorder() {
    let (recorder, _guard) = fresh_recorder();
    // Planning a schedule directly (no solver, no simulator) touches no
    // instrumented subsystem, so the recorder stays empty.
    let p = snapshot();
    let s = plan(&p, Policy::Sjf).unwrap();
    assert!(!s.is_empty());
    assert!(recorder.events().is_empty());
    assert_eq!(recorder.counter("milp.nodes").get(), 0);
}
