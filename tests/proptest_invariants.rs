//! Property-based tests over the core data structures and the solver
//! stack, cross-checking the invariants DESIGN.md §5 calls out.

use dynp_rs::milp::timeindex::TimeIndexedModel;
use dynp_rs::milp::{self, solve_mip, BranchLimits, Milp, MipStatus, Sense, TimeScaling};
use dynp_rs::platform::{MachineHistory, ResourceProfile};
use dynp_rs::prelude::*;
use dynp_rs::trace::swf;
use proptest::prelude::*;

/// Strategy: a small job set on a machine of the given capacity.
fn jobs_strategy(capacity: u32, max_jobs: usize) -> impl Strategy<Value = Vec<Job>> {
    prop::collection::vec((1..=capacity, 1u64..5000, 0u64..2000), 1..=max_jobs).prop_map(|specs| {
        specs
            .into_iter()
            .enumerate()
            .map(|(i, (width, duration, submit))| Job::exact(i as u32, submit, width, duration))
            .collect()
    })
}

/// Strategy: a running set (width, estimated end) that fits the machine.
fn running_strategy(capacity: u32) -> impl Strategy<Value = Vec<(u32, u64)>> {
    prop::collection::vec((1..=capacity.max(2) / 2, 2001u64..9000), 0..4).prop_map(
        move |mut set| {
            // Trim so the widths fit.
            let mut used = 0u32;
            set.retain(|&(w, _)| {
                if used + w <= capacity {
                    used += w;
                    true
                } else {
                    false
                }
            });
            set
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn planner_produces_valid_schedules_for_all_policies(
        jobs in jobs_strategy(16, 12),
        running in running_strategy(16),
    ) {
        let now = 2000u64;
        let history = MachineHistory::build(16, now, &running);
        let problem = SchedulingProblem::new(now, history, jobs);
        for policy in Policy::ALL {
            let schedule = plan(&problem, policy).unwrap();
            prop_assert!(schedule.validate(&problem).is_ok(),
                "{policy} invalid: {:?}", schedule.validate(&problem));
        }
    }

    #[test]
    fn machine_history_is_monotone_and_drains(
        running in running_strategy(64),
    ) {
        let h = MachineHistory::build(64, 1000, &running);
        h.check_invariants().unwrap();
        prop_assert_eq!(h.free_at(h.drained_at()), 64);
    }

    #[test]
    fn profile_allocation_roundtrip(
        allocs in prop::collection::vec((0u64..500, 1u64..200, 1u32..8), 1..12),
    ) {
        let mut p = ResourceProfile::new(64);
        let mut applied = Vec::new();
        for (start, len, width) in allocs {
            let end = start + len;
            if p.min_free(start, end) >= width {
                p.allocate(start, end, width);
                applied.push((start, end, width));
            }
        }
        p.check_invariants().unwrap();
        // Releasing everything restores a fully free machine.
        for (start, end, width) in applied {
            p.release(start, end, width);
        }
        p.check_invariants().unwrap();
        prop_assert_eq!(p.min_free(0, 10_000), 64);
    }

    #[test]
    fn earliest_fit_is_earliest_and_feasible(
        allocs in prop::collection::vec((0u64..300, 1u64..100, 1u32..16), 0..8),
        width in 1u32..16,
        duration in 1u64..100,
        from in 0u64..200,
    ) {
        let mut p = ResourceProfile::new(16);
        for (start, len, w) in allocs {
            let end = start + len;
            if p.min_free(start, end) >= w {
                p.allocate(start, end, w);
            }
        }
        let t = p.earliest_fit(from, duration, width).expect("must fit eventually");
        prop_assert!(t >= from);
        prop_assert!(p.fits(t, duration, width));
        // Earliestness: check a scatter of earlier instants don't fit.
        for probe in (from..t).rev().take(50) {
            prop_assert!(!p.fits(probe, duration, width),
                "job fits at {probe} < chosen {t}");
        }
    }

    #[test]
    fn swf_roundtrip_preserves_jobs(jobs in jobs_strategy(430, 20)) {
        let text = swf::swf_to_string(&jobs, 430);
        let parsed = swf::parse_swf(&text).unwrap();
        prop_assert_eq!(parsed.machine_size(), 430);
        prop_assert_eq!(parsed.jobs, jobs);
    }

    #[test]
    fn metrics_are_finite_and_directionally_consistent(
        jobs in jobs_strategy(16, 10),
    ) {
        let problem = SchedulingProblem::on_empty_machine(2000, 16, jobs);
        for policy in Policy::PAPER_SET {
            let s = plan(&problem, policy).unwrap();
            for m in [Metric::ArtwW, Metric::SldwA, Metric::Art, Metric::AvgWait,
                      Metric::AvgSlowdown, Metric::Utilization, Metric::Makespan] {
                let v = m.eval(&problem, &s);
                prop_assert!(v.is_finite());
                prop_assert!(v >= 0.0);
            }
            // Slowdown is at least 1, response at least the mean duration.
            prop_assert!(Metric::AvgSlowdown.eval(&problem, &s) >= 1.0 - 1e-9);
        }
    }

    #[test]
    fn lp_relaxation_bounds_the_integer_optimum(
        values in prop::collection::vec(0u32..30, 2..7),
        weights in prop::collection::vec(1u32..9, 2..7),
        cap in 1u32..25,
    ) {
        let n = values.len().min(weights.len());
        let c: Vec<f64> = values[..n].iter().map(|&v| -(v as f64)).collect();
        let w: Vec<f64> = weights[..n].iter().map(|&x| x as f64).collect();
        let model = Milp::binary(
            c,
            milp::sparse::CscMatrix::from_dense(std::slice::from_ref(&w)),
            vec![Sense::Le],
            vec![cap as f64],
        );
        let lp = milp::solve_lp(&model, 100_000);
        let lp_obj = lp.optimal().expect("knapsack LP solvable").objective;
        let mip = solve_mip(&model, BranchLimits::default());
        prop_assert_eq!(mip.status, MipStatus::Optimal);
        let mip_obj = mip.objective.unwrap();
        // Relaxation bound and brute force agreement.
        prop_assert!(lp_obj <= mip_obj + 1e-6);
        let mut best = 0.0f64;
        for mask in 0u32..(1 << n) {
            let x: Vec<f64> = (0..n).map(|j| ((mask >> j) & 1) as f64).collect();
            if model.check_feasible(&x, 1e-9).is_ok() {
                best = best.min(model.objective_value(&x));
            }
        }
        prop_assert!((mip_obj - best).abs() < 1e-6);
    }

    #[test]
    fn ilp_slot_optimum_beats_greedy_and_compaction_never_delays(
        jobs in jobs_strategy(8, 5),
    ) {
        // Normalize submits to 0 so the snapshot is internally consistent.
        let jobs: Vec<Job> = jobs.into_iter()
            .map(|j| Job { submit: 0, ..j })
            .collect();
        let problem = SchedulingProblem::on_empty_machine(0, 8, jobs);
        let ti = TimeIndexedModel::build(
            &problem, TimeScaling::fixed(600), problem.naive_horizon());
        let sol = solve_mip(&ti.model, BranchLimits {
            max_nodes: 3000, ..BranchLimits::default()
        });
        prop_assume!(sol.status == MipStatus::Optimal);
        let x = sol.x.unwrap();
        // Optimal slot objective is no worse than the greedy placement.
        let order: Vec<usize> = (0..problem.jobs.len()).collect();
        let greedy = ti.greedy_solution(&order).unwrap();
        prop_assert!(sol.objective.unwrap()
            <= ti.model.objective_value(&greedy) + 1e-6);
        // Compaction never delays any job past its slot-grid start.
        let slot_schedule = ti.slot_schedule(&x, &problem);
        let compacted = milp::compact(&problem, &ti.start_order(&x)).unwrap();
        compacted.validate(&problem).unwrap();
        for e in slot_schedule.entries() {
            prop_assert!(compacted.start_of(e.id).unwrap() <= e.start);
        }
    }

    #[test]
    fn queue_rms_completes_and_easy_only_helps(
        jobs in jobs_strategy(16, 20),
    ) {
        use dynp_rs::sim::{simulate_queue, QueueDiscipline};
        let (plain, b0) = simulate_queue(&jobs, 16, Policy::Fcfs, QueueDiscipline::Plain);
        let (easy, _b1) =
            simulate_queue(&jobs, 16, Policy::Fcfs, QueueDiscipline::EasyBackfill);
        prop_assert_eq!(b0, 0);
        prop_assert_eq!(plain.len(), jobs.len());
        prop_assert_eq!(easy.len(), jobs.len());
        // Per-job sanity under both disciplines. (EASY usually reduces the
        // total wait, but that is a statistical effect, not an invariant —
        // the deterministic comparison lives in the queueing unit tests.)
        for r in plain.iter().chain(easy.iter()) {
            prop_assert!(r.start >= r.submit);
            prop_assert!(r.end > r.start);
        }
    }

    #[test]
    fn admitted_reservations_are_never_overlapped(
        jobs in jobs_strategy(16, 8),
        req_width in 1u32..=16,
        req_duration in 1u64..2000,
        earliest in 0u64..3000,
    ) {
        use dynp_rs::sched::{admit, AdmissionRule, ReservationRequest};
        let mut problem = SchedulingProblem::on_empty_machine(2000, 16, jobs);
        let granted = admit(
            &problem,
            AdmissionRule::AroundPlannedJobs(Policy::Fcfs),
            ReservationRequest { width: req_width, duration: req_duration, earliest },
        ).expect("fits the machine");
        prop_assert!(granted.start >= earliest.max(problem.now));
        problem.reservations.push(granted);
        problem.validate().unwrap();
        // Re-planning with any policy must route around the reservation.
        for policy in Policy::PAPER_SET {
            let s = plan(&problem, policy).unwrap();
            prop_assert!(s.validate(&problem).is_ok());
            if granted.width == 16 {
                // Full-machine reservation: nothing may overlap it.
                for e in s.entries() {
                    prop_assert!(e.end <= granted.start || e.start >= granted.end);
                }
            }
        }
    }

    #[test]
    fn simulation_is_deterministic_and_complete(
        jobs in jobs_strategy(16, 15),
    ) {
        let a = simulate(&jobs, FixedPolicy(Policy::Sjf), SimConfig::new(16));
        let b = simulate(&jobs, FixedPolicy(Policy::Sjf), SimConfig::new(16));
        prop_assert_eq!(a.records.len(), jobs.len());
        prop_assert_eq!(a.records, b.records);
    }

    #[test]
    fn deciders_always_return_an_evaluated_policy(
        values in prop::collection::vec(0.1f64..100.0, 3),
        incumbent_idx in 0usize..3,
    ) {
        let evals: Vec<(Policy, f64)> = Policy::PAPER_SET
            .iter().copied().zip(values.iter().copied()).collect();
        let incumbent = Policy::PAPER_SET[incumbent_idx];
        for decider in [Decider::Simple, Decider::Advanced,
                        Decider::Sticky { margin: 0.1 }] {
            let chosen = decider.decide(Metric::SldwA, &evals, incumbent);
            prop_assert!(Policy::PAPER_SET.contains(&chosen));
            // The chosen policy is never strictly worse than the incumbent.
            let val = |p: Policy| evals.iter().find(|(q, _)| *q == p).unwrap().1;
            prop_assert!(val(chosen) <= val(incumbent) + 1e-12);
        }
    }
}
